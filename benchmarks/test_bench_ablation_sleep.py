"""Ablation A6 — DVFS vs PowerNap-style idle sleep (related work, §6).

Shape: sleep states attack idle energy (huge on under-utilised
machines), DVFS attacks active energy; combined they stack.  On a hot
machine the ranking flips toward DVFS.
"""

from bench_common import BENCH_JOBS, run_once

from repro.experiments.ablations import sleep_vs_dvfs
from repro.experiments.runner import ExperimentRunner


def test_ablation_sleep_vs_dvfs(benchmark):
    ablation = run_once(
        benchmark,
        lambda: sleep_vs_dvfs(ExperimentRunner(n_jobs=BENCH_JOBS), workload="LLNLAtlas"),
    )
    print()
    print(ablation.render())
    by_label = {row[0]: row for row in ablation.rows}
    assert by_label["no DVFS, no sleep"][1] == 1.0
    # sleep alone never hurts performance
    assert by_label["sleep only (post-hoc)"][2] == by_label["no DVFS, no sleep"][2]
    assert by_label["sleep only (post-hoc)"][1] < 1.0
    # the combination dominates either single technique on energy
    combined = by_label["DVFS(2, NO) + sleep (post-hoc)"][1]
    assert combined <= by_label["sleep only (post-hoc)"][1] + 1e-9
    assert combined <= by_label["DVFS(2, NO)"][1] + 1e-9
    # the in-engine subsystem agrees with the post-hoc estimator under
    # zero wake latency
    in_engine = by_label["DVFS(2, NO) + sleep (in-engine)"]
    assert in_engine[1] == combined
    laggy = by_label["DVFS(2, NO) + sleep (in-engine, 60s wake)"]
    assert laggy[3] > 0.0  # still sleeping under wake latency
