"""Figure 3 — normalized CPU energy at original system size.

Paper shape: every workload except SDSC saves roughly 10% or more for
permissive thresholds (up to ~22% computational energy at (3, NO));
SDSC shows essentially no saving; within a BSLD threshold, larger WQ
thresholds always save at least as much.
"""

from bench_common import BENCH_JOBS, LIGHT, run_once

from repro.experiments.figures import figure3
from repro.experiments.runner import ExperimentRunner


def test_figure3(benchmark):
    fig = run_once(benchmark, lambda: figure3(ExperimentRunner(n_jobs=BENCH_JOBS)))
    print()
    print(fig.render())
    grid = fig.grid

    # SDSC: no real saving at any combination.  Saturation (and with it
    # this effect) fully develops on the paper-scale 5000-job trace;
    # shorter benchmark traces leave SDSC a little more headroom.
    sdsc_floor = 0.90 if BENCH_JOBS >= 5000 else 0.80
    for scenario in ("idle0", "idlelow"):
        for bsld in grid.bsld_thresholds:
            for wq in grid.wq_thresholds:
                assert fig.normalized_energy(("SDSC", bsld, wq), scenario) > sdsc_floor

    # The permissive corner saves visibly on the non-saturated systems.
    for workload in ("CTC", "SDSCBlue", *LIGHT):
        assert fig.normalized_energy((workload, 3.0, None), "idle0") < 0.95

    # WQ monotonicity at fixed BSLD threshold (computational energy).
    order = [0, 4, 16, None]
    for workload in grid.workloads:
        for bsld in grid.bsld_thresholds:
            energies = [fig.normalized_energy((workload, bsld, wq), "idle0") for wq in order]
            for tighter, looser in zip(energies, energies[1:], strict=False):
                assert looser <= tighter + 0.02
