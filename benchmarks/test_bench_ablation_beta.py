"""Ablation A1 — β sensitivity (the paper's §7 future work, quantified).

Shape: β=0 makes frequency scaling free (maximal savings, everything
reduced); β=1 maximises the time penalty, so fewer jobs pass the BSLD
gate and savings shrink.
"""

from bench_common import BENCH_JOBS, run_once

from repro.experiments.ablations import beta_sweep
from repro.experiments.runner import ExperimentRunner


def test_ablation_beta(benchmark):
    sweep = run_once(
        benchmark,
        lambda: beta_sweep(ExperimentRunner(n_jobs=BENCH_JOBS), workload="LLNLThunder"),
    )
    print()
    print(sweep.render())
    by_beta = {row[0]: row for row in sweep.rows}
    assert by_beta[0.0][1] <= by_beta[0.5][1] + 0.02 <= by_beta[1.0][1] + 0.1
    assert by_beta[0.0][3] >= by_beta[1.0][3]
    # at beta=0 lowering gears costs no runtime: BSLD stays at the baseline
    assert by_beta[0.0][2] < by_beta[1.0][2] + 1.0
