"""Ablation A3 — literal vs relaxed reading of the paper's Figure 2.

Shape: the literal pseudocode (BSLD check gating even Ftop backfills)
collapses backfilling on the saturated SDSC trace: waits explode
relative to the relaxed reading that Table 3 of the paper implies.
"""

from bench_common import BENCH_JOBS, run_once

from repro.experiments.ablations import strict_backfill_comparison
from repro.experiments.runner import ExperimentRunner


def test_ablation_strict_backfill(benchmark):
    comparison = run_once(
        benchmark,
        lambda: strict_backfill_comparison(
            ExperimentRunner(n_jobs=BENCH_JOBS), workload="SDSC"
        ),
    )
    print()
    print(comparison.render())
    by_label = {row[0]: row for row in comparison.rows}
    relaxed_wait = by_label["relaxed (default)"][2]
    strict_wait = by_label["strict (literal)"][2]
    assert strict_wait >= relaxed_wait
    # the relaxed reading reproduces Table 3's "SDSC WQ0 ~ no-DVFS" only
    # because Ftop backfills are unconditional; strict must be far worse.
    assert strict_wait > by_label["no-DVFS"][2]
