"""Mark everything under benchmarks/ with the ``bench`` marker.

The tier-1 suite deselects these via the ``-m "not bench"`` addopts in
pyproject.toml; select them explicitly with ``-m bench``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(config, items):
    for item in items:
        if _BENCH_DIR in Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)
