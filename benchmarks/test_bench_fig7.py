"""Figure 7 — normalized energy of enlarged systems, WQ threshold 0.

Paper shape: computational energy decreases monotonically with system
size; the idle=low scenario eventually turns back up (idle processors
erase the savings), so its minimum sits strictly inside the sweep for
at least some workloads.
"""

from bench_common import BENCH_JOBS, run_once

from repro.experiments.figures import figure7
from repro.experiments.runner import ExperimentRunner


def check_enlarged_energy_shapes(fig):
    sweep = fig.sweep
    factors = sweep.size_factors
    interior_minimum = 0
    for workload in sweep.workloads:
        comp = [fig.normalized_energy(workload, f, "idle0") for f in factors]
        # monotone non-increasing computational energy (small tolerance)
        for small, large in zip(comp, comp[1:], strict=False):
            assert large <= small + 0.02, (workload, comp)
        low = [fig.normalized_energy(workload, f, "idlelow") for f in factors]
        # On the largest machine the idle floor dominates: idle=low can
        # no longer keep up with the computational saving.  (At original
        # size idle=low may *beat* idle0 — DVFS stretching raises
        # utilisation and can shrink absolute idle time — so the paper's
        # "two scenarios diverge" claim is asserted at the big end only.)
        assert low[-1] >= comp[-1] - 0.02, (workload, low, comp)
        if low.index(min(low)) < len(factors) - 1:
            interior_minimum += 1
    # the idle-power turnaround exists somewhere in the fleet
    assert interior_minimum >= 1


def test_figure7(benchmark):
    fig = run_once(benchmark, lambda: figure7(ExperimentRunner(n_jobs=BENCH_JOBS)))
    print()
    print(fig.render())
    check_enlarged_energy_shapes(fig)
    # The paper's headline: a +20% system yields a visible saving even
    # in the conservative WQ=0 configuration, for the light systems.
    assert fig.normalized_energy("LLNLThunder", 1.2, "idle0") < 0.95
