"""Figure 5 — average BSLD per parameter combination, original size.

Paper shape: performance degrades as thresholds loosen; SDSC has by far
the worst BSLD; the most aggressive corner (3, NO) hurts most.
"""

from bench_common import BENCH_JOBS, run_once

from repro.experiments.figures import figure5
from repro.experiments.runner import ExperimentRunner


def test_figure5(benchmark):
    fig = run_once(benchmark, lambda: figure5(ExperimentRunner(n_jobs=BENCH_JOBS)))
    print()
    print(fig.render())
    grid = fig.grid

    for workload in grid.workloads:
        baseline = fig.baseline_bsld(workload)
        combos = [
            fig.average_bsld((workload, bsld, wq))
            for bsld in grid.bsld_thresholds
            for wq in grid.wq_thresholds
        ]
        # DVFS costs performance on balance; individual combinations can
        # perturb a short trace in their favour (the paper's own SDSC
        # row is non-monotone), so assert the grid average, the strictly
        # losing aggressive corner, and per-combination only at scale.
        assert sum(combos) / len(combos) >= baseline * 0.95
        assert fig.average_bsld((workload, 3.0, None)) >= baseline * 0.999
        if BENCH_JOBS >= 2000:
            assert min(combos) >= baseline * 0.93
        # The aggressive corner hurts at least as much as the timid one.
        timid = fig.average_bsld((workload, 1.5, 0))
        aggressive = fig.average_bsld((workload, 3.0, None))
        assert aggressive >= timid * 0.95

    # SDSC is the worst-served workload: it dominates the baseline and
    # (at scale) every grid combination; on short benchmark traces the
    # aggressive corner of another loaded workload may briefly catch up.
    assert fig.baseline_bsld("SDSC") == max(
        fig.baseline_bsld(w) for w in grid.workloads
    )
    for bsld in grid.bsld_thresholds:
        for wq in grid.wq_thresholds:
            sdsc = fig.average_bsld(("SDSC", bsld, wq))
            for other in ("CTC", "LLNLThunder", "LLNLAtlas"):
                assert sdsc > fig.average_bsld((other, bsld, wq))
            if BENCH_JOBS >= 2000:
                assert sdsc > fig.average_bsld(("SDSCBlue", bsld, wq))
