"""Ablation A4 — scheduler/policy comparison on one workload.

Covers the baselines around the paper's design point: FCFS (no
backfilling), conservative backfilling, the utilisation-triggered
related-work policy, and the dynamic-boost extension.
"""

from bench_common import BENCH_JOBS, run_once

from repro.experiments.ablations import policy_comparison
from repro.experiments.runner import ExperimentRunner


def test_ablation_policy_comparison(benchmark):
    comparison = run_once(
        benchmark,
        lambda: policy_comparison(
            ExperimentRunner(n_jobs=min(BENCH_JOBS, 1500)), workload="CTC"
        ),
    )
    print()
    print(comparison.render())
    by_label = {row[0]: row for row in comparison.rows}
    assert by_label["FCFS no-DVFS"][2] >= by_label["EASY no-DVFS"][2] - 1e-6
    assert by_label["EASY DVFS(2,NO)"][3] < 1.0  # saves energy
    boosted = by_label["EASY DVFS(2,NO)+boost4"]
    plain = by_label["EASY DVFS(2,NO)"]
    assert boosted[2] <= plain[2] + 1e-6  # boost trims waits
    assert boosted[3] >= plain[3] - 1e-6  # at an energy cost
