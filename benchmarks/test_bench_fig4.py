"""Figure 4 — number of jobs run at reduced frequency.

Paper shape: counts grow with the WQ threshold; a *higher* BSLD
threshold does not necessarily reduce more jobs (Thunder reduces fewer
at 2 than at 1.5 because slowed jobs congest the queue).
"""

from bench_common import BENCH_JOBS, run_once

from repro.experiments.figures import figure4
from repro.experiments.runner import ExperimentRunner


def test_figure4(benchmark):
    fig = run_once(benchmark, lambda: figure4(ExperimentRunner(n_jobs=BENCH_JOBS)))
    print()
    print(fig.render())
    grid = fig.grid

    for workload in grid.workloads:
        for bsld in grid.bsld_thresholds:
            # WQ monotonicity of reduced-job counts.
            counts = [fig.reduced_jobs((workload, bsld, wq)) for wq in (0, 4, 16, None)]
            for tight, loose in zip(counts, counts[1:], strict=False):
                assert loose >= tight - max(3, int(0.02 * BENCH_JOBS))
            assert counts[-1] <= BENCH_JOBS

    # The paper's Thunder inversion: more aggressive threshold, *fewer*
    # reduced jobs under a WQ limit (feedback through queue growth).
    thunder_15 = fig.reduced_jobs(("LLNLThunder", 1.5, 4))
    thunder_2 = fig.reduced_jobs(("LLNLThunder", 2.0, 4))
    assert thunder_2 < thunder_15

    # Light systems reduce far more jobs than the saturated SDSC.
    assert fig.reduced_jobs(("LLNLAtlas", 2.0, None)) > fig.reduced_jobs(("SDSC", 2.0, None))
