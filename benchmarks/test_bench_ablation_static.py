"""Ablation A2 — static power share.

Shape: dynamic power scales with f*V^2 but static only with V, so a
larger static share damps the relative saving from down-clocking.
"""

from bench_common import BENCH_JOBS, run_once

from repro.experiments.ablations import static_share_sweep
from repro.experiments.runner import ExperimentRunner


def test_ablation_static_share(benchmark):
    sweep = run_once(
        benchmark,
        lambda: static_share_sweep(
            ExperimentRunner(n_jobs=BENCH_JOBS), workload="LLNLThunder",
            shares=(0.0, 0.125, 0.25, 0.5),
        ),
    )
    print()
    print(sweep.render())
    energies = [row[1] for row in sweep.rows]
    for leaner, fatter in zip(energies, energies[1:], strict=False):
        assert fatter >= leaner - 0.02
