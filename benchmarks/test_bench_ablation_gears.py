"""Ablation A5 — gear-ladder granularity.

Shape: removing the deep gears (upper-half ladder) forfeits savings;
a two-point {lowest, top} ladder keeps most of the saving on workloads
whose jobs tolerate the full stretch.
"""

from bench_common import BENCH_JOBS, run_once

from repro.experiments.ablations import gear_ladder_ablation
from repro.experiments.runner import ExperimentRunner


def test_ablation_gear_ladder(benchmark):
    ablation = run_once(
        benchmark,
        lambda: gear_ladder_ablation(
            ExperimentRunner(n_jobs=BENCH_JOBS), workload="LLNLThunder"
        ),
    )
    print()
    print(ablation.render())
    by_label = {row[0]: row for row in ablation.rows}
    full = by_label["full paper ladder"][1]
    upper = by_label["upper half {1.7, 2.0, 2.3}"][1]
    assert upper >= full - 1e-9
