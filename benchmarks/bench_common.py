"""Shared plumbing for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper end to end
(trace synthesis -> simulation sweep -> artifact) and asserts the
*shape* facts the paper reports.  ``REPRO_BENCH_JOBS`` controls the
trace length (default 800; the paper uses 5000 — export
``REPRO_BENCH_JOBS=5000`` to reproduce at full scale, as
``repro-sim report`` does).
"""

from __future__ import annotations

import os

BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "800"))

#: Loaded workloads (CTC/SDSC/Blue) queue heavily; the light ones don't.
LOADED = ("CTC", "SDSC", "SDSCBlue")
LIGHT = ("LLNLThunder", "LLNLAtlas")


def run_once(benchmark, builder):
    """Run ``builder`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(builder, rounds=1, iterations=1)
