"""Figure 6 — SDSC-Blue wait-time behaviour zoom, orig vs DVFS(2, 16).

Paper shape: "wait time with frequency scaling is much higher than
without it" over the congested stretch of the trace.
"""

import statistics

from bench_common import BENCH_JOBS, run_once

from repro.experiments.figures import figure6
from repro.experiments.runner import ExperimentRunner


def test_figure6(benchmark):
    fig = run_once(
        benchmark,
        lambda: figure6(
            ExperimentRunner(n_jobs=BENCH_JOBS),
            workload="SDSCBlue",
            bsld_threshold=2.0,
            wq_threshold=16,
        ),
    )
    print()
    print(fig.render())

    mean_orig = statistics.fmean(fig.original_waits)
    mean_dvfs = statistics.fmean(fig.dvfs_waits)
    # The DVFS series sits above the original over the zoom window.
    assert mean_dvfs >= mean_orig
    assert len(fig.original_waits) == len(fig.dvfs_waits)
    assert fig.policy_label == "DVFS_2_16"
