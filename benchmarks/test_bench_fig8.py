"""Figure 8 — normalized energy of enlarged systems, no WQ limit.

Same shape as Figure 7 but deeper savings: without the WQ restriction a
+20% system reaches the paper's "almost 30%" computational-energy cut
on the amenable workloads.
"""

from bench_common import BENCH_JOBS, run_once

from repro.experiments.figures import figure8
from repro.experiments.runner import ExperimentRunner
from test_bench_fig7 import check_enlarged_energy_shapes


def test_figure8(benchmark):
    fig = run_once(benchmark, lambda: figure8(ExperimentRunner(n_jobs=BENCH_JOBS)))
    print()
    print(fig.render())
    check_enlarged_energy_shapes(fig)

    # no-limit saves at least as much as WQ=0 would; check the deep corner:
    # some workload reaches a >=25% computational saving by +50%.
    best = min(
        fig.normalized_energy(workload, 1.5, "idle0") for workload in fig.sweep.workloads
    )
    assert best <= 0.75
