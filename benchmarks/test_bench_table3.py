"""Table 3 — average wait times across scheduling/system configurations."""

from bench_common import BENCH_JOBS, run_once

from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import table3
from repro.workloads.models import WORKLOAD_NAMES


def test_table3(benchmark):
    def build():
        return table3(ExperimentRunner(n_jobs=BENCH_JOBS))

    table = run_once(benchmark, build)
    print()
    print(table.render())

    for name in WORKLOAD_NAMES:
        row = table.rows[name]
        # DVFS at original size never shortens waits...
        assert row["OrigWQNo"] >= row["OrigNoDVFS"] * 0.95
        # ...the no-limit configuration waits at least as long as WQ=0...
        assert row["OrigWQNo"] >= row["OrigWQ0"] * 0.95
        # ...and the +50% system collapses waits versus the original
        # power-aware runs (the paper's headline Table 3 effect).
        assert row["Inc50WQ0"] <= row["OrigWQ0"] + 1.0
        assert row["Inc50WQNo"] <= row["OrigWQNo"] + 1.0
