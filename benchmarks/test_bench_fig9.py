"""Figure 9 — average BSLD of enlarged power-aware systems.

Paper shape: more processors monotonically improve BSLD even though
more jobs run reduced; the loaded workloads (CTC/SDSC/Blue) eventually
beat their original no-DVFS performance, while Thunder/Atlas — already
at the BSLD floor — cannot improve on it but stay close.
"""

from bench_common import BENCH_JOBS, LOADED, run_once

from repro.experiments.figures import figure9
from repro.experiments.runner import ExperimentRunner


def test_figure9(benchmark):
    fig = run_once(benchmark, lambda: figure9(ExperimentRunner(n_jobs=BENCH_JOBS)))
    print()
    print(fig.render())

    for wq, sweep in (("0", fig.sweep_wq0), ("NO", fig.sweep_wqno)):
        for workload in sweep.workloads:
            series = [
                fig.average_bsld(wq, workload, factor) for factor in sweep.size_factors
            ]
            # monotone improvement with size (generous tolerance: the
            # trace is finite and bursty)
            assert series[-1] <= series[0] + 0.5
            for a, b in zip(series, series[2:], strict=False):
                assert b <= a * 1.10 + 0.2

    # The loaded systems cross below their no-DVFS baseline by +125%
    # in the conservative WQ=0 configuration.
    for workload in LOADED:
        baseline = fig.baseline_bsld(workload)
        final = fig.average_bsld("0", workload, fig.sweep_wq0.size_factors[-1])
        assert final <= baseline * 1.05

    # The light systems never stray far from the floor at WQ=0.
    for workload in ("LLNLThunder", "LLNLAtlas"):
        assert fig.average_bsld("0", workload, 2.25) < 3.0
