"""Table 1 — workloads and their no-DVFS baseline average BSLD."""

from bench_common import BENCH_JOBS, run_once

from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import table1
from repro.workloads.models import PAPER_BASELINE_BSLD


def test_table1(benchmark):
    def build():
        return table1(ExperimentRunner(n_jobs=BENCH_JOBS))

    table = run_once(benchmark, build)
    print()
    print(table.render())

    # Shape: SDSC is by far the worst-served workload; the LLNL machines
    # sit at (or very near) the BSLD floor of 1 — exactly as in Table 1.
    measured = {row[0]: row[3] for row in table.rows}
    assert measured["SDSC"] == max(measured.values())
    assert measured["SDSC"] > 3.0 * measured["SDSCBlue"] * 0.5
    for light in ("LLNLThunder", "LLNLAtlas"):
        assert measured[light] < 1.6
    # at full scale the calibration pins these to the paper's values
    if BENCH_JOBS >= 5000:
        for name, target in PAPER_BASELINE_BSLD.items():
            assert abs(measured[name] - target) / target < 0.25
