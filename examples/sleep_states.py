"""In-engine node sleep states: powering down idle nodes *during* a run.

The paper's §6 contrasts its BSLD-threshold DVFS policy with the other
school of HPC power management — shutting idle nodes down.  This
example drives the in-engine subsystem (``RunSpec.sleep``) end to end:

1. run the same workload always-on, with instantaneous sleep, and with
   a full-shutdown policy that needs two minutes to boot a node;
2. compare the energy books (the sleep breakdown rides on
   ``result.energy.sleep``) and the BSLD cost of wake latency;
3. watch sleep transitions live through a session with instruments —
   ``NodesSlept`` / ``NodesWoke`` lifecycle events and the telemetry
   sampler's asleep-CPU column.

Run with::

    PYTHONPATH=src python examples/sleep_states.py
"""

from repro.api import Simulation
from repro.cluster.power import SleepPolicy
from repro.experiments.ascii_charts import format_table
from repro.experiments.config import InstrumentSpec, PolicySpec, RunSpec
from repro.instruments import Instrument
from repro.sim.events import NodesSlept, NodesWoke

BASE = RunSpec(
    workload="SDSC", n_jobs=800, seed=7, policy=PolicySpec.power_aware(2.0, None)
)

VARIANTS = [
    ("always on", None),
    ("powernap (10ms wake)", SleepPolicy.preset("powernap")),
    ("shutdown (120s wake)", SleepPolicy.preset("shutdown")),
]


def compare_variants() -> None:
    baseline = Simulation(BASE).run()
    rows = []
    for label, sleep in VARIANTS:
        result = Simulation(BASE.with_sleep(sleep)).run()
        breakdown = result.energy.sleep
        rows.append(
            [
                label,
                f"{result.energy.total_idle_low / baseline.energy.total_idle_low:.3f}",
                f"{result.average_bsld():.3f}",
                f"{breakdown.sleep_fraction:.1%}" if breakdown else "-",
                str(breakdown.wake_count) if breakdown else "-",
                str(breakdown.wake_delayed_jobs) if breakdown else "-",
            ]
        )
    print(
        format_table(
            ["configuration", "energy/base", "avg BSLD", "idle asleep", "wakes", "stalled starts"],
            rows,
            title="DVFS(2, NO) on SDSC with in-engine node sleep states",
        )
    )


class TransitionLog(Instrument):
    """A tiny observer printing the first few sleep/wake transitions."""

    name = "transition_log"

    def __init__(self, limit: int = 8) -> None:
        super().__init__()
        self.limit = limit
        self.seen = 0

    def on_event(self, event) -> None:
        if type(event) not in (NodesSlept, NodesWoke) or self.seen >= self.limit:
            return
        self.seen += 1
        if type(event) is NodesSlept:
            print(
                f"  t={event.time:>10.0f}  {event.count:>3} nodes slept "
                f"({event.asleep} asleep total)"
            )
        else:
            print(
                f"  t={event.time:>10.0f}  {event.count:>3} nodes woke "
                f"(+{event.delay_seconds:g}s boot stall)"
            )


def watch_transitions() -> None:
    print("\nlive sleep/wake transitions (first few):")
    spec = BASE.with_sleep(SleepPolicy.preset("shutdown")).with_instruments(
        InstrumentSpec.of("power_telemetry", min_interval=6 * 3600.0)
    )
    session = Simulation(spec).session(instruments=[TransitionLog()])
    result = session.result()
    samples = result.instrument("power_telemetry")["samples"]
    asleep_peak = max(row[4] for row in samples)
    print(f"telemetry saw up to {asleep_peak:.0f} CPUs asleep at once")


if __name__ == "__main__":
    compare_variants()
    watch_transitions()
