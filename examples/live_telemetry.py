"""Live telemetry: watch power, utilisation and queue depth mid-run.

Run with::

    python examples/live_telemetry.py

Instead of running a simulation to completion and inspecting the final
:class:`~repro.SimulationResult`, this example arms a steppable
:class:`~repro.SimulationSession` with two observing instruments — a
``power_telemetry`` sampler and a ``bsld_monitor`` — and drives the
clock forward one simulated day at a time, printing what the machine is
doing *while the run is in flight*.  The same instruments are
spec-addressable (``RunSpec.instruments``), so exactly this telemetry
also rides along through ``Simulation.run()``, the batch runner and the
``repro-sim watch`` CLI subcommand.
"""

from repro import InstrumentSpec, PolicySpec, RunSpec, Simulation

N_JOBS = 1500
DAY = 24 * 3600.0


def main() -> None:
    spec = RunSpec(
        workload="SDSC",
        n_jobs=N_JOBS,
        policy=PolicySpec.power_aware(2.0, 4),
        instruments=(
            InstrumentSpec.of("power_telemetry", min_interval=3600.0),
            InstrumentSpec.of("bsld_monitor", sample_every=100),
        ),
    )
    session = Simulation(spec).session()
    monitor = session.instrument("bsld_monitor")

    print(f"watching {spec.label()} ({N_JOBS} jobs), one line per simulated day")
    print(f"{'day':>4} {'events':>7} {'queued':>7} {'finished':>9} {'p90 BSLD':>9}")
    day = 0
    while not session.done:
        day += 1
        session.run_until(day * DAY)
        p90 = f"{monitor.percentile(90.0):.2f}" if monitor.count else "-"
        print(
            f"{day:>4} {session.events_processed:>7} {session.queue_depth:>7} "
            f"{monitor.count:>9} {p90:>9}"
        )

    result = session.result()
    telemetry = result.instrument("power_telemetry")
    print()
    print(result.describe())
    print(
        f"power: peak {telemetry['peak_watts']:.1f} model-watts at "
        f"t={telemetry['peak_time']:.0f}, mean {telemetry['mean_watts']:.1f} "
        f"over {telemetry['sample_count']} samples"
    )
    final = result.instrument("bsld_monitor")
    print(
        f"BSLD distribution: mean {final['mean']:.2f}, p50 {final['p50']:.2f}, "
        f"p90 {final['p90']:.2f}, p99 {final['p99']:.2f}"
    )


if __name__ == "__main__":
    main()
