"""The two-knob trade-off study of the paper's §5.1 on one workload.

Run with::

    python examples/energy_performance_tradeoff.py [workload]

Sweeps the (BSLD threshold x wait-queue threshold) grid of the paper on
a single workload and prints the resulting energy/performance frontier,
i.e. a per-workload slice of Figures 3-5.
"""

import sys

from repro.experiments import (
    BSLD_THRESHOLDS,
    ExperimentRunner,
    WQ_THRESHOLDS,
    wq_label,
)
from repro.experiments.ascii_charts import bar_chart, format_table
from repro.workloads.models import WORKLOAD_NAMES

N_JOBS = 2000


def main(workload: str = "SDSCBlue") -> None:
    if workload not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {workload!r}; pick one of {WORKLOAD_NAMES}")
    runner = ExperimentRunner(n_jobs=N_JOBS)
    baseline = runner.baseline(workload)

    rows = []
    labels, savings = [], []
    for bsld in BSLD_THRESHOLDS:
        for wq in WQ_THRESHOLDS:
            run = runner.power_aware(workload, bsld, wq)
            energy = run.energy.computational / baseline.energy.computational
            rows.append(
                [
                    f"({bsld:g}, {wq_label(wq)})",
                    energy,
                    run.average_bsld(),
                    run.average_wait(),
                    run.reduced_jobs,
                ]
            )
            labels.append(f"({bsld:g},{wq_label(wq)})")
            savings.append(1.0 - energy)

    print(f"workload: {workload}  ({N_JOBS} jobs; baseline avg BSLD "
          f"{baseline.average_bsld():.2f}, avg wait {baseline.average_wait():.0f}s)\n")
    print(
        format_table(
            ["(BSLDth, WQth)", "energy/baseline", "avg BSLD", "avg wait [s]", "reduced"],
            rows,
            title="energy-performance trade-off grid",
        )
    )
    print()
    print(bar_chart(labels, savings, title="computational energy saved vs baseline"))


if __name__ == "__main__":
    main(*sys.argv[1:2])
