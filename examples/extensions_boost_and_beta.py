"""The paper's §7 future work, implemented: dynamic boost and per-job β.

Run with::

    python examples/extensions_boost_and_beta.py

Two extensions beyond the published system:

* **Dynamic boost** — "dynamically increase frequencies of jobs running
  at lower frequencies when there are too many jobs waiting on
  execution".  Enabled via ``SchedulerConfig(boost=...)``.
* **Per-job β** — jobs carry their own CPU-boundedness, so memory-bound
  jobs (low β) are cheap to slow down while CPU-bound ones are not; the
  frequency policy's predicted BSLD honours each job's β.
"""

from repro import (
    BsldThresholdPolicy,
    DynamicBoostConfig,
    EasyBackfilling,
    FixedGearPolicy,
    Machine,
    SchedulerConfig,
    load_workload,
)
from repro.power.beta_model import BimodalBeta

N_JOBS = 1500


def main() -> None:
    jobs = load_workload("SDSCBlue", n_jobs=N_JOBS)
    machine = Machine("SDSCBlue", total_cpus=1152)
    baseline = EasyBackfilling(machine, FixedGearPolicy()).run(jobs)

    def report(label, result):
        energy = result.energy.computational / baseline.energy.computational
        print(
            f"{label:28s} avg BSLD {result.average_bsld():6.2f}  "
            f"energy {energy:.3f}  reduced {result.reduced_jobs:4d}"
        )

    report("no DVFS", baseline)

    plain = EasyBackfilling(machine, BsldThresholdPolicy(2.0, None)).run(jobs)
    report("DVFS(2, NO)", plain)

    # --- dynamic boost: re-gear running jobs when the queue backs up ----
    boosted = EasyBackfilling(
        machine,
        BsldThresholdPolicy(2.0, None),
        config=SchedulerConfig(boost=DynamicBoostConfig(wq_trigger=4)),
    ).run(jobs)
    report("DVFS(2, NO) + boost@WQ>4", boosted)
    print(
        "  -> boost trades some of the energy saving back for shorter queues\n"
        f"     (avg wait {plain.average_wait():.0f}s -> {boosted.average_wait():.0f}s)\n"
    )

    # --- per-job beta: a memory-bound / CPU-bound job population --------
    assigner = BimodalBeta(cpu_bound_fraction=0.5)
    betas = assigner.assign(len(jobs), seed=7)
    mixed_jobs = [job.with_beta(beta) for job, beta in zip(jobs, betas, strict=True)]

    mixed_base = EasyBackfilling(machine, FixedGearPolicy()).run(mixed_jobs)
    mixed = EasyBackfilling(machine, BsldThresholdPolicy(2.0, None)).run(mixed_jobs)
    energy = mixed.energy.computational / mixed_base.energy.computational
    print("bimodal per-job beta population (half memory-bound, half CPU-bound):")
    report("  DVFS(2, NO), per-job beta", mixed)
    reduced_mem = sum(
        1 for outcome in mixed.outcomes
        if outcome.was_reduced and (outcome.job.beta or 0.5) < 0.5
    )
    print(
        f"  -> {reduced_mem} of {mixed.reduced_jobs} reduced jobs are memory-bound: "
        "the policy slows down exactly the jobs that barely notice"
    )


if __name__ == "__main__":
    main()
