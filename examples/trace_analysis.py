"""Deeper analysis: trace segments, per-class metrics, idle sleep states.

Run with::

    python examples/trace_analysis.py

Demonstrates the analysis layer around the core reproduction:

1. segment selection — simulate the *busiest* 1000-job window of a
   longer trace, the way the paper picks its 5000-job segments;
2. per-class breakdowns — who actually gets slowed down, and which
   classes pay the BSLD bill;
3. sleep states — how the paper's DVFS savings compose with
   PowerNap-style idle power management (§6 related work).
"""

from repro import (
    BsldThresholdPolicy,
    EasyBackfilling,
    FixedGearPolicy,
    Machine,
    load_workload,
)
from repro.experiments.ascii_charts import format_table
from repro.metrics.breakdown import by_reduction, by_runtime_bands, by_size_bands
from repro.power.sleep import SleepStateConfig, sleep_energy
from repro.workloads.segment import busiest_segment, segment_load


def main() -> None:
    machine = Machine("SDSCBlue", total_cpus=1152)
    full = load_workload("SDSCBlue", 3000)

    # --- 1. the busiest 1000-job window ---------------------------------
    start, segment = busiest_segment(full, count=1000, total_cpus=machine.total_cpus)
    print(
        f"busiest 1000-job window starts at job {start + 1}: "
        f"offered load {segment_load(segment, machine.total_cpus):.2f} "
        f"(whole trace: {segment_load(full, machine.total_cpus):.2f})\n"
    )

    baseline = EasyBackfilling(machine, FixedGearPolicy()).run(segment)
    powered = EasyBackfilling(machine, BsldThresholdPolicy(2.0, 16)).run(segment)

    # --- 2. who gets reduced, who pays ------------------------------------
    rows = [
        [c.label, c.jobs, f"{c.reduced_fraction:.0%}", c.avg_bsld, c.avg_wait]
        for c in by_size_bands(powered)
        if c.jobs
    ]
    print(format_table(
        ["size band", "jobs", "reduced", "avg BSLD", "avg wait [s]"],
        rows,
        title="DVFS(2,16): reduction and service by job size",
    ))
    print()
    rows = [
        [c.label, c.jobs, f"{c.reduced_fraction:.0%}", c.avg_bsld]
        for c in by_runtime_bands(powered)
        if c.jobs
    ]
    print(format_table(
        ["runtime band", "jobs", "reduced", "avg BSLD"],
        rows,
        title="DVFS(2,16): reduction by runtime class",
    ))
    print()
    reduced, full_speed = by_reduction(powered)
    if reduced.jobs:
        print(
            f"energy per CPU-second: reduced jobs "
            f"{reduced.energy / reduced.cpu_seconds:.2f} vs full-speed "
            f"{full_speed.energy / full_speed.cpu_seconds:.2f} (arbitrary units)\n"
        )

    # --- 3. composing DVFS with sleep states --------------------------------
    config = SleepStateConfig(sleep_after_seconds=300.0, sleep_power_fraction=0.05)
    base_total = baseline.energy.total_idle_low
    rows = []
    for label, run in (("no DVFS", baseline), ("DVFS(2,16)", powered)):
        plain = run.energy.total_idle_low / base_total
        slept = sleep_energy(run, config)
        with_sleep = (run.energy.computational + slept.idle_energy) / base_total
        rows.append([label, plain, with_sleep, f"{slept.sleep_fraction:.0%}"])
    print(format_table(
        ["configuration", "energy (no sleep)", "energy (+sleep)", "idle time asleep"],
        rows,
        title="total energy vs the no-DVFS/no-sleep baseline",
    ))


if __name__ == "__main__":
    main()
