"""Simulation as a service: submit, stream telemetry, fetch aggregates.

Run with::

    python examples/serve_client.py

This example starts an in-process :class:`~repro.ReproServer` on an
ephemeral port (in production you would run ``repro-sim serve`` as its
own process) and then speaks to it exactly as a remote client would —
over HTTP via :class:`~repro.ServeClient`:

1. **submit** a :class:`~repro.RunSpec` and get a job id back;
2. **stream** the run's lifecycle telemetry live (NDJSON rows in the
   :class:`~repro.EventTraceRecorder` shape, closed by one
   ``EndOfStream`` sentinel);
3. **fetch** the result — first the reduced aggregates-only document,
   then the full one — and verify it equals an in-process run;
4. **resubmit** the same spec to show single-flight dedup: the second
   submission attaches to the finished job, runs nothing, and serves
   the very same bytes.
"""

from collections import Counter

from repro import ReproServer, RunSpec, ServeClient, Simulation

SPEC = RunSpec(workload="SDSC", n_jobs=800, seed=11)


def main() -> None:
    with ReproServer() as server:  # production: repro-sim serve
        client = ServeClient(server.address)
        health = client.health()
        print(f"server {server.address} up (version {health['version']})")

        # 1. submit
        job = client.submit(SPEC)
        job_id = job["job_id"]
        print(f"submitted {job_id} (state: {job['state']})")

        # 2. stream telemetry while the run is in flight
        kinds: Counter[str] = Counter()
        for row in client.stream_events(job_id):
            if row["event"] == "EndOfStream":
                print(
                    f"stream closed: {row['events']} events, "
                    f"terminal state {row['state']!r}"
                )
                break
            kinds[row["event"]] += 1
        for kind, count in kinds.most_common():
            print(f"  {kind:>18}: {count}")

        # 3. fetch — aggregates-only first (headline metrics, tiny), then full
        slim = client.result(job_id, aggregates_only=True)
        print(
            f"aggregates: avg BSLD {slim.average_bsld():.2f}, "
            f"avg wait {slim.average_wait():.0f}s over {slim.job_count} jobs"
        )
        full = client.result(job_id)
        assert full == Simulation(SPEC).run(), "byte-identity contract broken?!"
        print("full result verified equal to an in-process Simulation(spec).run()")

        # 4. single-flight: resubmitting attaches to the finished job
        again = client.submit(SPEC)
        stats = client.stats()
        print(
            f"resubmitted: deduped={again['deduped']}, same job={again['job_id'] == job_id}; "
            f"server ran {stats['simulations_run']} simulation(s) for "
            f"{stats['submissions'] + stats['deduped_submissions']} submissions"
        )


if __name__ == "__main__":
    main()
