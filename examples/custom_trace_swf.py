"""Ingesting real traces: SWF round-trip, cleaning, and scheduling.

Run with::

    python examples/custom_trace_swf.py

The paper evaluates cleaned Parallel Workload Archive logs in Standard
Workload Format.  This example shows the full ingestion path a user
with a real ``.swf`` file would take:

1. write a synthetic trace out as SWF (stand-in for a downloaded log),
2. corrupt it with a per-user flurry, as raw archive logs contain,
3. read it back, clean it, and simulate it power-aware.
"""

import os
import tempfile
from dataclasses import replace

from repro import (
    BsldThresholdPolicy,
    EasyBackfilling,
    FixedGearPolicy,
    Machine,
    load_workload,
)
from repro.workloads.cleaning import FlurryFilter, remove_flurries
from repro.workloads.swf import read_swf, write_swf

N_JOBS = 800


def main() -> None:
    jobs = load_workload("SDSC", n_jobs=N_JOBS)

    # Inject a flurry: one user hammering 120 near-identical submissions.
    flurry_user = 9999
    last = jobs[-1]
    flurry = [
        replace(
            last,
            job_id=last.job_id + index + 1,
            submit_time=last.submit_time + 5.0 * index,
            runtime=90.0,
            requested_time=900.0,
            size=4,
            user_id=flurry_user,
        )
        for index in range(120)
    ]
    raw = jobs + flurry

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "sdsc_raw.swf")
        write_swf(path, raw, max_procs=128, extra_header={"Origin": "example"})
        header, parsed = read_swf(path)
        print(f"read {len(parsed)} jobs back from {path}")
        print(f"header MaxProcs: {header.max_procs}")

        cleaned = remove_flurries(parsed, FlurryFilter(max_burst=20, keep_every=10))
        dropped = len(parsed) - len(cleaned)
        print(f"flurry filter dropped {dropped} jobs "
              f"({sum(1 for j in parsed if j.user_id == flurry_user)} were the flurry)")

        machine = Machine("SDSC", total_cpus=header.max_procs or 128)
        baseline = EasyBackfilling(machine, FixedGearPolicy()).run(cleaned)
        powered = EasyBackfilling(machine, BsldThresholdPolicy(2.0, 4)).run(cleaned)
        print()
        print("baseline   :", baseline.describe())
        print("power-aware:", powered.describe())
        ratio = powered.energy.computational / baseline.energy.computational
        print(f"computational energy: {1 - ratio:.1%} saved")


if __name__ == "__main__":
    main()
