"""Parallel parameter sweep with BatchRunner and the on-disk result cache.

Run with::

    python examples/parallel_sweep.py

Fans the paper's Figure 3-5 threshold grid for two workloads out over
worker processes, caches every result as JSON under ``.repro-cache``
(rerunning the script is instant), and prints the energy/BSLD trade-off
per configuration.  Deleting ``.repro-cache`` resets the cache.
"""

import time

from repro import BatchRunner, PolicySpec, RunSpec

N_JOBS = 1000
WORKLOADS = ("CTC", "SDSCBlue")
BSLD_THRESHOLDS = (1.5, 2.0, 3.0)
WQ_THRESHOLDS = (0, 4, 16, None)


def main() -> None:
    baselines = [RunSpec(workload=w, n_jobs=N_JOBS) for w in WORKLOADS]
    grid = [
        RunSpec(workload=w, n_jobs=N_JOBS, policy=PolicySpec.power_aware(bsld, wq))
        for w in WORKLOADS
        for bsld in BSLD_THRESHOLDS
        for wq in WQ_THRESHOLDS
    ]

    runner = BatchRunner(max_workers=4, cache_dir=".repro-cache")
    started = time.perf_counter()
    results = runner.run([*baselines, *grid])
    elapsed = time.perf_counter() - started
    print(
        f"{len(results)} runs in {elapsed:.1f}s "
        f"({runner.cache_hits} from cache, {runner.cache_misses} simulated)\n"
    )

    base_by_workload = dict(zip(WORKLOADS, results[: len(baselines)], strict=True))
    print(f"{'run':28s} {'avg BSLD':>9s} {'E_idle0/base':>13s} {'reduced':>8s}")
    for spec, result in zip(grid, results[len(baselines):], strict=True):
        base = base_by_workload[spec.workload]
        ratio = result.energy.computational / base.energy.computational
        print(
            f"{spec.label():28s} {result.average_bsld():9.2f} "
            f"{ratio:13.3f} {result.reduced_jobs:8d}"
        )


if __name__ == "__main__":
    main()
