"""Fault-tolerant parallel sweep with checkpoint/resume and retries.

Run with::

    python examples/parallel_sweep.py

Fans the paper's Figure 3-5 threshold grid for two workloads out over
worker processes as a *crash-safe sweep*: every finished run is cached
as JSON under ``.repro-cache``, per-spec status is journaled to
``.repro-sweep.jsonl``, a failing run is retried (``on_error="retry"``)
instead of aborting the grid, and rerunning the script resumes from
whatever already completed — kill it mid-sweep and run it again to see
only the remaining specs simulate.  Results are kept in aggregates-only
mode (headline metrics, no per-job outcomes), which is what lets sweeps
this shape scale to fleet size without exhausting memory.  Deleting
``.repro-cache`` and ``.repro-sweep.jsonl`` resets everything.
"""

import os
import time

from repro import PolicySpec, RunSpec, run_sweep

N_JOBS = 1000
WORKLOADS = ("CTC", "SDSCBlue")
BSLD_THRESHOLDS = (1.5, 2.0, 3.0)
WQ_THRESHOLDS = (0, 4, 16, None)
MANIFEST = ".repro-sweep.jsonl"


def main() -> None:
    baselines = [RunSpec(workload=w, n_jobs=N_JOBS) for w in WORKLOADS]
    grid = [
        RunSpec(workload=w, n_jobs=N_JOBS, policy=PolicySpec.power_aware(bsld, wq))
        for w in WORKLOADS
        for bsld in BSLD_THRESHOLDS
        for wq in WQ_THRESHOLDS
    ]

    started = time.perf_counter()
    report = run_sweep(
        [*baselines, *grid],
        manifest_path=MANIFEST,
        cache_dir=".repro-cache",
        resume=os.path.exists(MANIFEST),  # second invocation picks up the journal
        max_workers=4,
        aggregates_only=True,
        on_error="retry",  # a flaky spec is re-run (twice) before being skipped
        retries=2,
    )
    elapsed = time.perf_counter() - started
    print(
        f"{report.total} unique runs in {elapsed:.1f}s "
        f"({report.skipped} resumed from cache, {report.completed} simulated, "
        f"{len(report.failures)} failed)\n"
    )

    base_by_workload = dict(zip(WORKLOADS, report.results[: len(baselines)], strict=True))
    print(f"{'run':28s} {'avg BSLD':>9s} {'E_idle0/base':>13s} {'reduced':>8s}")
    for spec, result in zip(grid, report.results[len(baselines):], strict=True):
        base = base_by_workload[spec.workload]
        if result is None or base is None:
            print(f"{spec.label():28s} {'FAILED':>9s}")
            continue
        ratio = result.energy.computational / base.energy.computational
        print(
            f"{spec.label():28s} {result.average_bsld():9.2f} "
            f"{ratio:13.3f} {result.reduced_jobs:8d}"
        )
    for failure in report.failures:
        print(f"\nFAILED after {failure.attempts} attempts: "
              f"{failure.spec.label()} — {failure.error}")


if __name__ == "__main__":
    main()
