"""Runtime power capping: force lower gears when the machine runs hot.

Run with::

    python examples/power_capping.py

The paper's policy decides gears at *submit* time; production resource
managers additionally enforce *runtime* power caps (cf. Eco-Mode and
SleepScale).  This example measures the no-DVFS peak power of an SDSC
segment, then re-runs the identical trace with a ``power_cap``
controller instrument holding the machine at 80% of that peak: whenever
sampled instantaneous power exceeds the cap, the controller ratchets a
machine-wide gear cap downwards (future job starts only — jobs already
running keep their gears), and relaxes it once power falls back below
the hysteresis band.  The controller is pure spec data, so the capped
scenario caches, sweeps and serialises like any other run.
"""

from repro import InstrumentSpec, RunSpec, Simulation

N_JOBS = 1500
CAP_FRACTION = 0.8


def main() -> None:
    base = RunSpec(workload="SDSC", n_jobs=N_JOBS)

    # Pass 1: measure the uncapped peak.
    telemetry = Simulation(
        base.with_instruments(InstrumentSpec.of("power_telemetry"))
    ).run()
    peak = telemetry.instrument("power_telemetry")["peak_watts"]
    cap = CAP_FRACTION * peak
    print(f"uncapped peak power: {peak:.1f} model-watts -> cap at {cap:.1f}")

    # Pass 2: identical trace under the cap controller.
    capped = Simulation(
        base.with_instruments(
            InstrumentSpec.of("power_cap", cap=cap, release=0.9),
            InstrumentSpec.of("power_telemetry"),
        )
    ).run()
    report = capped.instrument("power_cap")

    print()
    print("uncapped:", telemetry.describe())
    print("capped  :", capped.describe())
    print()
    print(f"gear reductions       : {report['reductions']}")
    print(f"cap transitions       : {len(report['transitions'])}")
    print(f"time spent capped     : {report['time_capped']:.0f} s")
    print(f"jobs at reduced freq  : {capped.reduced_jobs} of {capped.job_count}")
    energy_ratio = capped.energy.total_idle_low / telemetry.energy.total_idle_low
    print(f"energy (idle=low)     : {energy_ratio:.3f} of uncapped")
    print(f"avg BSLD              : {telemetry.average_bsld():.2f} -> {capped.average_bsld():.2f}")

    print("\nfirst cap transitions (time, sampled watts, new gear cap):")
    for time, watts, frequency in report["transitions"][:8]:
        label = "lifted" if frequency is None else f"{frequency:g} GHz"
        print(f"  t={time:>10.0f}  {watts:>7.1f} W  -> {label}")


if __name__ == "__main__":
    main()
