"""Chaos drill: injected faults, then a SIGKILL, survived on purpose.

Run with::

    python examples/chaos_drill.py

Two acts, both deterministic:

1. **Scripted fault injection.**  A serializable
   :class:`~repro.faults.FaultPlan` crashes the daemon's worker on the
   first simulation slice.  The submission fails with a *structured*
   error (code, message, released quota slot) — and because the fault
   is count-triggered, the very next submission of the same spec runs
   clean and produces bytes identical to an undisturbed in-process run.

2. **The SIGKILL drill.**  A real ``repro-sim serve`` subprocess gets
   ``kill -9`` mid-simulation — no drain, no shutdown hook, nothing.
   Its crash-consistent run journal (an append-only JSONL file beside
   the result cache) still knows the job was admitted, so a fresh
   daemon started over the same ``--cache-dir`` re-admits it under its
   original id and finishes it byte-identically.
"""

import os
import re
import signal
import subprocess
import sys
import tempfile
import time

from repro import ReproServer, RunSpec, ServeClient, Simulation
from repro.faults import FaultPlan, FaultRule, injected
from repro.serialize import result_to_dict
from repro.serve.server import canonical_result_bytes

SPEC = RunSpec(workload="SDSC", n_jobs=200, seed=7)
#: Long enough (with small slices) that SIGKILL lands mid-run.
KILL_SPEC = RunSpec(workload="SDSC", n_jobs=4000, seed=1)


def act_one_scripted_faults() -> None:
    print("— act 1: scripted fault injection —")
    plan = FaultPlan.of(FaultRule("worker.slice", "crash", at=1))
    print(f"plan: {plan.to_json()}")

    expected = canonical_result_bytes(result_to_dict(Simulation(SPEC).run()))
    with injected(plan) as injector:
        with ReproServer() as server:
            client = ServeClient(server.address)

            job_id = client.submit(SPEC)["job_id"]
            failed = client.wait(job_id)
            error = failed["error"]
            print(
                f"{job_id} under fault: state={failed['state']} "
                f"error.code={error['code']!r}"
            )
            assert failed["state"] == "failed"
            assert injector.fired, "the scripted fault went off"
            assert server.stats()["inflight"] == {}, "quota slot released"

            # The fault was the *first* slice only; resubmission heals.
            retry_id = client.submit(SPEC)["job_id"]
            client.wait(retry_id)
            assert client.result_bytes(retry_id) == expected
            print(f"resubmitted as {retry_id}: byte-identical result, daemon healed")


def spawn_daemon(cache_dir: str) -> tuple[subprocess.Popen, str]:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "--cache-dir", cache_dir,
         "serve", "--port", "0", "--slice-events", "500"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(f"daemon died during startup (rc={process.poll()})")
        match = re.search(r"listening on (\S+:\d+)", line)
        if match:
            return process, match.group(1)


def act_two_sigkill_drill() -> None:
    print("— act 2: SIGKILL and recover —")
    with tempfile.TemporaryDirectory(prefix="chaos-drill-") as cache_dir:
        first, address = spawn_daemon(cache_dir)
        client = ServeClient(address)
        job_id = client.submit(KILL_SPEC)["job_id"]
        while client.status(job_id)["state"] == "queued":
            time.sleep(0.05)
        first.kill()  # SIGKILL: the journal gets no goodbye
        first.wait()
        print(f"daemon SIGKILLed with {job_id} mid-simulation")

        second, address = spawn_daemon(cache_dir)
        try:
            client = ServeClient(address)
            status = client.status(job_id)
            print(
                f"restarted daemon over the same cache dir: {job_id} is "
                f"{status['state']} (recovered={status['recovered']})"
            )
            final = client.wait(job_id, timeout=120.0)
            assert final["state"] == "done", final
            fetched = client.result_bytes(job_id)
            expected = canonical_result_bytes(
                result_to_dict(Simulation(KILL_SPEC).run())
            )
            assert fetched == expected
            print(
                f"recovered {job_id} finished byte-identical to an in-process "
                f"run ({len(fetched)} bytes)"
            )
        finally:
            second.send_signal(signal.SIGINT)
            second.wait(timeout=15)


def main() -> None:
    act_one_scripted_faults()
    act_two_sigkill_drill()
    print("chaos drill complete: every fault was survived deterministically")


if __name__ == "__main__":
    main()
