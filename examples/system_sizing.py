"""System-dimensioning study (the paper's §5.2) on one workload.

Run with::

    python examples/system_sizing.py [workload]

Replays the same trace on machines enlarged by up to 125% under the
power-aware scheduler and answers the paper's question: can a bigger
DVFS cluster execute the same load with *less* energy and *better*
job performance than the original cluster at full speed?
"""

import sys

from repro.experiments import ExperimentRunner, SIZE_FACTORS
from repro.experiments.ascii_charts import format_table
from repro.workloads.models import WORKLOAD_NAMES

N_JOBS = 2000
BSLD_THRESHOLD = 2.0


def main(workload: str = "SDSCBlue") -> None:
    if workload not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {workload!r}; pick one of {WORKLOAD_NAMES}")
    runner = ExperimentRunner(n_jobs=N_JOBS)
    baseline = runner.baseline(workload)
    base_bsld = baseline.average_bsld()

    rows = []
    crossover: float | None = None
    for factor in SIZE_FACTORS:
        run = runner.power_aware(workload, BSLD_THRESHOLD, None, size_factor=factor)
        e0 = run.energy.computational / baseline.energy.computational
        elow = run.energy.total_idle_low / baseline.energy.total_idle_low
        bsld = run.average_bsld()
        if crossover is None and bsld <= base_bsld:
            crossover = factor
        rows.append(
            [f"+{(factor - 1) * 100:.0f}%", e0, elow, bsld, run.average_wait()]
        )

    print(
        f"workload: {workload} ({N_JOBS} jobs), power-aware DVFS({BSLD_THRESHOLD:g}, NO); "
        f"original no-DVFS avg BSLD {base_bsld:.2f}\n"
    )
    print(
        format_table(
            ["size", "energy idle0", "energy idlelow", "avg BSLD", "avg wait [s]"],
            rows,
            title="enlarged DVFS systems, normalized to the original no-DVFS run",
        )
    )
    print()
    if crossover is not None:
        print(
            f"=> a {(crossover - 1) * 100:.0f}% larger DVFS system already beats the "
            f"original machine's job performance while saving energy."
        )
    else:
        print("=> performance parity not reached within +125% for this workload")
    print("=> note the idle=low column: past some size, extra idle processors "
          "erase the savings (the paper's crossover).")


if __name__ == "__main__":
    main(*sys.argv[1:2])
