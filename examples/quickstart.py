"""Quickstart: schedule one workload with and without power awareness.

Run with::

    python examples/quickstart.py

Describes two runs as :class:`~repro.RunSpec` values — one with every
job at the top gear (the paper's baseline) and one under the
BSLD-threshold frequency policy — materialises them through the
:class:`~repro.Simulation` facade, and prints the energy/performance
trade-off that is the heart of the paper.
"""

from repro import PolicySpec, RunSpec, Simulation

N_JOBS = 1500


def main() -> None:
    baseline = Simulation(RunSpec(workload="CTC", n_jobs=N_JOBS)).run()
    power_aware = Simulation(
        RunSpec(
            workload="CTC",
            n_jobs=N_JOBS,
            policy=PolicySpec.power_aware(2.0, 4),  # BSLDth=2, WQth=4
        )
    ).run()

    print("no DVFS   :", baseline.describe())
    print("power-aware:", power_aware.describe())
    print()

    for scenario, label in (("idle0", "computational energy"), ("idlelow", "energy (idle=low)")):
        ratio = power_aware.energy.by_scenario(scenario) / baseline.energy.by_scenario(scenario)
        print(f"{label:22s}: {1.0 - ratio:6.1%} saved")
    print(f"{'average BSLD':22s}: {baseline.average_bsld():.2f} -> {power_aware.average_bsld():.2f}")
    print(f"{'average wait':22s}: {baseline.average_wait():.0f}s -> {power_aware.average_wait():.0f}s")
    print(f"{'jobs at reduced freq':22s}: {power_aware.reduced_jobs} of {power_aware.job_count}")

    print("\ngear histogram (power-aware):")
    for gear, count in sorted(power_aware.gear_histogram().items()):
        print(f"  {gear.frequency:>4.1f} GHz @ {gear.voltage:.1f} V : {count:5d} jobs")


if __name__ == "__main__":
    main()
