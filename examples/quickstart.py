"""Quickstart: schedule one workload with and without power awareness.

Run with::

    python examples/quickstart.py

Generates a 1500-job synthetic CTC trace, schedules it twice under EASY
backfilling — once with every job at the top gear (the paper's
baseline) and once with the BSLD-threshold frequency policy — and
prints the energy/performance trade-off that is the heart of the paper.
"""

from repro import (
    BsldThresholdPolicy,
    EasyBackfilling,
    FixedGearPolicy,
    Machine,
    load_workload,
)

N_JOBS = 1500


def main() -> None:
    jobs = load_workload("CTC", n_jobs=N_JOBS)
    machine = Machine("CTC", total_cpus=430)

    baseline = EasyBackfilling(machine, FixedGearPolicy()).run(jobs)
    power_aware = EasyBackfilling(
        machine,
        BsldThresholdPolicy(bsld_threshold=2.0, wq_threshold=4),
    ).run(jobs)

    print("no DVFS   :", baseline.describe())
    print("power-aware:", power_aware.describe())
    print()

    for scenario, label in (("idle0", "computational energy"), ("idlelow", "energy (idle=low)")):
        ratio = power_aware.energy.by_scenario(scenario) / baseline.energy.by_scenario(scenario)
        print(f"{label:22s}: {1.0 - ratio:6.1%} saved")
    print(f"{'average BSLD':22s}: {baseline.average_bsld():.2f} -> {power_aware.average_bsld():.2f}")
    print(f"{'average wait':22s}: {baseline.average_wait():.0f}s -> {power_aware.average_wait():.0f}s")
    print(f"{'jobs at reduced freq':22s}: {power_aware.reduced_jobs} of {power_aware.job_count}")

    print("\ngear histogram (power-aware):")
    for gear, count in sorted(power_aware.gear_histogram().items()):
        print(f"  {gear.frequency:>4.1f} GHz @ {gear.voltage:.1f} V : {count:5d} jobs")


if __name__ == "__main__":
    main()
