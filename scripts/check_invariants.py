"""Run the repo's determinism & invariant analysis suite.

Usage::

    PYTHONPATH=src python scripts/check_invariants.py
    PYTHONPATH=src python scripts/check_invariants.py --update-snapshot
    PYTHONPATH=src python scripts/check_invariants.py --github-summary

Layers run (see :mod:`repro.analysis`): the custom AST lint rules over
the engine core and the codec/cache-key/schema-snapshot consistency
checks.  Exit status is non-zero when any finding survives, so CI can
gate on it; ``--github-summary`` additionally appends a markdown table
to ``$GITHUB_STEP_SUMMARY`` when that file is available.

``--update-snapshot`` regenerates ``repro/analysis/schema_snapshot.json``
after a deliberate serialized-surface change; it refuses to run unless
``FORMAT_VERSION`` was bumped past the committed snapshot's version.
"""

import argparse
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.consistency import run_consistency, update_snapshot  # noqa: E402
from repro.analysis.lints import RULE_DOCS, run_lints  # noqa: E402

PACKAGE_ROOT = REPO_ROOT / "src" / "repro"


def github_summary(findings) -> None:
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = ["## Invariant analysis", ""]
    if not findings:
        lines.append("No findings — all determinism invariants hold.")
    else:
        lines += [
            f"**{len(findings)} finding(s)**",
            "",
            "| Rule | Location | Message |",
            "| --- | --- | --- |",
        ]
        lines += [
            f"| `{f.rule}` | `{f.path}:{f.line}` | {f.message} |" for f in findings
        ]
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update-snapshot",
        action="store_true",
        help="regenerate repro/analysis/schema_snapshot.json (requires a "
        "FORMAT_VERSION bump when the field set changed)",
    )
    parser.add_argument(
        "--github-summary",
        action="store_true",
        help="append a findings table to $GITHUB_STEP_SUMMARY if set",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="alternate package root to lint (AST rules only; used by the "
        "seeded-violation fixture tests under tests/analysis/fixtures)",
    )
    args = parser.parse_args(argv)

    if args.update_snapshot:
        path, written = update_snapshot(PACKAGE_ROOT)
        if not written:
            print(
                "refusing to update the schema snapshot: the serialized field "
                "set changed but FORMAT_VERSION was not bumped past the "
                "committed snapshot's version. Bump FORMAT_VERSION in "
                "src/repro/serialize.py first.",
                file=sys.stderr,
            )
            return 1
        print(f"schema snapshot written: {path.relative_to(REPO_ROOT)}")
        return 0

    if args.root is not None:
        # Fixture mode: the AST rules run over an arbitrary mini-package;
        # the codec/snapshot consistency layer is tied to the real repo.
        findings = run_lints(args.root)
    else:
        findings = run_lints(PACKAGE_ROOT) + run_consistency(PACKAGE_ROOT)
    for finding in findings:
        print(finding)
    if args.github_summary:
        github_summary(findings)
    if findings:
        print(f"\n{len(findings)} finding(s).", file=sys.stderr)
        return 1
    checked = [*sorted(RULE_DOCS), "codec-field", "cache-key-chain", "schema-snapshot"]
    print(f"invariant analysis clean ({len(checked)} rules: {', '.join(checked)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
