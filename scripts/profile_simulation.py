"""Profile a full-scale simulation (the guide's measure-first workflow).

Usage::

    python scripts/profile_simulation.py [workload] [n_jobs]

Prints the cProfile hot spots of one baseline + one power-aware run.
Use this before optimising anything in the scheduler hot path.
"""

import cProfile
import pstats
import sys

from repro import BsldThresholdPolicy, EasyBackfilling, FixedGearPolicy, Machine, load_workload
from repro.workloads.models import trace_model


def main(workload: str = "SDSC", n_jobs: int = 5000) -> None:
    jobs = load_workload(workload, n_jobs)
    machine = Machine(workload, trace_model(workload).cpus)

    for label, policy in (
        ("baseline (no DVFS)", FixedGearPolicy()),
        ("power-aware DVFS(2, NO)", BsldThresholdPolicy(2.0, None)),
    ):
        print(f"=== {label}: {workload}, {n_jobs} jobs " + "=" * 30)
        profiler = cProfile.Profile()
        profiler.enable()
        EasyBackfilling(machine, policy).run(jobs)
        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(12)


if __name__ == "__main__":
    workload = sys.argv[1] if len(sys.argv) > 1 else "SDSC"
    n_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 5000
    main(workload, n_jobs)
