"""Profile a full-scale simulation (the guide's measure-first workflow).

Usage::

    python scripts/profile_simulation.py [workload] [n_jobs]

Prints the cProfile hot spots of one baseline + one power-aware run.
Use this before optimising anything in the scheduler hot path.

Runs are constructed through the :class:`repro.api.Simulation` facade —
the same registry-driven path the CLI, the experiment runner and the
batch runner use — so the profile reflects exactly the code users run.
Workload materialisation happens outside the profiled region; only the
scheduler hot path is measured.
"""

import cProfile
import pstats
import sys

from repro.api import Simulation
from repro.experiments.config import PolicySpec, RunSpec


def main(workload: str = "SDSC", n_jobs: int = 5000) -> None:
    for label, policy in (
        ("baseline (no DVFS)", PolicySpec.baseline()),
        ("power-aware DVFS(2, NO)", PolicySpec.power_aware(2.0, None)),
    ):
        simulation = Simulation(RunSpec(workload=workload, n_jobs=n_jobs, policy=policy))
        jobs = simulation.jobs  # materialise the trace outside the profile
        scheduler = simulation.build_scheduler()
        print(f"=== {label}: {workload}, {n_jobs} jobs " + "=" * 30)
        profiler = cProfile.Profile()
        profiler.enable()
        scheduler.run(jobs)
        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(12)


if __name__ == "__main__":
    workload = sys.argv[1] if len(sys.argv) > 1 else "SDSC"
    n_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 5000
    main(workload, n_jobs)
