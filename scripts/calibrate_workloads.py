"""Calibrate each TraceModel's utilization knob against Table 1 avg BSLD.

Bisection on utilization_override: baseline (no-DVFS EASY) average BSLD
is monotone-increasing in offered load in the regimes of interest.
Prints the utilization to bake into repro/workloads/models.py.
"""

import sys

from repro import EasyBackfilling, FixedGearPolicy, Machine
from repro.workloads.generator import generate_workload
from repro.workloads.models import PAPER_BASELINE_BSLD, TRACE_MODELS

N_JOBS = 5000


def baseline_bsld(model, utilization):
    jobs = generate_workload(model, N_JOBS, utilization_override=utilization)
    machine = Machine(model.name, model.cpus)
    return EasyBackfilling(machine, FixedGearPolicy()).run(jobs).average_bsld()


def calibrate(name, lo=0.15, hi=1.25, iters=14):
    model = TRACE_MODELS[name]
    target = PAPER_BASELINE_BSLD[name]
    flo, fhi = baseline_bsld(model, lo), baseline_bsld(model, hi)
    print(f"{name}: target {target}; bsld({lo})={flo:.2f} bsld({hi})={fhi:.2f}", flush=True)
    if flo >= target:
        return lo, flo
    best = (hi, fhi)
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        fmid = baseline_bsld(model, mid)
        print(f"  util={mid:.4f} -> bsld={fmid:.3f}", flush=True)
        if abs(fmid - target) < abs(best[1] - target):
            best = (mid, fmid)
        if fmid < target:
            lo = mid
        else:
            hi = mid
    return best


if __name__ == "__main__":
    names = sys.argv[1:] or list(TRACE_MODELS)
    for name in names:
        util, bsld = calibrate(name)
        print(f"==> {name}: utilization={util:.4f} gives baseline avg BSLD {bsld:.3f} "
              f"(paper {PAPER_BASELINE_BSLD[name]})", flush=True)
