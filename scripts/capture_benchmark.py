"""Capture simulation-core throughput into a committed benchmark record.

Usage::

    python scripts/capture_benchmark.py                      # full capture
    python scripts/capture_benchmark.py --scales 1000,5000   # quicker CI run
    python scripts/capture_benchmark.py --output BENCH_5.json

Measures jobs/second of the scheduler hot path through the
:class:`repro.api.Simulation` facade for every (workload, scale,
policy) combination — the calibrated paper traces at ``--scales`` plus
the ``synthetic-xl`` scale-out traces at ``--xl-scales`` (the
million-job regime) — and end-to-end :class:`repro.batch.BatchRunner`
throughput over the standard grid.  Each cell also records its peak
simulation memory: ``tracemalloc`` distorts timing, so the peak is
taken from one *extra* untimed run, and the process-wide ``ru_maxrss``
high-water mark is snapshotted per cell (monotonic across the
capture).  Trace generation happens outside the timed region and is
memoised on disk when ``REPRO_WORKLOAD_CACHE_DIR`` is set; each serial
cell reports the best of ``--repeat`` runs, timed in interleaved
rounds across cells so one host-load phase cannot bias a single cell
(see :class:`SerialCell`).

The committed ``BENCH_5.json`` at the repository root is the perf
trajectory record for this PR; regenerate it on comparable hardware
before claiming a speedup or a regression.  ``--floor`` exits non-zero
if any serial cell falls below the given jobs/s (the CI large-scale
job prints the floor check into its summary).

The batch-RSS rows compare the parent-process peak RSS of a sweep
collecting *full* results against the same sweep in *aggregates-only*
mode.  ``ru_maxrss`` is a monotonic process-wide high-water mark, so
the two modes cannot share a process: each runs in its own child
interpreter (the hidden ``--_rss-probe`` mode) and reports its peak
back as JSON.  ``--rss-ratio-min`` turns the full/aggregates ratio
into a pass/fail check.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import time
import tracemalloc
from datetime import datetime, timezone

from repro.api import Simulation
from repro.batch import BatchRunner
from repro.cluster.power import SleepPolicy
from repro.experiments.config import PolicySpec, RunSpec
from repro.serialize import SpecValidationError
from repro.sim.lanes import check_engine_name

POLICIES: tuple[tuple[str, PolicySpec], ...] = (
    ("nodvfs", PolicySpec.baseline()),
    ("dvfs(2,NO)", PolicySpec.power_aware(2.0, None)),
)

#: The in-engine node-sleep cell configuration (default preset).
SLEEP_POLICY = SleepPolicy()


def max_rss_mb() -> float:
    """Process high-water RSS in MiB.

    Prefers ``VmHWM`` from ``/proc/self/status`` over ``ru_maxrss``:
    Linux carries ``ru_maxrss`` across ``execve`` (it lives outside the
    replaced address space), so a child spawned from a large parent —
    exactly what the batch-RSS probe children are — would report the
    parent's peak instead of its own.  ``VmHWM`` is reset at exec.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


class SerialCell:
    """One (workload, scale, policy, engine) measurement, repeated best-of.

    Cells are timed in *interleaved rounds* — round 1 of every cell,
    then round 2, and so on — so each cell's best-of window spans the
    whole capture instead of one contiguous slice of wall time.  On
    shared/virtualised hardware that makes the per-cell best far less
    hostage to which host-load phase its slot happened to land in.
    One extra untimed run under ``tracemalloc`` records the peak
    Python-heap footprint of the simulation structures, per cell — so
    per *lane*: the columnar core's array-backed result store shows up
    here as a much smaller peak than the reference's per-job
    dataclasses at the same scale.

    Execution goes through the named engine lane
    (:meth:`repro.api.Simulation.run`), so each lane's row measures the
    code path users of that lane actually get; trace materialisation
    stays outside the timed region.
    """

    def __init__(self, workload: str, n_jobs: int, label: str, policy: PolicySpec,
                 repeat: int, source: str = "synthetic",
                 sleep: SleepPolicy | None = None, engine: str = "reference") -> None:
        self.workload = workload
        self.n_jobs = n_jobs
        self.label = label
        self.repeat = repeat
        self.source = source
        self.engine = engine
        self.best = float("inf")
        spec = RunSpec(workload=workload, n_jobs=n_jobs, policy=policy, source=source,
                       sleep=sleep, engine=engine)
        self.simulation = Simulation(spec)
        load_start = time.perf_counter()
        self.jobs = self.simulation.jobs  # materialise outside the timed region
        self.load_seconds = time.perf_counter() - load_start

    def run_once(self) -> None:
        simulation = self.simulation
        start = time.perf_counter()
        simulation.run()
        self.best = min(self.best, time.perf_counter() - start)

    def finish(self) -> dict:
        tracemalloc.start()
        self.simulation.run()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return {
            "workload": self.workload,
            "source": self.source,
            "n_jobs": self.n_jobs,
            "policy": self.label,
            "engine": self.engine,
            "mode": "serial",
            "seconds": round(self.best, 4),
            "jobs_per_sec": round(self.n_jobs / self.best, 1),
            "load_seconds": round(self.load_seconds, 4),
            "peak_mem_mb": round(peak / (1024 * 1024), 1),
            "max_rss_mb": round(max_rss_mb(), 1),
        }


def measure_serial_cells(cells: list[SerialCell]) -> list[dict]:
    """Time every cell in interleaved rounds, then take the memory pass."""
    rounds = max((cell.repeat for cell in cells), default=0)
    for round_index in range(rounds):
        for cell in cells:
            if round_index < cell.repeat:
                cell.run_once()
    results = []
    for cell in cells:
        result = cell.finish()
        results.append(result)
        print_cell(result)
    return results


def measure_batch(workloads: list[str], scales: list[int], workers: int) -> dict:
    """End-to-end BatchRunner wall time over the whole grid (no cache)."""
    specs = [
        RunSpec(workload=workload, n_jobs=n_jobs, policy=policy)
        for workload in workloads
        for n_jobs in scales
        for _, policy in POLICIES
    ]
    total_jobs = sum(spec.n_jobs for spec in specs)
    runner = BatchRunner(max_workers=workers)
    start = time.perf_counter()
    runner.run(specs)
    elapsed = time.perf_counter() - start
    return {
        "mode": "batch-serial" if workers <= 1 else "batch-parallel",
        "workers": workers,
        "runs": len(specs),
        "total_jobs": total_jobs,
        "seconds": round(elapsed, 4),
        "jobs_per_sec": round(total_jobs / elapsed, 1),
        "max_rss_mb": round(max_rss_mb(), 1),
    }


def _rss_probe_specs(workload: str, n_jobs: int) -> list[RunSpec]:
    """Six policy variants over ONE trace (same workload/n_jobs/seed).

    Varying only the policy keeps the parent's trace materialisation —
    identical in both probe modes — down to a single workload, so the
    full/aggregates RSS ratio reflects result retention, not trace count.
    """
    return [
        RunSpec(workload=workload, n_jobs=n_jobs,
                policy=PolicySpec.power_aware(bsld, wq))
        for bsld in (1.5, 2.0, 3.0)
        for wq in (0, None)
    ]


def run_rss_probe(mode: str, workload: str, n_jobs: int, workers: int) -> int:
    """Child-process half of the batch-RSS measurement; prints JSON."""
    specs = _rss_probe_specs(workload, n_jobs)
    runner = BatchRunner(max_workers=workers, aggregates_only=(mode == "aggregates"))
    start = time.perf_counter()
    results = runner.run(specs)
    elapsed = time.perf_counter() - start
    assert all(result is not None for result in results)
    print(json.dumps({
        "mode": mode,
        "runs": len(results),
        "seconds": round(elapsed, 4),
        "max_rss_mb": round(max_rss_mb(), 1),
    }))
    return 0


def measure_batch_rss(workload: str, n_jobs: int, workers: int) -> list[dict]:
    """Peak parent RSS of full vs aggregates-only sweeps, isolated per mode."""
    import subprocess

    rows = []
    for mode in ("full", "aggregates"):
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--_rss-probe", mode,
             "--rss-workload", workload, "--rss-scale", str(n_jobs),
             "--parallel", str(workers)],
            capture_output=True, text=True, check=True,
        )
        row = json.loads(proc.stdout.strip().splitlines()[-1])
        row.update({"workload": workload, "n_jobs": n_jobs, "workers": workers})
        rows.append(row)
        print(f"{'batch-rss/' + mode:>25} ({workload}x{n_jobs}, {row['runs']} runs) "
              f"{row['seconds']:>8.3f}s  peak RSS {row['max_rss_mb']:>8.1f} MiB")
    return rows


def print_cell(cell: dict) -> None:
    print(f"{cell['workload']:>12} x {cell['n_jobs']:>7} {cell['policy']:<12} "
          f"[{cell['source']}/{cell['engine']}] {cell['seconds']:>8.3f}s  "
          f"{cell['jobs_per_sec']:>10.0f} jobs/s  "
          f"peak {cell['peak_mem_mb']:>7.1f} MiB")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", default="SDSC,CTC",
                        help="comma-separated workload names (default: SDSC,CTC)")
    parser.add_argument("--scales", default="5000,50000,200000",
                        help="calibrated-trace lengths (default: 5000,50000,200000)")
    parser.add_argument("--xl-workloads", default="SDSC",
                        help="scale-out workload names (default: SDSC)")
    parser.add_argument("--xl-scales", default="5000,1000000",
                        help="synthetic-xl trace lengths (default: 5000,1000000; "
                             "empty string skips the scale-out rows)")
    parser.add_argument("--xl-repeat", type=int, default=1,
                        help="timing repeats for scale-out cells (default: 1)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="serial timing repeats, best-of (default: 3)")
    parser.add_argument("--engines", default="reference,columnar",
                        help="engine lanes to measure per serial cell "
                             "(default: reference,columnar; lanes that are "
                             "unavailable here are skipped with a notice)")
    parser.add_argument("--columnar-floor", type=float, default=None, metavar="JOBS_PER_SEC",
                        help="fail (exit 1) if the fastest columnar-lane serial "
                             "cell is below this jobs/s")
    parser.add_argument("--parallel", type=int, default=min(4, os.cpu_count() or 1),
                        help="worker processes for the parallel batch cell")
    parser.add_argument("--batch-scales", default="5000,50000",
                        help="trace lengths for the batch cells (default: 5000,50000)")
    parser.add_argument("--skip-batch", action="store_true",
                        help="measure only the serial cells")
    parser.add_argument("--floor", type=float, default=None,
                        help="fail (exit 1) if any serial cell is below this jobs/s")
    parser.add_argument("--sleep-workload", default="SDSC",
                        help="workload for the in-engine node-sleep cell "
                             "(default: SDSC; empty string skips it)")
    parser.add_argument("--sleep-scale", type=int, default=50000,
                        help="trace length for the node-sleep cell (default: 50000)")
    parser.add_argument("--sleep-overhead-max", type=float, default=None, metavar="PCT",
                        help="fail (exit 1) if the sleep subsystem costs more than "
                             "PCT%% throughput: the sleep-enabled cell is compared "
                             "against its sleep-disabled twin (with sleep disabled "
                             "the subsystem is bypassed entirely, so the disabled "
                             "twin doubles as the no-subsystem reference)")
    parser.add_argument("--rss-workload", default="SDSC",
                        help="workload for the batch-RSS probe (default: SDSC; "
                             "empty string skips it)")
    parser.add_argument("--rss-scale", type=int, default=200000,
                        help="trace length for the batch-RSS probe (default: 200000)")
    parser.add_argument("--rss-ratio-min", type=float, default=None, metavar="X",
                        help="fail (exit 1) if aggregates-only mode cuts batch "
                             "peak RSS by less than X times")
    parser.add_argument("--_rss-probe", choices=("full", "aggregates"), default=None,
                        help=argparse.SUPPRESS)  # internal child mode
    parser.add_argument("--output", default="BENCH_5.json",
                        help="output path (default: BENCH_5.json)")
    args = parser.parse_args(argv)

    if getattr(args, "_rss_probe") is not None:
        return run_rss_probe(getattr(args, "_rss_probe"), args.rss_workload,
                             args.rss_scale, args.parallel)

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    scales = [int(s) for s in args.scales.split(",") if s.strip()]
    xl_workloads = [w.strip() for w in args.xl_workloads.split(",") if w.strip()]
    xl_scales = [int(s) for s in args.xl_scales.split(",") if s.strip()]

    engines = []
    for name in (e.strip() for e in args.engines.split(",") if e.strip()):
        try:
            check_engine_name(name)
        except SpecValidationError as exc:
            print(f"skipping engine {name!r}: {exc.reason}")
            continue
        engines.append(name)
    if not engines:
        print("no requested engine lane is available here", file=sys.stderr)
        return 1

    cells = [
        SerialCell(workload, n_jobs, label, policy, args.repeat, engine=engine)
        for workload in workloads
        for n_jobs in scales
        for label, policy in POLICIES
        for engine in engines
    ] + [
        SerialCell(workload, n_jobs, label, policy, args.xl_repeat,
                   source="synthetic-xl", engine=engine)
        for workload in xl_workloads
        for n_jobs in xl_scales
        for label, policy in POLICIES
        for engine in engines
    ]
    sleep_pair: tuple[SerialCell, SerialCell] | None = None
    if args.sleep_workload:
        # The in-engine node-sleep cell, paired with a sleep-disabled
        # twin measured in the same interleaved rounds so the overhead
        # verdict compares like with like.
        # The twin gets its own label: it may coincide with a regular
        # scales cell, and duplicate (workload, n_jobs, policy) keys in
        # the record would be ambiguous for trend tooling.
        dvfs_label, dvfs_policy = POLICIES[1]
        disabled = SerialCell(args.sleep_workload, args.sleep_scale,
                              dvfs_label + " [sleep-ref]", dvfs_policy, args.repeat)
        enabled = SerialCell(args.sleep_workload, args.sleep_scale,
                             dvfs_label + "+sleep", dvfs_policy, args.repeat,
                             sleep=SLEEP_POLICY)
        sleep_pair = (disabled, enabled)
        cells += [disabled, enabled]
    serial = measure_serial_cells(cells)

    batch = []
    if not args.skip_batch:
        batch_scales = [int(s) for s in args.batch_scales.split(",") if s.strip()]
        for workers in (1, args.parallel):
            cell = measure_batch(workloads, batch_scales, workers)
            batch.append(cell)
            print(f"{cell['mode']:>25} ({cell['workers']} workers) "
                  f"{cell['seconds']:>8.3f}s  {cell['jobs_per_sec']:>10.0f} jobs/s")
            if args.parallel <= 1:
                break

    batch_rss: list[dict] = []
    rss_ratio = None
    if args.rss_workload:
        batch_rss = measure_batch_rss(args.rss_workload, args.rss_scale, args.parallel)
        full_row, agg_row = batch_rss
        rss_ratio = round(full_row["max_rss_mb"] / agg_row["max_rss_mb"], 2)
        print(f"aggregates-only batch peak RSS: {agg_row['max_rss_mb']:.0f} MiB vs "
              f"{full_row['max_rss_mb']:.0f} MiB full ({rss_ratio:.1f}x smaller)")

    sleep_overhead_pct = None
    if sleep_pair is not None:
        disabled, enabled = sleep_pair
        sleep_overhead_pct = round(100.0 * (1.0 - disabled.best / enabled.best), 2)
        print(f"node-sleep subsystem overhead ({disabled.workload}x{disabled.n_jobs}): "
              f"{sleep_overhead_pct:+.1f}% vs the sleep-disabled twin")

    record = {
        "schema": "repro-bench/5",
        "captured_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "settings": {
            "workloads": workloads,
            "scales": scales,
            "xl_workloads": xl_workloads,
            "xl_scales": xl_scales,
            "repeat": args.repeat,
            "xl_repeat": args.xl_repeat,
            "policies": [label for label, _ in POLICIES],
            "engines": engines,
        },
        "serial": serial,
        "batch": batch,
        "batch_rss": batch_rss,
        "batch_rss_ratio": rss_ratio,
        "sleep_overhead_pct": sleep_overhead_pct,
    }
    with open(args.output, "w", encoding="utf-8") as stream:
        json.dump(record, stream, indent=2, sort_keys=False)
        stream.write("\n")
    print(f"wrote {args.output}")

    failed = False
    if args.floor is not None:
        slowest = min(serial, key=lambda cell: cell["jobs_per_sec"])
        verdict = "PASS" if slowest["jobs_per_sec"] >= args.floor else "FAIL"
        print(f"floor check [{verdict}]: slowest serial cell "
              f"{slowest['workload']}x{slowest['n_jobs']} {slowest['policy']} at "
              f"{slowest['jobs_per_sec']:.0f} jobs/s (floor {args.floor:.0f})")
        failed |= verdict == "FAIL"
    if args.columnar_floor is not None:
        columnar_rows = [cell for cell in serial if cell["engine"] == "columnar"]
        if not columnar_rows:
            print("columnar floor check [FAIL]: no columnar-lane cell was measured")
            failed = True
        else:
            fastest = max(columnar_rows, key=lambda cell: cell["jobs_per_sec"])
            verdict = "PASS" if fastest["jobs_per_sec"] >= args.columnar_floor else "FAIL"
            print(f"columnar floor check [{verdict}]: fastest columnar cell "
                  f"{fastest['workload']}x{fastest['n_jobs']} {fastest['policy']} at "
                  f"{fastest['jobs_per_sec']:.0f} jobs/s "
                  f"(floor {args.columnar_floor:.0f})")
            failed |= verdict == "FAIL"
    if args.rss_ratio_min is not None:
        if rss_ratio is None:
            print("batch RSS check [FAIL]: no batch-RSS probe was run")
            failed = True
        else:
            verdict = "PASS" if rss_ratio >= args.rss_ratio_min else "FAIL"
            print(f"batch RSS check [{verdict}]: aggregates-only is {rss_ratio:.1f}x "
                  f"smaller (min {args.rss_ratio_min:.1f}x)")
            failed |= verdict == "FAIL"
    if args.sleep_overhead_max is not None:
        if sleep_overhead_pct is None:
            print("sleep overhead check [FAIL]: no node-sleep cell was measured")
            failed = True
        else:
            verdict = "PASS" if sleep_overhead_pct <= args.sleep_overhead_max else "FAIL"
            print(f"sleep overhead check [{verdict}]: {sleep_overhead_pct:+.1f}% "
                  f"(max {args.sleep_overhead_max:.0f}%)")
            failed |= verdict == "FAIL"
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
