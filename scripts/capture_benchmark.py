"""Capture simulation-core throughput into a committed benchmark record.

Usage::

    python scripts/capture_benchmark.py                      # full capture
    python scripts/capture_benchmark.py --scales 1000,5000   # quicker CI run
    python scripts/capture_benchmark.py --output BENCH_2.json

Measures jobs/second of the scheduler hot path through the
:class:`repro.api.Simulation` facade for every (workload, scale,
policy) combination, plus end-to-end :class:`repro.batch.BatchRunner`
throughput (serial and process-parallel) over the same grid, and writes
the result as JSON.  Trace generation happens outside the timed region;
each serial cell reports the best of ``--repeat`` runs.

The committed ``BENCH_2.json`` at the repository root is the perf
trajectory record for this PR; regenerate it on comparable hardware
before claiming a speedup or a regression.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone

from repro.api import Simulation
from repro.batch import BatchRunner
from repro.experiments.config import PolicySpec, RunSpec

POLICIES: tuple[tuple[str, PolicySpec], ...] = (
    ("nodvfs", PolicySpec.baseline()),
    ("dvfs(2,NO)", PolicySpec.power_aware(2.0, None)),
)


def measure_serial(workload: str, n_jobs: int, label: str, policy: PolicySpec,
                   repeat: int) -> dict:
    """Best-of-``repeat`` wall time of one simulation's scheduler run."""
    simulation = Simulation(RunSpec(workload=workload, n_jobs=n_jobs, policy=policy))
    jobs = simulation.jobs  # materialise outside the timed region
    best = float("inf")
    for _ in range(repeat):
        scheduler = simulation.build_scheduler()
        start = time.perf_counter()
        scheduler.run(jobs)
        best = min(best, time.perf_counter() - start)
    return {
        "workload": workload,
        "n_jobs": n_jobs,
        "policy": label,
        "mode": "serial",
        "seconds": round(best, 4),
        "jobs_per_sec": round(n_jobs / best, 1),
    }


def measure_batch(workloads: list[str], scales: list[int], workers: int) -> dict:
    """End-to-end BatchRunner wall time over the whole grid (no cache)."""
    specs = [
        RunSpec(workload=workload, n_jobs=n_jobs, policy=policy)
        for workload in workloads
        for n_jobs in scales
        for _, policy in POLICIES
    ]
    total_jobs = sum(spec.n_jobs for spec in specs)
    runner = BatchRunner(max_workers=workers)
    start = time.perf_counter()
    runner.run(specs)
    elapsed = time.perf_counter() - start
    return {
        "mode": "batch-serial" if workers <= 1 else "batch-parallel",
        "workers": workers,
        "runs": len(specs),
        "total_jobs": total_jobs,
        "seconds": round(elapsed, 4),
        "jobs_per_sec": round(total_jobs / elapsed, 1),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", default="SDSC,CTC",
                        help="comma-separated workload names (default: SDSC,CTC)")
    parser.add_argument("--scales", default="5000,50000",
                        help="comma-separated trace lengths (default: 5000,50000)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="serial timing repeats, best-of (default: 3)")
    parser.add_argument("--parallel", type=int, default=min(4, os.cpu_count() or 1),
                        help="worker processes for the parallel batch cell")
    parser.add_argument("--skip-batch", action="store_true",
                        help="measure only the serial cells")
    parser.add_argument("--output", default="BENCH_2.json",
                        help="output path (default: BENCH_2.json)")
    args = parser.parse_args(argv)

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    scales = [int(s) for s in args.scales.split(",") if s.strip()]

    serial = []
    for workload in workloads:
        for n_jobs in scales:
            for label, policy in POLICIES:
                cell = measure_serial(workload, n_jobs, label, policy, args.repeat)
                serial.append(cell)
                print(f"{workload:>12} x {n_jobs:>6} {label:<12} "
                      f"{cell['seconds']:>8.3f}s  {cell['jobs_per_sec']:>10.0f} jobs/s")

    batch = []
    if not args.skip_batch:
        for workers in (1, args.parallel):
            cell = measure_batch(workloads, scales, workers)
            batch.append(cell)
            print(f"{cell['mode']:>25} ({cell['workers']} workers) "
                  f"{cell['seconds']:>8.3f}s  {cell['jobs_per_sec']:>10.0f} jobs/s")
            if args.parallel <= 1:
                break

    record = {
        "schema": "repro-bench/2",
        "captured_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "settings": {
            "workloads": workloads,
            "scales": scales,
            "repeat": args.repeat,
            "policies": [label for label, _ in POLICIES],
        },
        "serial": serial,
        "batch": batch,
    }
    with open(args.output, "w", encoding="utf-8") as stream:
        json.dump(record, stream, indent=2, sort_keys=False)
        stream.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
