"""End-to-end smoke test for the ``repro serve`` daemon (CI gate).

Two phases, both against real subprocesses (``python -m repro.cli
serve``) on ephemeral ports:

1. **Byte-identity**: submit a small SDSC spec over HTTP, stream its
   telemetry, and assert the fetched result is byte-identical to an
   in-process ``Simulation(spec).run()`` serialised the same way — the
   core simulation-as-a-service contract, exercised through the actual
   process boundary and socket rather than a background thread.

2. **SIGKILL drill**: start a daemon over a ``--cache-dir``, submit a
   long run, ``SIGKILL -9`` the daemon mid-simulation (no shutdown
   hooks, no drain — the journal gets no goodbye), restart a fresh
   daemon over the same directory, and assert the job is recovered
   under its **original id** and completes **byte-identically**.

Run with::

    PYTHONPATH=src python scripts/serve_smoke.py

Exits 0 on success, 1 with a diagnostic on any failure.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from typing import NoReturn

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.api import Simulation  # noqa: E402
from repro.experiments.config import RunSpec  # noqa: E402
from repro.serialize import result_to_dict  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.protocol import END_OF_STREAM, ServeError  # noqa: E402
from repro.serve.server import canonical_result_bytes  # noqa: E402

SPEC = RunSpec(workload="SDSC", n_jobs=120, seed=3)
#: Long enough (with --slice-events 500) that SIGKILL reliably lands
#: mid-simulation.
KILL_SPEC = RunSpec(workload="SDSC", n_jobs=4000, seed=1)
STARTUP_TIMEOUT = 30.0


def fail(message: str) -> NoReturn:
    print(f"serve-smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_address(process: subprocess.Popen) -> str:
    """Parse ``listening on host:port`` from the daemon's stdout."""
    deadline = time.monotonic() + STARTUP_TIMEOUT
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            fail(f"daemon exited during startup (rc={process.poll()})")
        print(f"serve-smoke: daemon says: {line.rstrip()}")
        match = re.search(r"listening on (\S+:\d+)", line)
        if match:
            return match.group(1)
    fail(f"no listening line within {STARTUP_TIMEOUT}s")
    raise AssertionError("unreachable")


def spawn_daemon(*extra_args: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *extra_args, "serve", "--port", "0",
         "--slice-events", "500"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )


def sigkill_drill() -> None:
    """Kill a daemon mid-run; a restart must recover the journalled job."""
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as cache_dir:
        first = spawn_daemon("--cache-dir", cache_dir)
        address = wait_for_address(first)
        client = ServeClient(address, client_id="serve-smoke")
        job_id = client.submit(KILL_SPEC)["job_id"]
        # Give the worker a moment to be genuinely mid-simulation.
        deadline = time.monotonic() + 10.0
        while client.status(job_id)["state"] == "queued":
            if time.monotonic() >= deadline:
                fail("kill-drill job never started running")
            time.sleep(0.05)
        first.kill()  # SIGKILL: no drain, no journal goodbye
        first.wait()
        print(f"serve-smoke: SIGKILLed daemon with {job_id} mid-run")

        second = spawn_daemon("--cache-dir", cache_dir)
        try:
            address = wait_for_address(second)
            client = ServeClient(address, client_id="serve-smoke")
            try:
                status = client.status(job_id)
            except ServeError as err:
                fail(f"restarted daemon does not know {job_id}: {err}")
            if not status["recovered"]:
                fail(f"{job_id} present but not flagged recovered: {status}")
            final = client.wait(job_id, timeout=120.0)
            if final["state"] != "done":
                fail(f"recovered job ended {final['state']!r}: {final['error']}")
            fetched = client.result_bytes(job_id)
            expected = canonical_result_bytes(
                result_to_dict(Simulation(KILL_SPEC).run())
            )
            if fetched != expected:
                fail(
                    f"recovery byte-identity broken: recovered result is "
                    f"{len(fetched)} bytes, in-process {len(expected)} bytes"
                )
            print(
                f"serve-smoke: OK — restart recovered {job_id} byte-identically "
                f"({len(fetched)} bytes)"
            )
        finally:
            second.send_signal(signal.SIGINT)
            try:
                second.wait(timeout=15)
            except subprocess.TimeoutExpired:
                second.kill()
                second.wait()


def main() -> int:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    try:
        address = wait_for_address(process)
        client = ServeClient(address, client_id="serve-smoke")

        health = client.health()
        print(f"serve-smoke: healthz ok (version {health['version']})")

        job = client.submit(SPEC)
        job_id = job["job_id"]
        print(f"serve-smoke: submitted {job_id} (state: {job['state']})")

        rows = list(client.stream_events(job_id))
        sentinel = rows[-1]
        if sentinel.get("event") != END_OF_STREAM:
            fail(f"stream did not end with the sentinel: {sentinel!r}")
        if sentinel["state"] != "done":
            fail(f"job ended {sentinel['state']!r}, expected 'done'")
        telemetry = len(rows) - 1
        if telemetry < 1:
            fail("streamed zero telemetry events before the sentinel")
        print(f"serve-smoke: streamed {telemetry} telemetry events + sentinel")

        fetched = client.result_bytes(job_id)
        expected = canonical_result_bytes(result_to_dict(Simulation(SPEC).run()))
        if fetched != expected:
            fail(
                f"byte-identity broken: HTTP result is {len(fetched)} bytes, "
                f"in-process run serialises to {len(expected)} bytes"
            )
        print(
            f"serve-smoke: OK — HTTP result byte-identical to the in-process "
            f"run ({len(fetched)} bytes)"
        )
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
    sigkill_drill()
    return 0


if __name__ == "__main__":
    sys.exit(main())
