"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro.cluster.machine import Machine
from repro.core.gears import PAPER_GEAR_SET
from repro.scheduling.job import Job

# One shared hypothesis profile: scheduler property tests run whole
# simulations per example, so keep the example count moderate and the
# deadline off (simulation time varies with the drawn workload).
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help=(
            "Regenerate the committed golden-trace fixtures under "
            "tests/goldens/ instead of comparing against them."
        ),
    )


@pytest.fixture
def update_goldens(request) -> bool:
    """Whether this run should rewrite golden fixtures instead of asserting."""
    return request.config.getoption("--update-goldens")


@pytest.fixture
def small_machine() -> Machine:
    """An 8-CPU machine with the paper gear set."""
    return Machine("test", total_cpus=8, gears=PAPER_GEAR_SET)


@pytest.fixture
def medium_machine() -> Machine:
    return Machine("test", total_cpus=64, gears=PAPER_GEAR_SET)


def make_job(
    job_id: int = 1,
    submit: float = 0.0,
    runtime: float = 1000.0,
    requested: float | None = None,
    size: int = 1,
    beta: float | None = None,
) -> Job:
    """Concise job constructor for hand-built scheduling scenarios."""
    return Job(
        job_id=job_id,
        submit_time=submit,
        runtime=runtime,
        requested_time=requested if requested is not None else max(runtime, 1.0),
        size=size,
        beta=beta,
    )


def random_workload(
    seed: int,
    n_jobs: int,
    max_cpus: int,
    *,
    mean_gap: float = 300.0,
    max_runtime: float = 5000.0,
) -> list[Job]:
    """A small random-but-reproducible workload for invariant tests."""
    rng = random.Random(seed)
    clock = 0.0
    jobs = []
    for index in range(n_jobs):
        clock += rng.expovariate(1.0 / mean_gap)
        runtime = rng.uniform(1.0, max_runtime)
        requested = runtime * rng.uniform(1.0, 5.0)
        jobs.append(
            Job(
                job_id=index + 1,
                submit_time=clock,
                runtime=runtime,
                requested_time=requested,
                size=rng.randint(1, max_cpus),
            )
        )
    return jobs


# -- hypothesis strategies shared across test modules -------------------------

job_ids = st.integers(min_value=1, max_value=10**6)
small_floats = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


@st.composite
def job_strategy(draw, max_size: int = 16):
    submit = draw(st.floats(min_value=0.0, max_value=1e5, allow_nan=False))
    runtime = draw(st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
    over = draw(st.floats(min_value=1.0, max_value=10.0, allow_nan=False))
    requested = max(runtime * over, 1.0)
    return Job(
        job_id=draw(job_ids),
        submit_time=submit,
        runtime=runtime,
        requested_time=requested,
        size=draw(st.integers(min_value=1, max_value=max_size)),
    )


@st.composite
def workload_strategy(draw, max_jobs: int = 25, max_cpus: int = 8):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=3000.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    jobs = []
    clock = 0.0
    for index, gap in enumerate(gaps):
        clock += gap
        runtime = draw(st.floats(min_value=0.0, max_value=4000.0, allow_nan=False))
        over = draw(st.floats(min_value=1.0, max_value=6.0, allow_nan=False))
        jobs.append(
            Job(
                job_id=index + 1,
                submit_time=clock,
                runtime=runtime,
                requested_time=max(runtime * over, 1.0),
                size=draw(st.integers(min_value=1, max_value=max_cpus)),
            )
        )
    return jobs
