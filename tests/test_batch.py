"""Tests for the parallel batch runner: determinism, ordering, caching,
fault tolerance (worker exceptions and worker deaths), and the
aggregates-only / streaming fleet-scale modes."""

import json
import multiprocessing
import os
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.batch as batch_module
from repro.batch import BatchRunner
from repro.experiments.config import PolicySpec, RunSpec
from repro.experiments.figures import threshold_grid
from repro.experiments.runner import ExperimentRunner
from repro.serialize import result_to_dict

N_JOBS = 40

#: Fault-injection tests patch ``repro.batch._build_simulation`` in the
#: parent and rely on fork inheriting the patch into pool workers.
fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault injection relies on fork sharing the patched module",
)

CRASH_SEED = 9901  # specs with this seed make the injected builder misbehave


def crash_spec() -> RunSpec:
    return RunSpec(workload="CTC", n_jobs=N_JOBS, seed=CRASH_SEED)


def _inject_builder(monkeypatch, misbehave):
    """Route CRASH_SEED specs through ``misbehave``; others run normally."""
    real = batch_module._build_simulation

    def patched(spec, validate):
        if spec.seed == CRASH_SEED:
            misbehave(spec)
        return real(spec, validate)

    monkeypatch.setattr(batch_module, "_build_simulation", patched)


def _exit_after_cache_fills(cache_dir, expected):
    """A worker death deferred until ``expected`` results are cached.

    Polling the parent's cache directory makes the crash ordering
    deterministic: by the time the pool breaks, the sibling results
    have not just completed but been landed by the parent.
    """

    def misbehave(spec):
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if len(list(cache_dir.glob("*.json"))) >= expected:
                break
            time.sleep(0.01)
        os._exit(13)

    return misbehave


def grid_specs() -> list[RunSpec]:
    """A miniature Figure 3-5 style grid (two workloads x three policies)."""
    return [
        RunSpec(workload=workload, n_jobs=N_JOBS, policy=policy)
        for workload in ("CTC", "SDSC")
        for policy in (
            PolicySpec.baseline(),
            PolicySpec.power_aware(2.0, 0),
            PolicySpec.power_aware(2.0, None),
        )
    ]


def as_bytes(results) -> list[str]:
    return [json.dumps(result_to_dict(r), sort_keys=True) for r in results]


class TestDeterminism:
    def test_parallel_equals_serial_byte_identical(self):
        specs = grid_specs()
        serial = BatchRunner(max_workers=1).run(specs)
        parallel = BatchRunner(max_workers=4).run(specs)
        assert serial == parallel
        assert as_bytes(serial) == as_bytes(parallel)

    def test_results_in_input_order(self):
        specs = grid_specs()
        results = BatchRunner(max_workers=2).run(specs)
        assert len(results) == len(specs)
        for spec, result in zip(specs, results, strict=True):
            assert result.machine.name.startswith(spec.workload)
            if spec.policy.kind == "nodvfs":
                assert result.reduced_jobs == 0

    def test_duplicates_deduplicated(self):
        spec = RunSpec(workload="CTC", n_jobs=N_JOBS)
        first, second = BatchRunner(max_workers=1).run([spec, spec])
        assert first is second

    def test_default_n_jobs_applied(self):
        runner = BatchRunner(max_workers=1, default_n_jobs=25)
        (result,) = runner.run([RunSpec(workload="CTC")])
        assert result.job_count == 25

    def test_empty_batch(self):
        assert BatchRunner(max_workers=4).run([]) == []

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            BatchRunner(max_workers=-1)


class TestStreamingAndSharing:
    def test_progress_streams_fresh_results(self, tmp_path):
        """progress fires once per fresh spec (not for cache hits) with
        the exact result the batch returns."""
        specs = grid_specs()
        landed: dict[RunSpec, object] = {}
        runner = BatchRunner(max_workers=2, cache_dir=tmp_path)
        results = runner.run(specs, progress=lambda spec, result: landed.setdefault(spec, result))
        assert set(landed) == set(specs)
        for spec, result in zip(specs, results, strict=True):
            assert as_bytes([landed[spec]]) == as_bytes([result])
        # Second run: everything cached, nothing streams.
        rerun_landed = []
        runner.run(specs, progress=lambda s, r: rerun_landed.append(s))
        assert rerun_landed == []

    def test_shared_workload_store_matches_per_worker_resolution(self):
        """The fork-shared bundle path must not change a single byte.

        Serial execution resolves through the shared store; disabling
        the store forces per-spec resolution — results must agree.
        """
        import repro.batch as batch_module

        specs = grid_specs()
        shared = BatchRunner(max_workers=1).run(specs)
        original = batch_module.BatchRunner.__dict__["_share_workloads"]
        batch_module.BatchRunner._share_workloads = staticmethod(lambda pending: None)
        try:
            unshared = BatchRunner(max_workers=1).run(specs)
        finally:
            batch_module.BatchRunner._share_workloads = original
        assert as_bytes(shared) == as_bytes(unshared)

    def test_store_cleared_after_run(self):
        import repro.batch as batch_module

        BatchRunner(max_workers=1).run(grid_specs()[:2])
        assert batch_module._WORKLOAD_STORE == {}


class TestDiskCache:
    def test_second_run_served_from_disk(self, tmp_path):
        specs = grid_specs()[:3]
        runner = BatchRunner(max_workers=2, cache_dir=tmp_path)
        first = runner.run(specs)
        assert runner.cache_misses == 3
        assert len(list(tmp_path.glob("*.json"))) == 3

        fresh = BatchRunner(max_workers=1, cache_dir=tmp_path)
        second = fresh.run(specs)
        assert fresh.cache_hits == 3
        assert fresh.cache_misses == 0
        assert as_bytes(first) == as_bytes(second)

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        spec = RunSpec(workload="CTC", n_jobs=N_JOBS)
        runner = BatchRunner(max_workers=1, cache_dir=tmp_path)
        (result,) = runner.run([spec])
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        again = BatchRunner(max_workers=1, cache_dir=tmp_path)
        (recomputed,) = again.run([spec])
        assert again.cache_misses == 1
        assert recomputed == result

    @given(
        workload=st.sampled_from(["CTC", "SDSC", "LLNLThunder"]),
        n_jobs=st.integers(min_value=5, max_value=30),
        seed=st.integers(min_value=0, max_value=3),
        bsld_threshold=st.sampled_from([1.5, 2.0, 3.0]),
        wq_threshold=st.sampled_from([0, 4, None]),
        scheduler=st.sampled_from(["easy", "fcfs"]),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_cache_round_trip_property(
        self, tmp_path, workload, n_jobs, seed, bsld_threshold, wq_threshold, scheduler
    ):
        """Cached rerun of an arbitrary spec == its fresh run, byte for byte."""
        spec = RunSpec(
            workload=workload,
            n_jobs=n_jobs,
            seed=seed,
            scheduler=scheduler,
            policy=PolicySpec.power_aware(bsld_threshold, wq_threshold),
        )
        cache_dir = tmp_path / f"{workload}-{n_jobs}-{seed}-{bsld_threshold}-{wq_threshold}-{scheduler}"
        first = BatchRunner(max_workers=1, cache_dir=cache_dir)
        fresh = first.run([spec])
        assert first.cache_misses == 1
        again = BatchRunner(max_workers=1, cache_dir=cache_dir)
        cached = again.run([spec])
        assert again.cache_hits == 1 and again.cache_misses == 0
        assert as_bytes(fresh) == as_bytes(cached)
        assert fresh == cached

    def test_cache_ignores_mismatched_spec_payload(self, tmp_path):
        spec = RunSpec(workload="CTC", n_jobs=N_JOBS)
        runner = BatchRunner(max_workers=1, cache_dir=tmp_path)
        runner.run([spec])
        (path,) = tmp_path.glob("*.json")
        data = json.loads(path.read_text())
        data["spec"]["beta"] = 0.123  # simulate a stale/foreign entry
        path.write_text(json.dumps(data))
        again = BatchRunner(max_workers=1, cache_dir=tmp_path)
        again.run([spec])
        assert again.cache_misses == 1

    def test_concurrent_store_and_load_same_key(self, tmp_path):
        """Satellite: many threads hammering one cache key never observe
        a torn entry — every load is None (pre-store) or the exact
        result.  Write-then-rename makes each entry appear atomically."""
        import threading

        spec = RunSpec(workload="CTC", n_jobs=N_JOBS)
        result = ExperimentRunner(n_jobs=N_JOBS).run(spec)
        expected = result_to_dict(result)
        runner = BatchRunner(max_workers=0, cache_dir=tmp_path)
        start = threading.Barrier(8)
        failures: list[str] = []

        def store():
            start.wait()
            for _ in range(20):
                runner.cache_store(spec, result)

        def load():
            start.wait()
            for _ in range(40):
                loaded = runner.cache_load(spec)
                if loaded is not None and result_to_dict(loaded) != expected:
                    failures.append("torn or foreign cache entry observed")

        threads = [threading.Thread(target=store) for _ in range(4)] + [
            threading.Thread(target=load) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        # Settled state: exactly one entry, loadable, byte-exact.
        assert len(list(tmp_path.glob("*.json"))) == 1
        final = runner.cache_load(spec)
        assert final is not None and result_to_dict(final) == expected
        # No abandoned temp files from the concurrent writers.
        assert not list(tmp_path.glob("*.tmp.*"))


class TestFaultTolerance:
    @fork_only
    def test_worker_death_lands_completed_results_before_raising(
        self, tmp_path, monkeypatch
    ):
        """Regression: a dying worker used to abort run() and discard the
        results that completed in the same wait() batch.  Everything
        finished must be landed (cached + streamed) before the raise."""
        from concurrent.futures.process import BrokenProcessPool

        goods = grid_specs()[:3]
        _inject_builder(monkeypatch, _exit_after_cache_fills(tmp_path, len(goods)))
        runner = BatchRunner(max_workers=2, cache_dir=tmp_path)
        landed = []
        with pytest.raises(BrokenProcessPool):
            runner.run(
                [crash_spec(), *goods], progress=lambda spec, result: landed.append(spec)
            )
        assert set(landed) == set(goods)
        assert len(list(tmp_path.glob("*.json"))) == len(goods)
        # The landed work is real: a fresh runner serves it from disk.
        rerun = BatchRunner(max_workers=1, cache_dir=tmp_path)
        rerun.run(goods)
        assert rerun.cache_hits == len(goods)

    @fork_only
    def test_worker_death_skip_attributes_failure_and_finishes_batch(
        self, monkeypatch
    ):
        """on_error='skip': the crashing spec is re-run in isolation and
        failed by identity; every innocent spec still gets its result."""
        _inject_builder(monkeypatch, lambda spec: os._exit(13))
        goods = grid_specs()
        specs = [crash_spec(), *goods]
        runner = BatchRunner(max_workers=2, on_error="skip")
        results = runner.run(specs)
        assert results[0] is None
        assert all(result is not None for result in results[1:])
        (failure,) = runner.failures
        assert failure.spec == crash_spec()
        assert "BrokenProcessPool" in failure.error
        # Innocent results are byte-identical to an uninjected serial run.
        clean = BatchRunner(max_workers=1).run(goods)
        assert as_bytes(results[1:]) == as_bytes(clean)

    @fork_only
    def test_worker_death_retry_counts_attempts(self, monkeypatch):
        _inject_builder(monkeypatch, lambda spec: os._exit(13))
        runner = BatchRunner(max_workers=2, on_error="retry", retries=1)
        results = runner.run([crash_spec(), *grid_specs()[:2]])
        assert results[0] is None
        (failure,) = runner.failures
        assert failure.attempts == 2  # the first try plus one retry

    @fork_only
    def test_worker_exception_raise_is_default(self, monkeypatch):
        def boom(spec):
            raise RuntimeError("injected failure")

        _inject_builder(monkeypatch, boom)
        with pytest.raises(RuntimeError, match="injected failure"):
            BatchRunner(max_workers=2).run([crash_spec(), *grid_specs()[:2]])

    @fork_only
    def test_worker_exception_skip_records_failure(self, monkeypatch):
        def boom(spec):
            raise RuntimeError("injected failure")

        _inject_builder(monkeypatch, boom)
        notified = []
        runner = BatchRunner(max_workers=2, on_error="skip")
        results = runner.run(
            [crash_spec(), *grid_specs()[:2]],
            on_failure=lambda spec, error: notified.append((spec, error)),
        )
        assert results[0] is None and None not in results[1:]
        (failure,) = runner.failures
        assert failure.spec == crash_spec() and failure.attempts == 1
        assert "injected failure" in failure.error
        assert notified == [(crash_spec(), failure.error)]

    @fork_only
    def test_retry_recovers_from_transient_failure(self, tmp_path, monkeypatch):
        """A spec that fails twice then succeeds completes under retry
        and is not recorded as a failure."""
        counter = tmp_path / "attempts"

        def flaky(spec):
            tries = len(counter.read_text().splitlines()) if counter.exists() else 0
            with open(counter, "a") as stream:
                stream.write("x\n")
            if tries < 2:
                raise RuntimeError(f"transient {tries}")

        _inject_builder(monkeypatch, flaky)
        runner = BatchRunner(max_workers=2, on_error="retry", retries=2)
        results = runner.run([crash_spec(), *grid_specs()[:2]])
        assert all(result is not None for result in results)
        assert runner.failures == ()
        assert len(counter.read_text().splitlines()) == 3

    def test_serial_path_honours_on_error(self, monkeypatch):
        """max_workers=1 runs in-process but keeps skip/retry semantics."""

        def boom(spec):
            raise RuntimeError("injected failure")

        _inject_builder(monkeypatch, boom)
        runner = BatchRunner(max_workers=1, on_error="skip")
        results = runner.run([crash_spec(), *grid_specs()[:2]])
        assert results[0] is None and None not in results[1:]
        (failure,) = runner.failures
        assert failure.spec == crash_spec()

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            BatchRunner(on_error="ignore")
        with pytest.raises(ValueError, match="retries"):
            BatchRunner(retries=-1)


class TestCacheTempFiles:
    def test_store_temp_names_unique_per_write(self, tmp_path, monkeypatch):
        """Regression: temp names keyed only by pid collide when one
        process stores concurrently (threads, or re-stores)."""
        recorded = []
        real_replace = os.replace

        def spy(src, dst):
            recorded.append(str(src))
            real_replace(src, dst)

        monkeypatch.setattr(batch_module.os, "replace", spy)
        spec = RunSpec(workload="CTC", n_jobs=N_JOBS)
        runner = BatchRunner(max_workers=1, cache_dir=tmp_path)
        (result,) = runner.run([spec])
        for _ in range(4):
            runner.cache_store(spec, result)
        assert len(recorded) == 5
        assert len(set(recorded)) == 5  # every write used a fresh temp name

    def test_concurrent_stores_do_not_tear(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        spec = RunSpec(workload="CTC", n_jobs=N_JOBS)
        runner = BatchRunner(max_workers=1, cache_dir=tmp_path)
        (result,) = runner.run([spec])
        with ThreadPoolExecutor(max_workers=8) as pool:
            for future in [
                pool.submit(runner.cache_store, spec, result) for _ in range(32)
            ]:
                future.result()
        # One final file, valid JSON, no leftover temp files.
        (path,) = tmp_path.glob("*.json")
        json.loads(path.read_text())
        assert list(tmp_path.glob("*.tmp.*")) == []
        fresh = BatchRunner(max_workers=1, cache_dir=tmp_path)
        assert fresh.run([spec]) == [result]
        assert fresh.cache_hits == 1


class TestAggregatesMode:
    def test_aggregates_match_full_results(self):
        specs = grid_specs()
        full = BatchRunner(max_workers=1).run(specs)
        reduced = BatchRunner(max_workers=2, aggregates_only=True).run(specs)
        for full_result, agg in zip(full, reduced, strict=True):
            assert agg.is_aggregated
            assert agg.outcomes == ()
            assert as_bytes([agg]) == as_bytes([full_result.to_aggregates()])

    def test_full_cache_entry_serves_aggregates_request(self, tmp_path):
        specs = grid_specs()[:2]
        full = BatchRunner(max_workers=1, cache_dir=tmp_path)
        full_results = full.run(specs)
        agg = BatchRunner(max_workers=1, cache_dir=tmp_path, aggregates_only=True)
        agg_results = agg.run(specs)
        assert agg.cache_hits == 2 and agg.cache_misses == 0
        assert as_bytes(agg_results) == as_bytes(
            [result.to_aggregates() for result in full_results]
        )

    def test_aggregates_cache_entry_never_serves_full_request(self, tmp_path):
        specs = grid_specs()[:2]
        BatchRunner(max_workers=1, cache_dir=tmp_path, aggregates_only=True).run(specs)
        full = BatchRunner(max_workers=1, cache_dir=tmp_path)
        results = full.run(specs)
        assert full.cache_hits == 0 and full.cache_misses == 2
        assert all(not result.is_aggregated for result in results)

    def test_experiment_runner_plumbs_aggregates(self):
        runner = ExperimentRunner(n_jobs=N_JOBS, aggregates_only=True)
        result = runner.run(RunSpec(workload="CTC"))
        assert result.is_aggregated
        full = ExperimentRunner(n_jobs=N_JOBS).run(RunSpec(workload="CTC"))
        assert result.average_bsld() == full.average_bsld()
        assert result.energy == full.energy


class TestStreaming:
    def test_run_streaming_reduces_without_accumulating(self, tmp_path):
        specs = grid_specs()
        reduced: dict[RunSpec, float] = {}
        runner = BatchRunner(max_workers=2, cache_dir=tmp_path, aggregates_only=True)
        report = runner.run_streaming(
            specs, lambda spec, result: reduced.__setitem__(spec, result.average_bsld())
        )
        assert report.total == len(specs)
        assert report.unique == len(set(specs))
        assert report.completed == len(set(specs))
        assert report.failures == ()
        expected = BatchRunner(max_workers=1).run(specs)
        for spec, result in zip(specs, expected, strict=True):
            assert reduced[spec] == result.average_bsld()

    def test_run_streaming_includes_cache_hits(self, tmp_path):
        specs = grid_specs()[:3]
        runner = BatchRunner(max_workers=1, cache_dir=tmp_path)
        runner.run(specs)
        streamed = []
        rerun = BatchRunner(max_workers=1, cache_dir=tmp_path)
        report = rerun.run_streaming(specs, lambda spec, result: streamed.append(spec))
        assert sorted(streamed, key=str) == sorted(set(specs), key=str)
        assert report.cache_hits == 3 and report.completed == 3

    @fork_only
    def test_run_streaming_reports_failures(self, monkeypatch):
        def boom(spec):
            raise RuntimeError("injected failure")

        _inject_builder(monkeypatch, boom)
        runner = BatchRunner(max_workers=2, on_error="skip")
        seen = []
        report = runner.run_streaming(
            [crash_spec(), *grid_specs()[:2]], lambda spec, result: seen.append(spec)
        )
        assert len(seen) == 2
        assert report.completed == 2
        (failure,) = report.failures
        assert failure.spec == crash_spec()


class TestRunnerIntegration:
    """The acceptance path: parallel figure grids match serial ones."""

    def test_parallel_threshold_grid_byte_identical(self):
        workloads = ("CTC", "SDSC")
        kwargs = dict(bsld_thresholds=(2.0,), wq_thresholds=(0, None))
        serial_grid = threshold_grid(
            ExperimentRunner(n_jobs=N_JOBS), workloads=workloads, **kwargs
        )
        parallel_grid = threshold_grid(
            ExperimentRunner(n_jobs=N_JOBS, max_workers=4), workloads=workloads, **kwargs
        )
        assert set(serial_grid.runs) == set(parallel_grid.runs)
        for key, serial_run in serial_grid.runs.items():
            a = json.dumps(result_to_dict(serial_run), sort_keys=True)
            b = json.dumps(result_to_dict(parallel_grid.runs[key]), sort_keys=True)
            assert a == b
        for workload in workloads:
            assert serial_grid.baselines[workload] == parallel_grid.baselines[workload]

    def test_runner_run_uses_disk_cache(self, tmp_path):
        """Single-spec run() paths (advisor, figure 6) persist and reuse
        results when the runner has a cache_dir."""
        spec = RunSpec(workload="CTC")
        runner = ExperimentRunner(n_jobs=25, cache_dir=tmp_path)
        result = runner.run(spec)
        assert len(list(tmp_path.glob("*.json"))) == 1
        fresh = ExperimentRunner(n_jobs=25, cache_dir=tmp_path)
        assert fresh.run(spec) == result

    def test_cache_dir_alone_stays_serial(self, tmp_path):
        """A cache-only runner must not spawn one worker per CPU."""
        runner = ExperimentRunner(n_jobs=25, cache_dir=tmp_path)
        assert runner._batch is not None
        assert runner._batch.max_workers == 1

    def test_run_many_populates_runner_cache(self):
        runner = ExperimentRunner(n_jobs=N_JOBS, max_workers=2)
        specs = grid_specs()
        results = runner.run_many(specs)
        assert runner.cached_runs == len(set(specs))
        # follow-up lookups are cache hits returning identical objects
        for spec, result in zip(specs, results, strict=True):
            assert runner.run(spec) is result
