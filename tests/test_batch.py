"""Tests for the parallel batch runner: determinism, ordering, caching."""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.batch import BatchRunner
from repro.experiments.config import PolicySpec, RunSpec
from repro.experiments.figures import threshold_grid
from repro.experiments.runner import ExperimentRunner
from repro.serialize import result_to_dict

N_JOBS = 40


def grid_specs() -> list[RunSpec]:
    """A miniature Figure 3-5 style grid (two workloads x three policies)."""
    return [
        RunSpec(workload=workload, n_jobs=N_JOBS, policy=policy)
        for workload in ("CTC", "SDSC")
        for policy in (
            PolicySpec.baseline(),
            PolicySpec.power_aware(2.0, 0),
            PolicySpec.power_aware(2.0, None),
        )
    ]


def as_bytes(results) -> list[str]:
    return [json.dumps(result_to_dict(r), sort_keys=True) for r in results]


class TestDeterminism:
    def test_parallel_equals_serial_byte_identical(self):
        specs = grid_specs()
        serial = BatchRunner(max_workers=1).run(specs)
        parallel = BatchRunner(max_workers=4).run(specs)
        assert serial == parallel
        assert as_bytes(serial) == as_bytes(parallel)

    def test_results_in_input_order(self):
        specs = grid_specs()
        results = BatchRunner(max_workers=2).run(specs)
        assert len(results) == len(specs)
        for spec, result in zip(specs, results, strict=True):
            assert result.machine.name.startswith(spec.workload)
            if spec.policy.kind == "nodvfs":
                assert result.reduced_jobs == 0

    def test_duplicates_deduplicated(self):
        spec = RunSpec(workload="CTC", n_jobs=N_JOBS)
        first, second = BatchRunner(max_workers=1).run([spec, spec])
        assert first is second

    def test_default_n_jobs_applied(self):
        runner = BatchRunner(max_workers=1, default_n_jobs=25)
        (result,) = runner.run([RunSpec(workload="CTC")])
        assert result.job_count == 25

    def test_empty_batch(self):
        assert BatchRunner(max_workers=4).run([]) == []

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            BatchRunner(max_workers=-1)


class TestStreamingAndSharing:
    def test_progress_streams_fresh_results(self, tmp_path):
        """progress fires once per fresh spec (not for cache hits) with
        the exact result the batch returns."""
        specs = grid_specs()
        landed: dict[RunSpec, object] = {}
        runner = BatchRunner(max_workers=2, cache_dir=tmp_path)
        results = runner.run(specs, progress=lambda spec, result: landed.setdefault(spec, result))
        assert set(landed) == set(specs)
        for spec, result in zip(specs, results, strict=True):
            assert as_bytes([landed[spec]]) == as_bytes([result])
        # Second run: everything cached, nothing streams.
        rerun_landed = []
        runner.run(specs, progress=lambda s, r: rerun_landed.append(s))
        assert rerun_landed == []

    def test_shared_workload_store_matches_per_worker_resolution(self):
        """The fork-shared bundle path must not change a single byte.

        Serial execution resolves through the shared store; disabling
        the store forces per-spec resolution — results must agree.
        """
        import repro.batch as batch_module

        specs = grid_specs()
        shared = BatchRunner(max_workers=1).run(specs)
        original = batch_module.BatchRunner.__dict__["_share_workloads"]
        batch_module.BatchRunner._share_workloads = staticmethod(lambda pending: None)
        try:
            unshared = BatchRunner(max_workers=1).run(specs)
        finally:
            batch_module.BatchRunner._share_workloads = original
        assert as_bytes(shared) == as_bytes(unshared)

    def test_store_cleared_after_run(self):
        import repro.batch as batch_module

        BatchRunner(max_workers=1).run(grid_specs()[:2])
        assert batch_module._WORKLOAD_STORE == {}


class TestDiskCache:
    def test_second_run_served_from_disk(self, tmp_path):
        specs = grid_specs()[:3]
        runner = BatchRunner(max_workers=2, cache_dir=tmp_path)
        first = runner.run(specs)
        assert runner.cache_misses == 3
        assert len(list(tmp_path.glob("*.json"))) == 3

        fresh = BatchRunner(max_workers=1, cache_dir=tmp_path)
        second = fresh.run(specs)
        assert fresh.cache_hits == 3
        assert fresh.cache_misses == 0
        assert as_bytes(first) == as_bytes(second)

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        spec = RunSpec(workload="CTC", n_jobs=N_JOBS)
        runner = BatchRunner(max_workers=1, cache_dir=tmp_path)
        (result,) = runner.run([spec])
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        again = BatchRunner(max_workers=1, cache_dir=tmp_path)
        (recomputed,) = again.run([spec])
        assert again.cache_misses == 1
        assert recomputed == result

    @given(
        workload=st.sampled_from(["CTC", "SDSC", "LLNLThunder"]),
        n_jobs=st.integers(min_value=5, max_value=30),
        seed=st.integers(min_value=0, max_value=3),
        bsld_threshold=st.sampled_from([1.5, 2.0, 3.0]),
        wq_threshold=st.sampled_from([0, 4, None]),
        scheduler=st.sampled_from(["easy", "fcfs"]),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_cache_round_trip_property(
        self, tmp_path, workload, n_jobs, seed, bsld_threshold, wq_threshold, scheduler
    ):
        """Cached rerun of an arbitrary spec == its fresh run, byte for byte."""
        spec = RunSpec(
            workload=workload,
            n_jobs=n_jobs,
            seed=seed,
            scheduler=scheduler,
            policy=PolicySpec.power_aware(bsld_threshold, wq_threshold),
        )
        cache_dir = tmp_path / f"{workload}-{n_jobs}-{seed}-{bsld_threshold}-{wq_threshold}-{scheduler}"
        first = BatchRunner(max_workers=1, cache_dir=cache_dir)
        fresh = first.run([spec])
        assert first.cache_misses == 1
        again = BatchRunner(max_workers=1, cache_dir=cache_dir)
        cached = again.run([spec])
        assert again.cache_hits == 1 and again.cache_misses == 0
        assert as_bytes(fresh) == as_bytes(cached)
        assert fresh == cached

    def test_cache_ignores_mismatched_spec_payload(self, tmp_path):
        spec = RunSpec(workload="CTC", n_jobs=N_JOBS)
        runner = BatchRunner(max_workers=1, cache_dir=tmp_path)
        runner.run([spec])
        (path,) = tmp_path.glob("*.json")
        data = json.loads(path.read_text())
        data["spec"]["beta"] = 0.123  # simulate a stale/foreign entry
        path.write_text(json.dumps(data))
        again = BatchRunner(max_workers=1, cache_dir=tmp_path)
        again.run([spec])
        assert again.cache_misses == 1


class TestRunnerIntegration:
    """The acceptance path: parallel figure grids match serial ones."""

    def test_parallel_threshold_grid_byte_identical(self):
        workloads = ("CTC", "SDSC")
        kwargs = dict(bsld_thresholds=(2.0,), wq_thresholds=(0, None))
        serial_grid = threshold_grid(
            ExperimentRunner(n_jobs=N_JOBS), workloads=workloads, **kwargs
        )
        parallel_grid = threshold_grid(
            ExperimentRunner(n_jobs=N_JOBS, max_workers=4), workloads=workloads, **kwargs
        )
        assert set(serial_grid.runs) == set(parallel_grid.runs)
        for key, serial_run in serial_grid.runs.items():
            a = json.dumps(result_to_dict(serial_run), sort_keys=True)
            b = json.dumps(result_to_dict(parallel_grid.runs[key]), sort_keys=True)
            assert a == b
        for workload in workloads:
            assert serial_grid.baselines[workload] == parallel_grid.baselines[workload]

    def test_runner_run_uses_disk_cache(self, tmp_path):
        """Single-spec run() paths (advisor, figure 6) persist and reuse
        results when the runner has a cache_dir."""
        spec = RunSpec(workload="CTC")
        runner = ExperimentRunner(n_jobs=25, cache_dir=tmp_path)
        result = runner.run(spec)
        assert len(list(tmp_path.glob("*.json"))) == 1
        fresh = ExperimentRunner(n_jobs=25, cache_dir=tmp_path)
        assert fresh.run(spec) == result

    def test_cache_dir_alone_stays_serial(self, tmp_path):
        """A cache-only runner must not spawn one worker per CPU."""
        runner = ExperimentRunner(n_jobs=25, cache_dir=tmp_path)
        assert runner._batch is not None
        assert runner._batch.max_workers == 1

    def test_run_many_populates_runner_cache(self):
        runner = ExperimentRunner(n_jobs=N_JOBS, max_workers=2)
        specs = grid_specs()
        results = runner.run_many(specs)
        assert runner.cached_runs == len(set(specs))
        # follow-up lookups are cache hits returning identical objects
        for spec, result in zip(specs, results, strict=True):
            assert runner.run(spec) is result
