"""Unit tests for :mod:`repro.faults` — plans, the injector, ambience.

Everything here is deterministic by construction: triggers are arrival
counts, randomness is seeded, and the only clock involved (``delay``
faults) is asserted as "at least", never "exactly".
"""

import json

import pytest

from repro.faults import (
    FAULT_KINDS,
    SITES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    FiredFault,
    InjectedCrash,
    InjectedFault,
    active_injector,
    fire,
    injected,
    install,
    torn_write,
    uninstall,
)


class TestFaultRule:
    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule("no.such.site", "crash")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule("worker.slice", "meteor_strike")

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultRule("worker.slice", "crash", at=0)
        with pytest.raises(ValueError, match="count"):
            FaultRule("worker.slice", "crash", count=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            FaultRule("cache.store", "torn_write", fraction=1.0)

    def test_covers_window(self):
        rule = FaultRule("worker.slice", "crash", at=2, count=2)
        assert [rule.covers(hit) for hit in (1, 2, 3, 4)] == [
            False,
            True,
            True,
            False,
        ]

    def test_round_trip(self):
        rule = FaultRule("journal.append", "torn_write", at=3, fraction=0.25)
        assert FaultRule.from_dict(rule.to_dict()) == rule

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault-rule fields"):
            FaultRule.from_dict({"site": "worker.slice", "kind": "crash", "x": 1})


class TestFaultPlan:
    def test_round_trip_json(self):
        plan = FaultPlan.of(
            FaultRule("cache.store", "torn_write", fraction=0.3),
            FaultRule("worker.slice", "delay", at=2, delay_seconds=0.01),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_save_load(self, tmp_path):
        plan = FaultPlan.of(FaultRule("http.read", "connection_reset"))
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="not a fault-plan document"):
            FaultPlan.from_dict({"kind": "something-else"})

    def test_random_is_deterministic_in_seed(self):
        assert FaultPlan.random(7) == FaultPlan.random(7)
        assert FaultPlan.random(7) != FaultPlan.random(8)

    def test_random_respects_site_and_kind_pools(self):
        plan = FaultPlan.random(3, sites=["cache.load"], kinds=["crash"], n_rules=5)
        assert all(rule.site == "cache.load" for rule in plan.rules)
        assert all(rule.kind == "crash" for rule in plan.rules)

    def test_random_does_not_touch_global_rng(self):
        import random

        random.seed(123)
        before = random.random()
        random.seed(123)
        FaultPlan.random(99)
        assert random.random() == before

    def test_rules_for_filters_by_site(self):
        plan = FaultPlan.of(
            FaultRule("cache.store", "crash"),
            FaultRule("cache.load", "crash"),
            FaultRule("cache.store", "delay", at=2),
        )
        assert len(list(plan.rules_for("cache.store"))) == 2
        assert plan.sites == frozenset({"cache.store", "cache.load"})


class TestFaultInjector:
    def test_fire_crash_on_scripted_hit_only(self):
        injector = FaultInjector(FaultPlan.of(FaultRule("worker.slice", "crash", at=2)))
        injector.fire("worker.slice")  # hit 1: clean
        with pytest.raises(InjectedCrash):
            injector.fire("worker.slice")  # hit 2: boom
        injector.fire("worker.slice")  # hit 3: clean again
        assert injector.fired == (
            FiredFault(site="worker.slice", kind="crash", hit=2),
        )

    def test_fire_connection_reset(self):
        injector = FaultInjector(
            FaultPlan.of(FaultRule("http.read", "connection_reset"))
        )
        with pytest.raises(ConnectionResetError):
            injector.fire("http.read")

    def test_injected_faults_are_ordinary_exceptions(self):
        # The whole point: normal error handling absorbs them.
        assert issubclass(InjectedCrash, InjectedFault)
        assert issubclass(InjectedFault, Exception)
        assert not issubclass(InjectedFault, (KeyboardInterrupt, SystemExit))

    def test_fire_delay_then_succeeds(self):
        import time

        injector = FaultInjector(
            FaultPlan.of(FaultRule("cache.load", "delay", delay_seconds=0.02))
        )
        start = time.monotonic()
        injector.fire("cache.load")  # must not raise
        assert time.monotonic() - start >= 0.02
        assert injector.fired[0].kind == "delay"

    def test_torn_write_returns_prefix(self):
        injector = FaultInjector(
            FaultPlan.of(FaultRule("journal.append", "torn_write", fraction=0.5))
        )
        kept = injector.torn_write("journal.append", b"0123456789")
        assert kept == b"01234"
        assert injector.torn_write("journal.append", b"0123456789") == b"0123456789"

    def test_count_window_covers_consecutive_hits(self):
        injector = FaultInjector(
            FaultPlan.of(FaultRule("cache.store", "crash", at=1, count=2))
        )
        for _ in range(2):
            with pytest.raises(InjectedCrash):
                injector.fire("cache.store")
        injector.fire("cache.store")  # third arming passes
        assert injector.hits("cache.store") == 3

    def test_unregistered_site_is_loud(self):
        injector = FaultInjector(FaultPlan())
        with pytest.raises(ValueError, match="unregistered fault site"):
            injector.fire("typo.site")

    def test_replay_is_identical(self):
        plan = FaultPlan.random(42, n_rules=4)
        logs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            log = []
            for site in sorted(SITES):
                for _hit in range(5):
                    try:
                        injector.fire(site)
                        log.append((site, "ok"))
                    except InjectedFault:
                        log.append((site, "crash"))
                    except ConnectionResetError:
                        log.append((site, "reset"))
            logs.append(log)
        assert logs[0] == logs[1]


class TestAmbientInjector:
    def test_module_helpers_are_noops_without_plan(self):
        assert active_injector() is None
        fire("worker.slice")  # must not raise
        data, torn = torn_write("cache.store", b"abc")
        assert (data, torn) == (b"abc", False)

    def test_injected_scopes_installation(self):
        plan = FaultPlan.of(FaultRule("worker.slice", "crash"))
        with injected(plan) as injector:
            assert active_injector() is injector
            with pytest.raises(InjectedCrash):
                fire("worker.slice")
        assert active_injector() is None

    def test_install_refuses_to_stack(self):
        install(FaultPlan())
        try:
            with pytest.raises(RuntimeError, match="already installed"):
                install(FaultPlan())
        finally:
            uninstall()

    def test_uninstall_is_idempotent(self):
        uninstall()
        uninstall()

    def test_ambient_torn_write_reports_flag(self):
        plan = FaultPlan.of(
            FaultRule("journal.append", "torn_write", fraction=0.25)
        )
        with injected(plan):
            kept, torn = torn_write("journal.append", b"abcdefgh")
            assert torn and kept == b"ab"
            kept, torn = torn_write("journal.append", b"abcdefgh")
            assert not torn and kept == b"abcdefgh"

    def test_plan_survives_json_logging(self):
        # A failing CI chaos cell logs its plan; the log must rebuild it.
        plan = FaultPlan.random(1234)
        logged = json.dumps(plan.to_dict())
        assert FaultPlan.from_dict(json.loads(logged)) == plan


class TestSiteRegistry:
    def test_every_fault_kind_is_in_the_vocabulary(self):
        assert set(FAULT_KINDS) == {"crash", "delay", "torn_write", "connection_reset"}

    def test_registered_sites_are_armed_in_real_code(self):
        """Every registered site must appear in a fire()/torn_write() call
        somewhere under src/ — a site with no arming is dead weight that
        silently never fires."""
        from pathlib import Path

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        corpus = "\n".join(
            path.read_text(encoding="utf-8")
            for path in src.rglob("*.py")
            if "faults" not in path.parts
        )
        for site in SITES:
            assert f'"{site}"' in corpus, f"site {site!r} is never armed"
