"""Binary workload cache: round-trips, invalidation, and the XL generator."""

from __future__ import annotations

import os

import pytest

np = pytest.importorskip("numpy")

from repro.workloads.cache import (
    cached_jobs,
    jobs_from_columns,
    jobs_to_columns,
    read_swf_cached,
    swf_cache_path,
)
from repro.workloads.generator import (
    XL_MAX_UTILIZATION,
    generate_workload,
    generate_workload_xl,
)
from repro.workloads.models import trace_model
from repro.workloads.swf import SwfError, read_swf, write_swf


def jobs_key(jobs):
    return [
        (j.job_id, j.submit_time, j.runtime, j.requested_time, j.size,
         j.user_id, j.group_id, j.executable, j.beta)
        for j in jobs
    ]


@pytest.fixture
def trace_file(tmp_path):
    jobs = generate_workload(trace_model("CTC"), 200, seed=5)
    path = tmp_path / "trace.swf"
    write_swf(path, jobs, max_procs=430, extra_header={"Note": "cache-test"})
    return path


class TestColumnCodec:
    def test_round_trip_preserves_every_field(self):
        jobs = generate_workload(trace_model("SDSC"), 150, seed=9)
        jobs[3] = jobs[3].with_beta(0.25)
        back = jobs_from_columns(jobs_to_columns(jobs))
        assert jobs_key(back) == jobs_key(jobs)
        assert back[3].beta == 0.25
        assert back[0].beta is None


class TestSwfCache:
    def test_warm_load_matches_cold_parse(self, trace_file):
        header_cold, jobs_cold = read_swf_cached(trace_file)
        assert swf_cache_path(trace_file).exists()
        header_warm, jobs_warm = read_swf_cached(trace_file)
        assert jobs_key(jobs_warm) == jobs_key(jobs_cold)
        assert header_warm.fields == header_cold.fields
        assert header_warm.max_procs == 430
        # ... and both match the uncached text parser exactly.
        _header, jobs_text = read_swf(trace_file)
        assert jobs_key(jobs_warm) == jobs_key(jobs_text)

    def test_content_change_invalidates(self, trace_file):
        _h, before = read_swf_cached(trace_file)
        # Append one record: the file hash changes, so the stale entry
        # must be ignored and rewritten.
        with open(trace_file, "a", encoding="utf-8") as stream:
            stream.write("9999 9999999 -1 60 4 -1 -1 4 600 -1 1 1 1 1 -1 -1 -1 -1\n")
        _h, after = read_swf_cached(trace_file)
        assert len(after) == len(before) + 1
        assert after[-1].job_id == 9999

    def test_cleaning_config_is_part_of_the_key(self, trace_file):
        with open(trace_file, "a", encoding="utf-8") as stream:
            stream.write("9998 9999999 -1 -5 4 -1 -1 4 600 -1 1 1 1 1 -1 -1 -1 -1\n")
        _h, dropped = read_swf_cached(trace_file, drop_invalid=True)
        with pytest.raises(SwfError):
            read_swf_cached(trace_file, drop_invalid=False)
        # The failed strict parse must not have poisoned the lenient entry.
        _h, again = read_swf_cached(trace_file, drop_invalid=True)
        assert jobs_key(again) == jobs_key(dropped)

    def test_corrupt_entry_is_reparsed(self, trace_file):
        _h, jobs = read_swf_cached(trace_file)
        swf_cache_path(trace_file).write_bytes(b"not an npz")
        _h, again = read_swf_cached(trace_file)
        assert jobs_key(again) == jobs_key(jobs)

    def test_env_kill_switch(self, trace_file, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE", "0")
        _h, jobs = read_swf_cached(trace_file)
        assert not swf_cache_path(trace_file).exists()
        assert len(jobs) == 200


class TestCachedJobs:
    def test_builder_runs_once_per_key(self, tmp_path):
        calls = []

        def builder():
            calls.append(1)
            return generate_workload(trace_model("CTC"), 50, seed=1)

        key = {"kind": "test", "n": 50, "seed": 1}
        first = cached_jobs(tmp_path, key, builder)
        second = cached_jobs(tmp_path, key, builder)
        assert len(calls) == 1
        assert jobs_key(first) == jobs_key(second)
        # A different key misses and re-runs the builder.
        cached_jobs(tmp_path, {**key, "seed": 2}, builder)
        assert len(calls) == 2

    def test_no_cache_dir_builds_directly(self, tmp_path):
        calls = []

        def builder():
            calls.append(1)
            return generate_workload(trace_model("CTC"), 20, seed=1)

        cached_jobs(None, {"kind": "test"}, builder)
        cached_jobs(None, {"kind": "test"}, builder)
        assert len(calls) == 2
        assert not any(tmp_path.iterdir())


class TestXlGenerator:
    def test_deterministic_and_sorted(self):
        a = generate_workload_xl(trace_model("SDSC"), 2000, seed=3)
        b = generate_workload_xl(trace_model("SDSC"), 2000, seed=3)
        assert jobs_key(a) == jobs_key(b)
        assert all(x.submit_time <= y.submit_time for x, y in zip(a, a[1:], strict=False))
        assert jobs_key(a) != jobs_key(generate_workload_xl(trace_model("SDSC"), 2000, seed=4))

    def test_jobs_respect_model_invariants(self):
        model = trace_model("SDSCBlue")
        jobs = generate_workload_xl(model, 3000, seed=1)
        assert len(jobs) == 3000
        for job in jobs:
            assert 1 <= job.size <= model.cpus
            assert job.size % model.sizes.multiple_of == 0 or job.size == 1
            assert job.runtime <= job.requested_time + 1e-9
            assert job.requested_time <= model.estimates.max_request_seconds + 1e-9

    def test_offered_load_is_clamped(self):
        model = trace_model("SDSC")  # calibrated utilization 1.078 > 1
        assert model.arrivals.utilization > 1.0
        jobs = generate_workload_xl(model, 20000, seed=2)
        span = jobs[-1].submit_time - jobs[0].submit_time
        offered = sum(j.size * j.runtime for j in jobs) / (span * model.cpus)
        # The rescaling targets exactly the clamped utilization.
        assert offered == pytest.approx(XL_MAX_UTILIZATION, rel=0.05)

    def test_runs_through_the_source_registry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE_DIR", str(tmp_path))
        from repro.registry import WORKLOAD_SOURCES

        source = WORKLOAD_SOURCES.get("synthetic-xl")
        bundle = source("CTC", 500, 1)
        assert len(bundle.jobs) == 500
        assert bundle.total_cpus == 430
        cache_files = [p for p in os.listdir(tmp_path) if p.endswith(".npz")]
        assert cache_files, "scale-out source should populate the cache dir"
        again = source("CTC", 500, 1)
        assert jobs_key(again.jobs) == jobs_key(bundle.jobs)
