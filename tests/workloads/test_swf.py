"""Unit tests for the SWF reader/writer."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.scheduling.job import Job
from repro.workloads.swf import (
    SwfError,
    SwfHeader,
    iter_swf,
    jobs_from_records,
    read_swf,
    write_swf,
)
from tests.conftest import make_job


def record(
    job_id=1, submit=0, wait=-1, runtime=100, procs=4, requested_procs=4,
    requested_time=200, status=1, user=7,
):
    return (
        job_id, submit, wait, runtime, procs, -1, -1,
        requested_procs, requested_time, -1, status, user, 3, 5, -1, -1, -1, -1,
    )


class TestHeader:
    def test_key_value_parsing(self):
        header = SwfHeader()
        header.add_line("; MaxProcs: 430")
        header.add_line("; Version: 2.2")
        assert header.max_procs == 430
        assert header.fields["Version"] == "2.2"

    def test_freeform_comments(self):
        header = SwfHeader()
        header.add_line("; This trace came from: somewhere with spaces")
        header.add_line(";; just a note")
        assert header.max_procs is None
        assert len(header.comments) == 2

    def test_bad_maxprocs(self):
        header = SwfHeader()
        header.add_line("; MaxProcs: lots")
        with pytest.raises(SwfError, match="MaxProcs"):
            header.max_procs


class TestParsing:
    def test_basic_stream(self):
        text = "; MaxProcs: 8\n" + " ".join(str(f) for f in record()) + "\n"
        rows = list(iter_swf(io.StringIO(text)))
        assert len(rows) == 1
        header, fields = rows[0]
        assert header.max_procs == 8
        assert fields[0] == 1

    def test_blank_lines_skipped(self):
        text = "\n\n" + " ".join(str(f) for f in record()) + "\n\n"
        assert len(list(iter_swf(io.StringIO(text)))) == 1

    def test_wrong_field_count(self):
        with pytest.raises(SwfError, match="expected 18 fields"):
            list(iter_swf(io.StringIO("1 2 3\n")))

    def test_non_numeric_field(self):
        bad = " ".join(["x", *["1"] * 17])
        with pytest.raises(SwfError, match="non-numeric"):
            list(iter_swf(io.StringIO(bad + "\n")))

    def test_float_fields_rounded(self):
        fields = [str(f) for f in record()]
        fields[1] = "10.6"  # float submit time, as some archive logs have
        (_, parsed), = iter_swf(io.StringIO(" ".join(fields) + "\n"))
        assert parsed[1] == 11


class TestJobsFromRecords:
    def test_field_mapping(self):
        (job,) = jobs_from_records([record()])
        assert job.job_id == 1
        assert job.runtime == 100.0
        assert job.requested_time == 200.0
        assert job.size == 4
        assert job.user_id == 7
        assert job.group_id == 3
        assert job.executable == 5

    def test_falls_back_to_requested_procs(self):
        (job,) = jobs_from_records([record(procs=-1, requested_procs=16)])
        assert job.size == 16

    def test_missing_requested_time_uses_runtime(self):
        (job,) = jobs_from_records([record(requested_time=-1)])
        assert job.requested_time == 100.0

    def test_drops_invalid_by_default(self):
        records = [record(), record(job_id=2, runtime=-1), record(job_id=3, procs=0, requested_procs=0)]
        jobs = jobs_from_records(records)
        assert [job.job_id for job in jobs] == [1]

    def test_strict_mode_raises(self):
        with pytest.raises(SwfError, match="unusable"):
            jobs_from_records([record(runtime=-1)], drop_invalid=False)

    def test_clamps_runtime_to_request(self):
        (job,) = jobs_from_records([record(runtime=500, requested_time=200)])
        assert job.runtime == 200.0

    def test_clamp_disabled(self):
        (job,) = jobs_from_records(
            [record(runtime=500, requested_time=200)], clamp_runtime=False
        )
        assert job.runtime == 500.0

    def test_sorts_by_submit_time(self):
        records = [record(job_id=2, submit=100), record(job_id=1, submit=50)]
        jobs = jobs_from_records(records)
        assert [job.job_id for job in jobs] == [1, 2]


class TestEdgeCases:
    """Archive-trace warts: ``-1`` sentinels, zero runtimes, disorder."""

    def test_all_metadata_sentinels(self):
        """A record with every optional field at the -1 sentinel still loads."""
        raw = (9, 0, -1, 100, 4, -1, -1, -1, 200, -1, -1, -1, -1, -1, -1, -1, -1, -1)
        (job,) = jobs_from_records([raw])
        assert job.job_id == 9
        assert job.user_id == -1
        assert job.group_id == -1
        assert job.executable == -1

    def test_both_proc_fields_sentinel_drops_record(self):
        """allocated=-1 and requested_procs=-1 leave no usable size."""
        assert jobs_from_records([record(procs=-1, requested_procs=-1)]) == []
        with pytest.raises(SwfError, match="unusable"):
            jobs_from_records([record(procs=-1, requested_procs=-1)], drop_invalid=False)

    def test_zero_runtime_job_is_kept(self):
        """Zero runtime (crashed-at-start entries) is valid, not invalid."""
        (job,) = jobs_from_records([record(runtime=0)])
        assert job.runtime == 0.0
        assert job.requested_time == 200.0

    def test_zero_runtime_and_no_request_gets_unit_request(self):
        """requested_time must stay positive even when runtime is zero."""
        (job,) = jobs_from_records([record(runtime=0, requested_time=-1)])
        assert job.runtime == 0.0
        assert job.requested_time == 1.0

    def test_zero_runtime_job_simulates(self):
        from repro.cluster.machine import Machine
        from repro.core.frequency_policy import FixedGearPolicy
        from repro.scheduling.easy import EasyBackfilling

        jobs = jobs_from_records(
            [record(job_id=1, runtime=0, requested_time=-1), record(job_id=2, submit=5)]
        )
        result = EasyBackfilling(Machine("test", 8), FixedGearPolicy()).run(jobs)
        assert result.job_count == 2
        zero = result.outcomes[0]
        assert zero.finish_time == zero.start_time

    def test_out_of_order_submits_are_restored(self):
        """Records in archive order, not submit order, come out sorted."""
        records = [
            record(job_id=3, submit=300),
            record(job_id=1, submit=100),
            record(job_id=2, submit=200),
        ]
        jobs = jobs_from_records(records)
        assert [job.job_id for job in jobs] == [1, 2, 3]
        submits = [job.submit_time for job in jobs]
        assert submits == sorted(submits)

    def test_equal_submits_tie_break_by_job_id(self):
        records = [record(job_id=5, submit=100), record(job_id=4, submit=100)]
        jobs = jobs_from_records(records)
        assert [job.job_id for job in jobs] == [4, 5]

    def test_out_of_order_stream_simulates(self, tmp_path):
        """An unsorted SWF file runs through validate_jobs without tripping."""
        from repro.cluster.machine import Machine
        from repro.core.frequency_policy import FixedGearPolicy
        from repro.scheduling.fcfs import FcfsScheduler

        lines = [
            " ".join(str(f) for f in record(job_id=2, submit=500)),
            " ".join(str(f) for f in record(job_id=1, submit=0)),
        ]
        path = tmp_path / "unsorted.swf"
        path.write_text("; MaxProcs: 8\n" + "\n".join(lines) + "\n")
        _, jobs = read_swf(path)
        result = FcfsScheduler(Machine("test", 8), FixedGearPolicy()).run(jobs)
        assert result.job_count == 2

    def test_negative_submit_dropped(self):
        assert jobs_from_records([record(submit=-7)]) == []


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, requested=900.0, size=4),
            make_job(2, submit=60.0, runtime=50.0, requested=450.0, size=2),
        ]
        path = tmp_path / "trace.swf"
        write_swf(path, jobs, max_procs=8, extra_header={"Site": "test"})
        header, parsed = read_swf(path)
        assert header.max_procs == 8
        assert header.fields["Site"] == "test"
        assert len(parsed) == 2
        for original, roundtripped in zip(jobs, parsed, strict=True):
            assert roundtripped.job_id == original.job_id
            assert roundtripped.submit_time == pytest.approx(original.submit_time)
            assert roundtripped.runtime == pytest.approx(original.runtime)
            assert roundtripped.requested_time == pytest.approx(original.requested_time)
            assert roundtripped.size == original.size

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**6),  # submit
                st.integers(min_value=0, max_value=10**5),  # runtime
                st.integers(min_value=1, max_value=10**5),  # extra request
                st.integers(min_value=1, max_value=512),  # size
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_roundtrip_property(self, tmp_path_factory, raw):
        jobs = [
            Job(
                job_id=index + 1,
                submit_time=float(sorted(r[0] for r in raw)[index]),
                runtime=float(raw[index][1]),
                requested_time=float(raw[index][1] + raw[index][2]),
                size=raw[index][3],
            )
            for index in range(len(raw))
        ]
        path = tmp_path_factory.mktemp("swf") / "roundtrip.swf"
        write_swf(path, jobs, max_procs=512)
        _, parsed = read_swf(path)
        assert len(parsed) == len(jobs)
        by_id = {job.job_id: job for job in parsed}
        for job in jobs:
            match = by_id[job.job_id]
            assert match.runtime == pytest.approx(job.runtime)
            assert match.size == job.size


class TestEndToEnd:
    def test_parsed_trace_simulates(self, tmp_path):
        from repro.cluster.machine import Machine
        from repro.core.frequency_policy import FixedGearPolicy
        from repro.scheduling.easy import EasyBackfilling
        from repro.workloads.generator import load_workload

        jobs = load_workload("SDSC", n_jobs=100)
        path = tmp_path / "sdsc.swf"
        write_swf(path, jobs, max_procs=128)
        _, parsed = read_swf(path)
        result = EasyBackfilling(Machine("SDSC", 128), FixedGearPolicy()).run(parsed)
        assert result.job_count == 100
