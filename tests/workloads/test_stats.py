"""Unit tests for workload statistics."""

import pytest

from repro.workloads.generator import load_workload
from repro.workloads.stats import workload_stats
from tests.conftest import make_job


class TestWorkloadStats:
    def test_basic_counts(self):
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, size=1),
            make_job(2, submit=100.0, runtime=200.0, size=4),
        ]
        stats = workload_stats(jobs, total_cpus=8)
        assert stats.jobs == 2
        assert stats.serial_fraction == 0.5
        assert stats.total_area == 100.0 + 800.0
        assert stats.span == 100.0

    def test_offered_load(self):
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, size=4),
            make_job(2, submit=100.0, runtime=100.0, size=4),
        ]
        stats = workload_stats(jobs, total_cpus=8)
        assert stats.offered_load_per_cpu == pytest.approx(800.0 / (100.0 * 8))

    def test_load_requires_cpus_and_span(self):
        jobs = [make_job(1), make_job(2, submit=10.0)]
        assert workload_stats(jobs).offered_load_per_cpu is None
        single = [make_job(1)]
        assert workload_stats(single, total_cpus=8).offered_load_per_cpu is None

    def test_overestimation_ratio(self):
        jobs = [make_job(1, runtime=100.0, requested=500.0)]
        stats = workload_stats(jobs)
        assert stats.overestimation["mean"] == pytest.approx(5.0)

    def test_zero_runtime_jobs_skipped_in_ratio(self):
        jobs = [
            make_job(1, runtime=0.0, requested=100.0),
            make_job(2, submit=1.0, runtime=100.0, requested=200.0),
        ]
        assert workload_stats(jobs).overestimation["mean"] == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            workload_stats([])

    def test_render_contains_key_lines(self):
        stats = workload_stats(load_workload("CTC", 100), total_cpus=430)
        text = stats.render()
        assert "jobs: 100" in text
        assert "serial fraction" in text
        assert "offered load" in text
        assert "runtime [s]" in text
