"""Unit and property tests for the synthetic workload generator."""

import math
from random import Random

import pytest

from repro.scheduling.job import validate_jobs
from repro.workloads.generator import (
    generate_workload,
    load_workload,
    sample_estimate,
    sample_size,
)
from repro.workloads.models import (
    EstimateModel,
    SizeModel,
    TRACE_MODELS,
    WORKLOAD_NAMES,
    trace_model,
)

N = 400


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = load_workload("CTC", N, seed=5)
        b = load_workload("CTC", N, seed=5)
        assert a == b

    def test_different_seed_different_trace(self):
        assert load_workload("CTC", N, seed=5) != load_workload("CTC", N, seed=6)

    def test_default_seed_stable(self):
        assert load_workload("CTC", 50) == load_workload("CTC", 50)

    def test_prefix_insensitive_to_length(self):
        """Draw streams are per-component, so job i's size/runtime don't
        depend on how many jobs follow (arrival pacing may differ)."""
        short = load_workload("SDSC", 50, seed=3)
        long = load_workload("SDSC", 100, seed=3)
        for a, b in zip(short, long, strict=False):
            assert a.runtime == b.runtime
            assert a.size == b.size
            assert a.requested_time == b.requested_time


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestPerWorkloadValidity:
    def test_trace_is_simulatable(self, name):
        jobs = load_workload(name, N)
        validate_jobs(jobs, trace_model(name).cpus)

    def test_ids_sequential(self, name):
        jobs = load_workload(name, N)
        assert [job.job_id for job in jobs] == list(range(1, N + 1))

    def test_submits_sorted_nonnegative(self, name):
        jobs = load_workload(name, N)
        submits = [job.submit_time for job in jobs]
        assert submits == sorted(submits)
        assert submits[0] >= 0.0

    def test_runtimes_within_request(self, name):
        for job in load_workload(name, N):
            assert 0.0 < job.runtime <= job.requested_time + 1e-9

    def test_sizes_within_machine(self, name):
        model = trace_model(name)
        cap = max(model.sizes.min_size, int(model.cpus * model.sizes.max_fraction))
        for job in load_workload(name, N):
            assert model.sizes.min_size <= job.size <= cap


class TestWorkloadCharacter:
    def test_blue_has_no_serials_and_node_granularity(self):
        for job in load_workload("SDSCBlue", N):
            assert job.size >= 8
            assert job.size % 8 == 0

    def test_ctc_serial_fraction(self):
        jobs = load_workload("CTC", 1000)
        serial = sum(1 for job in jobs if job.size == 1) / len(jobs)
        assert 0.23 <= serial <= 0.43  # model: 33%

    def test_thunder_mostly_short_jobs(self):
        jobs = load_workload("LLNLThunder", 1000)
        short = sum(1 for job in jobs if job.runtime <= 600.0) / len(jobs)
        assert short >= 0.55  # model: ~65%

    def test_atlas_jobs_are_large(self):
        jobs = load_workload("LLNLAtlas", 1000)
        mean_size = sum(job.size for job in jobs) / len(jobs)
        assert mean_size > 50

    def test_estimates_rounded_to_grid(self):
        model = trace_model("CTC")
        grid = model.estimates.grid_seconds
        for job in load_workload("CTC", 200):
            # estimates land on the human grid unless capped at the site max
            on_grid = math.isclose(job.requested_time % grid, 0.0, abs_tol=1e-6) or math.isclose(
                job.requested_time % grid, grid, abs_tol=1e-6
            )
            capped = job.requested_time == model.estimates.max_request_seconds
            assert on_grid or capped

    def test_offered_load_matches_target(self):
        """The rescaling step pins offered load to the calibrated value."""
        for name in ("CTC", "SDSC", "LLNLThunder"):
            model = trace_model(name)
            jobs = load_workload(name, 2000)
            span = jobs[-1].submit_time - jobs[0].submit_time
            offered = sum(job.area for job in jobs) / (span * model.cpus)
            assert offered == pytest.approx(model.arrivals.utilization, rel=0.02)

    def test_utilization_override(self):
        jobs = generate_workload(trace_model("CTC"), 800, utilization_override=0.3)
        span = jobs[-1].submit_time - jobs[0].submit_time
        offered = sum(job.area for job in jobs) / (span * 430)
        assert offered == pytest.approx(0.3, rel=0.05)


class TestSampleSize:
    MODEL = SizeModel(serial_fraction=0.3, log2_mean=3.0, log2_sigma=1.5, max_fraction=0.5)

    def test_bounds(self):
        rng = Random(1)
        for _ in range(500):
            size = sample_size(self.MODEL, 128, rng)
            assert 1 <= size <= 64

    def test_pow2_bias_visible(self):
        rng = Random(2)
        biased = SizeModel(
            serial_fraction=0.0, log2_mean=3.0, log2_sigma=1.5, max_fraction=1.0, pow2_bias=1.0
        )
        sizes = [sample_size(biased, 1024, rng) for _ in range(300)]
        assert all(size & (size - 1) == 0 for size in sizes)  # powers of two

    def test_multiple_of(self):
        rng = Random(3)
        node_model = SizeModel(
            serial_fraction=0.0, log2_mean=4.0, log2_sigma=1.0,
            min_size=8, multiple_of=8, max_fraction=0.5,
        )
        for _ in range(300):
            size = sample_size(node_model, 1152, rng)
            assert size % 8 == 0
            assert size >= 8

    def test_wide_jobs(self):
        rng = Random(4)
        wide_model = SizeModel(
            serial_fraction=0.0, log2_mean=2.0, log2_sigma=0.5, max_fraction=0.75,
            wide_fraction=1.0, wide_lo=0.3, wide_hi=0.75,
        )
        for _ in range(200):
            size = sample_size(wide_model, 1000, rng)
            assert 300 <= size <= 750


class TestSampleEstimate:
    MODEL = EstimateModel(grid_seconds=900.0, max_request_seconds=18000.0)

    def test_at_least_runtime_and_grid(self):
        rng = Random(5)
        for _ in range(300):
            estimate = sample_estimate(self.MODEL, 1234.0, rng)
            assert estimate >= 1234.0
            assert estimate >= 900.0

    def test_cap_respected(self):
        rng = Random(6)
        for _ in range(100):
            estimate = sample_estimate(self.MODEL, 200.0, rng)
            assert estimate <= 18000.0 or estimate == pytest.approx(200.0)

    def test_accurate_users_request_grid_rounded_runtime(self):
        rng = Random(7)
        exact = EstimateModel(accurate_fraction=1.0, grid_seconds=900.0)
        assert sample_estimate(exact, 1000.0, rng) == 1800.0  # ceil to grid


class TestErrors:
    def test_bad_n_jobs(self):
        with pytest.raises(ValueError, match="n_jobs"):
            generate_workload(trace_model("CTC"), 0)

    def test_bad_utilization_override(self):
        with pytest.raises(ValueError, match="utilization"):
            generate_workload(trace_model("CTC"), 10, utilization_override=0.0)

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            load_workload("NotATrace", 10)


class TestCalibrationAnchors:
    """The headline calibration result: baseline avg BSLD per Table 1.

    Uses the full 5000-job traces (a few seconds in total); tolerances
    are generous since this guards against calibration regressions, not
    noise."""

    @pytest.mark.parametrize(
        "name,target,tolerance",
        [
            ("CTC", 4.66, 0.8),
            ("SDSC", 24.91, 4.0),
            ("SDSCBlue", 5.15, 0.8),
            ("LLNLThunder", 1.0, 0.05),
            ("LLNLAtlas", 1.08, 0.1),
        ],
    )
    def test_baseline_bsld_near_paper(self, name, target, tolerance):
        from repro.cluster.machine import Machine
        from repro.core.frequency_policy import FixedGearPolicy
        from repro.scheduling.easy import EasyBackfilling

        jobs = load_workload(name, 5000)
        machine = Machine(name, trace_model(name).cpus)
        result = EasyBackfilling(machine, FixedGearPolicy()).run(jobs)
        assert abs(result.average_bsld() - target) <= tolerance
