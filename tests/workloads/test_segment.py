"""Unit tests for trace segment selection."""

import pytest

from repro.workloads.generator import load_workload
from repro.workloads.segment import (
    busiest_segment,
    rebase_times,
    segment_load,
    select_segment,
)
from tests.conftest import make_job


def trace(n=20, gap=100.0):
    return [make_job(i + 1, submit=i * gap, runtime=500.0, size=2) for i in range(n)]


class TestRebase:
    def test_shifts_to_zero(self):
        jobs = [make_job(1, submit=500.0), make_job(2, submit=700.0)]
        rebased = rebase_times(jobs)
        assert rebased[0].submit_time == 0.0
        assert rebased[1].submit_time == 200.0

    def test_already_at_zero_is_identity(self):
        jobs = trace(3)
        assert rebase_times(jobs) == jobs

    def test_empty(self):
        assert rebase_times([]) == []


class TestSelectSegment:
    def test_basic_window(self):
        segment = select_segment(trace(20), 5, 10)
        assert len(segment) == 10
        assert segment[0].submit_time == 0.0  # rebased
        assert segment[0].job_id == 6

    def test_no_rebase(self):
        segment = select_segment(trace(20), 5, 10, rebase=False)
        assert segment[0].submit_time == 500.0

    def test_renumber(self):
        segment = select_segment(trace(20), 5, 10, renumber=True)
        assert [job.job_id for job in segment] == list(range(1, 11))

    @pytest.mark.parametrize(
        "start,count,match",
        [(-1, 5, "start_index"), (0, 0, "count"), (18, 5, "exceeds")],
    )
    def test_validation(self, start, count, match):
        with pytest.raises(ValueError, match=match):
            select_segment(trace(20), start, count)


class TestSegmentLoad:
    def test_constant_trace(self):
        jobs = trace(11, gap=100.0)  # span 1000, area 11*1000
        assert segment_load(jobs, total_cpus=10) == pytest.approx(11000.0 / 10000.0)

    def test_zero_span_is_infinite(self):
        jobs = [make_job(1, submit=5.0), make_job(2, submit=5.0)]
        assert segment_load(jobs, 4) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            segment_load([], 4)
        with pytest.raises(ValueError, match="total_cpus"):
            segment_load(trace(3), 0)


class TestBusiestSegment:
    def test_finds_the_dense_stretch(self):
        sparse = [make_job(i + 1, submit=i * 1000.0, runtime=100.0, size=1) for i in range(20)]
        dense = [
            make_job(100 + i, submit=20000.0 + i * 10.0, runtime=100.0, size=8)
            for i in range(20)
        ]
        tail = [make_job(200 + i, submit=40000.0 + i * 1000.0, runtime=100.0, size=1)
                for i in range(20)]
        jobs = sparse + dense + tail
        start, segment = busiest_segment(jobs, count=20, total_cpus=8, stride=1)
        assert 15 <= start <= 25  # the window overlapping the dense burst
        assert len(segment) == 20
        assert segment[0].submit_time == 0.0

    def test_whole_trace_window(self):
        jobs = trace(10)
        start, segment = busiest_segment(jobs, count=10, total_cpus=4)
        assert start == 0
        assert len(segment) == 10

    def test_too_large_window_rejected(self):
        with pytest.raises(ValueError, match="cannot take"):
            busiest_segment(trace(5), count=6, total_cpus=4)

    def test_on_synthetic_trace(self):
        jobs = load_workload("CTC", 400)
        start, segment = busiest_segment(jobs, count=100, total_cpus=430)
        assert 0 <= start <= 300
        # the busiest window is at least as loaded as the whole trace
        assert segment_load(segment, 430) >= segment_load(jobs, 430) * 0.9
