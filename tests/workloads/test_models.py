"""Validation tests for the trace-model dataclasses."""

import pytest

from repro.workloads.models import (
    ArrivalModel,
    EstimateModel,
    PAPER_BASELINE_BSLD,
    RuntimeClass,
    SizeModel,
    TRACE_MODELS,
    TraceModel,
    WORKLOAD_NAMES,
    trace_model,
)


class TestRuntimeClass:
    def test_valid(self):
        cls = RuntimeClass(weight=1.0, log_mean=7.0, log_sigma=1.0, cap_seconds=3600.0)
        assert cls.min_seconds == 30.0

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError, match="weight"):
            RuntimeClass(weight=0.0, log_mean=7.0, log_sigma=1.0, cap_seconds=3600.0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError, match="log_sigma"):
            RuntimeClass(weight=1.0, log_mean=7.0, log_sigma=-1.0, cap_seconds=3600.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="min_seconds"):
            RuntimeClass(weight=1.0, log_mean=7.0, log_sigma=1.0, cap_seconds=10.0, min_seconds=20.0)


class TestSizeModel:
    def good(self, **kw):
        base = dict(serial_fraction=0.2, log2_mean=3.0, log2_sigma=1.0)
        base.update(kw)
        return SizeModel(**base)

    def test_valid(self):
        assert self.good().pow2_bias == 0.6

    @pytest.mark.parametrize(
        "kw,match",
        [
            (dict(serial_fraction=1.2), "serial_fraction"),
            (dict(min_size=0), "min_size"),
            (dict(multiple_of=0), "multiple_of"),
            (dict(max_fraction=0.0), "max_fraction"),
            (dict(pow2_bias=2.0), "pow2_bias"),
            (dict(wide_fraction=0.9), "wide_fraction"),
            (dict(wide_lo=0.8, wide_hi=0.5), "wide_lo"),
        ],
    )
    def test_rejections(self, kw, match):
        with pytest.raises(ValueError, match=match):
            self.good(**kw)

    def test_serial_with_min_size_conflict(self):
        with pytest.raises(ValueError, match="incompatible"):
            SizeModel(serial_fraction=0.1, log2_mean=3.0, log2_sigma=1.0, min_size=8)


class TestEstimateModel:
    def test_defaults(self):
        model = EstimateModel()
        assert model.grid_seconds == 900.0

    @pytest.mark.parametrize(
        "kw,match",
        [
            (dict(accurate_fraction=-0.1), "accurate_fraction"),
            (dict(grid_seconds=0.0), "grid_seconds"),
            (dict(max_request_seconds=0.0), "max_request_seconds"),
        ],
    )
    def test_rejections(self, kw, match):
        with pytest.raises(ValueError, match=match):
            EstimateModel(**kw)


class TestArrivalModel:
    @pytest.mark.parametrize(
        "kw,match",
        [
            (dict(utilization=0.0), "utilization"),
            (dict(utilization=2.0), "utilization"),
            (dict(utilization=0.5, burst_shape=0.0), "burst_shape"),
            (dict(utilization=0.5, daily_amplitude=1.0), "daily_amplitude"),
            (dict(utilization=0.5, peak_hour=24.0), "peak_hour"),
        ],
    )
    def test_rejections(self, kw, match):
        with pytest.raises(ValueError, match=match):
            ArrivalModel(**kw)


class TestTraceModel:
    def test_runtime_weights_normalised(self):
        model = trace_model("CTC")
        assert sum(model.runtime_weights) == pytest.approx(1.0)

    def test_rejects_empty_runtime_mixture(self):
        ctc = trace_model("CTC")
        with pytest.raises(ValueError, match="runtime class"):
            TraceModel(name="x", cpus=8, sizes=ctc.sizes, runtimes=())

    def test_rejects_min_size_above_machine(self):
        blue = trace_model("SDSCBlue")
        with pytest.raises(ValueError, match="min_size"):
            TraceModel(name="x", cpus=4, sizes=blue.sizes, runtimes=blue.runtimes)

    def test_rejects_zero_cpus(self):
        ctc = trace_model("CTC")
        with pytest.raises(ValueError, match="cpus"):
            TraceModel(name="x", cpus=0, sizes=ctc.sizes, runtimes=ctc.runtimes)


class TestRegistry:
    def test_five_paper_workloads(self):
        assert set(WORKLOAD_NAMES) == {"CTC", "SDSC", "SDSCBlue", "LLNLThunder", "LLNLAtlas"}

    def test_paper_cpu_counts(self):
        expected = {"CTC": 430, "SDSC": 128, "SDSCBlue": 1152, "LLNLThunder": 4008, "LLNLAtlas": 9216}
        for name, cpus in expected.items():
            assert TRACE_MODELS[name].cpus == cpus

    def test_paper_baseline_targets(self):
        assert PAPER_BASELINE_BSLD["SDSC"] == 24.91
        assert set(PAPER_BASELINE_BSLD) == set(WORKLOAD_NAMES)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            trace_model("BlueGene")

    def test_blue_is_node_granular(self):
        blue = trace_model("SDSCBlue")
        assert blue.sizes.min_size == 8
        assert blue.sizes.multiple_of == 8
        assert blue.sizes.serial_fraction == 0.0
