"""Unit tests for flurry removal."""

from dataclasses import replace

import pytest

from repro.workloads.cleaning import FlurryFilter, remove_flurries
from tests.conftest import make_job


def flurry(user, start, count, gap=10.0, runtime=100.0, size=2, first_id=1000):
    jobs = []
    for index in range(count):
        job = make_job(
            job_id=first_id + index,
            submit=start + index * gap,
            runtime=runtime,
            size=size,
        )
        jobs.append(replace(job, user_id=user))
    return jobs


class TestFlurryFilter:
    def test_similarity(self):
        config = FlurryFilter(similarity=0.2)
        a = replace(make_job(1, runtime=100.0, size=2), user_id=1)
        assert config.similar(a, replace(make_job(2, runtime=110.0, size=2), user_id=1))
        assert not config.similar(a, replace(make_job(3, runtime=200.0, size=2), user_id=1))
        assert not config.similar(a, replace(make_job(4, runtime=100.0, size=4), user_id=1))

    @pytest.mark.parametrize(
        "kw,match",
        [
            (dict(window_seconds=0.0), "window_seconds"),
            (dict(max_burst=0), "max_burst"),
            (dict(similarity=1.5), "similarity"),
            (dict(keep_every=0), "keep_every"),
        ],
    )
    def test_validation(self, kw, match):
        with pytest.raises(ValueError, match=match):
            FlurryFilter(**kw)


class TestRemoveFlurries:
    def test_big_flurry_thinned(self):
        jobs = flurry(user=1, start=0.0, count=100)
        kept = remove_flurries(jobs, FlurryFilter(max_burst=10, keep_every=10))
        assert len(kept) < len(jobs)
        # the first max_burst jobs always survive, later ones are sampled
        assert len(kept) >= 10

    def test_normal_activity_untouched(self):
        jobs = flurry(user=1, start=0.0, count=5)
        assert remove_flurries(jobs, FlurryFilter(max_burst=10)) == jobs

    def test_spread_out_jobs_untouched(self):
        # Same user, many similar jobs, but hours apart: not a flurry.
        jobs = flurry(user=1, start=0.0, count=30, gap=7200.0)
        assert remove_flurries(jobs, FlurryFilter(max_burst=10)) == jobs

    def test_dissimilar_jobs_untouched(self):
        jobs = []
        for index in range(30):
            job = make_job(job_id=index + 1, submit=index * 10.0,
                           runtime=100.0 * (index + 1), size=1 + index % 8)
            jobs.append(replace(job, user_id=1))
        assert remove_flurries(jobs, FlurryFilter(max_burst=10)) == jobs

    def test_unknown_users_never_flurries(self):
        jobs = flurry(user=-1, start=0.0, count=100)
        assert remove_flurries(jobs, FlurryFilter(max_burst=5)) == jobs

    def test_two_users_independent(self):
        a = flurry(user=1, start=0.0, count=50, first_id=1000)
        b = flurry(user=2, start=0.0, count=5, first_id=5000)
        merged = sorted(a + b, key=lambda job: (job.submit_time, job.job_id))
        kept = remove_flurries(merged, FlurryFilter(max_burst=10, keep_every=10))
        assert sum(1 for job in kept if job.user_id == 2) == 5  # untouched
        assert sum(1 for job in kept if job.user_id == 1) < 50

    def test_order_preserved(self):
        jobs = flurry(user=1, start=0.0, count=60)
        kept = remove_flurries(jobs, FlurryFilter(max_burst=10, keep_every=5))
        ids = [job.job_id for job in kept]
        assert ids == sorted(ids)

    def test_default_config(self):
        jobs = flurry(user=1, start=0.0, count=200, gap=1.0)
        kept = remove_flurries(jobs)
        assert len(kept) < 200
