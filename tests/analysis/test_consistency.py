"""Codec/cache-key/schema-snapshot cross-consistency checks.

The tamper tests mirror just the files the consistency layer reads into
a throwaway package root, then break one link in the chain and assert
the checker notices — these are the exact silent-corruption paths the
layer exists to close.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

from repro.analysis.consistency import (
    collect_schema,
    load_snapshot,
    run_consistency,
    update_snapshot,
)

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

_MIRRORED = (
    "serialize.py",
    "experiments/config.py",
    "cluster/power.py",
    "analysis/schema_snapshot.json",
)


def _mirror(tmp_path: Path) -> Path:
    for rel in _MIRRORED:
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(SRC_ROOT / rel, target)
    return tmp_path


def test_repo_is_consistent():
    assert run_consistency(SRC_ROOT) == []


def test_snapshot_matches_collected_schema():
    assert load_snapshot(SRC_ROOT) == collect_schema(SRC_ROOT)


def test_dropped_encoder_key_is_caught(tmp_path):
    root = _mirror(tmp_path)
    serialize = root / "serialize.py"
    text = serialize.read_text()
    assert '"seed": spec.seed,' in text
    serialize.write_text(text.replace('"seed": spec.seed,', ""))
    findings = run_consistency(root)
    assert any(
        f.rule == "codec-field" and "RunSpec.seed" in f.message and "spec_to_dict" in f.message
        for f in findings
    )


def test_dropped_decoder_field_is_caught(tmp_path):
    root = _mirror(tmp_path)
    serialize = root / "serialize.py"
    text = serialize.read_text()
    assert 'seed=_get(data, "seed", ""),' in text
    serialize.write_text(text.replace('seed=_get(data, "seed", ""),', ""))
    findings = run_consistency(root)
    assert any(
        f.rule == "codec-field" and "RunSpec.seed" in f.message and "spec_from_dict" in f.message
        for f in findings
    )


def test_broken_cache_key_chain_is_caught(tmp_path):
    root = _mirror(tmp_path)
    serialize = root / "serialize.py"
    text = serialize.read_text()
    assert "spec_json(spec).encode" in text
    serialize.write_text(text.replace("spec_json(spec).encode", "repr(spec).encode"))
    findings = run_consistency(root)
    assert any(f.rule == "cache-key-chain" for f in findings)


def test_schema_drift_is_caught(tmp_path):
    root = _mirror(tmp_path)
    snapshot_path = root / "analysis" / "schema_snapshot.json"
    snapshot = json.loads(snapshot_path.read_text())
    snapshot["classes"]["RunSpec"] = sorted(
        [*snapshot["classes"]["RunSpec"], "phantom_field"]
    )
    snapshot_path.write_text(json.dumps(snapshot))
    findings = run_consistency(root)
    assert any(f.rule == "schema-snapshot" for f in findings)


def test_update_snapshot_refuses_without_version_bump(tmp_path):
    root = _mirror(tmp_path)
    snapshot_path = root / "analysis" / "schema_snapshot.json"
    snapshot = json.loads(snapshot_path.read_text())
    snapshot["classes"]["RunSpec"] = ["something_else"]
    snapshot_path.write_text(json.dumps(snapshot))
    _path, written = update_snapshot(root)
    assert not written


def test_update_snapshot_allows_after_version_bump(tmp_path):
    root = _mirror(tmp_path)
    snapshot_path = root / "analysis" / "schema_snapshot.json"
    snapshot = json.loads(snapshot_path.read_text())
    snapshot["classes"]["RunSpec"] = ["something_else"]
    snapshot_path.write_text(json.dumps(snapshot))
    serialize = root / "serialize.py"
    version = json.loads(snapshot_path.read_text())["format_version"]
    serialize.write_text(
        serialize.read_text().replace(
            f"FORMAT_VERSION = {version}", f"FORMAT_VERSION = {version + 1}"
        )
    )
    _path, written = update_snapshot(root)
    assert written
    assert load_snapshot(root) == collect_schema(root)
    assert run_consistency(root) == []
