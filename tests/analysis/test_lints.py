"""The custom AST lint rules: every seeded fixture must fire its rule.

Each directory under ``fixtures/`` is a miniature package root carrying
exactly one deliberate violation; the lints must flag it (and nothing
else), and ``scripts/check_invariants.py --root`` must exit non-zero on
it while staying clean on the real repository.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lints import lint_file, run_lints

TESTS_DIR = Path(__file__).resolve().parent
FIXTURES = TESTS_DIR / "fixtures"
REPO_ROOT = TESTS_DIR.parent.parent
CHECKER = REPO_ROOT / "scripts" / "check_invariants.py"

#: fixture directory -> the one rule it seeds a violation of.
SEEDED = {
    "no_wallclock": "no-wallclock",
    "no_unseeded_rng": "no-unseeded-rng",
    "frozen_dataclass": "frozen-dataclass",
    "no_silent_except": "no-silent-except",
    "no_float_eq": "no-float-eq",
    "registry_module": "registry-module",
}


@pytest.mark.parametrize("fixture,rule", sorted(SEEDED.items()))
def test_seeded_fixture_fires_its_rule(fixture, rule):
    findings = run_lints(FIXTURES / fixture)
    assert findings, f"fixture {fixture!r} produced no findings"
    assert {f.rule for f in findings} == {rule}


@pytest.mark.parametrize("fixture", sorted(SEEDED))
def test_checker_exits_nonzero_on_fixture(fixture):
    proc = subprocess.run(
        [sys.executable, str(CHECKER), "--root", str(FIXTURES / fixture)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode != 0, proc.stdout + proc.stderr
    assert SEEDED[fixture] in proc.stdout


def test_checker_exits_zero_on_repo():
    proc = subprocess.run(
        [sys.executable, str(CHECKER)], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "invariant analysis clean" in proc.stdout


def test_installed_package_is_clean():
    assert run_lints() == []


def _mini_root(tmp_path: Path, rel: str, source: str) -> Path:
    (tmp_path / "__init__.py").write_text("")
    (tmp_path / "registry.py").write_text("")
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return tmp_path


def test_waiver_comment_suppresses_the_named_rule(tmp_path):
    root = _mini_root(
        tmp_path, "sim/clocky.py", "import time  # det: allow(no-wallclock)\n"
    )
    assert run_lints(root) == []


def test_waiver_for_a_different_rule_does_not_suppress(tmp_path):
    root = _mini_root(
        tmp_path, "sim/clocky.py", "import time  # det: allow(no-float-eq)\n"
    )
    assert [f.rule for f in run_lints(root)] == ["no-wallclock"]


def test_type_checking_imports_are_exempt(tmp_path):
    source = (
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from random import Random\n"
        "    import time\n"
    )
    root = _mini_root(tmp_path, "scheduling/annotations_only.py", source)
    assert run_lints(root) == []


def test_rules_only_apply_to_the_engine_core(tmp_path):
    # The same violations outside sim/scheduling/cluster/power are fine:
    # experiment drivers may time themselves and draw seeds.
    root = _mini_root(tmp_path, "experiments/driver.py", "import time\nimport random\n")
    assert run_lints(root) == []


def test_lint_file_reports_path_and_line(tmp_path):
    target = tmp_path / "clocky.py"
    target.write_text("import time\n")
    findings = lint_file(target, "sim/clocky.py")
    assert [f.line for f in findings] == [1]
    assert "sim/clocky.py:1" in str(findings[0])
    assert "wall clock" in str(findings[0])
