"""Seeded violation: a registry whose lazy modules tuple misses a registrant."""


class Registry:
    def __init__(self, kind, *, modules=()):
        self.kind = kind
        self.modules = modules

    def register(self, name):
        def decorator(obj):
            return obj

        return decorator


THINGS = Registry("thing", modules=())
