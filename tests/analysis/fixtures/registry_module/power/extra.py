"""A builder registered on THINGS but missing from its modules tuple."""

from ..registry import THINGS


@THINGS.register("extra")
def build_extra():
    return object()
