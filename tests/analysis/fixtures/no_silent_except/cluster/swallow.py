"""Seeded violation: silently swallowed exceptions in the engine core."""


def drain(queue):
    try:
        queue.pop()
    except:
        pass
