"""Seeded violation: a mutable, unslotted lifecycle event dataclass."""

from dataclasses import dataclass


@dataclass
class MutableEvent:
    time: float
