"""Seeded violation: a raw RNG import inside the engine core."""

import random


def jitter() -> float:
    return random.random()
