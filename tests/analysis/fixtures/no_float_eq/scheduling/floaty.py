"""Seeded violation: float equality in scheduling code."""


def same_share(a: float, b: float, total: float) -> bool:
    return a / total == b / total


def is_third(x: float) -> bool:
    return x == 0.3
