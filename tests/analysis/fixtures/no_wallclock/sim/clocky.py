"""Seeded violation: the engine core consults the wall clock."""

import time


def now() -> float:
    return time.time()
