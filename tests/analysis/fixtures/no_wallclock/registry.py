"""Empty registry stub: this fixture seeds an AST-rule violation only."""
