"""Seeded-stream regressions: repro.sim.rng is the engine's only RNG door."""

from __future__ import annotations

from random import Random

from repro.power.beta_model import BimodalBeta, UniformBeta
from repro.sim.rng import RngStreams, seeded_rng, substream


def test_seeded_rng_matches_the_raw_random_stream():
    # seeded_rng(s) promises byte-identical draws to Random(s): cached
    # results and goldens produced before the wrapper existed depend on
    # the streams being exactly equal.
    ours, theirs = seeded_rng(1234), Random(1234)
    assert [ours.random() for _ in range(32)] == [theirs.random() for _ in range(32)]


def test_beta_assignment_stream_unchanged():
    # Regression for the no-unseeded-rng fix: BetaAssigner.assign()
    # historically constructed Random(seed) directly; routing through
    # seeded_rng must preserve the exact draw sequence.
    assigner = UniformBeta(low=0.2, high=0.8)
    reference = Random(7)
    expected = [assigner.sample(reference) for _ in range(32)]
    assert assigner.assign(32, seed=7) == expected


def test_bimodal_assignment_is_deterministic():
    assigner = BimodalBeta()
    assert assigner.assign(16, seed=3) == assigner.assign(16, seed=3)
    assert assigner.assign(16, seed=3) != assigner.assign(16, seed=4)


def test_substreams_are_deterministic_and_independent():
    first, again = substream(9, "arrivals"), substream(9, "arrivals")
    other = substream(9, "betas")
    sequence = [first.random() for _ in range(8)]
    assert [again.random() for _ in range(8)] == sequence
    assert [other.random() for _ in range(8)] != sequence


def test_rng_streams_cache_per_name():
    streams = RngStreams(5)
    assert streams.get("x") is streams["x"]
    assert streams.get("x") is not streams.get("y")
    assert streams.seed == 5
