"""The opt-in runtime sanitizer: detection power and zero side effects.

Two properties matter: corrupted engine structures must raise
:class:`SanitizeError` (detection), and a sanitized run must produce
byte-for-byte the results of a plain run (no observer effect).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.sanitize import SanitizeError, enable, enabled, require, sanitized
from repro.api import Simulation
from repro.cluster.power import NodePowerManager, SleepPolicy
from repro.cluster.profile import AvailabilityProfile
from repro.experiments.config import PolicySpec, RunSpec
from repro.scheduling.job import Job
from repro.scheduling.queue import JobQueue
from repro.sim.engine import Engine
from repro.sim.events import EventKind, EventQueue

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_job(job_id=1, submit=0.0, runtime=10.0, requested=20.0, size=2):
    return Job(
        job_id=job_id,
        submit_time=submit,
        runtime=runtime,
        requested_time=requested,
        size=size,
    )


# -- the switch ----------------------------------------------------------------
class TestSwitch:
    def test_enable_round_trip(self):
        before = enabled()
        try:
            enable(True)
            assert enabled()
            enable(False)
            assert not enabled()
        finally:
            enable(before)

    def test_sanitized_context_restores_prior_state(self):
        before = enabled()
        with sanitized():
            assert enabled()
        assert enabled() == before

    @pytest.mark.parametrize(
        "value,expect",
        [("1", True), ("true", True), ("ON", True), ("0", False), ("", False)],
    )
    def test_env_variable_controls_the_default(self, value, expect):
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.analysis.sanitize import enabled; print(enabled())",
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={
                **os.environ,
                "REPRO_SANITIZE": value,
                "PYTHONPATH": str(REPO_ROOT / "src"),
            },
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == str(expect)

    def test_require_raises_sanitize_error(self):
        require(True, "fine")
        with pytest.raises(SanitizeError, match="broken"):
            require(False, "broken")
        assert issubclass(SanitizeError, AssertionError)


# -- detection: corrupt a structure, expect a loud failure ---------------------
class TestDetection:
    def test_event_queue_clean_state_passes(self):
        queue = EventQueue()
        queue.check_consistency()
        for time in (5.0, 1.0, 3.0):
            queue.push(time, EventKind.CONTROL)
        queue.check_consistency()

    def test_event_queue_detects_live_count_drift(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.CONTROL)
        queue._live += 1
        with pytest.raises(SanitizeError, match="live-event count"):
            queue.check_consistency()

    def test_event_queue_detects_heap_corruption(self):
        queue = EventQueue()
        for time in (5.0, 1.0, 3.0):
            queue.push(time, EventKind.CONTROL)
        queue._heap[0], queue._heap[-1] = queue._heap[-1], queue._heap[0]
        with pytest.raises(SanitizeError, match="heap property"):
            queue.check_consistency()

    def test_event_queue_detects_unsorted_run(self):
        queue = EventQueue()
        queue.push_sorted(EventKind.JOB_ARRIVAL, [(1.0, None), (2.0, None)])
        queue._run[0], queue._run[1] = queue._run[1], queue._run[0]
        with pytest.raises(SanitizeError, match="sorted run"):
            queue.check_consistency()

    def test_engine_detects_clock_ahead_of_pending_events(self):
        engine = Engine()
        engine.on(EventKind.CONTROL, lambda now, payload: None)
        engine.schedule(5.0, EventKind.CONTROL)
        engine.check_consistency()
        engine._now = 10.0
        with pytest.raises(SanitizeError, match="precedes"):
            engine.check_consistency()

    def test_profile_clean_state_passes(self):
        profile = AvailabilityProfile(8)
        profile.reserve(0.0, 10.0, 3)
        profile.check_consistency()

    def test_profile_detects_capacity_violation(self):
        profile = AvailabilityProfile(8)
        profile.reserve(0.0, 10.0, 3)
        profile._bf[0][0] = 20  # free > total_cpus
        with pytest.raises(SanitizeError):
            profile.check_consistency()

    def test_job_queue_clean_state_passes(self):
        queue = JobQueue([make_job(i) for i in (1, 2, 3)])
        queue.check_consistency()

    def test_job_queue_detects_live_count_drift(self):
        queue = JobQueue([make_job(i) for i in (1, 2, 3)])
        queue._live += 1
        with pytest.raises(SanitizeError):
            queue.check_consistency()

    def test_job_queue_detects_size_column_corruption(self):
        queue = JobQueue([make_job(i) for i in (1, 2, 3)])
        queue._sizes[queue._pos[2]] = 99
        with pytest.raises(SanitizeError):
            queue.check_consistency()

    def test_power_manager_clean_state_passes(self):
        manager = NodePowerManager(4, SleepPolicy(sleep_after_seconds=60.0))
        manager.check_consistency(4)

    def test_power_manager_detects_negative_accumulator(self):
        manager = NodePowerManager(4, SleepPolicy(sleep_after_seconds=60.0))
        manager.idle_awake_cpu_seconds = -1.0
        with pytest.raises(SanitizeError):
            manager.check_consistency()

    def test_power_manager_detects_netting_identity_break(self):
        manager = NodePowerManager(4, SleepPolicy(sleep_after_seconds=60.0))
        # All four processors idle: the stack must net to free_cpus.
        with pytest.raises(SanitizeError):
            manager.check_consistency(3)


# -- no observer effect --------------------------------------------------------
class TestTransparency:
    SPEC = RunSpec(workload="CTC", n_jobs=80, policy=PolicySpec.power_aware(2.0, 4))

    def test_sanitized_run_matches_plain_run(self):
        plain = Simulation(self.SPEC).run()
        checked = Simulation(self.SPEC, sanitize=True).run()
        assert checked.average_bsld() == plain.average_bsld()
        assert checked.energy.computational == plain.energy.computational
        assert checked.energy.idle == plain.energy.idle
        assert checked.events_processed == plain.events_processed

    def test_sanitized_sleep_run_matches_plain_run(self):
        spec = RunSpec(
            workload="CTC",
            n_jobs=80,
            policy=PolicySpec.power_aware(2.0, 4),
            sleep=SleepPolicy(sleep_after_seconds=120.0),
        )
        plain = Simulation(spec).run()
        checked = Simulation(spec, sanitize=True).run()
        assert checked.average_bsld() == plain.average_bsld()
        assert checked.energy.computational == plain.energy.computational
        assert checked.events_processed == plain.events_processed

    def test_sanitized_conservative_run_matches_plain_run(self):
        spec = RunSpec(
            workload="CTC",
            n_jobs=60,
            scheduler="conservative",
            policy=PolicySpec.power_aware(2.0, 4),
        )
        plain = Simulation(spec).run()
        checked = Simulation(spec, sanitize=True).run()
        assert checked.average_bsld() == plain.average_bsld()
        assert checked.events_processed == plain.events_processed
