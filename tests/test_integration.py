"""End-to-end integration tests of the full reproduction pipeline."""

import pytest

from repro import (
    BsldThresholdPolicy,
    EasyBackfilling,
    FixedGearPolicy,
    Machine,
    SchedulerConfig,
    load_workload,
)
from repro.workloads.models import trace_model


class TestPaperPipelineSmall:
    """The core paper claims must already be visible on 800-job traces."""

    @pytest.fixture(scope="class")
    def ctx(self):
        name = "SDSCBlue"
        jobs = load_workload(name, 800)
        machine = Machine(name, trace_model(name).cpus)
        baseline = EasyBackfilling(machine, FixedGearPolicy()).run(jobs)
        return name, jobs, machine, baseline

    def test_dvfs_saves_computational_energy(self, ctx):
        _, jobs, machine, baseline = ctx
        powered = EasyBackfilling(machine, BsldThresholdPolicy(2.0, None)).run(jobs)
        assert powered.energy.computational < baseline.energy.computational
        assert powered.reduced_jobs > 0

    def test_dvfs_costs_performance(self, ctx):
        _, jobs, machine, baseline = ctx
        powered = EasyBackfilling(machine, BsldThresholdPolicy(3.0, None)).run(jobs)
        assert powered.average_bsld() >= baseline.average_bsld() - 1e-9

    def test_wq_threshold_orders_savings(self, ctx):
        """At fixed BSLD threshold, a larger WQ threshold saves more
        energy (the paper's Figure 3 monotonicity)."""
        _, jobs, machine, baseline = ctx
        energies = []
        for wq in (0, 16, None):
            run = EasyBackfilling(machine, BsldThresholdPolicy(2.0, wq)).run(jobs)
            energies.append(run.energy.computational)
        assert energies[0] >= energies[1] >= energies[2]

    def test_enlarged_system_restores_performance(self, ctx):
        """The §5.2 claim: a 50% larger DVFS system beats the original
        no-DVFS machine on BSLD while burning less computational energy
        (the conservative WQ=0 configuration, as in the paper's Fig. 9
        where WQsize=0 crosses earliest)."""
        _, jobs, machine, baseline = ctx
        large = EasyBackfilling(machine.scaled(1.5), BsldThresholdPolicy(2.0, 0)).run(jobs)
        assert large.average_bsld() <= baseline.average_bsld()
        assert large.energy.computational < baseline.energy.computational

    def test_idle_low_enlargement_penalty(self, ctx):
        """Idle processors cost energy: blowing the machine up 3x must
        show diminished idle=low returns vs computational returns."""
        _, jobs, machine, baseline = ctx
        huge = EasyBackfilling(machine.scaled(3.0), BsldThresholdPolicy(2.0, None)).run(jobs)
        comp_ratio = huge.energy.computational / baseline.energy.computational
        idle_ratio = huge.energy.total_idle_low / baseline.energy.total_idle_low
        assert idle_ratio > comp_ratio


class TestSwfPipeline:
    def test_generated_swf_reproduces_simulation(self, tmp_path):
        """Writing a trace to SWF and reading it back yields the same
        schedule (modulo 1 s submit-time rounding)."""
        from repro.workloads.swf import read_swf, write_swf

        name = "SDSC"
        jobs = load_workload(name, 300)
        rounded = [
            # pre-round times the way SWF will, for exact comparability
            job.__class__(
                job_id=job.job_id,
                submit_time=float(round(job.submit_time)),
                runtime=float(round(job.runtime)),
                requested_time=float(round(job.requested_time)),
                size=job.size,
                user_id=job.user_id,
                group_id=job.group_id,
            )
            for job in jobs
        ]
        path = tmp_path / "trace.swf"
        write_swf(path, rounded, max_procs=128)
        _, parsed = read_swf(path)
        machine = Machine(name, 128)
        direct = EasyBackfilling(machine, BsldThresholdPolicy(2.0, 4)).run(rounded)
        roundtripped = EasyBackfilling(machine, BsldThresholdPolicy(2.0, 4)).run(parsed)
        assert [o.start_time for o in direct.outcomes] == [
            o.start_time for o in roundtripped.outcomes
        ]
        assert [o.gear for o in direct.outcomes] == [o.gear for o in roundtripped.outcomes]


class TestFullValidation:
    @pytest.mark.parametrize("name", ["CTC", "SDSC", "LLNLThunder"])
    def test_validated_run_all_policies(self, name):
        """Invariant-checked simulations across representative policies."""
        jobs = load_workload(name, 400)
        machine = Machine(name, trace_model(name).cpus)
        for policy in (
            FixedGearPolicy(),
            BsldThresholdPolicy(1.5, 0),
            BsldThresholdPolicy(3.0, None),
        ):
            result = EasyBackfilling(
                machine, policy, config=SchedulerConfig(validate=True)
            ).run(jobs)
            assert result.job_count == 400


class TestDeterminismAcrossRuns:
    def test_full_stack_deterministic(self):
        from repro.experiments.runner import ExperimentRunner

        a = ExperimentRunner(n_jobs=200).power_aware("CTC", 2.0, 4)
        b = ExperimentRunner(n_jobs=200).power_aware("CTC", 2.0, 4)
        assert a.energy.computational == b.energy.computational
        assert a.average_bsld() == b.average_bsld()
        assert [o.start_time for o in a.outcomes] == [o.start_time for o in b.outcomes]
