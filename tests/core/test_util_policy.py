"""Unit tests for the utilisation-triggered comparator policy."""

import pytest

from repro.core.frequency_policy import SchedulingContext
from repro.core.gears import PAPER_GEAR_SET
from repro.core.util_policy import UtilizationTriggeredPolicy
from repro.power.time_model import BetaTimeModel
from tests.conftest import make_job


def bind(policy=None):
    policy = policy or UtilizationTriggeredPolicy()
    policy.bind(PAPER_GEAR_SET, BetaTimeModel.for_gear_set(PAPER_GEAR_SET))
    return policy


def ctx(util, must=True, feasible=None):
    return SchedulingContext.with_fixed_wait(
        now=0.0,
        wait_time=0.0,
        wq_size=0,
        utilization=util,
        must_schedule=must,
        feasible=feasible or (lambda gear: True),
    )


class TestGearMapping:
    def test_idle_machine_lowest_gear(self):
        assert bind().select_gear(make_job(), ctx(0.1)).frequency == 0.8

    def test_mid_utilization_mid_gear(self):
        assert bind().select_gear(make_job(), ctx(0.5)).frequency == pytest.approx(1.7)

    def test_busy_machine_top_gear(self):
        assert bind().select_gear(make_job(), ctx(0.9)).frequency == 2.3

    def test_boundaries_are_exclusive(self):
        policy = bind()
        assert policy.select_gear(make_job(), ctx(0.4)).frequency == pytest.approx(1.7)
        assert policy.select_gear(make_job(), ctx(0.6)).frequency == 2.3

    def test_custom_steps(self):
        policy = bind(UtilizationTriggeredPolicy(steps=((0.8, 1),)))
        assert policy.select_gear(make_job(), ctx(0.5)).frequency == pytest.approx(1.1)
        assert policy.select_gear(make_job(), ctx(0.9)).frequency == 2.3

    def test_gear_index_clamped_to_ladder(self):
        policy = bind(UtilizationTriggeredPolicy(steps=((0.9, 99),)))
        assert policy.select_gear(make_job(), ctx(0.1)) == PAPER_GEAR_SET.top


class TestFeasibilityFallback:
    def test_falls_back_to_faster_gear(self):
        policy = bind()
        gear = policy.select_gear(make_job(), ctx(0.1, feasible=lambda g: g.frequency >= 2.0))
        assert gear.frequency == pytest.approx(2.0)

    def test_backfill_may_fail(self):
        policy = bind()
        assert policy.select_gear(make_job(), ctx(0.1, must=False, feasible=lambda g: False)) is None

    def test_head_always_scheduled(self):
        policy = bind()
        gear = policy.select_gear(make_job(), ctx(0.1, must=True, feasible=lambda g: False))
        assert gear == PAPER_GEAR_SET.top


class TestValidation:
    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            UtilizationTriggeredPolicy(steps=((0.6, 0), (0.4, 1)))

    def test_duplicate_bounds_rejected(self):
        # Regression: `bounds != sorted(bounds)` accepted duplicates,
        # silently dead-lettering the later step (first match wins).
        with pytest.raises(ValueError, match="strictly ascending"):
            UtilizationTriggeredPolicy(steps=((0.4, 0), (0.4, 3)))

    def test_strictly_ascending_bounds_accepted(self):
        policy = UtilizationTriggeredPolicy(steps=((0.2, 0), (0.4, 1), (0.9, 2)))
        assert "UtilizationTriggered" in policy.describe()

    def test_out_of_range_bounds_rejected(self):
        with pytest.raises(ValueError, match="0, 1"):
            UtilizationTriggeredPolicy(steps=((1.4, 0),))

    def test_negative_gear_index_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            UtilizationTriggeredPolicy(steps=((0.4, -1),))

    def test_describe(self):
        assert "UtilizationTriggered" in UtilizationTriggeredPolicy().describe()
