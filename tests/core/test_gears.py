"""Unit tests for DVFS gears and gear sets."""

import pytest
from hypothesis import given, strategies as st

from repro.core.gears import Gear, GearSet, PAPER_GEAR_SET, single_gear_set


class TestGear:
    def test_fields(self):
        gear = Gear(2.3, 1.5)
        assert gear.frequency == 2.3
        assert gear.voltage == 1.5

    def test_orders_by_frequency(self):
        assert Gear(0.8, 1.0) < Gear(1.1, 1.1)

    def test_equality_and_hash(self):
        assert Gear(1.4, 1.2) == Gear(1.4, 1.2)
        assert hash(Gear(1.4, 1.2)) == hash(Gear(1.4, 1.2))

    @pytest.mark.parametrize("frequency", [0.0, -1.0])
    def test_rejects_bad_frequency(self, frequency):
        with pytest.raises(ValueError, match="frequency"):
            Gear(frequency, 1.0)

    @pytest.mark.parametrize("voltage", [0.0, -0.5])
    def test_rejects_bad_voltage(self, voltage):
        with pytest.raises(ValueError, match="voltage"):
            Gear(1.0, voltage)


class TestGearSet:
    def test_sorts_ascending(self):
        gears = GearSet([Gear(2.3, 1.5), Gear(0.8, 1.0)])
        assert gears.frequencies == (0.8, 2.3)

    def test_lowest_and_top(self):
        assert PAPER_GEAR_SET.lowest.frequency == 0.8
        assert PAPER_GEAR_SET.top.frequency == 2.3

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            GearSet([])

    def test_rejects_duplicate_frequencies(self):
        with pytest.raises(ValueError, match="duplicate"):
            GearSet([Gear(1.0, 1.0), Gear(1.0, 1.2)])

    def test_rejects_non_monotone_voltage(self):
        with pytest.raises(ValueError, match="voltage"):
            GearSet([Gear(1.0, 1.2), Gear(2.0, 1.0)])

    def test_len_iter_getitem_contains(self):
        assert len(PAPER_GEAR_SET) == 6
        assert next(iter(PAPER_GEAR_SET)) == PAPER_GEAR_SET[0]
        assert Gear(1.4, 1.2) in PAPER_GEAR_SET
        assert Gear(9.9, 9.9) not in PAPER_GEAR_SET

    def test_equality_and_hash(self):
        clone = GearSet(list(PAPER_GEAR_SET))
        assert clone == PAPER_GEAR_SET
        assert hash(clone) == hash(PAPER_GEAR_SET)
        assert PAPER_GEAR_SET != single_gear_set()
        assert PAPER_GEAR_SET.__eq__(42) is NotImplemented

    def test_ascending_descending(self):
        ascending = PAPER_GEAR_SET.ascending()
        assert list(ascending) == sorted(ascending)
        assert PAPER_GEAR_SET.descending() == tuple(reversed(ascending))

    def test_by_frequency(self):
        assert PAPER_GEAR_SET.by_frequency(1.7) == Gear(1.7, 1.3)
        with pytest.raises(KeyError):
            PAPER_GEAR_SET.by_frequency(1.75)

    def test_index(self):
        assert PAPER_GEAR_SET.index(PAPER_GEAR_SET.lowest) == 0
        assert PAPER_GEAR_SET.index(PAPER_GEAR_SET.top) == 5

    def test_at_or_above(self):
        upper = PAPER_GEAR_SET.at_or_above(1.7)
        assert [g.frequency for g in upper] == [1.7, 2.0, 2.3]
        assert PAPER_GEAR_SET.at_or_above(0.0) == PAPER_GEAR_SET.ascending()

    def test_voltages(self):
        assert PAPER_GEAR_SET.voltages == (1.0, 1.1, 1.2, 1.3, 1.4, 1.5)


class TestPaperGearSet:
    """Table 2 of the paper is a constant; pin it exactly."""

    def test_exact_table2(self):
        expected = [(0.8, 1.0), (1.1, 1.1), (1.4, 1.2), (1.7, 1.3), (2.0, 1.4), (2.3, 1.5)]
        assert [(g.frequency, g.voltage) for g in PAPER_GEAR_SET] == expected


class TestSingleGearSet:
    def test_default_matches_paper_top(self):
        assert single_gear_set().top == PAPER_GEAR_SET.top
        assert len(single_gear_set()) == 1

    def test_custom(self):
        gears = single_gear_set(1.0, 1.1)
        assert gears.lowest == gears.top == Gear(1.0, 1.1)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_gearset_construction_property(pairs):
    """Any frequency-unique, voltage-monotone ladder constructs and sorts."""
    pairs = sorted({(f, v) for f, v in pairs})
    # force voltage monotone by sorting voltages to match frequencies
    freqs = sorted({f for f, _ in pairs})
    volts = sorted(v for _, v in pairs)[: len(freqs)]
    while len(volts) < len(freqs):
        volts.append(volts[-1] + 0.01)
    gears = GearSet([Gear(f, v) for f, v in zip(freqs, volts, strict=True)])
    assert gears.frequencies == tuple(freqs)
    assert gears.lowest.frequency <= gears.top.frequency
