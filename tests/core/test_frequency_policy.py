"""Unit tests for the frequency-assignment policies (Figures 1-2 logic)."""

import pytest

from repro.core.frequency_policy import (
    BsldThresholdPolicy,
    FixedGearPolicy,
    NO_WQ_LIMIT,
    SchedulingContext,
)
from repro.core.gears import PAPER_GEAR_SET
from repro.power.time_model import BetaTimeModel
from tests.conftest import make_job

TIME_MODEL = BetaTimeModel.for_gear_set(PAPER_GEAR_SET)


def bind(policy):
    policy.bind(PAPER_GEAR_SET, TIME_MODEL)
    return policy


def ctx(wait=0.0, wq=0, must=True, feasible=None, util=0.5):
    return SchedulingContext.with_fixed_wait(
        now=0.0,
        wait_time=wait,
        wq_size=wq,
        utilization=util,
        must_schedule=must,
        feasible=feasible or (lambda gear: True),
    )


class TestFixedGearPolicy:
    def test_defaults_to_top(self):
        policy = bind(FixedGearPolicy())
        assert policy.select_gear(make_job(), ctx()) == PAPER_GEAR_SET.top
        assert not policy.applies_dvfs
        assert policy.describe() == "FixedGear(top)"

    def test_pinned_gear(self):
        policy = bind(FixedGearPolicy(0.8))
        assert policy.select_gear(make_job(), ctx()) == PAPER_GEAR_SET.lowest
        assert policy.applies_dvfs

    def test_unknown_frequency_raises_at_bind(self):
        with pytest.raises(KeyError):
            bind(FixedGearPolicy(1.75))

    def test_infeasible_returns_none(self):
        policy = bind(FixedGearPolicy())
        assert policy.select_gear(make_job(), ctx(feasible=lambda g: False)) is None


class TestBsldThresholdSelection:
    def test_zero_wait_long_request_picks_lowest_passing_gear(self):
        # pred = Coef(f) for RQ >= 600 at zero wait.
        job = make_job(runtime=5000.0, requested=5000.0)
        assert bind(BsldThresholdPolicy(2.0, None)).select_gear(job, ctx()).frequency == 0.8
        assert bind(BsldThresholdPolicy(1.5, None)).select_gear(job, ctx()).frequency == 1.4
        assert bind(BsldThresholdPolicy(1.2, None)).select_gear(job, ctx()).frequency == 1.7

    def test_short_request_always_lowest(self):
        # RQ=300 < 600: pred = max(300*Coef/600, 1) = 1 < any threshold.
        job = make_job(runtime=300.0, requested=300.0)
        policy = bind(BsldThresholdPolicy(1.5, None))
        assert policy.select_gear(job, ctx()).frequency == 0.8

    def test_large_wait_forces_top_for_head(self):
        job = make_job(runtime=1000.0, requested=1000.0)
        policy = bind(BsldThresholdPolicy(2.0, None))
        # wait 10000s: pred at top = 11 > 2, but the head must schedule.
        gear = policy.select_gear(job, ctx(wait=10000.0, must=True))
        assert gear == PAPER_GEAR_SET.top

    def test_large_wait_backfill_allowed_at_top_by_default(self):
        job = make_job(runtime=1000.0, requested=1000.0)
        policy = bind(BsldThresholdPolicy(2.0, None))
        gear = policy.select_gear(job, ctx(wait=10000.0, must=False))
        assert gear == PAPER_GEAR_SET.top  # relaxed Figure-2 reading

    def test_strict_mode_blocks_top_backfill(self):
        job = make_job(runtime=1000.0, requested=1000.0)
        policy = bind(BsldThresholdPolicy(2.0, None, strict_top_backfill=True))
        assert policy.select_gear(job, ctx(wait=10000.0, must=False)) is None

    def test_strict_mode_still_schedules_heads(self):
        job = make_job(runtime=1000.0, requested=1000.0)
        policy = bind(BsldThresholdPolicy(2.0, None, strict_top_backfill=True))
        assert policy.select_gear(job, ctx(wait=10000.0, must=True)) == PAPER_GEAR_SET.top


class TestWqThreshold:
    def test_wq_over_threshold_goes_top(self):
        job = make_job(runtime=5000.0, requested=5000.0)
        policy = bind(BsldThresholdPolicy(3.0, wq_threshold=4))
        assert policy.select_gear(job, ctx(wq=5)).frequency == 2.3
        assert policy.select_gear(job, ctx(wq=4)).frequency == 0.8

    def test_wq_zero_semantics(self):
        """WQ threshold 0 still reduces when no *other* job waits."""
        job = make_job(runtime=5000.0, requested=5000.0)
        policy = bind(BsldThresholdPolicy(2.0, wq_threshold=0))
        assert policy.select_gear(job, ctx(wq=0)).frequency == 0.8
        assert policy.select_gear(job, ctx(wq=1)).frequency == 2.3

    def test_no_limit(self):
        job = make_job(runtime=5000.0, requested=5000.0)
        policy = bind(BsldThresholdPolicy(2.0, NO_WQ_LIMIT))
        assert policy.select_gear(job, ctx(wq=10**6)).frequency == 0.8


class TestFeasibility:
    def test_infeasible_low_gears_skipped(self):
        job = make_job(runtime=5000.0, requested=5000.0)
        policy = bind(BsldThresholdPolicy(2.0, None))
        gear = policy.select_gear(job, ctx(feasible=lambda g: g.frequency >= 1.4))
        # 1.4 GHz is feasible and pred = Coef(1.4) = 1.32 < 2.
        assert gear.frequency == pytest.approx(1.4)

    def test_nothing_feasible_backfill_returns_none(self):
        job = make_job(runtime=5000.0, requested=5000.0)
        policy = bind(BsldThresholdPolicy(2.0, None))
        assert policy.select_gear(job, ctx(feasible=lambda g: False, must=False)) is None

    def test_nothing_feasible_head_still_returns_top(self):
        """Heads fall back to Ftop even if the feasibility probe objects;
        EASY's reservation for the head cannot be skipped."""
        job = make_job(runtime=5000.0, requested=5000.0)
        policy = bind(BsldThresholdPolicy(2.0, None))
        assert policy.select_gear(job, ctx(feasible=lambda g: False, must=True)) == PAPER_GEAR_SET.top


class TestPredict:
    def test_matches_formula(self):
        policy = bind(BsldThresholdPolicy(2.0, None))
        job = make_job(runtime=1000.0, requested=1200.0)
        low = PAPER_GEAR_SET.lowest
        expected = (600.0 + 1200.0 * 1.9375) / 1200.0
        assert policy.predict(job, low, wait_time=600.0) == pytest.approx(expected)

    def test_honours_per_job_beta(self):
        policy = bind(BsldThresholdPolicy(2.0, None))
        cpu_bound = make_job(runtime=5000.0, requested=5000.0, beta=1.0)
        mem_bound = make_job(runtime=5000.0, requested=5000.0, beta=0.0)
        low = PAPER_GEAR_SET.lowest
        assert policy.predict(cpu_bound, low, 0.0) == pytest.approx(2.3 / 0.8)
        assert policy.predict(mem_bound, low, 0.0) == pytest.approx(1.0)

    def test_per_job_beta_changes_selection(self):
        policy = bind(BsldThresholdPolicy(1.5, None))
        mem_bound = make_job(runtime=5000.0, requested=5000.0, beta=0.1)
        assert policy.select_gear(mem_bound, ctx()).frequency == 0.8


class TestValidation:
    def test_threshold_below_one_rejected(self):
        with pytest.raises(ValueError, match="bsld_threshold"):
            BsldThresholdPolicy(0.9, None)

    def test_negative_wq_rejected(self):
        with pytest.raises(ValueError, match="wq_threshold"):
            BsldThresholdPolicy(2.0, -1)

    def test_describe(self):
        assert BsldThresholdPolicy(2.0, 4).describe() == "BSLDthreshold=2, WQthreshold=4"
        assert "NO" in BsldThresholdPolicy(2.0, None).describe()
        assert "strict" in BsldThresholdPolicy(2.0, None, strict_top_backfill=True).describe()

    def test_gear_dependent_wait_context(self):
        """SchedulingContext supports per-gear wait times (conservative BF)."""
        policy = bind(BsldThresholdPolicy(1.5, None))
        job = make_job(runtime=5000.0, requested=5000.0)
        # Lower gears imply huge waits; only 2.0 GHz sees a zero wait.
        context = SchedulingContext(
            now=0.0,
            wait_time_for=lambda gear: 0.0 if gear.frequency >= 2.0 else 1e6,
            wq_size=0,
            utilization=0.0,
            must_schedule=True,
            feasible=lambda gear: True,
        )
        assert policy.select_gear(job, context).frequency == pytest.approx(2.0)
