"""Unit and property tests for the availability profile."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.profile import AvailabilityProfile


def make_profile(total=8, origin=0.0):
    return AvailabilityProfile(total, origin)


class TestBasics:
    def test_initial_state(self):
        profile = make_profile()
        assert profile.total_cpus == 8
        assert profile.origin == 0.0
        assert profile.free_at(0.0) == 8
        assert profile.free_at(1e9) == 8

    def test_rejects_empty_machine(self):
        with pytest.raises(ValueError, match="CPU"):
            AvailabilityProfile(0)

    def test_free_before_origin_clamps(self):
        profile = make_profile(origin=100.0)
        assert profile.free_at(0.0) == 8


class TestReserve:
    def test_step_function(self):
        profile = make_profile()
        profile.reserve(10.0, 20.0, 3)
        assert profile.free_at(5.0) == 8
        assert profile.free_at(10.0) == 5
        assert profile.free_at(19.999) == 5
        assert profile.free_at(20.0) == 8

    def test_overlapping_reservations_stack(self):
        profile = make_profile()
        profile.reserve(0.0, 10.0, 3)
        profile.reserve(5.0, 15.0, 3)
        assert profile.free_at(2.0) == 5
        assert profile.free_at(7.0) == 2
        assert profile.free_at(12.0) == 5

    def test_over_reservation_rejected(self):
        profile = make_profile()
        profile.reserve(0.0, 10.0, 6)
        with pytest.raises(ValueError, match="over-reservation"):
            profile.reserve(5.0, 8.0, 3)

    def test_failed_reserve_leaves_profile_unchanged(self):
        profile = make_profile()
        profile.reserve(0.0, 10.0, 6)
        with pytest.raises(ValueError):
            profile.reserve(5.0, 8.0, 3)
        assert profile.free_at(6.0) == 2  # untouched

    def test_empty_interval_rejected(self):
        profile = make_profile()
        with pytest.raises(ValueError, match="empty"):
            profile.reserve(5.0, 5.0, 1)

    def test_before_origin_rejected(self):
        profile = make_profile(origin=10.0)
        with pytest.raises(ValueError, match="precedes"):
            profile.reserve(5.0, 15.0, 1)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            make_profile().reserve(0.0, 1.0, 0)


class TestRelease:
    def test_roundtrip(self):
        profile = make_profile()
        profile.reserve(10.0, 20.0, 3)
        profile.release(10.0, 20.0, 3)
        for time in (5.0, 10.0, 15.0, 25.0):
            assert profile.free_at(time) == 8

    def test_over_release_rejected(self):
        profile = make_profile()
        with pytest.raises(ValueError, match="over-release"):
            profile.release(0.0, 5.0, 1)


class TestQueries:
    def test_min_free(self):
        profile = make_profile()
        profile.reserve(10.0, 20.0, 5)
        assert profile.min_free(0.0, 10.0) == 8
        assert profile.min_free(5.0, 15.0) == 3
        assert profile.min_free(20.0, 30.0) == 8

    def test_min_free_point_interval(self):
        profile = make_profile()
        profile.reserve(10.0, 20.0, 5)
        assert profile.min_free(10.0, 10.0) == 3

    def test_min_free_rejects_reversed(self):
        with pytest.raises(ValueError, match="precedes"):
            make_profile().min_free(10.0, 5.0)

    def test_fits_at(self):
        profile = make_profile()
        profile.reserve(10.0, 20.0, 6)
        assert profile.fits_at(0.0, 10.0, 8)     # ends exactly at the dip
        assert not profile.fits_at(0.0, 11.0, 8)
        assert profile.fits_at(10.0, 5.0, 2)
        assert not profile.fits_at(10.0, 5.0, 3)
        assert not profile.fits_at(0.0, 1.0, 9)  # larger than machine
        assert not profile.fits_at(0.0, 1.0, 0)

    def test_segments_cover_timeline(self):
        profile = make_profile()
        profile.reserve(5.0, 10.0, 2)
        segments = list(profile.segments())
        assert segments[0][0] == 0.0
        assert segments[-1][1] == float("inf")
        for (_s0, e0, _), (s1, _, _) in zip(segments, segments[1:], strict=False):
            assert e0 == s1


class TestFindStart:
    def test_immediate_when_free(self):
        assert make_profile().find_start(0.0, 100.0, 8) == 0.0

    def test_waits_for_release(self):
        profile = make_profile()
        profile.reserve(0.0, 50.0, 6)
        assert profile.find_start(0.0, 10.0, 4) == 50.0

    def test_fits_into_gap_between_reservations(self):
        profile = make_profile()
        profile.reserve(0.0, 10.0, 6)
        profile.reserve(30.0, 40.0, 6)
        # 4 CPUs for 20s fit exactly into the [10, 30) gap.
        assert profile.find_start(0.0, 20.0, 4) == 10.0
        # ... but 25s must wait until the second block clears.
        assert profile.find_start(0.0, 25.0, 4) == 40.0

    def test_respects_earliest(self):
        profile = make_profile()
        assert profile.find_start(17.0, 5.0, 2) == 17.0

    def test_earliest_inside_busy_segment(self):
        profile = make_profile()
        profile.reserve(0.0, 100.0, 7)
        assert profile.find_start(50.0, 10.0, 2) == 100.0

    def test_zero_duration(self):
        profile = make_profile()
        profile.reserve(0.0, 10.0, 8)
        assert profile.find_start(0.0, 0.0, 1) == 10.0

    def test_rejects_impossible_size(self):
        with pytest.raises(ValueError, match="capacity"):
            make_profile().find_start(0.0, 1.0, 9)
        with pytest.raises(ValueError, match="size"):
            make_profile().find_start(0.0, 1.0, 0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="duration"):
            make_profile().find_start(0.0, -1.0, 1)


class TestHousekeeping:
    def test_copy_is_independent(self):
        profile = make_profile()
        profile.reserve(0.0, 10.0, 4)
        clone = profile.copy()
        clone.reserve(0.0, 10.0, 4)
        assert profile.free_at(5.0) == 4
        assert clone.free_at(5.0) == 0

    def test_advance_origin_drops_history(self):
        profile = make_profile()
        profile.reserve(0.0, 10.0, 4)
        profile.reserve(20.0, 30.0, 4)
        profile.advance_origin(15.0)
        assert profile.origin == 15.0
        assert profile.free_at(16.0) == 8
        assert profile.free_at(25.0) == 4

    def test_release_compacts_segments(self):
        profile = make_profile()
        profile.reserve(10.0, 20.0, 3)
        profile.release(10.0, 20.0, 3)
        assert len(list(profile.segments())) == 1


reservations = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
        st.integers(min_value=1, max_value=4),
    ),
    max_size=15,
)


@given(reservations)
def test_profile_invariants_property(blocks):
    """Free counts stay within [0, total]; find_start results verify."""
    profile = AvailabilityProfile(8)
    applied = []
    for start, duration, size in blocks:
        end = start + duration
        if profile.min_free(start, end) >= size:
            profile.reserve(start, end, size)
            applied.append((start, end, size))
    for _start, _end, free in profile.segments():
        assert 0 <= free <= 8
    # find_start always returns a feasible slot
    for size in (1, 4, 8):
        slot = profile.find_start(0.0, 10.0, size)
        assert profile.fits_at(slot, 10.0, size)
    # releasing everything restores a flat profile
    for start, end, size in applied:
        profile.release(start, end, size)
    assert next(iter(profile.segments()))[2] == 8
    assert len(list(profile.segments())) == 1


@given(
    reservations,
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    st.integers(min_value=1, max_value=8),
)
def test_find_start_is_earliest_property(blocks, earliest, duration, size):
    """No feasible start exists at any earlier profile breakpoint."""
    profile = AvailabilityProfile(8)
    for start, dur, block_size in blocks:
        end = start + dur
        if profile.min_free(start, end) >= block_size:
            profile.reserve(start, end, block_size)
    found = profile.find_start(earliest, duration, size)
    assert found >= earliest
    assert profile.fits_at(found, duration, size)
    # candidate starts are `earliest` and segment boundaries after it
    candidates = [earliest, *(s for s, _, _ in profile.segments() if earliest < s < found)]
    for candidate in candidates:
        if candidate < found:
            assert not profile.fits_at(candidate, duration, size)
