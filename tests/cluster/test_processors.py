"""Unit and property tests for the processor pool (First Fit selection)."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.allocation import Allocation
from repro.cluster.processors import ProcessorPool


class TestAllocationRecord:
    def test_count_only(self):
        allocation = Allocation(size=4)
        assert not allocation.tracks_ids

    def test_with_ids(self):
        allocation = Allocation(size=2, cpu_ids=(0, 1))
        assert allocation.tracks_ids

    def test_size_id_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            Allocation(size=3, cpu_ids=(0, 1))

    def test_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            Allocation(size=2, cpu_ids=(1, 1))

    def test_nonpositive_size(self):
        with pytest.raises(ValueError, match="size"):
            Allocation(size=0)


class TestCountMode:
    def test_initial_state(self):
        pool = ProcessorPool(8)
        assert pool.free_cpus == 8
        assert pool.busy_cpus == 0
        assert not pool.tracks_ids

    def test_allocate_release_cycle(self):
        pool = ProcessorPool(8)
        allocation = pool.allocate(5)
        assert pool.free_cpus == 3
        pool.release(allocation)
        assert pool.free_cpus == 8

    def test_fits(self):
        pool = ProcessorPool(4)
        assert pool.fits(4)
        assert not pool.fits(5)
        assert not pool.fits(0)

    def test_overallocation_rejected(self):
        pool = ProcessorPool(4)
        pool.allocate(3)
        with pytest.raises(ValueError, match="only 1"):
            pool.allocate(2)

    def test_overrelease_rejected(self):
        pool = ProcessorPool(4)
        with pytest.raises(ValueError, match="exceed"):
            pool.release(Allocation(size=1))

    def test_nonpositive_requests_rejected(self):
        pool = ProcessorPool(4)
        with pytest.raises(ValueError, match="positive"):
            pool.allocate(0)
        with pytest.raises(ValueError, match="CPU"):
            ProcessorPool(0)


class TestFirstFitIds:
    def test_lowest_ids_first(self):
        pool = ProcessorPool(8, track_ids=True)
        assert pool.allocate(3).cpu_ids == (0, 1, 2)
        assert pool.allocate(2).cpu_ids == (3, 4)

    def test_released_ids_reused_lowest_first(self):
        pool = ProcessorPool(8, track_ids=True)
        first = pool.allocate(3)   # 0,1,2
        pool.allocate(2)           # 3,4
        pool.release(first)
        assert pool.allocate(4).cpu_ids == (0, 1, 2, 5)

    def test_release_requires_ids(self):
        pool = ProcessorPool(4, track_ids=True)
        pool.allocate(1)
        with pytest.raises(ValueError, match="without CPU ids"):
            pool.release(Allocation(size=1))

    def test_out_of_range_id_rejected(self):
        pool = ProcessorPool(4, track_ids=True)
        pool.allocate(1)
        with pytest.raises(ValueError, match="out of range"):
            pool.release(Allocation(size=1, cpu_ids=(99,)))

    def test_disjoint_allocations(self):
        pool = ProcessorPool(16, track_ids=True)
        seen: set[int] = set()
        for size in (4, 4, 4, 4):
            ids = pool.allocate(size).cpu_ids
            assert not (seen & set(ids))
            seen.update(ids)
        assert seen == set(range(16))


@given(st.lists(st.integers(min_value=1, max_value=8), max_size=30))
def test_pool_conservation_property(sizes):
    """Alloc/release sequences never lose or invent CPUs (both modes)."""
    for track_ids in (False, True):
        pool = ProcessorPool(16, track_ids=track_ids)
        live = []
        for size in sizes:
            if pool.fits(size):
                live.append(pool.allocate(size))
            elif live:
                pool.release(live.pop(0))
            assert pool.free_cpus + sum(a.size for a in live) == 16
        for allocation in live:
            pool.release(allocation)
        assert pool.free_cpus == 16


@given(st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=20))
def test_first_fit_ids_are_minimal_property(sizes):
    """In id mode, every allocation takes the lowest free ids available."""
    pool = ProcessorPool(32, track_ids=True)
    free = set(range(32))
    for size in sizes:
        if not pool.fits(size):
            break
        ids = pool.allocate(size).cpu_ids
        assert list(ids) == sorted(free)[:size]
        free -= set(ids)
