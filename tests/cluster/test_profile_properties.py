"""Property-based invariants for :class:`AvailabilityProfile`.

The profile is the ground truth behind both reference schedulers and
the incrementally-maintained conservative profile, so its invariants
are load-bearing for every differential test in the suite:

* the free count of every segment stays within ``[0, total_cpus]``;
* segment start times are strictly increasing;
* ``reserve``/``release`` round-trips restore the profile as a step
  function (segmentation may differ by no-op breakpoints, the function
  may not).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.profile import AvailabilityProfile

TOTAL_CPUS = 16


@st.composite
def reservation_plan(draw, max_ops: int = 12):
    """A list of (start, duration, size) requests over a small horizon."""
    n = draw(st.integers(min_value=1, max_value=max_ops))
    ops = []
    for _ in range(n):
        start = draw(st.floats(min_value=0.0, max_value=500.0, allow_nan=False))
        duration = draw(st.floats(min_value=0.001, max_value=500.0, allow_nan=False))
        size = draw(st.integers(min_value=1, max_value=TOTAL_CPUS))
        ops.append((start, duration, size))
    return ops


def assert_invariants(profile: AvailabilityProfile) -> None:
    times = [start for start, _end, _free in profile.segments()]
    frees = [free for _start, _end, free in profile.segments()]
    assert all(0 <= free <= profile.total_cpus for free in frees), frees
    assert all(a < b for a, b in zip(times, times[1:])), times


def as_step_function(profile: AvailabilityProfile, probes) -> list[int]:
    return [profile.free_at(t) for t in probes]


def apply_feasible(profile: AvailabilityProfile, ops):
    """Reserve every op that fits; return the applied sub-plan."""
    applied = []
    for start, duration, size in ops:
        if profile.min_free(start, start + duration) >= size:
            profile.reserve(start, start + duration, size)
            applied.append((start, duration, size))
        assert_invariants(profile)
    return applied


@given(reservation_plan())
@settings(max_examples=60)
def test_reserve_keeps_invariants(ops):
    profile = AvailabilityProfile(TOTAL_CPUS)
    apply_feasible(profile, ops)
    assert_invariants(profile)


@given(reservation_plan())
@settings(max_examples=60)
def test_reserve_release_round_trip_restores_profile(ops):
    profile = AvailabilityProfile(TOTAL_CPUS)
    applied = apply_feasible(profile, ops)
    # Probe at every breakpoint seen mid-flight plus the op boundaries.
    probes = sorted(
        {start for start, _d, _s in applied}
        | {start + duration for start, duration, _s in applied}
        | {t for t, _e, _f in profile.segments()}
    )
    for start, duration, size in reversed(applied):
        profile.release(start, start + duration, size)
        assert_invariants(profile)
    assert as_step_function(profile, probes) == [TOTAL_CPUS] * len(probes)


@given(reservation_plan())
@settings(max_examples=40)
def test_partial_release_matches_fresh_profile(ops):
    """Releasing one reservation equals never having made it."""
    profile = AvailabilityProfile(TOTAL_CPUS)
    applied = apply_feasible(profile, ops)
    if not applied:
        return
    # Rebuild without the first applied op; releasing it from the full
    # profile must give the same step function.
    start, duration, size = applied[0]
    profile.release(start, start + duration, size)
    rebuilt = AvailabilityProfile(TOTAL_CPUS)
    for s, d, z in applied[1:]:
        rebuilt.reserve(s, s + d, z)
    probes = sorted(
        {s for s, _d, _z in applied}
        | {s + d for s, d, _z in applied}
        | {t for t, _e, _f in profile.segments()}
        | {t for t, _e, _f in rebuilt.segments()}
    )
    assert as_step_function(profile, probes) == as_step_function(rebuilt, probes)


@given(reservation_plan())
@settings(max_examples=40)
def test_min_free_consistent_with_free_at(ops):
    profile = AvailabilityProfile(TOTAL_CPUS)
    apply_feasible(profile, ops)
    for start, end, free in profile.segments():
        assert profile.free_at(start) == free
        if end != float("inf"):
            assert profile.min_free(start, end) == free


@given(reservation_plan(), st.integers(min_value=1, max_value=TOTAL_CPUS),
       st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
       st.floats(min_value=0.0, max_value=400.0, allow_nan=False))
@settings(max_examples=60)
def test_find_start_returns_earliest_feasible_slot(ops, size, earliest, duration):
    profile = AvailabilityProfile(TOTAL_CPUS)
    apply_feasible(profile, ops)
    start = profile.find_start(earliest, duration, size)
    assert start >= earliest
    assert profile.fits_at(start, duration, size)
    # Minimality at every profile breakpoint before the answer.
    for t, _end, _free in profile.segments():
        if earliest <= t < start:
            assert not profile.fits_at(t, duration, size)
    if earliest < start:
        assert not profile.fits_at(earliest, duration, size)


def test_over_release_rejected():
    profile = AvailabilityProfile(TOTAL_CPUS)
    profile.reserve(0.0, 10.0, 4)
    with pytest.raises(ValueError, match="over-release"):
        profile.release(0.0, 10.0, 5)


def test_over_reserve_rejected():
    profile = AvailabilityProfile(TOTAL_CPUS)
    profile.reserve(0.0, 10.0, TOTAL_CPUS)
    with pytest.raises(ValueError, match="over-reservation"):
        profile.reserve(5.0, 6.0, 1)
