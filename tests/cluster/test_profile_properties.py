"""Property-based invariants for :class:`AvailabilityProfile`.

The profile is the ground truth behind both reference schedulers and
the incrementally-maintained conservative profile, so its invariants
are load-bearing for every differential test in the suite:

* the free count of every segment stays within ``[0, total_cpus]``;
* segment start times are strictly increasing;
* ``reserve``/``release`` round-trips restore the profile as a step
  function (segmentation may differ by no-op breakpoints, the function
  may not);
* the indexed production profile matches the flat
  :class:`ReferenceAvailabilityProfile` as a step function on arbitrary
  ``reserve`` / ``release`` / ``advance_origin`` / ``find_start``
  sequences, across block sizes that force multi-block indexing;
* compaction keeps the breakpoint count bounded by the number of
  *live* reservations — not by how many the profile has ever seen.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.profile import AvailabilityProfile, ReferenceAvailabilityProfile

TOTAL_CPUS = 16


@st.composite
def reservation_plan(draw, max_ops: int = 12):
    """A list of (start, duration, size) requests over a small horizon."""
    n = draw(st.integers(min_value=1, max_value=max_ops))
    ops = []
    for _ in range(n):
        start = draw(st.floats(min_value=0.0, max_value=500.0, allow_nan=False))
        duration = draw(st.floats(min_value=0.001, max_value=500.0, allow_nan=False))
        size = draw(st.integers(min_value=1, max_value=TOTAL_CPUS))
        ops.append((start, duration, size))
    return ops


def assert_invariants(profile: AvailabilityProfile) -> None:
    times = [start for start, _end, _free in profile.segments()]
    frees = [free for _start, _end, free in profile.segments()]
    assert all(0 <= free <= profile.total_cpus for free in frees), frees
    assert all(a < b for a, b in zip(times, times[1:], strict=False)), times


def as_step_function(profile: AvailabilityProfile, probes) -> list[int]:
    return [profile.free_at(t) for t in probes]


def apply_feasible(profile: AvailabilityProfile, ops):
    """Reserve every op that fits; return the applied sub-plan."""
    applied = []
    for start, duration, size in ops:
        if profile.min_free(start, start + duration) >= size:
            profile.reserve(start, start + duration, size)
            applied.append((start, duration, size))
        assert_invariants(profile)
    return applied


@given(reservation_plan())
@settings(max_examples=60)
def test_reserve_keeps_invariants(ops):
    profile = AvailabilityProfile(TOTAL_CPUS)
    apply_feasible(profile, ops)
    assert_invariants(profile)


@given(reservation_plan())
@settings(max_examples=60)
def test_reserve_release_round_trip_restores_profile(ops):
    profile = AvailabilityProfile(TOTAL_CPUS)
    applied = apply_feasible(profile, ops)
    # Probe at every breakpoint seen mid-flight plus the op boundaries.
    probes = sorted(
        {start for start, _d, _s in applied}
        | {start + duration for start, duration, _s in applied}
        | {t for t, _e, _f in profile.segments()}
    )
    for start, duration, size in reversed(applied):
        profile.release(start, start + duration, size)
        assert_invariants(profile)
    assert as_step_function(profile, probes) == [TOTAL_CPUS] * len(probes)


@given(reservation_plan())
@settings(max_examples=40)
def test_partial_release_matches_fresh_profile(ops):
    """Releasing one reservation equals never having made it."""
    profile = AvailabilityProfile(TOTAL_CPUS)
    applied = apply_feasible(profile, ops)
    if not applied:
        return
    # Rebuild without the first applied op; releasing it from the full
    # profile must give the same step function.
    start, duration, size = applied[0]
    profile.release(start, start + duration, size)
    rebuilt = AvailabilityProfile(TOTAL_CPUS)
    for s, d, z in applied[1:]:
        rebuilt.reserve(s, s + d, z)
    probes = sorted(
        {s for s, _d, _z in applied}
        | {s + d for s, d, _z in applied}
        | {t for t, _e, _f in profile.segments()}
        | {t for t, _e, _f in rebuilt.segments()}
    )
    assert as_step_function(profile, probes) == as_step_function(rebuilt, probes)


@given(reservation_plan())
@settings(max_examples=40)
def test_min_free_consistent_with_free_at(ops):
    profile = AvailabilityProfile(TOTAL_CPUS)
    apply_feasible(profile, ops)
    for start, end, free in profile.segments():
        assert profile.free_at(start) == free
        if end != float("inf"):
            assert profile.min_free(start, end) == free


@given(reservation_plan(), st.integers(min_value=1, max_value=TOTAL_CPUS),
       st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
       st.floats(min_value=0.0, max_value=400.0, allow_nan=False))
@settings(max_examples=60)
def test_find_start_returns_earliest_feasible_slot(ops, size, earliest, duration):
    profile = AvailabilityProfile(TOTAL_CPUS)
    apply_feasible(profile, ops)
    start = profile.find_start(earliest, duration, size)
    assert start >= earliest
    assert profile.fits_at(start, duration, size)
    # Minimality at every profile breakpoint before the answer.
    for t, _end, _free in profile.segments():
        if earliest <= t < start:
            assert not profile.fits_at(t, duration, size)
    if earliest < start:
        assert not profile.fits_at(earliest, duration, size)


def test_over_release_rejected():
    profile = AvailabilityProfile(TOTAL_CPUS)
    profile.reserve(0.0, 10.0, 4)
    with pytest.raises(ValueError, match="over-release"):
        profile.release(0.0, 10.0, 5)


def test_over_reserve_rejected():
    profile = AvailabilityProfile(TOTAL_CPUS)
    profile.reserve(0.0, 10.0, TOTAL_CPUS)
    with pytest.raises(ValueError, match="over-reservation"):
        profile.reserve(5.0, 6.0, 1)


# -- indexed profile vs flat reference ------------------------------------------


@st.composite
def op_sequence(draw, max_ops: int = 30):
    """Interleaved reserve/release/advance/find_start requests.

    Releases always target a live reservation (trimmed to the current
    origin), matching how schedulers drive the profile.
    """
    n = draw(st.integers(min_value=1, max_value=max_ops))
    ops = []
    live = []
    origin = 0.0
    # A throwaway reference tracks feasibility so generated sequences
    # never violate the profile contract.
    tracker = ReferenceAvailabilityProfile(TOTAL_CPUS)
    for _ in range(n):
        choice = draw(st.integers(min_value=0, max_value=9))
        if choice <= 4 or not live:
            start = origin + draw(st.floats(min_value=0.0, max_value=300.0, allow_nan=False))
            duration = draw(st.floats(min_value=0.001, max_value=150.0, allow_nan=False))
            size = draw(st.integers(min_value=1, max_value=TOTAL_CPUS))
            if tracker.min_free(start, start + duration) >= size:
                tracker.reserve(start, start + duration, size)
                ops.append(("reserve", start, start + duration, size))
                live.append([start, start + duration, size])
        elif choice <= 6:
            index = draw(st.integers(min_value=0, max_value=len(live) - 1))
            start, end, size = live.pop(index)
            start = max(start, origin)
            if start < end:
                tracker.release(start, end, size)
                ops.append(("release", start, end, size))
        elif choice == 7:
            time = origin + draw(st.floats(min_value=0.0, max_value=200.0, allow_nan=False))
            if all(end > time for _s, end, _z in live):
                tracker.advance_origin(time)
                ops.append(("advance_origin", time))
                origin = tracker.origin
                for entry in live:
                    entry[0] = max(entry[0], origin)
        else:
            earliest = origin + draw(st.floats(min_value=0.0, max_value=400.0, allow_nan=False))
            duration = draw(st.floats(min_value=0.0, max_value=120.0, allow_nan=False))
            size = draw(st.integers(min_value=1, max_value=TOTAL_CPUS))
            ops.append(("find_start", earliest, duration, size))
    return ops


@given(op_sequence(), st.sampled_from([2, 3, 5, 64]))
@settings(max_examples=80)
def test_indexed_profile_matches_reference(ops, block_size):
    """The indexed profile and the flat reference agree operation-for-operation."""
    indexed = AvailabilityProfile(TOTAL_CPUS, block_size=block_size)
    reference = ReferenceAvailabilityProfile(TOTAL_CPUS)
    for op in ops:
        name, *args = op
        if name == "find_start":
            assert indexed.find_start(*args) == reference.find_start(*args), op
            continue
        getattr(indexed, name)(*args)
        getattr(reference, name)(*args)
        probes = sorted(
            {t for t, _e, _f in indexed.segments()}
            | {t for t, _e, _f in reference.segments()}
        )
        probes += [p + 0.037 for p in probes]
        for probe in probes:
            assert indexed.free_at(probe) == reference.free_at(probe), (op, probe)
        lo = reference.origin
        assert indexed.min_free(lo, lo + 500.0) == reference.min_free(lo, lo + 500.0)


# -- compaction bounds: memory follows live reservations, not history ----------


def test_breakpoint_count_bounded_by_live_reservations():
    """A long reserve/release/advance stream must not accumulate breakpoints.

    Every live reservation contributes at most two boundaries; the
    profile keeps itself merged and drops the past, so the count must
    track the live set even after thousands of completed reservations.
    """
    import random

    rng = random.Random(4)
    profile = AvailabilityProfile(TOTAL_CPUS, block_size=8)
    live = []
    clock = 0.0
    for step in range(4000):
        origin = profile.origin
        if rng.random() < 0.6 or not live:
            start = clock + rng.uniform(0.0, 50.0)
            end = start + rng.uniform(0.5, 80.0)
            size = rng.randint(1, TOTAL_CPUS)
            if profile.min_free(start, end) >= size:
                profile.reserve(start, end, size)
                live.append((start, end, size))
        else:
            start, end, size = live.pop(rng.randrange(len(live)))
            start = max(start, origin)
            if start < end:
                profile.release(start, end, size)
        if rng.random() < 0.3:
            clock += rng.uniform(0.0, 10.0)
            horizon = min((end for _s, end, _z in live), default=clock)
            advance = min(clock, horizon - 1e-6) if live else clock
            if advance > profile.origin:
                profile.advance_origin(advance)
                live = [(max(s, advance), e, z) for (s, e, z) in live]
        bound = 2 * len(live) + 2
        assert profile.breakpoint_count() <= bound, (
            f"step {step}: {profile.breakpoint_count()} breakpoints for "
            f"{len(live)} live reservations (bound {bound})"
        )


def test_conservative_run_keeps_profile_bounded():
    """End-to-end: the scheduler's incremental profile tracks running jobs.

    On a long trace the conservative profile must hold breakpoints
    proportional to jobs *currently running*, never to jobs seen — the
    regression this pins is ``advance_origin``/merging failing to drop
    dead segments, which turns long simulations quadratic.
    """
    from repro.cluster.machine import Machine
    from repro.core.frequency_policy import BsldThresholdPolicy
    from repro.scheduling.base import SchedulerConfig
    from repro.scheduling.conservative import ConservativeBackfilling
    from tests.conftest import random_workload

    machine = Machine("m", 8)

    class Probed(ConservativeBackfilling):
        max_ratio = 0.0

        def _schedule_pass(self, now):
            super()._schedule_pass(now)
            running = max(1, len(self._running))
            ratio = self._profile.breakpoint_count() / (2 * running + 2)
            Probed.max_ratio = max(Probed.max_ratio, ratio)

    jobs = random_workload(seed=11, n_jobs=400, max_cpus=8)
    scheduler = Probed(machine, BsldThresholdPolicy(2.0, None), config=SchedulerConfig())
    result = scheduler.run(jobs)
    assert len(result.outcomes) == len(jobs)
    assert Probed.max_ratio <= 1.0, (
        f"profile breakpoints exceeded the running-set bound "
        f"({Probed.max_ratio:.2f}x) — dead segments are accumulating"
    )
