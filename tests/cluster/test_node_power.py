"""The in-engine node sleep-state subsystem.

Three layers of coverage:

* unit tests of :class:`~repro.cluster.power.NodePowerManager`'s
  idle-stack/netting mechanics and :class:`SleepPolicy` validation;
* the *differential* pin: under zero wake latency the in-engine
  accountant is bit-identical to the post-hoc
  :func:`repro.power.sleep.sleep_energy` estimator, across random
  workloads and both production schedulers — and with wake latency the
  schedules genuinely diverge (that divergence is the point of the
  subsystem);
* the *disabled-identity* pin: with the subsystem off
  (``sleep=None`` or a never-sleeping policy) runs are byte-identical
  to a simulation without it.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Simulation
from repro.cluster.power import NodePowerManager, SleepPolicy
from repro.experiments.config import PolicySpec, RunSpec
from repro.power.model import PowerModel
from repro.power.sleep import SleepStateConfig, sleep_energy
from repro.registry import SLEEP_POLICIES
from repro.serialize import (
    result_from_dict,
    result_to_dict,
    spec_from_dict,
    spec_key,
    spec_to_dict,
)
from repro.sim.events import NodesSlept, NodesWoke
from tests.conftest import make_job

POLICY = SleepPolicy(
    sleep_after_seconds=100.0,
    sleep_power_fraction=0.0,
    wake_energy_idle_seconds=10.0,
    wake_seconds=0.0,
)


class TestSleepPolicy:
    @pytest.mark.parametrize(
        "kw,match",
        [
            (dict(sleep_after_seconds=-1.0), "sleep_after"),
            (dict(sleep_after_seconds=float("nan")), "sleep_after"),
            (dict(sleep_power_fraction=1.5), "sleep_power_fraction"),
            (dict(wake_energy_idle_seconds=-1.0), "wake_energy"),
            (dict(wake_energy_idle_seconds=float("inf")), "wake_energy"),
            (dict(wake_seconds=-1.0), "wake_seconds"),
            (dict(wake_seconds=float("inf")), "wake_seconds"),
        ],
    )
    def test_validation(self, kw, match):
        with pytest.raises(ValueError, match=match):
            SleepPolicy(**kw)

    def test_infinite_threshold_is_disabled(self):
        assert not SleepPolicy(sleep_after_seconds=float("inf")).enabled
        assert SleepPolicy().enabled

    def test_presets_are_registered_and_buildable(self):
        for name in ("default", "powernap", "shutdown"):
            assert name in SLEEP_POLICIES
            policy = SleepPolicy.preset(name)
            assert policy.enabled

    def test_preset_overrides(self):
        policy = SleepPolicy.preset("shutdown", wake_seconds=7.0)
        assert policy.wake_seconds == 7.0
        assert policy.sleep_after_seconds == SleepPolicy.preset("shutdown").sleep_after_seconds

    def test_manager_rejects_disabled_policy(self):
        with pytest.raises(ValueError, match="enabled"):
            NodePowerManager(4, SleepPolicy(sleep_after_seconds=float("inf")))


class TestManagerMechanics:
    def test_hand_computed_intervals(self):
        # 4 CPUs idle from t=0; a 2-CPU claim at t=250 wakes two nodes
        # (idle 250 > 100); they return at t=300 and everything settles
        # at t=400.
        manager = NodePowerManager(4, POLICY, span_start=0.0)
        delay, woken = manager.acquire(2, 250.0)
        assert (delay, woken) == (0.0, 2)  # wake_seconds = 0
        manager.release(2, 300.0)
        manager.finalize(400.0)
        # Two claimed CPUs: 100 awake + 150 asleep each, one wake each;
        # then idle [300, 400) -> 100 awake each, no second transition.
        # Two untouched CPUs: idle [0, 400) -> 100 awake + 300 asleep,
        # no wake (asleep at span end).
        assert manager.idle_awake_cpu_seconds == pytest.approx(2 * 100 + 2 * 100 + 2 * 100)
        assert manager.asleep_cpu_seconds == pytest.approx(2 * 150 + 2 * 300)
        assert manager.wake_count == 2

    def test_same_timestamp_traffic_is_netted(self):
        # A release and an acquire at the same instant must cancel: the
        # freed processors are re-engaged before anything old wakes
        # (exactly how the post-hoc busy series merges simultaneous
        # events).
        manager = NodePowerManager(4, POLICY, span_start=0.0)
        manager.acquire(4, 0.0)  # everything busy from t=0
        manager.release(2, 500.0)
        delay, woken = manager.acquire(2, 500.0)
        assert (delay, woken) == (0.0, 0)
        manager.release(4, 600.0)
        manager.finalize(600.0)
        assert manager.wake_count == 0
        assert manager.asleep_cpu_seconds == 0.0

    def test_interleaved_acquires_and_releases_do_not_reclaim_entries(self):
        # Regression: at one timestamp, acquire -> release -> acquire.
        # The second acquire must be covered by the freed processors
        # (which never slept), not re-consult stack entries the first
        # acquire already claimed.
        policy = SleepPolicy(
            sleep_after_seconds=100.0, wake_seconds=30.0, sleep_power_fraction=0.0
        )
        manager = NodePowerManager(8, policy, span_start=0.0)
        manager.acquire(5, 10.0)  # 5 busy from t=10, 3 left asleep-to-be
        delay, woken = manager.acquire(2, 500.0)
        assert (delay, woken) == (30.0, 2)  # two sleeping nodes boot
        manager.release(3, 500.0)  # a different job frees 3 awake CPUs
        delay, woken = manager.acquire(2, 500.0)
        assert (delay, woken) == (0.0, 0)  # covered by the fresh releases
        assert manager.wake_delayed_jobs == 1
        assert manager.wake_stall_cpu_seconds == pytest.approx(2 * 30.0)

    def test_wake_latency_charged_per_start_not_per_cpu(self):
        policy = SleepPolicy(
            sleep_after_seconds=100.0, wake_seconds=30.0, sleep_power_fraction=0.0
        )
        manager = NodePowerManager(8, policy, span_start=0.0)
        delay, woken = manager.acquire(6, 1000.0)
        assert delay == 30.0
        assert woken == 6  # six nodes boot, in parallel
        assert manager.wake_delayed_jobs == 1
        assert manager.wake_delay_seconds_total == 30.0

    def test_threshold_boundary_is_strict(self):
        # Idle for exactly the threshold is still awake (matches the
        # post-hoc settle's `length > threshold`).
        manager = NodePowerManager(2, POLICY, span_start=0.0)
        delay, woken = manager.acquire(2, 100.0)
        assert woken == 0
        manager.finalize(100.0)
        assert manager.asleep_cpu_seconds == 0.0

    def test_asleep_cpus_probe(self):
        manager = NodePowerManager(4, POLICY, span_start=0.0)
        assert manager.asleep_cpus(50.0) == 0
        # Exactly one threshold of idleness is still awake — the strict
        # boundary every other code path (wake decision, settle) uses.
        assert manager.asleep_cpus(100.0) == 0
        assert manager.asleep_cpus(101.0) == 4
        manager.acquire(3, 150.0)
        assert manager.asleep_cpus(150.0) == 1  # three just woke
        manager.release(3, 200.0)
        assert manager.asleep_cpus(350.0) == 4

    def test_finalize_is_single_shot(self):
        manager = NodePowerManager(2, POLICY, span_start=0.0)
        manager.finalize(10.0)
        with pytest.raises(RuntimeError, match="finalized"):
            manager.finalize(10.0)


def _sleep_spec(workload, n_jobs, seed, scheduler, policy, sleep):
    return RunSpec(
        workload=workload,
        n_jobs=n_jobs,
        seed=seed,
        scheduler=scheduler,
        policy=policy,
        sleep=sleep,
    )


class TestDifferentialAgainstPostHoc:
    """The acceptance pin: in-engine == post-hoc under zero wake latency."""

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        workload=st.sampled_from(["SDSC", "CTC"]),
        scheduler=st.sampled_from(["easy", "conservative"]),
        threshold=st.sampled_from([0.0, 60.0, 300.0, 3600.0]),
    )
    @settings(max_examples=16, deadline=None)
    def test_zero_latency_accounting_is_exact(self, seed, workload, scheduler, threshold):
        sleep = SleepPolicy(
            sleep_after_seconds=threshold,
            sleep_power_fraction=0.05,
            wake_energy_idle_seconds=30.0,
            wake_seconds=0.0,
        )
        policy = PolicySpec.power_aware(2.0, None)
        plain = Simulation(
            _sleep_spec(workload, 80, seed, scheduler, policy, None)
        ).run()
        live = Simulation(
            _sleep_spec(workload, 80, seed, scheduler, policy, sleep)
        ).run()
        # Zero wake latency cannot move the schedule...
        assert live.outcomes == plain.outcomes
        # ...so the online accountant must agree with the post-hoc
        # estimator bit for bit (same settles, same order, same floats).
        estimate = sleep_energy(
            plain,
            SleepStateConfig(
                sleep_after_seconds=threshold,
                sleep_power_fraction=0.05,
                wake_energy_idle_seconds=30.0,
            ),
            PowerModel(gears=plain.machine.gears),
        )
        breakdown = live.energy.sleep
        assert breakdown is not None
        assert breakdown.idle_awake_cpu_seconds == estimate.idle_awake_cpu_seconds
        assert breakdown.asleep_cpu_seconds == estimate.asleep_cpu_seconds
        assert breakdown.wake_count == estimate.wake_count
        assert live.energy.idle == estimate.idle_energy
        assert live.energy.computational == plain.energy.computational

    def test_wake_latency_reports_divergence(self):
        """With a real boot time the in-engine run must diverge from the
        post-hoc estimate — and the report quantifies by how much."""
        policy = PolicySpec.power_aware(2.0, None)
        sleep = SleepPolicy(sleep_after_seconds=300.0, wake_seconds=120.0)
        plain = Simulation(_sleep_spec("SDSC", 300, 1, "easy", policy, None)).run()
        live = Simulation(_sleep_spec("SDSC", 300, 1, "easy", policy, sleep)).run()
        assert live.outcomes != plain.outcomes
        breakdown = live.energy.sleep
        assert breakdown.wake_delayed_jobs > 0
        assert breakdown.wake_delay_seconds_total == pytest.approx(
            breakdown.wake_delayed_jobs * 120.0
        )
        estimate = sleep_energy(
            plain,
            SleepStateConfig(sleep_after_seconds=300.0),
            PowerModel(gears=plain.machine.gears),
        )
        # The divergence the latency introduces, in relative idle energy.
        divergence = abs(live.energy.idle - estimate.idle_energy) / estimate.idle_energy
        assert divergence > 0.0
        assert math.isfinite(divergence)


class TestDisabledIdentity:
    """Satellite: disabled sleep is byte-identical to no subsystem."""

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        workload=st.sampled_from(["SDSC", "CTC"]),
        scheduler=st.sampled_from(["easy", "conservative"]),
        disabled=st.sampled_from(["absent", "infinite"]),
        policy=st.sampled_from([PolicySpec.baseline(), PolicySpec.power_aware(2.0, 4)]),
    )
    @settings(max_examples=16, deadline=None)
    def test_disabled_runs_byte_identical(self, seed, workload, scheduler, disabled, policy):
        sleep = None if disabled == "absent" else SleepPolicy(
            sleep_after_seconds=float("inf")
        )
        without = Simulation(
            _sleep_spec(workload, 60, seed, scheduler, policy, None)
        ).run()
        with_subsystem = Simulation(
            _sleep_spec(workload, 60, seed, scheduler, policy, sleep)
        ).run()
        assert with_subsystem.outcomes == without.outcomes
        assert with_subsystem.energy == without.energy  # sleep=None included
        assert with_subsystem.events_processed == without.events_processed
        assert with_subsystem == without


class TestLifecycleEvents:
    def test_nodes_sleep_and_wake_events_stream(self):
        from repro.instruments import Instrument

        class Recorder(Instrument):
            name = "_sleep_recorder"

            def __init__(self):
                super().__init__()
                self.slept = []
                self.woke = []

            def on_event(self, event):
                if type(event) is NodesSlept:
                    self.slept.append(event)
                elif type(event) is NodesWoke:
                    self.woke.append(event)

        recorder = Recorder()
        spec = _sleep_spec(
            "SDSC",
            120,
            1,
            "easy",
            PolicySpec.baseline(),
            SleepPolicy(sleep_after_seconds=300.0, wake_seconds=30.0),
        )
        session = Simulation(spec).session(instruments=[recorder])
        result = session.result()
        assert recorder.slept, "no NodesSlept events observed"
        assert recorder.woke, "no NodesWoke events observed"
        for event in recorder.slept:
            assert event.count > 0
            assert event.asleep >= event.count
        for event in recorder.woke:
            assert event.count > 0
            assert event.delay_seconds == 30.0
        # The wake events account for every stalled start.
        stalled = result.energy.sleep.wake_delayed_jobs
        assert len(recorder.woke) == stalled

    def test_telemetry_and_watch_probe_see_sleep_state(self):
        from repro.experiments.config import InstrumentSpec

        spec = _sleep_spec(
            "SDSC",
            120,
            1,
            "easy",
            PolicySpec.baseline(),
            SleepPolicy(sleep_after_seconds=300.0),
        ).with_instruments(InstrumentSpec.of("power_telemetry"))
        result = Simulation(spec).run()
        samples = result.instrument("power_telemetry")["samples"]
        assert all(len(row) == 5 for row in samples)
        assert any(row[4] > 0 for row in samples), "telemetry never saw asleep nodes"

    def test_event_trace_export_handles_sleep_events(self, tmp_path):
        # Regression: the trace CSV schema must cover the NodesSlept /
        # NodesWoke fields or sleep-enabled exports crash.
        from repro.experiments.config import InstrumentSpec
        from repro.scheduling.export import event_trace_to_csv

        spec = _sleep_spec(
            "SDSC",
            120,
            1,
            "easy",
            PolicySpec.baseline(),
            SleepPolicy(sleep_after_seconds=300.0, wake_seconds=30.0),
        ).with_instruments(InstrumentSpec.of("event_trace"))
        result = Simulation(spec).run()
        path = tmp_path / "trace.csv"
        rows = event_trace_to_csv(result, path)
        assert rows == result.instrument("event_trace")["recorded"]
        text = path.read_text()
        assert "NodesSlept" in text
        assert "NodesWoke" in text

    def test_power_cap_composes_with_sleep(self):
        """The Eco-Mode combination: a cap controller over a sleeping
        machine still runs and reports, sampling on sleep transitions."""
        from repro.experiments.config import InstrumentSpec

        spec = _sleep_spec(
            "SDSC",
            120,
            1,
            "easy",
            PolicySpec.baseline(),
            SleepPolicy(sleep_after_seconds=300.0),
        ).with_instruments(InstrumentSpec.of("power_cap", cap=500.0))
        result = Simulation(spec).run()
        report = result.instrument("power_cap")
        assert report["reductions"] > 0
        assert result.energy.sleep is not None


class TestSerialization:
    def test_spec_round_trip_and_distinct_cache_keys(self):
        base = RunSpec(workload="SDSC", n_jobs=50, seed=2)
        asleep = base.with_sleep(SleepPolicy(sleep_after_seconds=120.0, wake_seconds=5.0))
        assert spec_from_dict(spec_to_dict(asleep)) == asleep
        assert spec_from_dict(spec_to_dict(base)) == base
        assert spec_key(asleep) != spec_key(base)
        # Distinct sleep parameters key differently too.
        other = base.with_sleep(SleepPolicy(sleep_after_seconds=121.0, wake_seconds=5.0))
        assert spec_key(other) != spec_key(asleep)

    def test_result_round_trip_with_sleep_breakdown(self):
        spec = RunSpec(
            workload="SDSC",
            n_jobs=50,
            seed=2,
            sleep=SleepPolicy(sleep_after_seconds=120.0, wake_seconds=5.0),
        )
        result = Simulation(spec).run()
        assert result.energy.sleep is not None
        assert result_from_dict(result_to_dict(result)) == result

    def test_result_round_trip_without_sleep_unchanged(self):
        result = Simulation(RunSpec(workload="SDSC", n_jobs=50, seed=2)).run()
        assert result.energy.sleep is None
        assert result_from_dict(result_to_dict(result)) == result

    def test_label_mentions_sleep(self):
        spec = RunSpec(workload="SDSC", sleep=SleepPolicy(wake_seconds=60.0))
        assert "sleep(" in spec.label()

    def test_disabled_policy_serializes_as_strict_json(self):
        # Regression: inf would be emitted as the non-standard JSON
        # token ``Infinity``; it must map to null (and round-trip back).
        import json

        from repro.serialize import spec_json

        spec = RunSpec(
            workload="SDSC", sleep=SleepPolicy(sleep_after_seconds=float("inf"))
        )
        text = spec_json(spec)
        assert "Infinity" not in text
        # A strict parser (constants rejected) must accept the document.
        def _reject(token):
            raise ValueError(f"non-standard JSON token {token}")

        json.loads(text, parse_constant=_reject)
        assert spec_from_dict(spec_to_dict(spec)) == spec


class TestSchedulingInteraction:
    def test_wake_latency_stretches_execution_window(self):
        # One job on a machine asleep long before it arrives: its wall
        # occupancy must include the boot.
        sleep = SleepPolicy(sleep_after_seconds=50.0, wake_seconds=40.0)
        from repro.cluster.machine import Machine
        from repro.core.frequency_policy import FixedGearPolicy
        from repro.scheduling.base import SchedulerConfig
        from repro.scheduling.easy import EasyBackfilling

        scheduler = EasyBackfilling(
            Machine("m", 4),
            FixedGearPolicy(),
            config=SchedulerConfig(sleep=sleep),
        )
        jobs = [
            make_job(1, submit=0.0, runtime=10.0, requested=10.0, size=4),
            make_job(2, submit=1000.0, runtime=100.0, requested=100.0, size=4),
        ]
        result = scheduler.run(jobs)
        first, second = result.outcomes
        assert first.penalized_runtime == pytest.approx(10.0)  # nothing asleep at t=0
        # Job 2 starts on 4 CPUs that slept since t=10: runtime + boot.
        assert second.start_time == pytest.approx(1000.0)
        assert second.penalized_runtime == pytest.approx(140.0)
        breakdown = result.energy.sleep
        assert breakdown.wake_delayed_jobs == 1
        # The boot stall is priced at idle power, not the job's gear:
        # active energy covers the 100s of execution only, and the
        # 4 x 40s stall shows up as wake_stall_cpu_seconds.
        active = scheduler.power_model.active_power(result.machine.gears.top)
        assert second.energy == pytest.approx(active * 4 * 100.0)
        assert breakdown.wake_stall_cpu_seconds == pytest.approx(4 * 40.0)
        # The idle-side books stay consistent: awake + asleep + stall
        # partition every non-executing CPU-second of the span.
        assert (
            breakdown.idle_awake_cpu_seconds
            + breakdown.asleep_cpu_seconds
            + breakdown.wake_stall_cpu_seconds
        ) == pytest.approx(result.energy.idle_cpu_seconds)

    def test_instantaneous_power_prices_wake_stall_at_idle(self):
        # Mid-stall, a sampled power reading must match what the energy
        # books integrate: idle power for the booting allocation, not
        # the job's gear.
        sleep = SleepPolicy(sleep_after_seconds=50.0, wake_seconds=40.0)
        from repro.cluster.machine import Machine
        from repro.core.frequency_policy import FixedGearPolicy
        from repro.scheduling.base import SchedulerConfig
        from repro.scheduling.easy import EasyBackfilling

        scheduler = EasyBackfilling(
            Machine("m", 4),
            FixedGearPolicy(),
            config=SchedulerConfig(sleep=sleep),
        )
        jobs = [
            make_job(1, submit=0.0, runtime=10.0, requested=10.0, size=4),
            make_job(2, submit=1000.0, runtime=100.0, requested=100.0, size=4),
        ]
        engine = scheduler.prepare(jobs)
        engine.run(until=1000.0)  # job 2 just dispatched, nodes booting
        idle = scheduler.power_model.idle_power()
        assert scheduler.busy_cpus == 4
        assert scheduler.instantaneous_power() == pytest.approx(4 * idle)
        engine.run(max_events=scheduler.event_budget)
        scheduler.finalize()

    def test_conservative_same_pass_planning_sees_wake_stalls(self):
        # Regression: a pass that starts a job whose nodes must boot
        # reserved only begin..begin+duration in its planning copy, so a
        # later queue entry was planned over the boot and its reserved
        # start silently slipped on the next pass.
        from repro.cluster.machine import Machine
        from repro.core.frequency_policy import FixedGearPolicy
        from repro.scheduling.base import SchedulerConfig
        from repro.scheduling.conservative import ConservativeBackfilling

        sleep = SleepPolicy(sleep_after_seconds=50.0, wake_seconds=100.0)
        scheduler = ConservativeBackfilling(
            Machine("m", 4),
            FixedGearPolicy(),
            config=SchedulerConfig(sleep=sleep, validate=True),
        )
        jobs = [
            make_job(1, submit=0.0, runtime=2000.0, requested=2000.0, size=2),
            make_job(2, submit=1.0, runtime=300.0, requested=300.0, size=4),
            make_job(3, submit=2.0, runtime=100.0, requested=100.0, size=4),
        ]
        scheduler.run(jobs)
        # Every pass that planned job 3 must agree once its information
        # is stable: after job 2 started (waking 2 slept nodes, true
        # window [2000, 2400]), job 3's reserved start is 2400 in the
        # same pass, not 2300-then-2400.
        job3_plans = [
            plan[3] for _, at, plan in scheduler.plan_log if 3 in plan and at >= 2000.0
        ]
        assert job3_plans, "job 3 never planned after job 2 started"
        assert all(start == job3_plans[0] for start in job3_plans), job3_plans

    def test_boost_during_wake_stall_never_compresses_the_boot(self):
        # Dynamic boost re-gears running jobs; one still inside its wake
        # stall must keep the full (frequency-invariant) boot time, and
        # no outcome may ever bill negative energy.
        from dataclasses import replace as dc_replace

        policy = dc_replace(
            PolicySpec.power_aware(2.0, None), boost_trigger=1
        )
        spec = RunSpec(
            workload="SDSC",
            n_jobs=400,
            seed=3,
            policy=policy,
            sleep=SleepPolicy(sleep_after_seconds=300.0, wake_seconds=300.0),
        )
        result = Simulation(spec, validate=True).run()
        assert result.energy.sleep.wake_delayed_jobs > 0
        for outcome in result.outcomes:
            assert outcome.energy >= 0.0, f"job {outcome.job.job_id} billed negative energy"
            assert outcome.finish_time >= outcome.start_time

    def test_event_budget_covers_sleep_timers(self):
        # Timers are armed only when observers are attached, so drive
        # the run through an instrumented session: a sparse trace with a
        # tiny threshold maximises CONTROL transitions per job, and the
        # run must stay inside the enlarged 8n+256 budget.
        from repro.experiments.config import InstrumentSpec

        sleep = SleepPolicy(sleep_after_seconds=10.0)
        spec = _sleep_spec("SDSC", 200, 7, "easy", PolicySpec.baseline(), sleep)
        spec = spec.with_instruments(InstrumentSpec.of("event_trace", kinds=("NodesSlept",)))
        result = Simulation(spec).run()
        assert result.energy.sleep.wake_count > 0
        recorded = result.instrument("event_trace")["recorded"]
        assert recorded > 0, "no CONTROL sleep timers ever fired"
        # CONTROL events genuinely ran through the engine loop (arrivals
        # + finishes alone would be exactly 2n).
        assert result.events_processed > 2 * 200
