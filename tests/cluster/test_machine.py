"""Unit tests for the machine description."""

import pytest

from repro.cluster.machine import Machine
from repro.core.gears import PAPER_GEAR_SET, single_gear_set


class TestMachine:
    def test_defaults_to_paper_gears(self):
        machine = Machine("CTC", 430)
        assert machine.gears == PAPER_GEAR_SET
        assert machine.top_frequency == 2.3

    def test_rejects_empty_machine(self):
        with pytest.raises(ValueError, match="CPU"):
            Machine("m", 0)

    def test_custom_gears(self):
        machine = Machine("m", 4, gears=single_gear_set(1.0, 1.0))
        assert machine.top_frequency == 1.0


class TestScaling:
    def test_paper_factors(self):
        machine = Machine("SDSC", 128)
        assert machine.scaled(1.2).total_cpus == 154  # round(153.6)
        assert machine.scaled(1.5).total_cpus == 192
        assert machine.scaled(2.25).total_cpus == 288

    def test_identity_scale_keeps_name(self):
        machine = Machine("CTC", 430)
        assert machine.scaled(1.0).name == "CTC"
        assert machine.scaled(1.0).total_cpus == 430

    def test_scaled_name_suffix(self):
        assert Machine("CTC", 430).scaled(1.5).name == "CTCx1.5"

    def test_gears_preserved(self):
        machine = Machine("m", 10, gears=single_gear_set())
        assert machine.scaled(2.0).gears == machine.gears

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError, match="factor"):
            Machine("m", 10).scaled(0.0)
        with pytest.raises(ValueError, match="factor"):
            Machine("m", 10).scaled(-1.5)

    def test_rejects_vanishing_machine(self):
        with pytest.raises(ValueError, match="CPU"):
            Machine("m", 1).scaled(0.2)

    def test_shrinking_allowed(self):
        assert Machine("m", 100).scaled(0.5).total_cpus == 50
