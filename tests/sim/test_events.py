"""Unit tests for the cancellable event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.events import EventKind, EventQueue


class TestOrdering:
    def test_time_order(self):
        queue = EventQueue()
        queue.push(5.0, EventKind.JOB_ARRIVAL, "late")
        queue.push(1.0, EventKind.JOB_ARRIVAL, "early")
        assert queue.pop().payload == "early"
        assert queue.pop().payload == "late"

    def test_finish_beats_arrival_at_same_time(self):
        queue = EventQueue()
        queue.push(10.0, EventKind.JOB_ARRIVAL, "arrival")
        queue.push(10.0, EventKind.JOB_FINISH, "finish")
        assert queue.pop().payload == "finish"
        assert queue.pop().payload == "arrival"

    def test_insertion_order_breaks_remaining_ties(self):
        queue = EventQueue()
        for name in ("a", "b", "c"):
            queue.push(1.0, EventKind.JOB_ARRIVAL, name)
        assert [queue.pop().payload for _ in range(3)] == ["a", "b", "c"]

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
    def test_pops_sorted(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, EventKind.CONTROL)
        popped = [queue.pop().time for _ in range(len(times))]
        assert popped == sorted(popped)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        queue = EventQueue()
        handle = queue.push(1.0, EventKind.JOB_FINISH, "dead")
        queue.push(2.0, EventKind.JOB_FINISH, "alive")
        queue.cancel(handle)
        assert len(queue) == 1
        assert queue.pop().payload == "alive"

    def test_double_cancel_is_idempotent(self):
        queue = EventQueue()
        handle = queue.push(1.0, EventKind.JOB_FINISH)
        queue.cancel(handle)
        queue.cancel(handle)
        assert len(queue) == 0

    def test_cancel_then_empty_pop_raises(self):
        queue = EventQueue()
        queue.cancel(queue.push(1.0, EventKind.JOB_FINISH))
        with pytest.raises(IndexError):
            queue.pop()

    def test_cancel_popped_handle_raises(self):
        queue = EventQueue()
        handle = queue.push(1.0, EventKind.JOB_FINISH)
        queue.push(2.0, EventKind.JOB_FINISH)
        assert queue.pop() is handle
        with pytest.raises(ValueError, match="already fired"):
            queue.cancel(handle)
        assert len(queue) == 1  # the live count did not drift

    def test_cancel_foreign_handle_raises(self):
        ours = EventQueue()
        theirs = EventQueue()
        foreign = theirs.push(1.0, EventKind.JOB_FINISH)
        ours.push(2.0, EventKind.JOB_FINISH)
        with pytest.raises(ValueError, match="different queue"):
            ours.cancel(foreign)
        assert len(ours) == 1
        assert len(theirs) == 1

    def test_handle_ownership_lifecycle(self):
        queue = EventQueue()
        handle = queue.push(1.0, EventKind.JOB_FINISH)
        assert handle.queue is queue
        queue.pop()
        assert handle.queue is None
        cancelled = queue.push(2.0, EventKind.JOB_FINISH)
        queue.cancel(cancelled)
        assert cancelled.queue is None


class TestBookkeeping:
    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0, EventKind.CONTROL)
        assert queue
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        queue.push(9.0, EventKind.CONTROL)
        queue.push(3.0, EventKind.CONTROL)
        assert queue.peek_time() == 3.0
        assert len(queue) == 2  # peek does not consume

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, EventKind.CONTROL)
        queue.push(2.0, EventKind.CONTROL)
        queue.cancel(first)
        assert queue.peek_time() == 2.0

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().peek_time()

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            EventQueue().push(float("nan"), EventKind.CONTROL)


class TestEventKindPriorities:
    def test_finish_lowest(self):
        assert EventKind.JOB_FINISH < EventKind.JOB_ARRIVAL < EventKind.CONTROL
