"""Engine lanes: registry resolution, spec neutrality, structured errors.

The lane contract has three legs, each pinned here:

1. *Resolution* — ``spec.engine`` → ``REPRO_ENGINE`` → ``"reference"``,
   with unknown/unavailable lanes failing fast as
   :class:`~repro.serialize.SpecValidationError` (field ``engine``).
2. *Neutrality* — which lane runs a spec is execution metadata: cache
   keys, canonical spec JSON, equality and hashing are all identical
   with and without an engine selection, so cached results are shared
   across lanes.
3. *Surfacing* — the CLI, the serve daemon and the API all turn an
   unavailable lane into the structured ``{error: {code, message,
   field}}`` document (exit code 3 / HTTP 400), not a traceback.

The byte-identity of the lanes themselves is pinned by the differential
tests in ``test_lane_differential.py`` and the golden-trace suite.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Simulation
from repro.experiments.config import PolicySpec, RunSpec
from repro.registry import ENGINES
from repro.serialize import SpecValidationError, spec_key, spec_to_dict
from repro.sim.lanes import (
    DEFAULT_ENGINE,
    ENGINE_ENV,
    check_engine_available,
    check_engine_name,
    resolve_engine_name,
    resolve_lane,
)


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


SPEC = RunSpec(workload="SDSC", n_jobs=50, seed=7, policy=PolicySpec.power_aware(2.0, 4))


class TestResolution:
    def test_both_lanes_registered(self):
        assert "reference" in ENGINES
        assert "columnar" in ENGINES

    def test_reference_always_available(self):
        assert ENGINES.get(DEFAULT_ENGINE).available()

    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine_name(SPEC) == DEFAULT_ENGINE

    def test_environment_selects_lane(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "columnar")
        assert resolve_engine_name(SPEC) == "columnar"

    def test_spec_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "columnar")
        assert resolve_engine_name(SPEC.with_engine("reference")) == "reference"

    def test_unknown_environment_lane_is_spec_error(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "warp-drive")
        with pytest.raises(SpecValidationError) as excinfo:
            check_engine_available(SPEC)
        assert excinfo.value.path == "engine"

    def test_unknown_name_is_spec_error(self):
        with pytest.raises(SpecValidationError) as excinfo:
            check_engine_name("warp-drive")
        assert excinfo.value.path == "engine"

    def test_runspec_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            RunSpec(workload="SDSC", engine="warp-drive")

    def test_resolve_lane_returns_runnable(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        lane = resolve_lane(SPEC)
        assert lane.name == DEFAULT_ENGINE


class TestLaneNeutrality:
    """Engine choice never enters spec identity, bytes, or cache keys."""

    @pytest.mark.parametrize("engine", [None, "reference", "columnar"])
    def test_cache_key_is_lane_free(self, engine):
        assert spec_key(SPEC.with_engine(engine)) == spec_key(SPEC)

    @pytest.mark.parametrize("engine", ["reference", "columnar"])
    def test_canonical_json_is_lane_free(self, engine):
        plain = json.dumps(spec_to_dict(SPEC), sort_keys=True)
        laned = json.dumps(spec_to_dict(SPEC.with_engine(engine)), sort_keys=True)
        assert plain == laned
        assert "engine" not in spec_to_dict(SPEC.with_engine(engine))

    def test_equality_and_hash_are_lane_free(self):
        assert SPEC.with_engine("columnar") == SPEC.with_engine("reference") == SPEC
        assert hash(SPEC.with_engine("columnar")) == hash(SPEC)

    @pytest.mark.skipif(not _numpy_available(), reason="columnar lane needs numpy")
    def test_cache_entries_shared_across_lanes(self, tmp_path):
        """A result cached under one lane satisfies the other lane."""
        from repro.batch import BatchRunner

        writer = BatchRunner(cache_dir=tmp_path, engine="reference")
        (first,) = writer.run([SPEC])
        assert writer.cache_misses == 1
        reader = BatchRunner(cache_dir=tmp_path, engine="columnar")
        (second,) = reader.run([SPEC])
        assert reader.cache_hits == 1 and reader.cache_misses == 0
        assert first.outcomes == second.outcomes

    def test_batch_runner_rejects_unknown_engine(self):
        from repro.batch import BatchRunner

        with pytest.raises(SpecValidationError):
            BatchRunner(engine="warp-drive")

    @pytest.mark.skipif(not _numpy_available(), reason="columnar lane needs numpy")
    def test_batch_runner_respects_spec_pinned_engine(self, tmp_path):
        """A spec that pins its own lane keeps it under a runner default."""
        from repro.batch import BatchRunner

        runner = BatchRunner(engine="columnar")
        pinned = SPEC.with_engine("reference")
        normalized = runner._prepare([pinned, SPEC], {})
        assert normalized[0].engine == "reference"
        assert normalized[1].engine == "columnar"


class _Unavailable:
    """Force the columnar lane unavailable regardless of numpy."""

    @pytest.fixture(autouse=True)
    def _make_unavailable(self, monkeypatch):
        lane = ENGINES.get("columnar")
        monkeypatch.setattr(lane, "available", lambda: False)
        monkeypatch.delenv(ENGINE_ENV, raising=False)


class TestUnavailableLaneSurfacing(_Unavailable):
    """All three entry points speak the structured error document.

    The ``tests-no-numpy`` CI lane runs the same three paths with the
    lane *genuinely* unavailable (no monkeypatch needed); here the
    availability probe is forced off so the contract is also pinned on
    developer machines that do have numpy.
    """

    def test_api_raises_spec_validation_error(self):
        with pytest.raises(SpecValidationError) as excinfo:
            Simulation(SPEC.with_engine("columnar")).run()
        assert excinfo.value.path == "engine"
        assert "numpy" in excinfo.value.reason

    def test_cli_structured_error_exit_code_3(self, capsys):
        from repro.cli import main

        code = main(
            ["--json", "--jobs", "50", "run", "SDSC", "--engine", "columnar"]
        )
        assert code == 3
        document = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
        assert document["error"]["code"] == "invalid_spec"
        assert document["error"]["field"] == "engine"
        assert "numpy" in document["error"]["message"]

    def test_cli_plain_error_mentions_engine(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--jobs", "50", "run", "SDSC", "--engine", "columnar"])
        assert "engine" in str(excinfo.value)

    def test_serve_submit_rejected_400(self):
        import urllib.error
        import urllib.request

        from repro.serve.server import ReproServer

        server = ReproServer("127.0.0.1", 0, max_workers=1)
        server.start_in_thread()
        try:
            document = spec_to_dict(SPEC)
            document["engine"] = "columnar"
            request = urllib.request.Request(
                f"http://{server.address}/runs",
                data=json.dumps(document).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 400
            body = json.loads(excinfo.value.read())
            assert body["error"]["code"] == "invalid_spec"
            assert body["error"]["field"] == "engine"
        finally:
            server.stop()

    def test_reference_still_runs(self):
        result = Simulation(SPEC.with_engine("reference")).run()
        assert len(result.outcomes) == SPEC.n_jobs


@pytest.mark.skipif(_numpy_available(), reason="exercises the real numpy-less probe")
class TestGenuinelyWithoutNumpy:
    """The no-numpy CI lane: the availability probe itself is honest."""

    def test_columnar_lane_reports_unavailable(self):
        lane = ENGINES.get("columnar")
        assert not lane.available()
        assert "numpy" in lane.unavailable_reason()

    def test_api_raises_spec_validation_error(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        with pytest.raises(SpecValidationError) as excinfo:
            Simulation(SPEC.with_engine("columnar")).run()
        assert excinfo.value.path == "engine"

    def test_environment_selected_columnar_fails_fast(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "columnar")
        with pytest.raises(SpecValidationError):
            check_engine_available(SPEC)
