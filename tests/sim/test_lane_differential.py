"""Lane-vs-lane byte-identity differentials.

The columnar lane's whole contract is "same spec, same bytes": for any
spec, running under ``engine="columnar"`` must serialize to exactly the
canonical JSON the reference lane produces — fused-core configurations
and reference-fallback configurations alike.  These tests drive both
lanes over a policy × scheduler grid on pinned traces and over
hypothesis-drawn workloads, comparing full canonical result documents
(per-job outcomes, energy books, accounting) byte for byte.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Simulation
from repro.cluster.machine import Machine
from repro.cluster.power import SleepPolicy
from repro.experiments.config import PolicySpec, RunSpec
from repro.serialize import result_to_dict
from tests.conftest import workload_strategy

pytest.importorskip("numpy", reason="the columnar lane needs numpy")


def canonical(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


def assert_lanes_identical(spec: RunSpec, **kwargs) -> None:
    reference = Simulation(spec.with_engine("reference"), **kwargs).run()
    columnar = Simulation(spec.with_engine("columnar"), **kwargs).run()
    assert canonical(reference) == canonical(columnar), (
        f"lane divergence for {spec.label()}"
    )


POLICIES = {
    "nodvfs": PolicySpec.baseline(),
    "fixed-1.7": PolicySpec(kind="fixed", fixed_frequency=1.7),
    "bsld(1.5,NO)": PolicySpec.power_aware(1.5, None),
    "bsld(2,4)": PolicySpec.power_aware(2.0, 4),
    "bsld(3,0)-strict": PolicySpec.power_aware(3.0, 0, strict_top_backfill=True),
}


@pytest.mark.parametrize("scheduler", ["easy", "fcfs"])
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_lanes_identical_fused_grid(scheduler, policy_name):
    """The fused core's whole coverage: schedulers × policy kinds."""
    spec = RunSpec(
        workload="SDSC",
        n_jobs=400,
        seed=3,
        scheduler=scheduler,
        policy=POLICIES[policy_name],
    )
    assert_lanes_identical(spec)


@pytest.mark.parametrize(
    "spec",
    [
        RunSpec(workload="CTC", n_jobs=400, seed=3, policy=PolicySpec.power_aware(2.0, None)),
        RunSpec(
            workload="SDSC", n_jobs=300, seed=5, size_factor=1.5,
            policy=PolicySpec.power_aware(2.0, 4),
        ),
        RunSpec(
            workload="SDSC", n_jobs=300, seed=5, beta=0.3,
            policy=PolicySpec.power_aware(2.0, 4),
        ),
    ],
    ids=["ctc", "size-factor", "beta"],
)
def test_lanes_identical_variants(spec):
    assert_lanes_identical(spec)


@pytest.mark.parametrize(
    "spec, kwargs",
    [
        # Sleep policies, the conservative scheduler, validate mode and
        # the util policy are outside the fused core: the columnar lane
        # must fall back to the reference core and still match.
        (
            RunSpec(
                workload="SDSC", n_jobs=200, seed=2,
                policy=PolicySpec.power_aware(2.0, None),
                sleep=SleepPolicy.preset("shutdown"),
            ),
            {},
        ),
        (
            RunSpec(
                workload="SDSC", n_jobs=200, seed=2, scheduler="conservative",
                policy=PolicySpec.power_aware(2.0, 4),
            ),
            {},
        ),
        (
            RunSpec(workload="SDSC", n_jobs=200, seed=2, policy=PolicySpec.power_aware(2.0, 4)),
            {"validate": True},
        ),
    ],
    ids=["sleep-fallback", "conservative-fallback", "validate-fallback"],
)
def test_lanes_identical_fallback(spec, kwargs):
    assert_lanes_identical(spec, **kwargs)


@given(
    jobs=workload_strategy(max_jobs=30, max_cpus=8),
    policy_name=st.sampled_from(sorted(POLICIES)),
    scheduler=st.sampled_from(["easy", "fcfs"]),
)
@settings(max_examples=60)
def test_lanes_identical_property(jobs, policy_name, scheduler):
    """Random workloads through both lanes with injected traces."""
    spec = RunSpec(
        workload="SDSC",  # ignored: the trace and machine are injected
        n_jobs=len(jobs),
        scheduler=scheduler,
        policy=POLICIES[policy_name],
    )
    machine = Machine("m", 8)
    reference = Simulation(
        spec.with_engine("reference"), jobs=jobs, machine=machine
    ).run()
    columnar = Simulation(
        spec.with_engine("columnar"), jobs=jobs, machine=machine
    ).run()
    assert canonical(reference) == canonical(columnar)
