"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import EventKind


def collecting_engine():
    engine = Engine()
    log = []
    engine.on(EventKind.JOB_ARRIVAL, lambda now, payload: log.append(("arrival", now, payload)))
    engine.on(EventKind.JOB_FINISH, lambda now, payload: log.append(("finish", now, payload)))
    return engine, log


class TestDispatch:
    def test_events_dispatch_in_order(self):
        engine, log = collecting_engine()
        engine.schedule(2.0, EventKind.JOB_ARRIVAL, "b")
        engine.schedule(1.0, EventKind.JOB_ARRIVAL, "a")
        engine.run()
        assert [entry[2] for entry in log] == ["a", "b"]
        assert engine.events_processed == 2

    def test_clock_advances(self):
        engine, log = collecting_engine()
        engine.schedule(5.0, EventKind.JOB_ARRIVAL)
        engine.run()
        assert engine.now == 5.0

    def test_handler_can_schedule_more(self):
        engine = Engine()
        seen = []

        def handler(now, payload):
            seen.append(now)
            if payload:
                engine.schedule(now + 1.0, EventKind.CONTROL, payload - 1)

        engine.on(EventKind.CONTROL, handler)
        engine.schedule(0.0, EventKind.CONTROL, 3)
        engine.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_missing_handler_raises(self):
        engine = Engine()
        engine.schedule(1.0, EventKind.CONTROL)
        with pytest.raises(SimulationError, match="no handler"):
            engine.run()

    def test_duplicate_handler_rejected(self):
        engine = Engine()
        engine.on(EventKind.CONTROL, lambda n, p: None)
        with pytest.raises(ValueError, match="already registered"):
            engine.on(EventKind.CONTROL, lambda n, p: None)


class TestScheduling:
    def test_schedule_into_past_rejected(self):
        engine, _ = collecting_engine()
        engine.schedule(10.0, EventKind.JOB_ARRIVAL)
        engine.run()
        with pytest.raises(SimulationError, match="before the current time"):
            engine.schedule(5.0, EventKind.JOB_ARRIVAL)

    def test_schedule_now_allowed(self):
        engine = Engine()
        hits = []
        engine.on(EventKind.CONTROL, lambda n, p: hits.append(n))
        engine.schedule(0.0, EventKind.CONTROL)
        engine.run()
        engine.schedule(engine.now, EventKind.CONTROL)
        engine.run()
        assert hits == [0.0, 0.0]

    def test_cancel(self):
        engine, log = collecting_engine()
        handle = engine.schedule(1.0, EventKind.JOB_FINISH, "dead")
        engine.schedule(2.0, EventKind.JOB_ARRIVAL, "alive")
        engine.cancel(handle)
        engine.run()
        assert [entry[2] for entry in log] == ["alive"]

    def test_cancel_fired_event_raises(self):
        engine, _ = collecting_engine()
        handle = engine.schedule(1.0, EventKind.JOB_ARRIVAL)
        engine.run()
        with pytest.raises(SimulationError, match="already fired"):
            engine.cancel(handle)
        assert engine.pending_events == 0  # the live count stays intact

    def test_cancel_foreign_handle_raises(self):
        engine, _ = collecting_engine()
        other, _ = collecting_engine()
        foreign = other.schedule(1.0, EventKind.JOB_ARRIVAL)
        engine.schedule(2.0, EventKind.JOB_ARRIVAL)
        with pytest.raises(SimulationError, match="different queue"):
            engine.cancel(foreign)
        assert engine.pending_events == 1
        assert other.pending_events == 1

    def test_double_cancel_is_harmless(self):
        engine, log = collecting_engine()
        handle = engine.schedule(1.0, EventKind.JOB_ARRIVAL, "dead")
        engine.cancel(handle)
        engine.cancel(handle)  # idempotent, not an error
        assert engine.pending_events == 0
        engine.run()
        assert log == []

    def test_pending_events_counter(self):
        engine, _ = collecting_engine()
        engine.schedule(1.0, EventKind.JOB_ARRIVAL)
        engine.schedule(2.0, EventKind.JOB_ARRIVAL)
        assert engine.pending_events == 2
        engine.run()
        assert engine.pending_events == 0


class TestRunBounds:
    def test_until_stops_early(self):
        engine, log = collecting_engine()
        engine.schedule(1.0, EventKind.JOB_ARRIVAL, "in")
        engine.schedule(10.0, EventKind.JOB_ARRIVAL, "out")
        engine.run(until=5.0)
        assert [entry[2] for entry in log] == ["in"]
        assert engine.pending_events == 1

    def test_max_events_guard(self):
        engine = Engine()
        engine.on(EventKind.CONTROL, lambda n, p: engine.schedule(n + 1.0, EventKind.CONTROL))
        engine.schedule(0.0, EventKind.CONTROL)
        with pytest.raises(SimulationError, match="budget"):
            engine.run(max_events=100)

    def test_not_reentrant(self):
        engine = Engine()
        error = {}

        def handler(now, payload):
            try:
                engine.run()
            except SimulationError as exc:
                error["message"] = str(exc)

        engine.on(EventKind.CONTROL, handler)
        engine.schedule(0.0, EventKind.CONTROL)
        engine.run()
        assert "reentrant" in error["message"]

    def test_run_on_empty_queue_is_noop(self):
        engine, log = collecting_engine()
        engine.run()
        assert log == []
        assert engine.now == 0.0


class TestStep:
    def test_step_processes_one_event(self):
        engine, log = collecting_engine()
        engine.schedule(1.0, EventKind.JOB_ARRIVAL, "a")
        engine.schedule(2.0, EventKind.JOB_ARRIVAL, "b")
        assert engine.step() is True
        assert [entry[2] for entry in log] == ["a"]
        assert engine.now == 1.0
        assert engine.events_processed == 1

    def test_step_on_empty_queue_returns_false(self):
        engine, log = collecting_engine()
        assert engine.step() is False
        assert log == []

    def test_step_drains_like_run(self):
        stepped, step_log = collecting_engine()
        looped, loop_log = collecting_engine()
        for engine in (stepped, looped):
            engine.schedule(3.0, EventKind.JOB_ARRIVAL, "c")
            engine.schedule(1.0, EventKind.JOB_FINISH, "a")
            engine.schedule(1.0, EventKind.JOB_ARRIVAL, "b")
        while stepped.step():
            pass
        looped.run()
        assert step_log == loop_log
        assert stepped.now == looped.now
        assert stepped.events_processed == looped.events_processed

    def test_step_missing_handler_raises(self):
        engine = Engine()
        engine.schedule(1.0, EventKind.CONTROL)
        with pytest.raises(SimulationError, match="no handler"):
            engine.step()

    def test_step_not_reentrant(self):
        engine = Engine()
        error = {}

        def handler(now, payload):
            try:
                engine.step()
            except SimulationError as exc:
                error["message"] = str(exc)

        engine.on(EventKind.CONTROL, handler)
        engine.schedule(0.0, EventKind.CONTROL)
        engine.run()
        assert "reentrant" in error["message"]
