"""Unit tests for seeded named RNG streams."""

from repro.sim.rng import RngStreams, substream


class TestSubstream:
    def test_deterministic(self):
        assert substream(1, "x").random() == substream(1, "x").random()

    def test_name_separates_streams(self):
        assert substream(1, "a").random() != substream(1, "b").random()

    def test_seed_separates_streams(self):
        assert substream(1, "a").random() != substream(2, "a").random()


class TestRngStreams:
    def test_same_name_returns_same_object(self):
        streams = RngStreams(7)
        assert streams.get("arrival") is streams.get("arrival")

    def test_getitem_alias(self):
        streams = RngStreams(7)
        assert streams["size"] is streams.get("size")

    def test_matches_substream(self):
        assert RngStreams(3)["runtime"].random() == substream(3, "runtime").random()

    def test_seed_property(self):
        assert RngStreams(11).seed == 11

    def test_stream_independence(self):
        """Consuming one stream must not perturb another."""
        reference = RngStreams(5)
        expected = [reference["b"].random() for _ in range(5)]

        perturbed = RngStreams(5)
        for _ in range(100):
            perturbed["a"].random()  # heavy use of a different stream
        assert [perturbed["b"].random() for _ in range(5)] == expected
