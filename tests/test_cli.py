"""CLI smoke tests (all subcommands, tiny traces)."""

import pytest

from repro.cli import main


def run_cli(capsys, *args):
    code = main(list(args))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


class TestRun:
    def test_baseline_run(self, capsys):
        out = run_cli(capsys, "--jobs", "60", "run", "CTC")
        assert "avg BSLD" in out
        assert "energy (idle=0)" in out
        assert "[1.000 of no-DVFS]" in out

    def test_power_aware_run(self, capsys):
        out = run_cli(
            capsys, "--jobs", "60", "run", "CTC",
            "--bsld-threshold", "2", "--wq-threshold", "4",
        )
        assert "BSLDthreshold=2" in out
        assert "gear histogram" in out

    def test_no_limit_wq(self, capsys):
        out = run_cli(
            capsys, "--jobs", "60", "run", "LLNLThunder",
            "--bsld-threshold", "3", "--wq-threshold", "NO",
        )
        assert "WQthreshold=NO" in out

    def test_size_factor_and_boost(self, capsys):
        out = run_cli(
            capsys, "--jobs", "60", "run", "SDSC",
            "--bsld-threshold", "2", "--size-factor", "1.5", "--boost", "4",
        )
        assert "SDSCx1.5" in out

    def test_fcfs_scheduler(self, capsys):
        out = run_cli(capsys, "--jobs", "60", "run", "CTC", "--scheduler", "fcfs")
        assert "avg BSLD" in out

    def test_bad_wq_threshold(self, capsys):
        with pytest.raises(SystemExit):
            main(["--jobs", "10", "run", "CTC", "--bsld-threshold", "2", "--wq-threshold", "x"])
        with pytest.raises(SystemExit):
            main(["--jobs", "10", "run", "CTC", "--bsld-threshold", "2", "--wq-threshold", "-3"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "NotAWorkload"])

    def test_sleep_preset_run(self, capsys):
        out = run_cli(capsys, "--jobs", "60", "run", "SDSC", "--sleep", "shutdown")
        assert "sleep states:" in out
        assert "wakes" in out

    def test_sleep_overrides(self, capsys):
        out = run_cli(
            capsys, "--jobs", "60", "run", "SDSC",
            "--sleep", "default", "--sleep-after", "120", "--wake-seconds", "30",
        )
        assert "sleep states:" in out

    def test_sleep_override_without_preset_rejected(self):
        with pytest.raises(SystemExit, match="--sleep PRESET"):
            main(["--jobs", "10", "run", "SDSC", "--sleep-after", "60"])

    def test_bad_sleep_override_rejected(self):
        with pytest.raises(SystemExit, match="sleep_after"):
            main(["--jobs", "10", "run", "SDSC", "--sleep", "default",
                  "--sleep-after", "-5"])


class TestWatch:
    def test_streams_telemetry_lines(self, capsys):
        out = run_cli(capsys, "--jobs", "60", "watch", "SDSC", "--interval", "3600")
        assert "watching SDSC NoDVFS +power_telemetry" in out
        assert "power [W]" in out
        assert "peak" in out and "samples" in out

    def test_power_cap_flag(self, capsys):
        out = run_cli(
            capsys, "--jobs", "60", "watch", "SDSC",
            "--interval", "3600", "--cap", "500", "--seed", "1",
        )
        assert "gear cap" in out
        assert "cap 500:" in out

    def test_power_aware_watch(self, capsys):
        out = run_cli(
            capsys, "--jobs", "60", "watch", "CTC",
            "--bsld-threshold", "2", "--wq-threshold", "4",
        )
        assert "DVFS(2,4)" in out

    def test_bad_flags_rejected(self):
        with pytest.raises(SystemExit):
            main(["--jobs", "10", "watch", "SDSC", "--cap", "-1"])
        with pytest.raises(SystemExit):
            main(["--jobs", "10", "watch", "SDSC", "--step-events", "0"])

    def test_sleep_watch_shows_asleep_column(self, capsys):
        out = run_cli(
            capsys, "--jobs", "60", "watch", "SDSC",
            "--interval", "3600", "--sleep", "default",
        )
        assert "asleep" in out
        assert "sleep:" in out
        assert "+sleep(300s)" in out


class TestSweep:
    def test_sweep_grid(self, capsys):
        out = run_cli(
            capsys, "--jobs", "40", "sweep",
            "--workloads", "CTC", "--bsld-thresholds", "2", "--wq-thresholds", "0,NO",
        )
        assert "Sweep — 2 runs" in out
        assert "CTC DVFS(2,0)" in out
        assert "CTC DVFS(2,NO)" in out

    def test_sweep_with_size_factors(self, capsys):
        out = run_cli(
            capsys, "--jobs", "40", "sweep",
            "--workloads", "SDSC", "--bsld-thresholds", "2",
            "--wq-thresholds", "NO", "--size-factors", "1,1.5",
        )
        assert "SDSC x1.5 DVFS(2,NO)" in out

    def test_bad_threshold_list_rejected(self):
        with pytest.raises(SystemExit):
            main(["--jobs", "10", "sweep", "--bsld-thresholds", "two"])
        with pytest.raises(SystemExit):
            main(["--jobs", "10", "sweep", "--wq-thresholds", ","])

    def test_negative_parallel_rejected(self):
        with pytest.raises(SystemExit):
            main(["--jobs", "10", "--parallel", "-1", "run", "CTC"])

    def test_sweep_aggregates_only(self, capsys):
        out = run_cli(
            capsys, "--jobs", "40", "sweep", "--aggregates-only",
            "--workloads", "CTC", "--bsld-thresholds", "2", "--wq-thresholds", "NO",
        )
        assert "CTC DVFS(2,NO)" in out

    def test_sweep_manifest_then_resume(self, capsys, tmp_path):
        args = (
            "--jobs", "40", "--cache-dir", str(tmp_path / "cache"), "sweep",
            "--workloads", "CTC", "--bsld-thresholds", "2", "--wq-thresholds", "0,NO",
            "--manifest", str(tmp_path / "sweep.jsonl"),
        )
        first = run_cli(capsys, *args)
        assert "3 simulated, 0 from cache" in first  # 2 grid runs + 1 baseline
        resumed = run_cli(capsys, *args, "--resume")
        assert "0 simulated, 3 from cache" in resumed
        # The rendered tables agree between the fresh and resumed sweep.
        assert resumed.splitlines()[-1] == first.splitlines()[-1]

    def test_sweep_manifest_requires_cache_dir(self):
        with pytest.raises(SystemExit, match="cache-dir"):
            main(["--jobs", "10", "sweep", "--manifest", "m.jsonl"])

    def test_sweep_resume_requires_manifest(self):
        with pytest.raises(SystemExit, match="manifest"):
            main(["--jobs", "10", "sweep", "--resume"])

    def test_sweep_existing_manifest_without_resume_rejected(self, capsys, tmp_path):
        args = (
            "--jobs", "40", "--cache-dir", str(tmp_path / "cache"), "sweep",
            "--workloads", "CTC", "--bsld-thresholds", "2", "--wq-thresholds", "NO",
            "--manifest", str(tmp_path / "sweep.jsonl"),
        )
        run_cli(capsys, *args)
        with pytest.raises(SystemExit, match="resume"):
            main(list(args))


class TestParallelAndCache:
    def test_parallel_figure_matches_serial(self, capsys):
        serial = run_cli(capsys, "--jobs", "40", "figure", "4")
        parallel = run_cli(capsys, "--jobs", "40", "--parallel", "2", "figure", "4")
        assert parallel == serial

    def test_cache_dir_round_trip(self, capsys, tmp_path):
        first = run_cli(
            capsys, "--jobs", "40", "--cache-dir", str(tmp_path), "table", "1"
        )
        assert list(tmp_path.glob("*.json"))
        second = run_cli(
            capsys, "--jobs", "40", "--cache-dir", str(tmp_path), "table", "1"
        )
        assert second == first


class TestTablesAndFigures:
    def test_table1(self, capsys):
        out = run_cli(capsys, "--jobs", "50", "table", "1")
        assert "Table 1" in out
        assert "LLNLAtlas" in out

    def test_table3(self, capsys):
        out = run_cli(capsys, "--jobs", "50", "table", "3")
        assert "Table 3" in out

    def test_figure4(self, capsys):
        out = run_cli(capsys, "--jobs", "50", "figure", "4")
        assert "Figure 4" in out

    def test_figure6(self, capsys):
        out = run_cli(capsys, "--jobs", "50", "figure", "6")
        assert "Figure 6" in out

    def test_figure9(self, capsys):
        out = run_cli(capsys, "--jobs", "40", "figure", "9")
        assert "Figure 9" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "2"])


class TestAblations:
    def test_beta(self, capsys):
        out = run_cli(capsys, "--jobs", "40", "ablation", "beta")
        assert "beta sensitivity" in out

    def test_policies_with_workload(self, capsys):
        out = run_cli(capsys, "--jobs", "40", "ablation", "policies", "--workload", "SDSC")
        assert "SDSC" in out


class TestGenerateAndStats:
    def test_generate_writes_swf(self, capsys, tmp_path):
        path = tmp_path / "out.swf"
        out = run_cli(capsys, "--jobs", "30", "generate", "SDSCBlue", str(path))
        assert "wrote 30 jobs" in out
        assert path.exists()

    def test_stats_synthetic(self, capsys):
        out = run_cli(capsys, "--jobs", "40", "stats", "CTC")
        assert "synthetic" in out
        assert "offered load" in out

    def test_stats_from_swf(self, capsys, tmp_path):
        path = tmp_path / "t.swf"
        run_cli(capsys, "--jobs", "25", "generate", "LLNLThunder", str(path))
        out = run_cli(capsys, "stats", str(path))
        assert "from SWF" in out
        assert "jobs: 25" in out


class TestVersionAndJsonMode:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro-sim {repro.__version__}"

    def test_json_mode_parser_error_emits_one_json_line(self, capsys):
        code = main(["--json", "run", "NotAWorkload"])
        captured = capsys.readouterr()
        assert code == 2  # invalid_request's stable exit code
        assert captured.out == ""
        import json as json_module

        payload = json_module.loads(captured.err)
        assert payload["error"]["code"] == "invalid_request"
        assert "NotAWorkload" in payload["error"]["message"]

    def test_json_mode_wraps_handler_system_exit(self, capsys):
        code = main(["--json", "--jobs", "10", "run", "CTC",
                     "--bsld-threshold", "2", "--wq-threshold", "x"])
        captured = capsys.readouterr()
        assert code == 2
        import json as json_module

        payload = json_module.loads(captured.err)
        assert payload["error"]["code"] == "invalid_request"
        assert "--wq-threshold" in payload["error"]["message"]

    def test_json_mode_serve_error_uses_its_exit_code(self, capsys):
        # No server on this port: submit surfaces "unavailable" (exit 8).
        code = main(["--json", "status", "--server", "127.0.0.1:1"])
        captured = capsys.readouterr()
        assert code == 8
        import json as json_module

        payload = json_module.loads(captured.err)
        assert payload["error"]["code"] == "unavailable"

    def test_without_json_flag_errors_still_raise_system_exit(self):
        with pytest.raises(SystemExit):
            main(["status", "--server", "127.0.0.1:1"])


class TestServeVerbs:
    @pytest.fixture
    def server(self, tmp_path):
        from repro.serve.server import ReproServer

        with ReproServer(cache_dir=str(tmp_path / "cache")) as srv:
            yield srv

    @pytest.fixture
    def spec_path(self, tmp_path):
        import json as json_module

        from repro.experiments.config import RunSpec
        from repro.serialize import spec_to_dict

        path = tmp_path / "spec.json"
        spec = RunSpec(workload="SDSC", n_jobs=30, seed=9)
        path.write_text(json_module.dumps({"spec": spec_to_dict(spec)}))
        return path

    def test_submit_wait_prints_byte_identical_result(self, capsys, server, spec_path):
        import json as json_module

        from repro.api import Simulation
        from repro.experiments.config import RunSpec
        from repro.serialize import result_to_dict
        from repro.serve.server import canonical_result_bytes

        code = main(["submit", str(spec_path), "--server", server.address, "--wait"])
        captured = capsys.readouterr()
        assert code == 0
        assert "submitted job-" in captured.err
        expected = canonical_result_bytes(
            result_to_dict(Simulation(RunSpec(workload="SDSC", n_jobs=30, seed=9)).run())
        )
        assert captured.out.encode("utf-8") == expected + b"\n"
        json_module.loads(captured.out)  # stdout is pure JSON

    def test_submit_without_wait_prints_job_id(self, capsys, server, spec_path):
        code = main(["submit", str(spec_path), "--server", server.address])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.strip().startswith("job-")

    def test_submit_stream_prints_ndjson_rows(self, capsys, server, spec_path):
        import json as json_module

        code = main(["submit", str(spec_path), "--server", server.address, "--stream"])
        captured = capsys.readouterr()
        assert code == 0
        rows = [json_module.loads(line) for line in captured.out.splitlines()
                if line.startswith("{")]
        assert rows and rows[-1]["event"] == "EndOfStream"
        assert len(rows) > 1  # genuine telemetry, not just the sentinel

    def test_status_round_trip(self, capsys, server, spec_path):
        import json as json_module

        main(["submit", str(spec_path), "--server", server.address, "--wait"])
        job_id = None
        for line in capsys.readouterr().err.splitlines():
            if line.startswith("submitted "):
                job_id = line.split()[1]
        assert job_id is not None
        code = main(["status", job_id, "--server", server.address])
        payload = json_module.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["job_id"] == job_id
        assert payload["state"] == "done"
        code = main(["status", "--server", server.address])
        stats = json_module.loads(capsys.readouterr().out)
        assert code == 0
        assert stats["simulations_run"] == 1

    def test_submit_missing_file_rejected(self):
        with pytest.raises(SystemExit, match="cannot read spec"):
            main(["submit", "/nonexistent/spec.json", "--server", "127.0.0.1:1"])

    def test_submit_invalid_json_spec(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        code = main(["--json", "submit", str(path), "--server", "127.0.0.1:1"])
        captured = capsys.readouterr()
        assert code == 2
        assert '"invalid_request"' in captured.err

    def test_serve_flag_validation(self):
        with pytest.raises(SystemExit, match="max_wall_seconds"):
            main(["serve", "--max-wall-seconds", "0"])
