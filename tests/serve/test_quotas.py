"""Tests for per-client admission control (QuotaPolicy / QuotaLedger)."""

import threading

import pytest

from repro.serve.quotas import DEFAULT_CLIENT, QuotaExceeded, QuotaLedger, QuotaPolicy
from repro.serve.protocol import ServeError


class TestQuotaPolicy:
    def test_defaults_are_positive(self):
        policy = QuotaPolicy()
        assert policy.max_inflight > 0
        assert policy.max_events > 0
        assert policy.max_wall_seconds > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_inflight": 0},
            {"max_inflight": -1},
            {"max_events": 0},
            {"max_wall_seconds": 0.0},
            {"max_wall_seconds": -5.0},
        ],
    )
    def test_non_positive_limits_rejected(self, kwargs):
        (field,) = kwargs
        with pytest.raises(ValueError, match=field):
            QuotaPolicy(**kwargs)


class TestQuotaLedger:
    def test_acquire_up_to_limit_then_refused(self):
        ledger = QuotaLedger(QuotaPolicy(max_inflight=2))
        ledger.acquire("alice")
        ledger.acquire("alice")
        with pytest.raises(QuotaExceeded, match="alice"):
            ledger.acquire("alice")
        # QuotaExceeded is the shared protocol error with the 429 slot.
        try:
            ledger.acquire("alice")
        except ServeError as err:
            assert err.code == "quota_exceeded"
            assert err.status == 429
            assert err.exit_code == 5

    def test_clients_are_independent_buckets(self):
        ledger = QuotaLedger(QuotaPolicy(max_inflight=1))
        ledger.acquire("alice")
        ledger.acquire("bob")
        ledger.acquire(DEFAULT_CLIENT)
        with pytest.raises(QuotaExceeded):
            ledger.acquire("bob")

    def test_release_frees_the_slot(self):
        ledger = QuotaLedger(QuotaPolicy(max_inflight=1))
        ledger.acquire("alice")
        ledger.release("alice")
        ledger.acquire("alice")  # no raise
        assert ledger.snapshot() == {"alice": 1}

    def test_release_without_acquire_is_a_programming_error(self):
        ledger = QuotaLedger(QuotaPolicy())
        with pytest.raises(RuntimeError, match="release without acquire"):
            ledger.release("ghost")

    def test_snapshot_drops_emptied_clients(self):
        ledger = QuotaLedger(QuotaPolicy(max_inflight=4))
        ledger.acquire("alice")
        ledger.acquire("alice")
        ledger.acquire("bob")
        ledger.release("bob")
        assert ledger.snapshot() == {"alice": 2}

    def test_concurrent_acquire_never_oversubscribes(self):
        limit = 5
        ledger = QuotaLedger(QuotaPolicy(max_inflight=limit))
        admitted = []
        start = threading.Barrier(16)

        def contend():
            start.wait()
            try:
                ledger.acquire("shared")
            except QuotaExceeded:
                pass
            else:
                admitted.append(1)

        threads = [threading.Thread(target=contend) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == limit
        assert ledger.snapshot() == {"shared": limit}
