"""Unit tests for the daemon's crash-consistent run journal."""

import json

import pytest

from repro.faults import FaultPlan, FaultRule, InjectedCrash, injected
from repro.serialize import FORMAT_VERSION
from repro.serve.journal import JOURNAL_VERSION, RunJournal

SPEC_DOC = {"workload": "SDSC", "n_jobs": 5, "seed": 1}


@pytest.fixture
def journal(tmp_path):
    return RunJournal(tmp_path / "serve-journal.jsonl")


class TestAppends:
    def test_header_written_once(self, journal):
        journal.record_submitted("job-000001", "k1", "alice", SPEC_DOC)
        journal.record_terminal("job-000001", "done")
        lines = journal.path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {
            "kind": "repro-serve-journal",
            "version": JOURNAL_VERSION,
            "format": FORMAT_VERSION,
        }
        assert len(lines) == 3

    def test_submitted_then_terminal_leaves_nothing_pending(self, journal):
        journal.record_submitted("job-000001", "k1", "alice", SPEC_DOC)
        journal.record_terminal("job-000001", "done")
        pending, next_number = journal.recover()
        assert pending == []
        assert next_number == 2  # id counter still advances past used ids

    def test_unfinished_job_is_recovered_in_order(self, journal):
        journal.record_submitted("job-000001", "k1", "alice", SPEC_DOC)
        journal.record_submitted("job-000002", "k2", "bob", SPEC_DOC)
        journal.record_terminal("job-000001", "failed")
        pending, next_number = journal.recover()
        assert [job.job_id for job in pending] == ["job-000002"]
        assert pending[0].client == "bob"
        assert pending[0].key == "k2"
        assert pending[0].spec == SPEC_DOC
        assert next_number == 3


class TestRecovery:
    def test_missing_file_recovers_empty(self, journal):
        assert journal.recover() == ([], 1)

    def test_recover_compacts_to_pending_only(self, journal):
        for n in range(1, 6):
            journal.record_submitted(f"job-{n:06d}", f"k{n}", "c", SPEC_DOC)
            if n != 3:
                journal.record_terminal(f"job-{n:06d}", "done")
        journal.recover()
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2  # header + the one pending entry
        assert json.loads(lines[1])["job_id"] == "job-000003"
        # A second recovery over the compacted file agrees.
        pending, next_number = journal.recover()
        assert [job.job_id for job in pending] == ["job-000003"]
        # Compaction keeps only pending entries, so the highest *terminal*
        # id is forgotten — but pending ids still reserve their numbers.
        assert next_number == 4

    def test_corrupt_trailing_line_is_skipped(self, journal):
        journal.record_submitted("job-000001", "k1", "c", SPEC_DOC)
        with open(journal.path, "ab") as stream:
            stream.write(b'{"op": "submitted", "job_id": "job-0000')  # torn
        pending, _ = journal.recover()
        assert [job.job_id for job in pending] == ["job-000001"]
        assert journal.corrupt_lines == 1

    def test_corrupt_middle_lines_are_counted_not_fatal(self, journal):
        journal.record_submitted("job-000001", "k1", "c", SPEC_DOC)
        with open(journal.path, "ab") as stream:
            stream.write(b"not json at all\n")
            stream.write(b'[1, 2, 3]\n')  # json, wrong shape
        journal.record_submitted("job-000002", "k2", "c", SPEC_DOC)
        pending, _ = journal.recover()
        assert [job.job_id for job in pending] == ["job-000001", "job-000002"]
        assert journal.corrupt_lines == 2

    def test_stale_format_journal_is_rotated_aside(self, journal):
        header = {
            "kind": "repro-serve-journal",
            "version": JOURNAL_VERSION,
            "format": FORMAT_VERSION - 1,
        }
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal.path.write_text(json.dumps(header) + "\n")
        assert journal.recover() == ([], 1)
        assert not journal.path.exists()
        assert journal.path.with_suffix(".stale").exists()

    def test_foreign_file_is_rotated_aside(self, journal):
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal.path.write_text("this is not a journal\n")
        assert journal.recover() == ([], 1)
        assert journal.path.with_suffix(".stale").exists()


class TestTornAppends:
    def test_torn_append_raises_and_leaves_prefix(self, journal):
        journal.record_submitted("job-000001", "k1", "c", SPEC_DOC)
        plan = FaultPlan.of(FaultRule("journal.append", "torn_write", fraction=0.5))
        with injected(plan):
            with pytest.raises(InjectedCrash):
                journal.record_submitted("job-000002", "k2", "c", SPEC_DOC)
        # The torn fragment must not corrupt earlier records...
        pending, _ = journal.recover()
        assert [job.job_id for job in pending] == ["job-000001"]
        # ...and it counts as exactly one corrupt line.
        assert journal.corrupt_lines == 1

    def test_append_after_torn_append_terminates_fragment(self, journal):
        plan = FaultPlan.of(FaultRule("journal.append", "torn_write", fraction=0.5))
        with injected(plan):
            with pytest.raises(InjectedCrash):
                journal.record_submitted("job-000001", "k1", "c", SPEC_DOC)
            # In-process continuation: the next append must newline-
            # terminate the fragment so it stays one skippable line.
            journal.record_submitted("job-000002", "k2", "c", SPEC_DOC)
        pending, _ = journal.recover()
        assert [job.job_id for job in pending] == ["job-000002"]

    def test_torn_fraction_zero_loses_only_that_record(self, journal):
        journal.record_submitted("job-000001", "k1", "c", SPEC_DOC)
        plan = FaultPlan.of(FaultRule("journal.append", "torn_write", fraction=0.0))
        with injected(plan):
            with pytest.raises(InjectedCrash):
                journal.record_terminal("job-000001", "done")
        # The terminal record vanished entirely: the job stays pending,
        # which is the safe direction (it re-runs deterministically).
        pending, _ = journal.recover()
        assert [job.job_id for job in pending] == ["job-000001"]
