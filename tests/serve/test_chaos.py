"""Deterministic chaos tests for the hardened serve stack.

The acceptance contract: under any scripted fault from
:mod:`repro.faults`, a submission either completes **byte-identical**
to an undisturbed in-process ``Simulation(spec).run()`` or fails with a
**structured error** and a **released quota slot** — never a hang, a
wedged slot, or silent corruption.  And a daemon restarted over the
same ``--cache-dir`` recovers every journaled job byte-identically.

Every fault here is count-triggered from a serializable
:class:`FaultPlan`, so a failing cell reproduces from its parameters
alone.
"""

import threading
import time

import pytest

from repro.api import Simulation
from repro.experiments.config import PolicySpec, RunSpec
from repro.faults import SITES, FAULT_KINDS, FaultPlan, FaultRule, injected
from repro.serialize import result_to_dict, spec_key, spec_to_dict
from repro.serve.client import ServeClient
from repro.serve.journal import RunJournal
from repro.serve.protocol import ERROR_CODES, TERMINAL_STATES, ServeError
from repro.serve.quotas import QuotaPolicy
from repro.serve.server import ReproServer, canonical_result_bytes

SPEC = RunSpec(workload="SDSC", n_jobs=40, seed=5, policy=PolicySpec.power_aware(2.0, 4))
#: Enough events that a small-slice server is reliably mid-run when a
#: crash / drain / watchdog action lands.
LONG_SPEC = RunSpec(workload="SDSC", n_jobs=4000, seed=1)

_EXPECTED: dict[RunSpec, bytes] = {}


def expected_bytes(spec: RunSpec) -> bytes:
    """The in-process side of the byte-identity contract (memoised)."""
    if spec not in _EXPECTED:
        _EXPECTED[spec] = canonical_result_bytes(result_to_dict(Simulation(spec).run()))
    return _EXPECTED[spec]


def wait_terminal(job, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while job.state not in TERMINAL_STATES:
        if time.monotonic() >= deadline:
            raise AssertionError(f"job {job.job_id} stuck in {job.state}")
        time.sleep(0.02)
    return job


# -- the chaos matrix ---------------------------------------------------------
@pytest.mark.parametrize("site", sorted(SITES))
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_chaos_matrix_cell(tmp_path, site, kind):
    """One (site x kind) cell: byte-identity or structured failure.

    Whatever the fault does, the cell must end with the quota slot
    released and a follow-up submission of the same spec completing
    byte-identically — the daemon heals, never wedges.
    """
    plan = FaultPlan.of(
        FaultRule(site, kind, at=1, delay_seconds=0.05, fraction=0.5)
    )
    with injected(plan) as injector:
        with ReproServer(cache_dir=str(tmp_path / "cache")) as server:
            client = ServeClient(
                server.address, retries=4, backoff_base=0.02, backoff_seed=11
            )
            outcome = None
            try:
                job = client.submit(SPEC)
                final = client.wait(job["job_id"], timeout=60.0)
                if final["state"] == "done":
                    assert client.result_bytes(job["job_id"]) == expected_bytes(SPEC)
                    outcome = "byte-identical"
                else:
                    error = final["error"]
                    assert error is not None, "failed job must carry its error"
                    assert error["code"] in ERROR_CODES
                    assert error["message"]
                    outcome = f"structured failure: {error['code']}"
            except ServeError as err:
                # Retries exhausted: still a structured, typed failure.
                assert err.code in ERROR_CODES
                outcome = f"structured error: {err.code}"
            assert outcome is not None

            # The fault the cell scripted actually went off.
            assert injector.fired, f"scripted fault at {site} never armed"

            # Whatever happened, the slot came back ...
            deadline = time.monotonic() + 10.0
            while server._ledger.snapshot() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert server._ledger.snapshot() == {}, "quota slot leaked"

            # ... and the daemon still serves this spec byte-identically
            # (the one scripted fault is already consumed).
            retry = client.submit(SPEC)
            client.wait(retry["job_id"], timeout=60.0)
            assert client.result_bytes(retry["job_id"]) == expected_bytes(SPEC)


# -- restart & recovery -------------------------------------------------------
class TestRestartOverSharedCacheDir:
    def test_cached_results_survive_restart_without_resimulation(self, tmp_path):
        cache = str(tmp_path / "cache")
        with ReproServer(cache_dir=cache) as first:
            client = ServeClient(first.address)
            job = client.submit(SPEC)
            data = client.result_bytes(job["job_id"])
            assert data == expected_bytes(SPEC)
            assert first.simulations_run == 1
        with ReproServer(cache_dir=cache) as second:
            client = ServeClient(second.address)
            job = client.submit(SPEC)
            status = client.wait(job["job_id"])
            assert status["from_cache"] is True
            assert client.result_bytes(job["job_id"]) == expected_bytes(SPEC)
            assert second.simulations_run == 0

    def test_unfinished_job_is_recovered_and_byte_identical(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = ReproServer(cache_dir=cache, slice_events=500).start_in_thread()
        job, _ = first.submit(LONG_SPEC)
        # Let it reach the worker, then die mid-run (stop() here is the
        # in-process stand-in for a crash: in-flight work is journalled
        # as pending, exactly as a SIGKILL would leave it).
        deadline = time.monotonic() + 10.0
        while job.state == "queued" and time.monotonic() < deadline:
            time.sleep(0.01)
        first.stop()
        assert job.state == "cancelled"  # closed out, but NOT journalled terminal

        second = ReproServer(cache_dir=cache).start_in_thread()
        try:
            stats = second.stats()
            assert stats["recovered_jobs"] == 1
            recovered = second._jobs[job.job_id]  # original id preserved
            assert recovered.recovered is True
            wait_terminal(recovered, timeout=120.0)
            assert recovered.state == "done"
            assert recovered.result_bytes == expected_bytes(LONG_SPEC)
            # The id counter resumed past the recovered id.
            fresh, _ = second.submit(SPEC)
            assert fresh.job_id > job.job_id
        finally:
            second.stop()

    def test_recovered_job_with_cached_result_skips_resimulation(self, tmp_path):
        cache = str(tmp_path / "cache")
        # First life: result lands in the cache ...
        with ReproServer(cache_dir=cache) as first:
            client = ServeClient(first.address)
            client.result_bytes(client.submit(SPEC)["job_id"])
        # ... but (say) the terminal journal record was lost to a crash:
        # hand-journal a pending submission for the same spec.
        from repro.api import DEFAULT_N_JOBS, normalize_spec

        normalized = normalize_spec(SPEC, DEFAULT_N_JOBS)
        journal = RunJournal(tmp_path / "cache" / "serve-journal.jsonl")
        journal.record_submitted(
            "job-000042", spec_key(normalized), "ghost", spec_to_dict(normalized)
        )
        with ReproServer(cache_dir=cache) as second:
            recovered = second._jobs["job-000042"]
            wait_terminal(recovered)
            assert recovered.state == "done"
            assert recovered.from_cache is True
            assert recovered.result_bytes == expected_bytes(SPEC)
            assert second.simulations_run == 0

    def test_unjournalable_submission_is_refused_and_leaks_nothing(self, tmp_path):
        plan = FaultPlan.of(FaultRule("journal.append", "crash", at=1))
        with ReproServer(cache_dir=str(tmp_path / "cache")) as server:
            blunt = ServeClient(server.address, retries=0)
            with injected(plan):
                with pytest.raises(ServeError) as excinfo:
                    blunt.submit(SPEC)
            assert excinfo.value.code == "unavailable"
            # Nothing leaked: no job, no quota slot, and the next
            # (unfaulted) submission sails through.
            assert server._ledger.snapshot() == {}
            assert server._jobs == {}
            job = blunt.submit(SPEC)
            assert blunt.result_bytes(job["job_id"]) == expected_bytes(SPEC)


# -- watchdog / leases --------------------------------------------------------
class TestLeaseWatchdog:
    def test_wedged_slice_fails_structured_and_releases_slot(self):
        # A delay fault longer than the lease wedges the first slice;
        # the watchdog must cancel it, fail the job with lease_expired,
        # and free the slot for the follow-up submission.
        plan = FaultPlan.of(
            FaultRule("worker.slice", "delay", at=2, delay_seconds=2.0)
        )
        quota = QuotaPolicy(lease_seconds=0.25)
        with injected(plan):
            with ReproServer(max_workers=2, slice_events=2000, quota=quota) as server:
                job, _ = server.submit(LONG_SPEC)
                wait_terminal(job, timeout=30.0)
                assert job.state == "failed"
                assert job.error["code"] == "lease_expired"
                assert "lease" in job.error["message"]
                assert server.stats()["lease_expirations"] == 1
                assert server._ledger.snapshot() == {}
                follow_up, _ = server.submit(SPEC)
                wait_terminal(follow_up)
                assert follow_up.state == "done"

    def test_healthy_runs_never_trip_the_watchdog(self):
        quota = QuotaPolicy(lease_seconds=0.5)
        with ReproServer(slice_events=500, quota=quota) as server:
            job, _ = server.submit(SPEC)
            wait_terminal(job)
            assert job.state == "done"
            assert server.stats()["lease_expirations"] == 0

    def test_infinite_lease_disables_watchdog(self):
        quota = QuotaPolicy(lease_seconds=float("inf"))
        with ReproServer(quota=quota) as server:
            job, _ = server.submit(SPEC)
            wait_terminal(job)
            assert job.state == "done"


# -- load shedding & drain ----------------------------------------------------
class TestLoadShedding:
    def test_high_water_mark_sheds_with_retry_after(self):
        with ReproServer(slice_events=200, shed_inflight=1) as server:
            blunt = ServeClient(server.address, retries=0)
            long_job = blunt.submit(LONG_SPEC)
            with pytest.raises(ServeError) as excinfo:
                blunt.submit(SPEC)
            err = excinfo.value
            assert err.code == "unavailable"
            assert err.status == 503
            assert err.retry_after is not None and err.retry_after > 0
            assert server.stats()["shed_submissions"] == 1
            # Dedup hits stay free even while shedding.
            again = blunt.submit(LONG_SPEC)
            assert again["deduped"] is True
            blunt.cancel(long_job["job_id"])

    def test_retrying_client_rides_out_the_shed(self):
        with ReproServer(slice_events=200, shed_inflight=1) as server:
            patient = ServeClient(
                server.address, retries=6, backoff_base=0.05, backoff_seed=3
            )
            long_job = patient.submit(LONG_SPEC)

            def release():
                time.sleep(0.3)
                patient.cancel(long_job["job_id"])

            releaser = threading.Thread(target=release)
            releaser.start()
            try:
                # Shed at first, admitted once the long job is cancelled.
                job = patient.submit(SPEC)
                assert patient.result_bytes(job["job_id"]) == expected_bytes(SPEC)
            finally:
                releaser.join()

    def test_retry_after_header_reaches_the_wire(self):
        import http.client as http_client

        with ReproServer(slice_events=200, shed_inflight=1) as server:
            blunt = ServeClient(server.address, retries=0)
            long_job = blunt.submit(LONG_SPEC)
            connection = http_client.HTTPConnection(server.host, server.port)
            try:
                connection.request(
                    "POST",
                    "/runs",
                    body=b'{"spec": ' + _spec_json(SPEC) + b"}",
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                assert response.status == 503
                assert int(response.headers["Retry-After"]) >= 1
                response.read()
            finally:
                connection.close()
                blunt.cancel(long_job["job_id"])


class TestGracefulDrain:
    def test_drain_finishes_inflight_work_then_exits(self, tmp_path):
        server = ReproServer(
            cache_dir=str(tmp_path / "cache"), slice_events=500
        ).start_in_thread()
        job, _ = server.submit(LONG_SPEC)
        server.request_drain(grace_seconds=120.0)
        assert server.wait(timeout=120.0), "drain did not stop the server"
        assert job.state == "done"
        assert job.result_bytes == expected_bytes(LONG_SPEC)
        server.stop()
        # Drained-to-done work is journalled terminal: nothing pending.
        journal = RunJournal(tmp_path / "cache" / "serve-journal.jsonl")
        assert journal.recover() == ([], 2)

    def test_drain_refuses_new_submissions(self):
        server = ReproServer(slice_events=500).start_in_thread()
        try:
            job, _ = server.submit(LONG_SPEC)
            server.request_drain(grace_seconds=60.0)
            time.sleep(0.1)  # let the drain callback run on the loop
            with pytest.raises(ServeError) as excinfo:
                server.submit(SPEC)
            assert excinfo.value.code == "unavailable"
            job.cancel_event.set()
        finally:
            server.wait(timeout=60.0)
            server.stop()


class TestStop:
    def test_stop_raises_structured_error_when_thread_wont_die(self):
        server = ReproServer()
        hang = threading.Event()
        zombie = threading.Thread(target=hang.wait, daemon=True)
        zombie.start()
        server._thread = zombie
        try:
            with pytest.raises(RuntimeError, match="failed to stop within"):
                server.stop(timeout=0.05)
        finally:
            hang.set()
            zombie.join()
            server._thread = None


# -- client backoff mechanics -------------------------------------------------
class TestClientBackoff:
    def test_backoff_grows_and_caps(self):
        client = ServeClient(
            "127.0.0.1:1", retries=8, backoff_base=0.1, backoff_max=0.8, backoff_seed=0
        )
        delays = [client._backoff_delay(attempt, None) for attempt in range(8)]
        # Jitter keeps each delay within [cap/2, cap] of its exponential cap.
        for attempt, delay in enumerate(delays):
            cap = min(0.8, 0.1 * 2**attempt)
            assert cap / 2 <= delay <= cap
        assert max(delays) <= 0.8

    def test_backoff_honours_retry_after(self):
        client = ServeClient("127.0.0.1:1", backoff_seed=0)
        assert client._backoff_delay(0, 5.0) == 5.0
        assert client._backoff_delay(0, 10_000.0) == 30.0  # clamped

    def test_seeded_jitter_is_deterministic(self):
        a = ServeClient("127.0.0.1:1", backoff_seed=9)
        b = ServeClient("127.0.0.1:1", backoff_seed=9)
        assert [a._backoff_delay(i, None) for i in range(5)] == [
            b._backoff_delay(i, None) for i in range(5)
        ]

    def test_invalid_retry_config_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            ServeClient("127.0.0.1:1", retries=-1)
        with pytest.raises(ValueError, match="backoff_base"):
            ServeClient("127.0.0.1:1", backoff_base=0.0)

    def test_wait_backs_off_its_polling(self, monkeypatch):
        # Drive wait() against a fake status endpoint and record sleeps.
        client = ServeClient("127.0.0.1:1")
        states = iter(["queued"] * 6 + ["done"])
        monkeypatch.setattr(
            client, "status", lambda job_id: {"state": next(states)}
        )
        sleeps = []
        monkeypatch.setattr(time, "sleep", sleeps.append)
        final = client.wait("job-000001", timeout=60.0)
        assert final["state"] == "done"
        assert sleeps == sorted(sleeps), "poll interval must be non-decreasing"
        assert sleeps[0] < 0.05
        assert max(sleeps) <= 1.0


def _spec_json(spec: RunSpec) -> bytes:
    import json

    return json.dumps(spec_to_dict(spec)).encode("utf-8")
