"""End-to-end tests for the ``repro serve`` daemon.

Everything here exercises the real stack — a background
:class:`ReproServer` on an ephemeral port, spoken to over actual HTTP
by :class:`ServeClient` — because the contract under test is the wire:
byte-identity with in-process runs, single-flight dedup, streaming
telemetry, and the structured error schema.
"""

import http.client
import json
import threading

import pytest

from repro.api import Simulation
from repro.experiments.config import InstrumentSpec, PolicySpec, RunSpec
from repro.serialize import result_to_dict
from repro.serve.client import ServeClient
from repro.serve.protocol import END_OF_STREAM, ServeError
from repro.serve.quotas import QuotaPolicy
from repro.serve.server import ReproServer, canonical_result_bytes

SPEC = RunSpec(workload="SDSC", n_jobs=40, seed=5, policy=PolicySpec.power_aware(2.0, 4))
#: Enough events that a slice_events=1 server is reliably still running
#: when a cancel or budget check lands.
LONG_SPEC = RunSpec(workload="SDSC", n_jobs=4000, seed=1)


def expected_bytes(spec: RunSpec) -> bytes:
    """The in-process side of the byte-identity contract."""
    return canonical_result_bytes(result_to_dict(Simulation(spec).run()))


@pytest.fixture
def server(tmp_path):
    with ReproServer(cache_dir=str(tmp_path / "cache")) as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServeClient(server.address)


class TestEndToEnd:
    def test_http_result_byte_identical_to_in_process(self, server, client):
        job = client.submit(SPEC)
        assert job["state"] in ("queued", "running", "done")
        assert job["deduped"] is False
        fetched = client.result_bytes(job["job_id"])
        assert fetched == expected_bytes(SPEC)
        # And the decoded object is the exact result.
        assert client.result(job["job_id"]) == Simulation(SPEC).run()

    def test_aggregates_only_fetch(self, server, client):
        job = client.submit(SPEC)
        data = client.result_bytes(job["job_id"], aggregates_only=True)
        assert data == canonical_result_bytes(
            result_to_dict(Simulation(SPEC).run().to_aggregates())
        )
        slim = client.result(job["job_id"], aggregates_only=True)
        assert slim.is_aggregated
        full = client.result(job["job_id"])
        assert not full.is_aggregated
        assert slim.average_bsld() == pytest.approx(full.average_bsld())

    def test_status_reaches_done(self, server, client):
        job_id = client.submit(SPEC)["job_id"]
        final = client.wait(job_id)
        assert final["state"] == "done"
        assert final["from_cache"] is False
        assert final["finished_at"] >= final["submitted_at"]
        assert final["events_recorded"] > 0

    def test_healthz_and_stats(self, server, client):
        import repro

        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == repro.__version__
        client.submit(SPEC)
        client.wait(client.submit(SPEC)["job_id"])
        stats = client.stats()
        assert stats["accepting"] is True
        assert stats["submissions"] == 1
        assert stats["deduped_submissions"] == 1
        assert stats["simulations_run"] == 1
        assert stats["jobs"]["done"] == 1
        assert stats["quota"]["max_inflight"] == QuotaPolicy().max_inflight

    def test_unknown_job_is_not_found(self, server, client):
        with pytest.raises(ServeError) as info:
            client.status("job-999999")
        assert info.value.code == "not_found"
        assert info.value.status == 404

    def test_unknown_route_is_not_found(self, server, client):
        with pytest.raises(ServeError) as info:
            client._request("GET", "/teapot")
        assert info.value.code == "not_found"

    def test_invalid_spec_carries_field_path(self, server, client):
        with pytest.raises(ServeError) as info:
            client.submit({"policy": {}})
        assert info.value.code == "invalid_spec"
        assert info.value.status == 400
        assert info.value.field == "policy.kind"
        assert info.value.message == "missing required field"

    def test_invalid_json_body_is_invalid_request(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request("POST", "/runs", body=b"{not json")
            response = connection.getresponse()
            assert response.status == 400
            payload = json.loads(response.read())
            assert payload["error"]["code"] == "invalid_request"
        finally:
            connection.close()

    def test_submit_after_stop_is_unavailable(self, server):
        server.stop()
        with pytest.raises(ServeError) as info:
            server.submit(SPEC)
        assert info.value.code == "unavailable"


class TestSingleFlight:
    def test_concurrent_submissions_execute_exactly_once(self, server):
        """The acceptance criterion: N concurrent submitters of one
        cache-keyed spec trigger exactly one simulation and all fetch
        byte-identical results."""
        n_clients = 8
        start = threading.Barrier(n_clients)
        outcomes: list[tuple[bool, bytes]] = []
        failures: list[BaseException] = []
        lock = threading.Lock()

        def submit_and_fetch(index: int):
            own = ServeClient(server.address, client_id=f"client-{index}")
            start.wait()
            try:
                job = own.submit(SPEC)
                body = own.result_bytes(job["job_id"])
                with lock:
                    outcomes.append((job["deduped"], body))
            except BaseException as exc:  # surfaced below, not swallowed
                with lock:
                    failures.append(exc)

        threads = [
            threading.Thread(target=submit_and_fetch, args=(i,))
            for i in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert len(outcomes) == n_clients
        assert server.simulations_run == 1
        bodies = {body for _, body in outcomes}
        assert bodies == {expected_bytes(SPEC)}
        # Exactly one submission won the race; the rest attached to it.
        assert sorted(deduped for deduped, _ in outcomes) == [False] + [True] * 7
        stats = server.stats()
        assert stats["submissions"] == 1
        assert stats["deduped_submissions"] == n_clients - 1

    def test_resubmit_of_done_job_attaches(self, server, client):
        first = client.submit(SPEC)
        client.wait(first["job_id"])
        again = client.submit(SPEC)
        assert again["deduped"] is True
        assert again["job_id"] == first["job_id"]
        assert again["submissions"] == 2
        assert server.simulations_run == 1

    def test_cancelled_key_retries_with_a_fresh_job(self, tmp_path):
        with ReproServer(slice_events=1) as server:
            client = ServeClient(server.address)
            first = client.submit(LONG_SPEC)
            client.cancel(first["job_id"])
            assert client.wait(first["job_id"])["state"] == "cancelled"
            second = client.submit(LONG_SPEC)
            assert second["deduped"] is False
            assert second["job_id"] != first["job_id"]


class TestCacheSharing:
    def test_cache_shared_across_server_restarts(self, tmp_path):
        cache = str(tmp_path / "cache")
        with ReproServer(cache_dir=cache) as first:
            body = ServeClient(first.address).result_bytes(
                ServeClient(first.address).submit(SPEC)["job_id"]
            )
            assert first.simulations_run == 1
        with ReproServer(cache_dir=cache) as second:
            client = ServeClient(second.address)
            job = client.submit(SPEC)
            status = client.wait(job["job_id"])
            assert status["from_cache"] is True
            assert client.result_bytes(job["job_id"]) == body == expected_bytes(SPEC)
            assert second.simulations_run == 0  # zero simulations: served from disk
            assert second.stats()["cache_hits"] == 1

    def test_cache_hit_stream_is_sentinel_only(self, tmp_path):
        cache = str(tmp_path / "cache")
        with ReproServer(cache_dir=cache) as first:
            ServeClient(first.address).result_bytes(
                ServeClient(first.address).submit(SPEC)["job_id"]
            )
        with ReproServer(cache_dir=cache) as second:
            client = ServeClient(second.address)
            job_id = client.submit(SPEC)["job_id"]
            client.wait(job_id)
            rows = list(client.stream_events(job_id))
            assert len(rows) == 1
            assert rows[0]["event"] == END_OF_STREAM
            assert rows[0]["state"] == "done"
            assert rows[0]["events"] == 0


class TestCancelAndBudget:
    def test_cancel_stops_a_running_job(self):
        with ReproServer(slice_events=1) as server:
            client = ServeClient(server.address)
            job_id = client.submit(LONG_SPEC)["job_id"]
            ack = client.cancel(job_id)
            assert ack["cancel_requested"] is True
            final = client.wait(job_id)
            assert final["state"] == "cancelled"
            assert final["error"]["code"] == "cancelled"
            with pytest.raises(ServeError) as info:
                client.result(job_id)
            assert info.value.code == "cancelled"
            assert info.value.status == 409
            assert server.simulations_run == 0

    def test_cancel_after_done_is_a_noop(self, server, client):
        job_id = client.submit(SPEC)["job_id"]
        client.wait(job_id)
        ack = client.cancel(job_id)
        assert ack["cancel_requested"] is False
        assert client.result_bytes(job_id) == expected_bytes(SPEC)

    def test_wall_clock_budget_fails_the_run(self):
        quota = QuotaPolicy(max_wall_seconds=0.01)
        with ReproServer(slice_events=1, quota=quota) as server:
            client = ServeClient(server.address)
            job_id = client.submit(LONG_SPEC)["job_id"]
            final = client.wait(job_id)
            assert final["state"] == "failed"
            assert final["error"]["code"] == "quota_exceeded"
            with pytest.raises(ServeError) as info:
                client.result(job_id)
            assert info.value.code == "quota_exceeded"

    def test_max_inflight_refuses_with_429(self):
        quota = QuotaPolicy(max_inflight=1)
        with ReproServer(slice_events=1, max_workers=1, quota=quota) as server:
            client = ServeClient(server.address)
            first = client.submit(LONG_SPEC)
            other = RunSpec(workload="SDSC", n_jobs=4000, seed=2)
            with pytest.raises(ServeError) as info:
                client.submit(other)
            assert info.value.code == "quota_exceeded"
            assert info.value.status == 429
            # A dedup hit on the in-flight key is free, quota or not.
            assert client.submit(LONG_SPEC)["deduped"] is True
            client.cancel(first["job_id"])
            client.wait(first["job_id"])
            # The slot came back: a fresh spec is admitted now.
            assert client.submit(SPEC)["deduped"] is False


class TestTelemetryStream:
    def test_stream_matches_event_trace_recording(self, server, client):
        job_id = client.submit(SPEC)["job_id"]
        rows = list(client.stream_events(job_id))
        sentinel = rows.pop()
        assert sentinel["event"] == END_OF_STREAM
        assert sentinel["state"] == "done"
        assert sentinel["events"] == len(rows)
        assert sentinel["events_dropped"] == 0
        recorded = (
            Simulation(SPEC.with_instruments(InstrumentSpec.of("event_trace")))
            .run()
            .instrument("event_trace")["events"]
        )
        assert rows == recorded

    def test_replay_buffer_bounded_by_quota(self):
        quota = QuotaPolicy(max_events=5)
        with ReproServer(quota=quota) as server:
            client = ServeClient(server.address)
            job_id = client.submit(SPEC)["job_id"]
            status = client.wait(job_id)
            assert status["events_recorded"] == 5
            assert status["events_dropped"] > 0
            rows = list(client.stream_events(job_id))
            assert len(rows) == 6  # 5 buffered rows + sentinel
            assert rows[-1]["events_dropped"] == status["events_dropped"]

    def test_sse_format(self, server, client):
        job_id = client.submit(SPEC)["job_id"]
        client.wait(job_id)
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            connection.request("GET", f"/runs/{job_id}/events?format=sse")
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "text/event-stream"
            frames = [
                line for line in response.read().split(b"\n") if line.startswith(b"data: ")
            ]
            rows = [json.loads(frame[len(b"data: ") :]) for frame in frames]
            assert rows[-1]["event"] == END_OF_STREAM
            assert len(rows) == rows[-1]["events"] + 1
        finally:
            connection.close()
