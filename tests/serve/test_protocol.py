"""Tests for the serve wire protocol: errors, states, telemetry rows."""

import json

import pytest

from repro.api import Simulation
from repro.experiments.config import InstrumentSpec, RunSpec
from repro.serve.protocol import (
    END_OF_STREAM,
    ERROR_CODES,
    EXIT_CODES,
    HTTP_STATUS,
    JOB_STATES,
    TERMINAL_STATES,
    ServeError,
    error_json,
    event_to_wire,
    ndjson_line,
    sse_line,
)
from repro.sim.events import JobFinished, JobStarted


class TestErrorVocabulary:
    def test_every_code_has_status_and_exit(self):
        assert set(HTTP_STATUS) == ERROR_CODES == set(EXIT_CODES)
        for code in ERROR_CODES:
            assert 400 <= HTTP_STATUS[code] <= 599
            assert 1 <= EXIT_CODES[code] <= 127

    def test_exit_codes_are_distinct(self):
        # Scripts branch on exit codes: two codes may not collide.
        values = list(EXIT_CODES.values())
        assert len(values) == len(set(values))

    def test_stable_contract_values(self):
        # Pinned: renumbering any of these breaks deployed scripts.
        assert HTTP_STATUS["invalid_spec"] == 400 and EXIT_CODES["invalid_spec"] == 3
        assert HTTP_STATUS["quota_exceeded"] == 429 and EXIT_CODES["quota_exceeded"] == 5
        assert HTTP_STATUS["not_found"] == 404
        assert HTTP_STATUS["unavailable"] == 503
        assert EXIT_CODES["server_error"] == 1


class TestServeError:
    def test_payload_round_trip(self):
        original = ServeError("invalid_spec", "missing required field", "policy.kind")
        rebuilt = ServeError.from_payload(original.payload())
        assert rebuilt.code == "invalid_spec"
        assert rebuilt.message == "missing required field"
        assert rebuilt.field == "policy.kind"
        assert rebuilt.status == 400
        assert rebuilt.exit_code == 3

    def test_message_carries_code_and_field(self):
        error = ServeError("not_found", "no such job", "job_id")
        assert "[not_found]" in str(error)
        assert "job_id" in str(error)

    def test_unknown_code_rejected_on_construction(self):
        with pytest.raises(ValueError, match="unknown error code"):
            ServeError("teapot", "short and stout")

    def test_malformed_payload_decodes_to_server_error(self):
        assert ServeError.from_payload({}).code == "server_error"
        assert ServeError.from_payload({"error": "nope"}).code == "server_error"
        foreign = ServeError.from_payload(
            {"error": {"code": "from_the_future", "message": "?"}}
        )
        assert foreign.code == "server_error"

    def test_error_json_is_one_sorted_line(self):
        line = error_json(ServeError("cancelled", "gone"))
        assert "\n" not in line
        payload = json.loads(line)
        assert payload == {
            "error": {"code": "cancelled", "field": None, "message": "gone"}
        }


class TestJobStates:
    def test_terminal_states_are_job_states(self):
        assert TERMINAL_STATES < set(JOB_STATES)
        assert "queued" not in TERMINAL_STATES
        assert "running" not in TERMINAL_STATES
        assert {"done", "failed", "cancelled"} == TERMINAL_STATES


class TestTelemetryRows:
    def test_event_to_wire_carries_all_fields(self):
        event = JobStarted(12.5, 7, 4, 2.3, 1.5)
        row = event_to_wire(event)
        assert row["event"] == "JobStarted"
        assert row["time"] == 12.5
        assert row["job_id"] == 7
        assert set(row) == {"event", "time", "job_id", "size", "frequency", "wait_time"}

    def test_wire_rows_match_event_trace_recorder(self):
        """A streamed row and a recorded row for the same run are the
        same dict — the shapes are interchangeable by construction."""
        spec = RunSpec(
            workload="SDSC",
            n_jobs=40,
            seed=3,
            instruments=(InstrumentSpec.of("event_trace"),),
        )
        recorded = Simulation(spec).run().instrument("event_trace")["events"]
        session = Simulation(spec.with_instruments()).session()
        streamed = []
        session._scheduler.attach_observer(lambda e: streamed.append(event_to_wire(e)))
        session.result()
        assert streamed == recorded

    def test_rows_are_json_serialisable(self):
        row = event_to_wire(JobFinished(2.0, 7, 4, 2.3, 50.0, 50.0, 55.0, 10.0, False))
        assert json.loads(ndjson_line(row)) == row

    def test_ndjson_line_shape(self):
        line = ndjson_line({"event": END_OF_STREAM, "state": "done"})
        assert line.endswith(b"\n") and line.count(b"\n") == 1

    def test_sse_line_shape(self):
        line = sse_line({"event": "ClockTick", "time": 1.0})
        assert line.startswith(b"data: ") and line.endswith(b"\n\n")
        assert json.loads(line[len(b"data: ") :]) == {"event": "ClockTick", "time": 1.0}
