"""Unit tests for CSV export and summary rows."""

import csv

import pytest

from repro.cluster.machine import Machine
from repro.core.frequency_policy import BsldThresholdPolicy
from repro.scheduling.easy import EasyBackfilling
from repro.scheduling.export import outcomes_to_csv, result_summary_row
from tests.conftest import make_job, random_workload


@pytest.fixture(scope="module")
def result():
    jobs = random_workload(seed=55, n_jobs=40, max_cpus=8)
    jobs = [job.with_beta(0.4) if job.job_id % 2 == 0 else job for job in jobs]
    return EasyBackfilling(Machine("m", 8), BsldThresholdPolicy(2.0, None)).run(jobs)


class TestCsvExport:
    def test_row_count_and_header(self, result, tmp_path):
        path = tmp_path / "jobs.csv"
        written = outcomes_to_csv(result, path)
        assert written == 40
        with open(path, newline="") as stream:
            rows = list(csv.DictReader(stream))
        assert len(rows) == 40
        assert set(rows[0]) >= {"job_id", "start_time", "frequency_ghz", "bsld", "energy"}

    def test_values_roundtrip(self, result, tmp_path):
        path = tmp_path / "jobs.csv"
        outcomes_to_csv(result, path)
        with open(path, newline="") as stream:
            rows = {int(r["job_id"]): r for r in csv.DictReader(stream)}
        for outcome in result.outcomes:
            row = rows[outcome.job.job_id]
            assert float(row["start_time"]) == pytest.approx(outcome.start_time, abs=1e-5)
            assert float(row["frequency_ghz"]) == outcome.gear.frequency
            assert int(row["was_reduced"]) == int(outcome.was_reduced)
            assert float(row["bsld"]) == pytest.approx(outcome.bsld(), abs=1e-5)

    def test_beta_column(self, result, tmp_path):
        path = tmp_path / "jobs.csv"
        outcomes_to_csv(result, path)
        with open(path, newline="") as stream:
            rows = {int(r["job_id"]): r for r in csv.DictReader(stream)}
        assert rows[2]["beta"] == "0.4000"
        assert rows[1]["beta"] == ""


class TestSummaryRow:
    def test_fields(self, result):
        row = result_summary_row(result)
        assert row["jobs"] == 40
        assert row["machine"] == "m"
        assert row["total_cpus"] == 8
        assert row["avg_bsld"] >= 1.0
        assert row["energy_idlelow"] >= row["energy_idle0"]
        assert 0.0 <= row["utilization"] <= 1.0

    def test_usable_as_table(self, result):
        rows = [result_summary_row(result), result_summary_row(result)]
        assert rows[0] == rows[1]
