"""Byte-exact golden-trace regression tests.

Each golden fixture is the per-job schedule export
(:func:`repro.scheduling.export.outcomes_to_csv`) of one small pinned
workload under one frequency policy, committed under ``tests/goldens/``.
The simulator is deterministic in its spec, so these files must never
change by a single byte unless the *intended* scheduling behaviour
changes — they are the tripwire that lets hot-path optimisation work
proceed without fidelity risk.

To regenerate after an intentional behaviour change::

    python -m pytest tests/scheduling/test_goldens.py --update-goldens

then inspect the diff and commit the new fixtures together with the
change that explains it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import Simulation
from repro.cluster.power import SleepPolicy
from repro.experiments.config import InstrumentSpec, PolicySpec, RunSpec
from repro.scheduling.export import outcomes_to_csv

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "goldens"

#: 80% of the SDSC-300 no-DVFS peak instantaneous power (model watts) —
#: the runtime-control golden scenario.  The value is pinned so the
#: golden spec (and its cache key) never drifts;
#: ``test_powercap_cap_tracks_nodvfs_peak`` re-measures the peak and
#: asserts the 80% relation still holds.
POWERCAP_SDSC_CAP = 706.5600000000002

#: A full-shutdown sleep policy with a two-minute boot: wake latency
#: visibly perturbs the schedule, so this golden pins the in-engine
#: node-power subsystem end to end (idle detection, wake stalls and the
#: sleep-aware energy books all feed the exported outcome rows).
SLEEP_SDSC_POLICY = SleepPolicy(
    sleep_after_seconds=600.0,
    sleep_power_fraction=0.0,
    wake_energy_idle_seconds=60.0,
    wake_seconds=120.0,
)

#: Two pinned workloads x {no-DVFS baseline, the paper's DVFS(2, NO)},
#: plus the reactive power-capping scenario on SDSC and the node-sleep
#: scenario on SDSC DVFS(2, NO).
GOLDEN_SPECS: dict[str, RunSpec] = {
    "sdsc_300_nodvfs": RunSpec(
        workload="SDSC", n_jobs=300, seed=1, policy=PolicySpec.baseline()
    ),
    "sdsc_300_dvfs2no": RunSpec(
        workload="SDSC", n_jobs=300, seed=1, policy=PolicySpec.power_aware(2.0, None)
    ),
    "sdsc_300_powercap80": RunSpec(
        workload="SDSC",
        n_jobs=300,
        seed=1,
        policy=PolicySpec.baseline(),
        instruments=(InstrumentSpec.of("power_cap", cap=POWERCAP_SDSC_CAP),),
    ),
    "sdsc_300_sleep": RunSpec(
        workload="SDSC",
        n_jobs=300,
        seed=1,
        policy=PolicySpec.power_aware(2.0, None),
        sleep=SLEEP_SDSC_POLICY,
    ),
    "ctc_300_nodvfs": RunSpec(
        workload="CTC", n_jobs=300, seed=1, policy=PolicySpec.baseline()
    ),
    "ctc_300_dvfs2no": RunSpec(
        workload="CTC", n_jobs=300, seed=1, policy=PolicySpec.power_aware(2.0, None)
    ),
}


def test_powercap_cap_tracks_nodvfs_peak():
    """The pinned cap is exactly 80% of the re-measured no-DVFS peak."""
    spec = GOLDEN_SPECS["sdsc_300_nodvfs"].with_instruments(
        InstrumentSpec.of("power_telemetry")
    )
    result = Simulation(spec).run()
    peak = result.instrument("power_telemetry")["peak_watts"]
    assert POWERCAP_SDSC_CAP == pytest.approx(0.8 * peak, rel=1e-12)


def test_sleep_golden_actually_sleeps_and_stalls():
    """The sleep golden exercises both sides of the subsystem: nodes
    genuinely power down, and wake latency genuinely moves the schedule
    relative to the sleep-free twin."""
    asleep = Simulation(GOLDEN_SPECS["sdsc_300_sleep"]).run()
    awake = Simulation(GOLDEN_SPECS["sdsc_300_dvfs2no"]).run()
    breakdown = asleep.energy.sleep
    assert breakdown is not None
    assert breakdown.asleep_cpu_seconds > 0.0
    assert breakdown.wake_count > 0
    assert breakdown.wake_delayed_jobs > 0
    assert breakdown.wake_delay_seconds_total > 0.0
    assert asleep.outcomes != awake.outcomes  # latency perturbed the schedule
    assert asleep.energy.idle < awake.energy.idle  # and sleeping saved energy


def test_powercap_golden_actually_caps():
    """The capped run visibly forces reduced gears on a no-DVFS policy."""
    result = Simulation(GOLDEN_SPECS["sdsc_300_powercap80"]).run()
    report = result.instrument("power_cap")
    assert report["reductions"] > 0
    assert result.reduced_jobs > 0
    assert report["time_capped"] > 0.0


def render_golden(spec: RunSpec, tmp_path: Path) -> bytes:
    """Simulate ``spec`` and return its schedule export, byte for byte."""
    result = Simulation(spec, validate=True).run()
    scratch = tmp_path / "export.csv"
    outcomes_to_csv(result, scratch)
    return scratch.read_bytes()


@pytest.mark.parametrize("name", sorted(GOLDEN_SPECS))
def test_golden_trace_byte_stable(name, tmp_path, update_goldens):
    rendered = render_golden(GOLDEN_SPECS[name], tmp_path)
    golden_path = GOLDEN_DIR / f"{name}.csv"
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden_path.write_bytes(rendered)
        return
    assert golden_path.exists(), (
        f"missing golden fixture {golden_path}; generate it with "
        f"`python -m pytest {__file__} --update-goldens`"
    )
    golden = golden_path.read_bytes()
    assert rendered == golden, (
        f"{name}: schedule export diverged from the committed golden trace "
        f"({len(rendered)} vs {len(golden)} bytes). If this change is "
        f"intentional, rerun with --update-goldens and commit the diff."
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_SPECS))
def test_golden_trace_byte_stable_columnar(name, tmp_path, update_goldens):
    """The columnar lane reproduces every committed golden, byte for byte.

    The plain goldens render with ``validate=True`` (which the fused
    core does not cover), so this twin renders with validation off and
    the lane pinned to ``columnar`` — the fused core for the plain
    DVFS/no-DVFS specs, the reference fallback for the power-cap and
    sleep specs.  Either way the exported bytes must equal the fixture.
    """
    pytest.importorskip("numpy", reason="the columnar lane needs numpy")
    if update_goldens:
        pytest.skip("fixtures are being rewritten by the reference lane in this run")
    spec = GOLDEN_SPECS[name].with_engine("columnar")
    result = Simulation(spec).run()
    scratch = tmp_path / "export.csv"
    outcomes_to_csv(result, scratch)
    rendered = scratch.read_bytes()
    golden = (GOLDEN_DIR / f"{name}.csv").read_bytes()
    assert rendered == golden, (
        f"{name}: columnar lane diverged from the committed golden trace"
    )


def test_goldens_have_expected_shape(update_goldens):
    """Every fixture exists, has a header and one row per job."""
    if update_goldens:
        pytest.skip("fixtures are being rewritten in this run")
    for name, spec in GOLDEN_SPECS.items():
        lines = (GOLDEN_DIR / f"{name}.csv").read_bytes().splitlines()
        assert len(lines) == spec.n_jobs + 1, name
        assert lines[0].startswith(b"job_id,submit_time"), name
