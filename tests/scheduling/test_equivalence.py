"""The fast schedulers must match their profile-based references.

Fast EASY uses the O(1) shadow-time/extra-nodes backfill test and fast
conservative maintains its availability profile incrementally across
events; the references rebuild full availability profiles every pass,
the way the paper's pseudocode reads.  On any workload and any
frequency policy each fast/reference pair must produce *identical*
schedules (same start time and same gear for every job) — this is the
strongest correctness statement in the suite.
"""

import pytest
from hypothesis import given, settings

from repro.cluster.machine import Machine
from repro.core.frequency_policy import BsldThresholdPolicy, FixedGearPolicy
from repro.scheduling.base import SchedulerConfig
from repro.scheduling.conservative import ConservativeBackfilling
from repro.scheduling.easy import EasyBackfilling
from repro.scheduling.reference import (
    ReferenceConservativeBackfilling,
    ReferenceEasyBackfilling,
)
from tests.conftest import random_workload, workload_strategy

POLICIES = {
    "nodvfs": lambda: FixedGearPolicy(),
    "fixed-low": lambda: FixedGearPolicy(0.8),
    "bsld(1.5,0)": lambda: BsldThresholdPolicy(1.5, 0),
    "bsld(2,4)": lambda: BsldThresholdPolicy(2.0, 4),
    "bsld(3,NO)": lambda: BsldThresholdPolicy(3.0, None),
    "bsld-strict": lambda: BsldThresholdPolicy(2.0, None, strict_top_backfill=True),
}


def assert_matching_pair(jobs, cpus, policy_factory, fast_cls, reference_cls):
    machine = Machine("m", cpus)
    fast = fast_cls(
        machine, policy_factory(), config=SchedulerConfig(validate=True)
    ).run(jobs)
    reference = reference_cls(
        machine, policy_factory(), config=SchedulerConfig(validate=True)
    ).run(jobs)
    for a, b in zip(fast.outcomes, reference.outcomes, strict=True):
        assert a.job.job_id == b.job.job_id
        assert a.start_time == pytest.approx(b.start_time, abs=1e-6), (
            f"job {a.job.job_id}: fast start {a.start_time}, reference {b.start_time}"
        )
        assert a.gear == b.gear, f"job {a.job.job_id}: {a.gear} vs {b.gear}"
    assert fast.energy.computational == pytest.approx(reference.energy.computational)


def assert_identical_schedules(jobs, cpus, policy_factory):
    assert_matching_pair(
        jobs, cpus, policy_factory, EasyBackfilling, ReferenceEasyBackfilling
    )


def assert_identical_conservative_schedules(jobs, cpus, policy_factory):
    assert_matching_pair(
        jobs,
        cpus,
        policy_factory,
        ConservativeBackfilling,
        ReferenceConservativeBackfilling,
    )


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("seed", range(6))
def test_equivalence_random_workloads(policy_name, seed):
    jobs = random_workload(seed=seed, n_jobs=60, max_cpus=8)
    assert_identical_schedules(jobs, 8, POLICIES[policy_name])


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_equivalence_bursty_arrivals(policy_name):
    """Many same-instant arrivals stress tie-breaking."""
    jobs = random_workload(seed=99, n_jobs=40, max_cpus=6, mean_gap=1.0)
    assert_identical_schedules(jobs, 6, POLICIES[policy_name])


@given(workload_strategy(max_jobs=20, max_cpus=6))
@settings(max_examples=25)
def test_equivalence_property_nodvfs(jobs):
    assert_identical_schedules(jobs, 6, POLICIES["nodvfs"])


@given(workload_strategy(max_jobs=20, max_cpus=6))
@settings(max_examples=25)
def test_equivalence_property_bsld(jobs):
    assert_identical_schedules(jobs, 6, POLICIES["bsld(2,4)"])


@given(workload_strategy(max_jobs=15, max_cpus=4))
@settings(max_examples=20)
def test_equivalence_property_bsld_no_limit(jobs):
    assert_identical_schedules(jobs, 4, POLICIES["bsld(3,NO)"])


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_equivalence_deep_queue_production_config(policy_name):
    """Deep queues (> 64 waiting) under the production configuration.

    Drives every incremental-scan path the small hypothesis workloads
    cannot reach: the vectorised candidate mask (wide windows), the
    cross-pass scan cache, the O(1) reservation update, and — because
    ``validate`` is *off* here, unlike the other differentials — the
    free==0 / single-waiter pass short-circuits.  The full-rescan
    reference must still match job for job.
    """
    jobs = random_workload(seed=13, n_jobs=220, max_cpus=4, mean_gap=40.0)
    machine = Machine("m", 4)
    fast = EasyBackfilling(machine, POLICIES[policy_name]()).run(jobs)
    reference = ReferenceEasyBackfilling(machine, POLICIES[policy_name]()).run(jobs)
    peak_queue = max(
        sum(1 for other in jobs if other.submit_time <= o.job.submit_time)
        - sum(1 for other in fast.outcomes if other.start_time <= o.job.submit_time)
        for o in fast.outcomes
    )
    assert peak_queue > 64, "workload too shallow to exercise the wide-mask path"
    for a, b in zip(fast.outcomes, reference.outcomes, strict=True):
        assert a.job.job_id == b.job.job_id
        assert a.start_time == pytest.approx(b.start_time, abs=1e-6)
        assert a.gear == b.gear
    assert fast.energy.computational == pytest.approx(reference.energy.computational)


@pytest.mark.parametrize("policy_name", ["nodvfs", "bsld(2,4)", "bsld(3,NO)"])
def test_conservative_deep_queue_production_config(policy_name):
    """Conservative incremental profile + pass skips on a deep queue,
    against the rebuild-per-pass reference, with validation off."""
    jobs = random_workload(seed=13, n_jobs=120, max_cpus=4, mean_gap=40.0)
    machine = Machine("m", 4)
    fast = ConservativeBackfilling(machine, POLICIES[policy_name]()).run(jobs)
    reference = ReferenceConservativeBackfilling(machine, POLICIES[policy_name]()).run(jobs)
    for a, b in zip(fast.outcomes, reference.outcomes, strict=True):
        assert a.job.job_id == b.job.job_id
        assert a.start_time == pytest.approx(b.start_time, abs=1e-6)
        assert a.gear == b.gear


# -- conservative backfilling: incremental profile vs rebuild-per-pass ---------


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("seed", range(4))
def test_conservative_equivalence_random_workloads(policy_name, seed):
    jobs = random_workload(seed=seed, n_jobs=50, max_cpus=8)
    assert_identical_conservative_schedules(jobs, 8, POLICIES[policy_name])


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_conservative_equivalence_bursty_arrivals(policy_name):
    """Many same-instant arrivals stress tie-breaking and replanning."""
    jobs = random_workload(seed=77, n_jobs=35, max_cpus=6, mean_gap=1.0)
    assert_identical_conservative_schedules(jobs, 6, POLICIES[policy_name])


@given(workload_strategy(max_jobs=18, max_cpus=6))
@settings(max_examples=25)
def test_conservative_equivalence_property_nodvfs(jobs):
    assert_identical_conservative_schedules(jobs, 6, POLICIES["nodvfs"])


@given(workload_strategy(max_jobs=18, max_cpus=6))
@settings(max_examples=25)
def test_conservative_equivalence_property_bsld(jobs):
    assert_identical_conservative_schedules(jobs, 6, POLICIES["bsld(2,4)"])


@given(workload_strategy(max_jobs=14, max_cpus=4))
@settings(max_examples=20)
def test_conservative_equivalence_property_bsld_no_limit(jobs):
    assert_identical_conservative_schedules(jobs, 4, POLICIES["bsld(3,NO)"])
