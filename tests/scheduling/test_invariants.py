"""Cross-cutting scheduler invariants on random workloads.

Every scheduler, under every policy, must satisfy: all jobs complete,
no job starts before submission, the machine is never oversubscribed
(asserted live via ``SchedulerConfig(validate=True)``), outcomes carry
consistent energies, and the no-DVFS power-aware policy is bitwise
identical to the plain baseline.
"""

import pytest
from hypothesis import given, settings

from repro.cluster.machine import Machine
from repro.core.frequency_policy import BsldThresholdPolicy, FixedGearPolicy
from repro.core.util_policy import UtilizationTriggeredPolicy
from repro.power.model import PowerModel
from repro.scheduling.base import SchedulerConfig
from repro.scheduling.conservative import ConservativeBackfilling
from repro.scheduling.easy import EasyBackfilling
from repro.scheduling.fcfs import FcfsScheduler
from tests.conftest import random_workload, workload_strategy

SCHEDULERS = {
    "easy": EasyBackfilling,
    "fcfs": FcfsScheduler,
    "conservative": ConservativeBackfilling,
}


def check_result(result, jobs, machine):
    assert result.job_count == len(jobs)
    seen = {o.job.job_id for o in result.outcomes}
    assert seen == {j.job_id for j in jobs}
    model = PowerModel(gears=machine.gears)
    for outcome in result.outcomes:
        assert outcome.start_time >= outcome.job.submit_time - 1e-9
        assert outcome.finish_time >= outcome.start_time - 1e-9
        assert outcome.penalized_runtime >= outcome.job.runtime * 0.999 - 1e-6
        if not outcome.was_reduced:
            # unreduced jobs run exactly their nominal runtime
            assert outcome.penalized_runtime == pytest.approx(
                outcome.job.runtime, abs=1e-6
            )
            expected = model.active_energy(
                outcome.gear, outcome.job.size, outcome.penalized_runtime
            )
            assert outcome.energy == pytest.approx(expected, rel=1e-9)
    # per-job energies add up to the computational total
    total = sum(o.energy for o in result.outcomes)
    assert total == pytest.approx(result.energy.computational, rel=1e-9)


@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
@pytest.mark.parametrize("seed", range(4))
def test_invariants_no_dvfs(scheduler_name, seed):
    jobs = random_workload(seed=seed, n_jobs=50, max_cpus=8)
    machine = Machine("m", 8)
    scheduler = SCHEDULERS[scheduler_name](
        machine, FixedGearPolicy(), config=SchedulerConfig(validate=True)
    )
    check_result(scheduler.run(jobs), jobs, machine)


@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
@pytest.mark.parametrize("seed", range(4))
def test_invariants_power_aware(scheduler_name, seed):
    jobs = random_workload(seed=seed + 100, n_jobs=50, max_cpus=8)
    machine = Machine("m", 8)
    scheduler = SCHEDULERS[scheduler_name](
        machine, BsldThresholdPolicy(2.0, 4), config=SchedulerConfig(validate=True)
    )
    check_result(scheduler.run(jobs), jobs, machine)


@pytest.mark.parametrize("seed", range(3))
def test_invariants_utilization_policy(seed):
    jobs = random_workload(seed=seed + 50, n_jobs=40, max_cpus=8)
    machine = Machine("m", 8)
    scheduler = EasyBackfilling(
        machine, UtilizationTriggeredPolicy(), config=SchedulerConfig(validate=True)
    )
    check_result(scheduler.run(jobs), jobs, machine)


def test_power_aware_with_top_only_gear_equals_baseline():
    """A one-gear ladder makes the BSLD policy a no-op."""
    from repro.core.gears import single_gear_set

    jobs = random_workload(seed=7, n_jobs=60, max_cpus=8)
    machine = Machine("m", 8, gears=single_gear_set())
    base = EasyBackfilling(machine, FixedGearPolicy()).run(jobs)
    powered = EasyBackfilling(machine, BsldThresholdPolicy(2.0, None)).run(jobs)
    for a, b in zip(base.outcomes, powered.outcomes, strict=True):
        assert a.start_time == b.start_time
        assert a.gear == b.gear
    assert powered.reduced_jobs == 0
    assert powered.energy.computational == pytest.approx(base.energy.computational)


def test_infeasible_bsld_threshold_never_reduces():
    """Threshold 1.0 cannot be met (BSLD >= 1), so nothing reduces and
    the schedule equals the baseline exactly."""
    jobs = random_workload(seed=21, n_jobs=60, max_cpus=8)
    machine = Machine("m", 8)
    base = EasyBackfilling(machine, FixedGearPolicy()).run(jobs)
    powered = EasyBackfilling(machine, BsldThresholdPolicy(1.0, None)).run(jobs)
    assert powered.reduced_jobs == 0
    for a, b in zip(base.outcomes, powered.outcomes, strict=True):
        assert a.start_time == pytest.approx(b.start_time)


def test_reduction_only_ever_costs_performance_not_schedulability():
    """Power-aware runs finish all jobs even under extreme reduction."""
    jobs = random_workload(seed=3, n_jobs=80, max_cpus=6)
    machine = Machine("m", 6)
    result = EasyBackfilling(
        machine, FixedGearPolicy(0.8), config=SchedulerConfig(validate=True)
    ).run(jobs)
    assert result.job_count == 80
    assert result.reduced_jobs == 80


def test_clamp_runtimes_config():
    """With clamping off, runtime > request must still simulate safely."""
    from repro.scheduling.job import Job

    jobs = [Job(1, 0.0, 300.0, 100.0, 2)]  # runs past its estimate
    machine = Machine("m", 4)
    clamped = EasyBackfilling(machine, FixedGearPolicy()).run(jobs)
    assert clamped.outcomes[0].finish_time == pytest.approx(100.0)
    raw = EasyBackfilling(
        machine, FixedGearPolicy(), config=SchedulerConfig(clamp_runtimes=False, validate=True)
    ).run(jobs)
    assert raw.outcomes[0].finish_time == pytest.approx(300.0)


def test_determinism():
    """Two runs of the same configuration are bitwise identical."""
    jobs = random_workload(seed=5, n_jobs=70, max_cpus=8)
    machine = Machine("m", 8)
    a = EasyBackfilling(machine, BsldThresholdPolicy(2.0, 4)).run(jobs)
    b = EasyBackfilling(machine, BsldThresholdPolicy(2.0, 4)).run(jobs)
    assert [o.start_time for o in a.outcomes] == [o.start_time for o in b.outcomes]
    assert a.energy.computational == b.energy.computational


@given(workload_strategy(max_jobs=25, max_cpus=8))
@settings(max_examples=30)
def test_easy_invariants_property(jobs):
    machine = Machine("m", 8)
    result = EasyBackfilling(
        machine, BsldThresholdPolicy(2.0, 4), config=SchedulerConfig(validate=True)
    ).run(jobs)
    check_result(result, jobs, machine)


@given(workload_strategy(max_jobs=18, max_cpus=6))
@settings(max_examples=15)
def test_conservative_invariants_property(jobs):
    machine = Machine("m", 6)
    result = ConservativeBackfilling(
        machine, BsldThresholdPolicy(2.0, 4), config=SchedulerConfig(validate=True)
    ).run(jobs)
    check_result(result, jobs, machine)


def test_timeline_recording():
    jobs = random_workload(seed=11, n_jobs=30, max_cpus=8)
    machine = Machine("m", 8)
    result = EasyBackfilling(
        machine, FixedGearPolicy(), config=SchedulerConfig(record_timeline=True)
    ).run(jobs)
    assert len(result.timeline) == 60  # one sample per event
    times = [p.time for p in result.timeline]
    assert times == sorted(times)
    assert all(0 <= p.busy_cpus <= 8 for p in result.timeline)
