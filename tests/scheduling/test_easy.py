"""Hand-built EASY backfilling scenarios with exact expected schedules."""

import pytest

from repro.cluster.machine import Machine
from repro.core.frequency_policy import BsldThresholdPolicy, FixedGearPolicy
from repro.scheduling.base import SchedulerConfig
from repro.scheduling.easy import EasyBackfilling
from tests.conftest import make_job


def run_easy(jobs, cpus=4, policy=None):
    machine = Machine("m", cpus)
    scheduler = EasyBackfilling(
        machine, policy or FixedGearPolicy(), config=SchedulerConfig(validate=True)
    )
    return scheduler.run(jobs)


def starts(result):
    return {o.job.job_id: o.start_time for o in result.outcomes}


class TestBackfillBasics:
    def test_short_job_backfills_before_blocked_head(self):
        # 1: holds 3/4 CPUs until t=100 (requested exactly).
        # 2: needs 4 -> reserved at t=100.
        # 3: 1 CPU for 50s -> finishes by 100, backfills at t=2.
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, size=3),
            make_job(2, submit=1.0, runtime=50.0, size=4),
            make_job(3, submit=2.0, runtime=50.0, requested=50.0, size=1),
        ]
        assert starts(run_easy(jobs)) == {1: 0.0, 2: 100.0, 3: 2.0}

    def test_backfill_must_not_delay_reservation(self):
        # 3 requests 200s: running past the reservation at t=100 on the
        # head's CPUs would delay it -> no backfill.
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, size=3),
            make_job(2, submit=1.0, runtime=50.0, size=4),
            make_job(3, submit=2.0, runtime=200.0, requested=200.0, size=1),
        ]
        assert starts(run_easy(jobs)) == {1: 0.0, 2: 100.0, 3: 150.0}

    def test_backfill_on_extra_processors_may_run_long(self):
        # Head 2 needs only 2 CPUs at t=100; one CPU is spare ("extra"),
        # so 3 may backfill even though it runs past the reservation.
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, size=3),
            make_job(2, submit=1.0, runtime=50.0, size=2),
            make_job(3, submit=2.0, runtime=500.0, requested=500.0, size=1),
        ]
        assert starts(run_easy(jobs)) == {1: 0.0, 2: 100.0, 3: 2.0}

    def test_backfill_respects_current_free_count(self):
        # Two 1-CPU candidates, one free CPU: only the first backfills.
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, size=3),
            make_job(2, submit=1.0, runtime=50.0, size=4),
            make_job(3, submit=2.0, runtime=50.0, requested=50.0, size=1),
            make_job(4, submit=3.0, runtime=50.0, requested=50.0, size=1),
        ]
        result = starts(run_easy(jobs))
        assert result[3] == 2.0
        # 4 cannot backfill (no free CPU at t=3; after 3 finishes at t=52
        # it would run past the reservation with extra=0), and the head
        # then takes the whole machine until t=150.
        assert result[4] == 150.0

    def test_early_finish_triggers_rescheduling(self):
        # Head requests 1000s but finishes at 100s: the reservation for 2
        # collapses from 1000 to 100.
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, requested=1000.0, size=4),
            make_job(2, submit=1.0, runtime=50.0, size=4),
        ]
        assert starts(run_easy(jobs)) == {1: 0.0, 2: 100.0}

    def test_queue_respects_fcfs_between_equal_jobs(self):
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, size=4),
            make_job(2, submit=1.0, runtime=100.0, size=4),
            make_job(3, submit=2.0, runtime=100.0, size=4),
        ]
        assert starts(run_easy(jobs)) == {1: 0.0, 2: 100.0, 3: 200.0}


class TestReservationSemantics:
    def test_reservation_uses_requested_times(self):
        # Running job requests 500s (runs 500): reservation at 500 even
        # though a shorter actual runtime would be nicer.
        jobs = [
            make_job(1, submit=0.0, runtime=500.0, requested=500.0, size=4),
            make_job(2, submit=1.0, runtime=10.0, size=4),
        ]
        assert starts(run_easy(jobs))[2] == 500.0

    def test_multiple_finishes_accumulate_for_wide_head(self):
        # Head needs all 4 CPUs; running jobs release 2 at t=100, 2 at 200.
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, requested=100.0, size=2),
            make_job(2, submit=0.0, runtime=200.0, requested=200.0, size=2),
            make_job(3, submit=1.0, runtime=10.0, size=4),
        ]
        assert starts(run_easy(jobs))[3] == 200.0

    def test_same_time_finish_and_arrival(self):
        # Finish events process before arrivals at the same timestamp, so
        # a job arriving exactly when CPUs free starts immediately.
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, requested=100.0, size=4),
            make_job(2, submit=100.0, runtime=10.0, size=4),
        ]
        assert starts(run_easy(jobs))[2] == 100.0


class TestDvfsScheduling:
    def test_reduced_job_occupies_longer(self):
        # With DVFS on an empty machine, job 1 runs at 0.8 GHz
        # (Coef 1.9375); job 2 needs all CPUs and must wait for the
        # stretched completion.
        policy = BsldThresholdPolicy(bsld_threshold=2.0, wq_threshold=None)
        jobs = [
            make_job(1, submit=0.0, runtime=1000.0, requested=1000.0, size=4),
            make_job(2, submit=1.0, runtime=100.0, size=4),
        ]
        result = run_easy(jobs, policy=policy)
        by_id = {o.job.job_id: o for o in result.outcomes}
        assert by_id[1].gear.frequency == 0.8
        assert by_id[1].penalized_runtime == pytest.approx(1937.5)
        assert by_id[2].start_time == pytest.approx(1937.5)

    def test_wq_threshold_zero_blocks_reduction_when_queue_nonempty(self):
        # Gears are assigned when a job *starts*: job 2 starts while job 3
        # still waits behind it (WQ size 1 > 0 -> top frequency), whereas
        # job 3 starts with an empty queue and is reduced.
        policy = BsldThresholdPolicy(bsld_threshold=3.0, wq_threshold=0)
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, requested=100.0, size=4),
            make_job(2, submit=1.0, runtime=100.0, requested=100.0, size=4),
            make_job(3, submit=2.0, runtime=100.0, requested=100.0, size=4),
        ]
        result = run_easy(jobs, policy=policy)
        by_id = {o.job.job_id: o for o in result.outcomes}
        assert by_id[1].was_reduced  # empty queue when it starts at t=0
        assert not by_id[2].was_reduced  # job 3 queued behind it at start
        assert by_id[3].was_reduced  # alone again when it finally starts

    def test_backfilled_job_may_be_reduced_when_bsld_allows(self):
        # Large threshold: the backfilled job picks the lowest gear that
        # still fits before the reservation.
        policy = BsldThresholdPolicy(bsld_threshold=10.0, wq_threshold=None)
        jobs = [
            make_job(1, submit=0.0, runtime=1000.0, requested=1000.0, size=3),
            make_job(2, submit=1.0, runtime=500.0, size=4),
            # 100s at top; even stretched x1.9375 (194s) it ends before
            # the reservation at t~1937 -> lowest gear.
            make_job(3, submit=2.0, runtime=100.0, requested=100.0, size=1),
        ]
        result = run_easy(jobs, policy=policy)
        by_id = {o.job.job_id: o for o in result.outcomes}
        assert by_id[3].start_time == 2.0
        assert by_id[3].gear.frequency == 0.8

    def test_backfill_picks_faster_gear_to_fit_window(self):
        # Job 1 itself is reduced (empty machine) to 0.8 GHz, so it holds
        # 3 CPUs until 100 * 1.9375 = 193.75 and the head's reservation
        # sits there.  The 150s backfill candidate must pick a gear whose
        # stretched duration fits the 191.75s window:
        #   0.8 GHz: 150*1.9375 = 290.6  -> no
        #   1.1 GHz: 150*1.545  = 231.8  -> no
        #   1.4 GHz: 150*1.321  = 198.2  -> no
        #   1.7 GHz: 150*1.176  = 176.5  -> fits (2 + 176.5 < 193.75)
        policy = BsldThresholdPolicy(bsld_threshold=10.0, wq_threshold=None)
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, requested=100.0, size=3),
            make_job(2, submit=1.0, runtime=500.0, size=4),
            make_job(3, submit=2.0, runtime=150.0, requested=150.0, size=1),
        ]
        result = run_easy(jobs, policy=policy)
        by_id = {o.job.job_id: o for o in result.outcomes}
        assert by_id[1].gear.frequency == 0.8
        assert by_id[3].start_time == 2.0
        assert by_id[3].gear.frequency == pytest.approx(1.7)

    def test_no_dvfs_policy_everything_top(self):
        jobs = [make_job(i, submit=float(i), runtime=50.0, size=2) for i in range(1, 6)]
        result = run_easy(jobs)
        assert result.reduced_jobs == 0
        assert all(o.gear.frequency == 2.3 for o in result.outcomes)
