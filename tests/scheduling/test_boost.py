"""Dynamic frequency boosting (the paper's future work) end to end."""

import pytest

from repro.cluster.machine import Machine
from repro.core.dynamic_boost import DynamicBoostConfig, boost_plan
from repro.core.frequency_policy import BsldThresholdPolicy
from repro.core.gears import PAPER_GEAR_SET
from repro.power.time_model import BetaTimeModel
from repro.scheduling.base import SchedulerConfig
from repro.scheduling.easy import EasyBackfilling
from tests.conftest import make_job, random_workload

TIME_MODEL = BetaTimeModel.for_gear_set(PAPER_GEAR_SET)


class TestBoostPlan:
    def plan(self, now=0.0, gear=PAPER_GEAR_SET.lowest, actual=1937.5, estimate=1937.5,
             config=None):
        if config is None:
            config = DynamicBoostConfig(wq_trigger=0)
        return boost_plan(
            now=now,
            current_gear=gear,
            gears=PAPER_GEAR_SET,
            time_model=TIME_MODEL,
            beta=None,
            actual_end=actual,
            estimated_end=estimate,
            config=config,
        )

    def test_boost_converts_remaining_time(self):
        # Full job at 0.8 GHz: 1937.5s; boosted at t=0 -> 1000s at top.
        new_actual, new_estimate = self.plan()
        assert new_actual == pytest.approx(1000.0)
        assert new_estimate == pytest.approx(1000.0)

    def test_partial_progress(self):
        # Boost halfway: remaining 968.75 at 0.8 -> 500 at top.
        new_actual, _ = self.plan(now=968.75)
        assert new_actual == pytest.approx(968.75 + 500.0)

    def test_top_gear_returns_none(self):
        assert self.plan(gear=PAPER_GEAR_SET.top) is None

    def test_nearly_done_returns_none(self):
        config = DynamicBoostConfig(wq_trigger=0, min_remaining_seconds=120.0)
        assert self.plan(now=1900.0, config=config) is None

    def test_estimate_scales_too(self):
        new_actual, new_estimate = self.plan(actual=1937.5, estimate=3875.0)
        assert new_actual == pytest.approx(1000.0)
        assert new_estimate == pytest.approx(2000.0)

    def test_estimate_never_undercuts_actual(self):
        new_actual, new_estimate = self.plan(actual=1937.5, estimate=1937.5)
        assert new_estimate >= new_actual

    def test_should_boost(self):
        config = DynamicBoostConfig(wq_trigger=4)
        assert not config.should_boost(4)
        assert config.should_boost(5)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="wq_trigger"):
            DynamicBoostConfig(wq_trigger=-1)
        with pytest.raises(ValueError, match="min_remaining"):
            DynamicBoostConfig(min_remaining_seconds=-1.0)


class TestBoostInScheduler:
    def test_boost_shortens_reduced_job(self):
        # Job 1 reduced to 0.8 GHz on an empty machine (would finish at
        # 1937.5); job 2 arriving at t=100 pushes WQ past the trigger, so
        # job 1 is boosted and finishes at 100 + 948.4 (remaining work at
        # top speed) instead.
        policy = BsldThresholdPolicy(2.0, None)
        config = SchedulerConfig(
            validate=True, boost=DynamicBoostConfig(wq_trigger=0, min_remaining_seconds=0.0)
        )
        jobs = [
            make_job(1, submit=0.0, runtime=1000.0, requested=1000.0, size=4),
            make_job(2, submit=100.0, runtime=10.0, size=4),
        ]
        machine = Machine("m", 4)
        result = EasyBackfilling(machine, policy, config=config).run(jobs)
        by_id = {o.job.job_id: o for o in result.outcomes}
        remaining_at_boost = (1937.5 - 100.0) / 1.9375  # work left, at top speed
        assert by_id[1].finish_time == pytest.approx(100.0 + remaining_at_boost)
        assert by_id[1].was_reduced  # it *did* run reduced for a while
        assert by_id[2].start_time == pytest.approx(by_id[1].finish_time)

    def test_boost_energy_is_segmented(self):
        """Energy of a boosted job = low-gear segment + top-gear segment."""
        from repro.power.model import PowerModel

        policy = BsldThresholdPolicy(2.0, None)
        config = SchedulerConfig(
            boost=DynamicBoostConfig(wq_trigger=0, min_remaining_seconds=0.0)
        )
        jobs = [
            make_job(1, submit=0.0, runtime=1000.0, requested=1000.0, size=2),
            make_job(2, submit=100.0, runtime=10.0, size=4),
        ]
        machine = Machine("m", 4)
        result = EasyBackfilling(machine, policy, config=config).run(jobs)
        outcome = {o.job.job_id: o for o in result.outcomes}[1]
        model = PowerModel()
        low, top = PAPER_GEAR_SET.lowest, PAPER_GEAR_SET.top
        segment_low = model.active_energy(low, 2, 100.0)
        segment_top = model.active_energy(top, 2, outcome.finish_time - 100.0)
        assert outcome.energy == pytest.approx(segment_low + segment_top)

    def test_boost_never_loses_jobs(self):
        jobs = random_workload(seed=17, n_jobs=60, max_cpus=8)
        machine = Machine("m", 8)
        config = SchedulerConfig(validate=True, boost=DynamicBoostConfig(wq_trigger=2))
        result = EasyBackfilling(machine, BsldThresholdPolicy(3.0, None), config=config).run(jobs)
        assert result.job_count == 60

    def test_boost_improves_waits_costs_energy(self):
        jobs = random_workload(seed=23, n_jobs=80, max_cpus=8, mean_gap=150.0)
        machine = Machine("m", 8)
        plain = EasyBackfilling(machine, BsldThresholdPolicy(3.0, None)).run(jobs)
        boosted = EasyBackfilling(
            machine,
            BsldThresholdPolicy(3.0, None),
            config=SchedulerConfig(boost=DynamicBoostConfig(wq_trigger=1)),
        ).run(jobs)
        assert boosted.average_wait() <= plain.average_wait() + 1e-6
        assert boosted.energy.computational >= plain.energy.computational - 1e-6

    def test_boost_disabled_is_plain(self):
        jobs = random_workload(seed=31, n_jobs=40, max_cpus=8)
        machine = Machine("m", 8)
        a = EasyBackfilling(machine, BsldThresholdPolicy(2.0, 4)).run(jobs)
        b = EasyBackfilling(
            machine, BsldThresholdPolicy(2.0, 4), config=SchedulerConfig(boost=None)
        ).run(jobs)
        assert [o.finish_time for o in a.outcomes] == [o.finish_time for o in b.outcomes]
