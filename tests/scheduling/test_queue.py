"""The indexed :class:`JobQueue` must behave exactly like a deque.

The queue backs every scheduler's wait list, and its vectorised
``backfill_candidates`` pre-filter drives the EASY scan — so these
tests pin (a) deque parity over arbitrary op sequences, (b) the
pre-filter against a brute-force evaluation of the same predicate, and
(c) that the numpy mask path and the narrow Python path agree.
"""

from __future__ import annotations

from collections import deque

from hypothesis import given, settings, strategies as st

from repro.scheduling.job import Job
from repro.scheduling.queue import JobQueue


def make_job(job_id: int, size: int = 1, requested: float = 100.0) -> Job:
    return Job(
        job_id=job_id,
        submit_time=float(job_id),
        runtime=min(50.0, requested),
        requested_time=requested,
        size=size,
    )


queue_ops = st.lists(
    st.tuples(
        st.sampled_from(["append", "popleft", "remove", "iterate"]),
        st.integers(min_value=1, max_value=64),
        st.floats(min_value=1.0, max_value=5000.0, allow_nan=False),
    ),
    max_size=120,
)


@given(queue_ops)
@settings(max_examples=60)
def test_deque_parity(ops):
    """append/popleft/remove/len/iteration match collections.deque."""
    queue = JobQueue()
    model: deque[Job] = deque()
    next_id = 1
    for name, size, requested in ops:
        if name == "append" or not model:
            job = make_job(next_id, size=size, requested=requested)
            next_id += 1
            queue.append(job)
            model.append(job)
        elif name == "popleft":
            assert queue.popleft() is model.popleft()
        elif name == "remove":
            victim = model[size % len(model)]
            queue.remove(victim)
            model.remove(victim)
        assert len(queue) == len(model)
        assert bool(queue) == bool(model)
        assert list(queue) == list(model)
        if model:
            assert queue[0] is model[0]


def brute_force_candidates(queue: JobQueue, free: int, extra: int, slack: float):
    """The pre-filter predicate evaluated job-by-job over the live tail."""
    jobs = list(queue)
    return [
        job.job_id
        for job in jobs[1:]
        if job.size <= free and (job.size <= extra or job.requested_time <= slack)
    ]


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=32),
            st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
        ),
        min_size=2,
        max_size=150,
    ),
    st.integers(min_value=0, max_value=32),
    st.integers(min_value=0, max_value=32),
    st.floats(min_value=-10.0, max_value=1100.0, allow_nan=False),
    st.data(),
)
@settings(max_examples=60)
def test_backfill_candidates_match_brute_force(entries, free, extra, slack, data):
    """Mask (wide) and scan (narrow) paths both equal the predicate, in order.

    Random removals leave tombstones in the middle of the window, and
    150 entries cross the wide-path threshold, so both code paths and
    the sentinel handling are exercised.
    """
    queue = JobQueue()
    for index, (size, requested) in enumerate(entries, start=1):
        queue.append(make_job(index, size=size, requested=requested))
    removals = data.draw(
        st.lists(st.integers(min_value=1, max_value=len(entries)), max_size=10)
    )
    for job_id in removals:
        try:
            queue.remove(make_job(job_id))
        except ValueError:
            pass  # already removed
    if not queue:
        return
    got = [queue.job_at(p).job_id for p in queue.backfill_candidates(free, extra, slack)]
    expected = brute_force_candidates(queue, free, extra, slack)
    if free <= 0:
        assert got == []
    else:
        assert got == expected


def test_candidates_after_offset_and_narrowing():
    queue = JobQueue()
    for index in range(1, 101):
        queue.append(make_job(index, size=index % 10 + 1, requested=50.0 * index))
    positions = queue.backfill_candidates(8, 0, 2000.0)
    assert positions is not None and len(positions) > 0
    first = positions[0]
    tail = queue.backfill_candidates(8, 0, 2000.0, after=int(first))
    assert [queue.job_at(p).job_id for p in tail] == [
        queue.job_at(p).job_id for p in positions[1:]
    ]
    narrowed = queue.narrow_positions(positions, 3)
    survivors = {queue.job_at(p).job_id for p in positions if queue.job_at(p).size <= 3}
    narrowed_ids = {queue.job_at(p).job_id for p in narrowed}
    # Never drops an eligible candidate; with numpy it prunes exactly
    # (without, it may return the tail unchanged — callers re-verify).
    assert narrowed_ids >= survivors
    try:
        import numpy  # noqa: F401
    except ImportError:
        pass
    else:
        assert narrowed_ids == survivors


def test_compaction_preserves_order_and_membership():
    queue = JobQueue()
    jobs = [make_job(i, size=1) for i in range(1, 400)]
    for job in jobs:
        queue.append(job)
    # Remove every other job, then keep appending to force compaction.
    for job in jobs[::2]:
        queue.remove(job)
    before = list(queue)
    generation = queue.generation
    extra = [make_job(1000 + i) for i in range(600)]
    for job in extra:
        queue.append(job)
    assert queue.generation >= generation  # compaction may have re-homed slots
    assert list(queue) == before + extra
    assert queue[0] is before[0]


def test_extend_positions_appends_new_tail():
    queue = JobQueue()
    for index in range(1, 80):
        queue.append(make_job(index, size=2))
    positions = queue.backfill_candidates(4, 4, 100.0)
    seen = queue.slots_used
    queue.append(make_job(500, size=1))
    queue.append(make_job(501, size=9))
    combined = queue.extend_positions(positions, seen, queue.slots_used)
    ids = [queue.job_at(int(p)).job_id for p in combined]
    assert ids[-2:] == [500, 501]  # unfiltered tail; caller re-verifies
    assert ids[: len(positions)] == [queue.job_at(int(p)).job_id for p in positions]
