"""Conservative backfilling scenarios and properties."""

import pytest

from repro.cluster.machine import Machine
from repro.core.frequency_policy import BsldThresholdPolicy, FixedGearPolicy
from repro.scheduling.base import SchedulerConfig
from repro.scheduling.conservative import ConservativeBackfilling
from repro.scheduling.easy import EasyBackfilling
from tests.conftest import make_job, random_workload


def run_conservative(jobs, cpus=4, policy=None):
    machine = Machine("m", cpus)
    scheduler = ConservativeBackfilling(
        machine, policy or FixedGearPolicy(), config=SchedulerConfig(validate=True)
    )
    return scheduler.run(jobs)


def starts(result):
    return {o.job.job_id: o.start_time for o in result.outcomes}


class TestConservativeScenarios:
    def test_backfills_into_safe_hole(self):
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, size=3),
            make_job(2, submit=1.0, runtime=50.0, size=4),
            make_job(3, submit=2.0, runtime=50.0, requested=50.0, size=1),
        ]
        assert starts(run_conservative(jobs)) == {1: 0.0, 2: 100.0, 3: 2.0}

    def test_later_job_cannot_delay_any_reservation(self):
        # Job 4 (1 CPU, 200s requested) may not push job 2's (t=100) or
        # job 3's (t=150) reservations; it fits concurrently with job 2
        # only if a CPU is spare -- job 2 takes all 4, so it waits for
        # the first hole that hurts nobody.
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, size=3),
            make_job(2, submit=1.0, runtime=50.0, size=4),
            make_job(3, submit=2.0, runtime=60.0, requested=60.0, size=4),
            make_job(4, submit=3.0, runtime=200.0, requested=200.0, size=1),
        ]
        result = starts(run_conservative(jobs))
        assert result[2] == 100.0
        assert result[3] == 150.0
        assert result[4] == 210.0

    def test_early_finish_compresses_schedule(self):
        jobs = [
            make_job(1, submit=0.0, runtime=50.0, requested=500.0, size=4),
            make_job(2, submit=1.0, runtime=10.0, size=4),
        ]
        assert starts(run_conservative(jobs))[2] == 50.0

    def test_gear_dependent_wait_probe(self):
        """Under conservative BF the policy sees gear-dependent waits: a
        slow gear pushes the job past an existing reservation, so its
        predicted wait is larger."""
        policy = BsldThresholdPolicy(bsld_threshold=1.4, wq_threshold=None)
        # Empty machine -> zero wait at any gear, so the prediction is
        # max(Coef(f) * RQ / max(600, RQ), 1) = Coef(f) for RQ=1000:
        #   0.8 GHz -> 1.9375 (> 1.4), 1.1 GHz -> 1.545 (> 1.4),
        #   1.4 GHz -> 1.321 (< 1.4)  => first passing gear is 1.4 GHz.
        jobs = [make_job(1, submit=0.0, runtime=1000.0, requested=1000.0, size=3)]
        result = run_conservative(jobs, policy=policy)
        assert result.outcomes[0].gear.frequency == pytest.approx(1.4)


class TestConservativeVsEasy:
    def test_conservative_no_worse_for_head_blocking(self):
        """Conservative guarantees every reservation; on these traces the
        two agree for the unreduced case."""
        jobs = random_workload(seed=8, n_jobs=40, max_cpus=8)
        machine = Machine("m", 8)
        conservative = ConservativeBackfilling(machine, FixedGearPolicy()).run(jobs)
        easy = EasyBackfilling(machine, FixedGearPolicy()).run(jobs)
        assert conservative.job_count == easy.job_count
        # EASY backfills more aggressively; conservative average wait is
        # typically >= EASY's, never catastrophically worse.
        assert conservative.average_wait() <= easy.average_wait() * 3 + 600.0

    @pytest.mark.parametrize("seed", [12, 13, 14])
    def test_arrivals_never_delay_existing_reservations(self, seed):
        """The defining conservative guarantee: an arrival-triggered
        replan leaves every previously queued job's reservation exactly
        where it was (the newcomer plans around them, never through
        them).  Finish-triggered replans may compress the schedule."""
        jobs = random_workload(seed=seed, n_jobs=40, max_cpus=8)
        machine = Machine("m", 8)
        scheduler = ConservativeBackfilling(
            machine, FixedGearPolicy(), config=SchedulerConfig(validate=True)
        )
        scheduler.run(jobs)
        log = scheduler.plan_log
        assert log, "validate mode must record plans"
        arrival_passes = 0
        for (_, _, before), (trigger, _, after) in zip(log, log[1:], strict=False):
            if trigger != "arrival":
                continue
            arrival_passes += 1
            for job_id, promised in before.items():
                if job_id in after:
                    assert after[job_id] <= promised + 1e-6, (
                        f"arrival delayed job {job_id}: {promised} -> {after[job_id]}"
                    )
        assert arrival_passes > 0
