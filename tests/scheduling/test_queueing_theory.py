"""Validate the simulator against closed-form queueing theory.

A scheduler simulator should reduce to textbook queues in degenerate
configurations.  These tests drive the *full* stack (engine, scheduler,
pool, accounting) and compare measured waits against M/M/1 and M/M/c
formulas — an end-to-end correctness check no unit test can give.
"""

import math
import random

import pytest

from repro.cluster.machine import Machine
from repro.core.frequency_policy import FixedGearPolicy
from repro.scheduling.easy import EasyBackfilling
from repro.scheduling.fcfs import FcfsScheduler
from repro.scheduling.job import Job


def poisson_serial_jobs(n, arrival_rate, service_rate, seed, *, exact_estimates=True):
    """Serial jobs, Poisson arrivals, exponential service times."""
    rng = random.Random(seed)
    clock = 0.0
    jobs = []
    for index in range(n):
        clock += rng.expovariate(arrival_rate)
        runtime = rng.expovariate(service_rate)
        runtime = max(runtime, 1e-6)
        jobs.append(
            Job(
                job_id=index + 1,
                submit_time=clock,
                runtime=runtime,
                requested_time=runtime if exact_estimates else runtime * 3.0,
                size=1,
            )
        )
    return jobs


def mm1_expected_wait(arrival_rate, service_rate):
    """M/M/1 mean waiting time (time in queue): rho / (mu - lambda)."""
    rho = arrival_rate / service_rate
    assert rho < 1.0
    return rho / (service_rate - arrival_rate)


def erlang_c(c, offered):
    """Erlang-C probability of waiting for an M/M/c queue."""
    summation = sum(offered**k / math.factorial(k) for k in range(c))
    top = offered**c / (math.factorial(c) * (1.0 - offered / c))
    return top / (summation + top)


def mmc_expected_wait(arrival_rate, service_rate, c):
    offered = arrival_rate / service_rate
    probability_wait = erlang_c(c, offered)
    return probability_wait / (c * service_rate - arrival_rate)


N_JOBS = 12_000  # long runs so sample means settle


class TestMM1:
    @pytest.mark.parametrize("scheduler_cls", [FcfsScheduler, EasyBackfilling])
    def test_mm1_wait(self, scheduler_cls):
        """Serial jobs on one CPU: any non-preemptive order-preserving
        scheduler is an M/M/1 queue."""
        arrival_rate, service_rate = 0.7, 1.0
        jobs = poisson_serial_jobs(N_JOBS, arrival_rate, service_rate, seed=42)
        machine = Machine("mm1", 1)
        result = scheduler_cls(machine, FixedGearPolicy()).run(jobs)
        expected = mm1_expected_wait(arrival_rate, service_rate)
        measured = result.average_wait()
        # ~15% tolerance: finite sample of a heavy-tailed statistic
        assert measured == pytest.approx(expected, rel=0.15)

    def test_mm1_low_load_near_zero_wait(self):
        jobs = poisson_serial_jobs(3000, 0.05, 1.0, seed=7)
        result = FcfsScheduler(Machine("mm1", 1), FixedGearPolicy()).run(jobs)
        assert result.average_wait() < mm1_expected_wait(0.05, 1.0) * 2.0

    def test_utilization_matches_rho(self):
        arrival_rate, service_rate = 0.6, 1.0
        jobs = poisson_serial_jobs(N_JOBS, arrival_rate, service_rate, seed=3)
        result = FcfsScheduler(Machine("mm1", 1), FixedGearPolicy()).run(jobs)
        # busy fraction over the span approximates rho
        assert result.utilization == pytest.approx(0.6, abs=0.05)


class TestMMC:
    def test_mmc_wait(self):
        """Serial jobs on c CPUs = M/M/c (backfilling changes nothing:
        single-CPU jobs are served in order whenever a server frees)."""
        c, arrival_rate, service_rate = 4, 3.2, 1.0  # rho = 0.8
        jobs = poisson_serial_jobs(N_JOBS, arrival_rate, service_rate, seed=11)
        machine = Machine("mmc", c)
        result = EasyBackfilling(machine, FixedGearPolicy()).run(jobs)
        expected = mmc_expected_wait(arrival_rate, service_rate, c)
        assert result.average_wait() == pytest.approx(expected, rel=0.2)

    def test_easy_equals_fcfs_for_serial_jobs(self):
        """With only serial jobs there is nothing to backfill around:
        EASY and FCFS must produce identical schedules."""
        jobs = poisson_serial_jobs(2000, 2.5, 1.0, seed=13)
        machine = Machine("m", 4)
        easy = EasyBackfilling(machine, FixedGearPolicy()).run(jobs)
        fcfs = FcfsScheduler(machine, FixedGearPolicy()).run(jobs)
        assert [o.start_time for o in easy.outcomes] == [
            o.start_time for o in fcfs.outcomes
        ]


class TestLittlesLaw:
    def test_littles_law_on_queue_length(self):
        """L = lambda * W on the measured timeline (Little's law)."""
        from repro.scheduling.base import SchedulerConfig

        arrival_rate, service_rate = 0.75, 1.0
        jobs = poisson_serial_jobs(8000, arrival_rate, service_rate, seed=29)
        machine = Machine("mm1", 1)
        result = FcfsScheduler(
            machine, FixedGearPolicy(), config=SchedulerConfig(record_timeline=True)
        ).run(jobs)
        # time-average queue length from the recorded timeline
        points = result.timeline
        area = 0.0
        for a, b in zip(points, points[1:], strict=False):
            area += a.queued_jobs * (b.time - a.time)
        span = points[-1].time - points[0].time
        mean_queue = area / span
        effective_lambda = result.job_count / span
        expected_queue = effective_lambda * result.average_wait()
        assert mean_queue == pytest.approx(expected_queue, rel=0.1)
