"""Unit tests for the job model and outcome records."""

import pytest

from repro.core.gears import PAPER_GEAR_SET
from repro.scheduling.job import Job, JobOutcome, validate_jobs
from tests.conftest import make_job


class TestJob:
    def test_basic_fields(self):
        job = Job(job_id=1, submit_time=10.0, runtime=100.0, requested_time=200.0, size=4)
        assert job.area == 400.0
        assert job.beta is None

    def test_validation(self):
        with pytest.raises(ValueError, match="submit"):
            Job(1, -1.0, 10.0, 10.0, 1)
        with pytest.raises(ValueError, match="runtime"):
            Job(1, 0.0, -10.0, 10.0, 1)
        with pytest.raises(ValueError, match="requested_time"):
            Job(1, 0.0, 10.0, 0.0, 1)
        with pytest.raises(ValueError, match="size"):
            Job(1, 0.0, 10.0, 10.0, 0)
        with pytest.raises(ValueError, match="beta"):
            Job(1, 0.0, 10.0, 10.0, 1, beta=1.5)

    def test_zero_runtime_allowed(self):
        assert Job(1, 0.0, 0.0, 10.0, 1).runtime == 0.0

    def test_clamped(self):
        over = Job(1, 0.0, 300.0, 200.0, 1)
        clamped = over.clamped()
        assert clamped.runtime == 200.0
        assert clamped.requested_time == 200.0

    def test_clamped_noop_returns_self(self):
        job = make_job(runtime=100.0, requested=200.0)
        assert job.clamped() is job

    def test_with_beta(self):
        job = make_job().with_beta(0.25)
        assert job.beta == 0.25

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_job().runtime = 5.0  # type: ignore[misc]


class TestJobOutcome:
    def outcome(self, wait=100.0, runtime=1000.0, stretch=1.0):
        job = make_job(runtime=runtime, requested=runtime * 2)
        return JobOutcome(
            job=job,
            start_time=job.submit_time + wait,
            finish_time=job.submit_time + wait + runtime * stretch,
            gear=PAPER_GEAR_SET.top,
            penalized_runtime=runtime * stretch,
            energy=1.0,
            was_reduced=stretch > 1.0,
        )

    def test_wait_time(self):
        assert self.outcome(wait=123.0).wait_time == 123.0

    def test_bsld_unreduced(self):
        outcome = self.outcome(wait=1000.0, runtime=1000.0)
        assert outcome.bsld() == pytest.approx(2.0)

    def test_bsld_reduced_uses_penalized_numerator(self):
        outcome = self.outcome(wait=0.0, runtime=1000.0, stretch=1.9375)
        assert outcome.bsld() == pytest.approx(1.9375)

    def test_slowdown_factor(self):
        assert self.outcome(stretch=1.5).slowdown_factor == pytest.approx(1.5)
        zero = JobOutcome(
            job=make_job(runtime=0.0),
            start_time=0.0,
            finish_time=0.0,
            gear=PAPER_GEAR_SET.top,
            penalized_runtime=0.0,
            energy=0.0,
            was_reduced=False,
        )
        assert zero.slowdown_factor == 1.0

    def test_start_before_submit_rejected(self):
        job = make_job(submit=100.0)
        with pytest.raises(ValueError, match="before submission"):
            JobOutcome(job, 50.0, 200.0, PAPER_GEAR_SET.top, 100.0, 0.0, False)

    def test_finish_before_start_rejected(self):
        job = make_job()
        with pytest.raises(ValueError, match="before starting"):
            JobOutcome(job, 100.0, 50.0, PAPER_GEAR_SET.top, 100.0, 0.0, False)


class TestValidateJobs:
    def test_accepts_good_trace(self):
        jobs = [make_job(job_id=1, submit=0.0), make_job(job_id=2, submit=10.0)]
        validate_jobs(jobs, total_cpus=4)

    def test_rejects_oversized_job(self):
        with pytest.raises(ValueError, match="needs 8 CPUs"):
            validate_jobs([make_job(size=8)], total_cpus=4)

    def test_rejects_duplicate_ids(self):
        jobs = [make_job(job_id=1), make_job(job_id=1, submit=5.0)]
        with pytest.raises(ValueError, match="duplicate"):
            validate_jobs(jobs, total_cpus=4)

    def test_rejects_unsorted(self):
        jobs = [make_job(job_id=1, submit=10.0), make_job(job_id=2, submit=5.0)]
        with pytest.raises(ValueError, match="sorted"):
            validate_jobs(jobs, total_cpus=4)

    def test_rejects_empty_machine(self):
        with pytest.raises(ValueError, match="CPU"):
            validate_jobs([], total_cpus=0)
