"""Unit tests for SimulationResult aggregation."""

import pytest

from repro.cluster.machine import Machine
from repro.core.frequency_policy import BsldThresholdPolicy, FixedGearPolicy
from repro.core.gears import PAPER_GEAR_SET
from repro.power.energy import EnergyReport
from repro.scheduling.easy import EasyBackfilling
from repro.scheduling.job import JobOutcome
from repro.scheduling.result import SimulationResult, TimelinePoint
from tests.conftest import make_job, random_workload


def small_result():
    jobs = [
        make_job(1, submit=0.0, runtime=1000.0, size=2),
        make_job(2, submit=0.0, runtime=1000.0, size=2),
        make_job(3, submit=10.0, runtime=1000.0, size=4),
    ]
    return EasyBackfilling(Machine("m", 4), FixedGearPolicy()).run(jobs)


class TestAggregates:
    def test_job_count(self):
        assert small_result().job_count == 3

    def test_outcomes_sorted_by_job_id(self):
        result = small_result()
        ids = [o.job.job_id for o in result.outcomes]
        assert ids == sorted(ids)

    def test_average_wait_exact(self):
        # jobs 1,2 start at 0; job 3 waits until 1000.
        assert small_result().average_wait() == pytest.approx(990.0 / 3.0)

    def test_average_bsld_exact(self):
        # BSLDs: 1, 1, (990 + 1000)/1000 = 1.99
        assert small_result().average_bsld() == pytest.approx((1.0 + 1.0 + 1.99) / 3.0)

    def test_makespan(self):
        assert small_result().makespan == pytest.approx(2000.0)

    def test_utilization(self):
        # busy = 2*1000 + 2*1000 + 4*1000 = 8000 cpu-s over 4 * 2000
        assert small_result().utilization == pytest.approx(1.0)

    def test_gear_histogram(self):
        histogram = small_result().gear_histogram()
        assert histogram == {PAPER_GEAR_SET.top: 3}

    def test_wait_times_series(self):
        assert small_result().wait_times() == [0.0, 0.0, 990.0]

    def test_bslds_series(self):
        assert len(small_result().bslds()) == 3

    def test_describe_mentions_policy(self):
        assert "FixedGear(top)" in small_result().describe()


class TestReducedJobs:
    def test_reduced_job_counting(self):
        jobs = [make_job(1, submit=0.0, runtime=1000.0, requested=1000.0, size=1)]
        result = EasyBackfilling(Machine("m", 4), BsldThresholdPolicy(2.0, None)).run(jobs)
        assert result.reduced_jobs == 1
        histogram = result.gear_histogram()
        assert PAPER_GEAR_SET.lowest in histogram


class TestValidation:
    def test_unsorted_outcomes_rejected(self):
        outcome = JobOutcome(
            job=make_job(2),
            start_time=0.0,
            finish_time=1000.0,
            gear=PAPER_GEAR_SET.top,
            penalized_runtime=1000.0,
            energy=1.0,
            was_reduced=False,
        )
        other = JobOutcome(
            job=make_job(1),
            start_time=0.0,
            finish_time=1000.0,
            gear=PAPER_GEAR_SET.top,
            penalized_runtime=1000.0,
            energy=1.0,
            was_reduced=False,
        )
        report = EnergyReport(
            computational=2.0, idle=0.0, busy_cpu_seconds=2000.0,
            idle_cpu_seconds=0.0, span=1000.0,
        )
        with pytest.raises(ValueError, match="ordered"):
            SimulationResult(
                machine=Machine("m", 4),
                policy="x",
                outcomes=(outcome, other),
                energy=report,
                events_processed=4,
            )

    def test_timeline_points(self):
        point = TimelinePoint(time=1.0, queued_jobs=2, busy_cpus=3)
        assert point.time == 1.0

    def test_empty_result_properties(self):
        report = EnergyReport(
            computational=0.0, idle=0.0, busy_cpu_seconds=0.0, idle_cpu_seconds=0.0, span=0.0
        )
        result = SimulationResult(
            machine=Machine("m", 4), policy="x", outcomes=(), energy=report, events_processed=0
        )
        assert result.makespan == 0.0
        assert result.utilization == 0.0
        assert result.reduced_jobs == 0


class TestPairedComparisons:
    def test_wait_series_align_by_job_id(self):
        """Figure 6 relies on job-aligned wait series across policies."""
        jobs = random_workload(seed=41, n_jobs=50, max_cpus=8)
        machine = Machine("m", 8)
        base = EasyBackfilling(machine, FixedGearPolicy()).run(jobs)
        powered = EasyBackfilling(machine, BsldThresholdPolicy(2.0, 16)).run(jobs)
        assert [o.job.job_id for o in base.outcomes] == [
            o.job.job_id for o in powered.outcomes
        ]
