"""Unit tests for SimulationResult aggregation."""

import pytest

from repro.cluster.machine import Machine
from repro.core.frequency_policy import BsldThresholdPolicy, FixedGearPolicy
from repro.core.gears import PAPER_GEAR_SET
from repro.metrics.aggregates import nearest_rank
from repro.power.energy import EnergyReport
from repro.scheduling.easy import EasyBackfilling
from repro.scheduling.job import JobOutcome
from repro.scheduling.result import ResultAggregates, SimulationResult, TimelinePoint
from tests.conftest import make_job, random_workload


def small_result():
    jobs = [
        make_job(1, submit=0.0, runtime=1000.0, size=2),
        make_job(2, submit=0.0, runtime=1000.0, size=2),
        make_job(3, submit=10.0, runtime=1000.0, size=4),
    ]
    return EasyBackfilling(Machine("m", 4), FixedGearPolicy()).run(jobs)


class TestAggregates:
    def test_job_count(self):
        assert small_result().job_count == 3

    def test_outcomes_sorted_by_job_id(self):
        result = small_result()
        ids = [o.job.job_id for o in result.outcomes]
        assert ids == sorted(ids)

    def test_average_wait_exact(self):
        # jobs 1,2 start at 0; job 3 waits until 1000.
        assert small_result().average_wait() == pytest.approx(990.0 / 3.0)

    def test_average_bsld_exact(self):
        # BSLDs: 1, 1, (990 + 1000)/1000 = 1.99
        assert small_result().average_bsld() == pytest.approx((1.0 + 1.0 + 1.99) / 3.0)

    def test_makespan(self):
        assert small_result().makespan == pytest.approx(2000.0)

    def test_utilization(self):
        # busy = 2*1000 + 2*1000 + 4*1000 = 8000 cpu-s over 4 * 2000
        assert small_result().utilization == pytest.approx(1.0)

    def test_gear_histogram(self):
        histogram = small_result().gear_histogram()
        assert histogram == {PAPER_GEAR_SET.top: 3}

    def test_wait_times_series(self):
        assert small_result().wait_times() == [0.0, 0.0, 990.0]

    def test_bslds_series(self):
        assert len(small_result().bslds()) == 3

    def test_describe_mentions_policy(self):
        assert "FixedGear(top)" in small_result().describe()


class TestReducedJobs:
    def test_reduced_job_counting(self):
        jobs = [make_job(1, submit=0.0, runtime=1000.0, requested=1000.0, size=1)]
        result = EasyBackfilling(Machine("m", 4), BsldThresholdPolicy(2.0, None)).run(jobs)
        assert result.reduced_jobs == 1
        histogram = result.gear_histogram()
        assert PAPER_GEAR_SET.lowest in histogram


class TestValidation:
    def test_unsorted_outcomes_rejected(self):
        outcome = JobOutcome(
            job=make_job(2),
            start_time=0.0,
            finish_time=1000.0,
            gear=PAPER_GEAR_SET.top,
            penalized_runtime=1000.0,
            energy=1.0,
            was_reduced=False,
        )
        other = JobOutcome(
            job=make_job(1),
            start_time=0.0,
            finish_time=1000.0,
            gear=PAPER_GEAR_SET.top,
            penalized_runtime=1000.0,
            energy=1.0,
            was_reduced=False,
        )
        report = EnergyReport(
            computational=2.0, idle=0.0, busy_cpu_seconds=2000.0,
            idle_cpu_seconds=0.0, span=1000.0,
        )
        with pytest.raises(ValueError, match="ordered"):
            SimulationResult(
                machine=Machine("m", 4),
                policy="x",
                outcomes=(outcome, other),
                energy=report,
                events_processed=4,
            )

    def test_timeline_points(self):
        point = TimelinePoint(time=1.0, queued_jobs=2, busy_cpus=3)
        assert point.time == 1.0

    def test_empty_result_properties(self):
        report = EnergyReport(
            computational=0.0, idle=0.0, busy_cpu_seconds=0.0, idle_cpu_seconds=0.0, span=0.0
        )
        result = SimulationResult(
            machine=Machine("m", 4), policy="x", outcomes=(), energy=report, events_processed=0
        )
        assert result.makespan == 0.0
        assert result.utilization == 0.0
        assert result.reduced_jobs == 0


class TestAggregatesOnlyMode:
    def test_reduction_preserves_headline_metrics(self):
        full = small_result()
        agg = full.to_aggregates()
        assert agg.is_aggregated and not full.is_aggregated
        assert agg.outcomes == () and agg.timeline == ()
        assert agg.job_count == full.job_count
        assert agg.average_bsld() == full.average_bsld()
        assert agg.average_wait() == full.average_wait()
        assert agg.reduced_jobs == full.reduced_jobs
        assert agg.makespan == full.makespan
        assert agg.gear_histogram() == full.gear_histogram()
        assert agg.utilization == full.utilization
        assert agg.energy == full.energy

    def test_percentiles_are_nearest_rank_of_bslds(self):
        full = EasyBackfilling(
            Machine("m", 8), BsldThresholdPolicy(2.0, 16)
        ).run(random_workload(seed=41, n_jobs=50, max_cpus=8))
        agg = full.to_aggregates().aggregates
        bslds = sorted(full.bslds())
        assert agg.bsld_p50 == nearest_rank(bslds, 50.0)
        assert agg.bsld_p90 == nearest_rank(bslds, 90.0)
        assert agg.bsld_p99 == nearest_rank(bslds, 99.0)
        assert agg.bsld_max == bslds[-1]

    def test_reduction_is_idempotent(self):
        agg = small_result().to_aggregates()
        assert agg.to_aggregates() is agg

    def test_per_job_accessors_rejected(self):
        agg = small_result().to_aggregates()
        with pytest.raises(ValueError, match="aggregates-only"):
            agg.wait_times()
        with pytest.raises(ValueError, match="aggregates-only"):
            agg.bslds()

    def test_threshold_mismatch_rejected(self):
        agg = small_result().to_aggregates(threshold=10.0)
        assert agg.average_bsld(10.0) == small_result().average_bsld(10.0)
        with pytest.raises(ValueError, match="threshold"):
            agg.average_bsld(60.0)

    def test_outcomes_and_aggregates_mutually_exclusive(self):
        full = small_result()
        agg = full.to_aggregates()
        with pytest.raises(ValueError, match="not both"):
            SimulationResult(
                machine=full.machine,
                policy=full.policy,
                outcomes=full.outcomes,
                energy=full.energy,
                events_processed=full.events_processed,
                aggregates=agg.aggregates,
            )

    def test_negative_job_count_rejected(self):
        with pytest.raises(ValueError, match="job_count"):
            ResultAggregates(
                job_count=-1, bsld_threshold=1.0, average_bsld=0.0, bsld_p50=0.0,
                bsld_p90=0.0, bsld_p99=0.0, bsld_max=0.0, average_wait=0.0,
                reduced_jobs=0, makespan=0.0, gear_histogram=(),
            )

    def test_empty_result_reduces_to_zeros(self):
        report = EnergyReport(
            computational=0.0, idle=0.0, busy_cpu_seconds=0.0, idle_cpu_seconds=0.0, span=0.0
        )
        empty = SimulationResult(
            machine=Machine("m", 4), policy="x", outcomes=(), energy=report, events_processed=0
        )
        agg = empty.to_aggregates()
        assert agg.job_count == 0 and agg.makespan == 0.0
        with pytest.raises(ValueError, match="empty"):
            agg.average_bsld()
        with pytest.raises(ValueError, match="empty"):
            agg.average_wait()

    def test_serialize_round_trip_exact(self):
        from repro.serialize import result_from_dict, result_to_dict

        agg = small_result().to_aggregates()
        assert result_from_dict(result_to_dict(agg)) == agg

    def test_describe_marks_aggregated_results(self):
        description = small_result().to_aggregates().describe()
        assert "[aggregates]" in description
        assert "[aggregates]" not in small_result().describe()


class TestNumpylessFallback:
    """Regression: _job_arrays called np.empty with no `_np is None` guard."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        import repro.scheduling.result as result_module

        monkeypatch.setattr(result_module, "_np", None)

    def test_job_arrays_fall_back_to_lists(self, no_numpy):
        wait, runtime, penalized = small_result()._job_arrays()
        assert isinstance(wait, list)
        assert wait == [0.0, 0.0, 990.0]
        assert runtime == [1000.0, 1000.0, 1000.0]
        assert penalized == [1000.0, 1000.0, 1000.0]

    def test_metrics_match_numpy_path(self, no_numpy):
        result = small_result()
        assert result.average_wait() == pytest.approx(990.0 / 3.0)
        assert result.average_bsld() == pytest.approx((1.0 + 1.0 + 1.99) / 3.0)
        assert result.wait_times() == [0.0, 0.0, 990.0]
        assert len(result.bslds()) == 3

    def test_aggregation_works_without_numpy(self, no_numpy):
        agg = small_result().to_aggregates()
        assert agg.is_aggregated
        assert agg.average_bsld() == pytest.approx((1.0 + 1.0 + 1.99) / 3.0)


class TestPairedComparisons:
    def test_wait_series_align_by_job_id(self):
        """Figure 6 relies on job-aligned wait series across policies."""
        jobs = random_workload(seed=41, n_jobs=50, max_cpus=8)
        machine = Machine("m", 8)
        base = EasyBackfilling(machine, FixedGearPolicy()).run(jobs)
        powered = EasyBackfilling(machine, BsldThresholdPolicy(2.0, 16)).run(jobs)
        assert [o.job.job_id for o in base.outcomes] == [
            o.job.job_id for o in powered.outcomes
        ]
