"""Hand-built FCFS scenarios with exact expected schedules."""

import pytest

from repro.cluster.machine import Machine
from repro.core.frequency_policy import FixedGearPolicy
from repro.scheduling.base import SchedulerConfig
from repro.scheduling.fcfs import FcfsScheduler
from tests.conftest import make_job


def run_fcfs(jobs, cpus=4):
    machine = Machine("m", cpus)
    scheduler = FcfsScheduler(machine, FixedGearPolicy(), config=SchedulerConfig(validate=True))
    return scheduler.run(jobs)


def starts(result):
    return {o.job.job_id: o.start_time for o in result.outcomes}


class TestFcfsOrdering:
    def test_sequential_when_machine_full(self):
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, size=4),
            make_job(2, submit=0.0, runtime=100.0, size=4),
        ]
        assert starts(run_fcfs(jobs)) == {1: 0.0, 2: 100.0}

    def test_parallel_when_it_fits(self):
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, size=2),
            make_job(2, submit=0.0, runtime=100.0, size=2),
        ]
        assert starts(run_fcfs(jobs)) == {1: 0.0, 2: 0.0}

    def test_never_overtakes_head(self):
        # Job 2 (size 4) cannot start; job 3 (size 1) would fit right now
        # but FCFS forbids overtaking.
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, size=3),
            make_job(2, submit=1.0, runtime=50.0, size=4),
            make_job(3, submit=2.0, runtime=10.0, size=1),
        ]
        result = starts(run_fcfs(jobs))
        assert result == {1: 0.0, 2: 100.0, 3: 150.0}

    def test_uses_runtime_not_request_for_progress(self):
        # Head finishes at its *actual* runtime (50), not the estimate (500).
        jobs = [
            make_job(1, submit=0.0, runtime=50.0, requested=500.0, size=4),
            make_job(2, submit=0.0, runtime=10.0, size=4),
        ]
        assert starts(run_fcfs(jobs)) == {1: 0.0, 2: 50.0}

    def test_idle_gap_when_nothing_queued(self):
        jobs = [
            make_job(1, submit=0.0, runtime=10.0, size=1),
            make_job(2, submit=1000.0, runtime=10.0, size=1),
        ]
        assert starts(run_fcfs(jobs)) == {1: 0.0, 2: 1000.0}


class TestFcfsAccounting:
    def test_all_jobs_complete(self):
        jobs = [make_job(i, submit=float(i), runtime=30.0, size=2) for i in range(1, 9)]
        result = run_fcfs(jobs)
        assert result.job_count == 8

    def test_average_wait_exact(self):
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, size=4),
            make_job(2, submit=0.0, runtime=100.0, size=4),
        ]
        assert run_fcfs(jobs).average_wait() == pytest.approx(50.0)

    def test_energy_matches_hand_computation(self):
        from repro.power.model import PowerModel

        jobs = [make_job(1, submit=0.0, runtime=100.0, size=3)]
        result = run_fcfs(jobs)
        model = PowerModel()
        expected = model.active_power(model.gears.top) * 3 * 100.0
        assert result.energy.computational == pytest.approx(expected)
        # idle: 1 CPU for the whole 100s span
        assert result.energy.idle == pytest.approx(model.idle_energy(100.0))

    def test_fcfs_never_better_than_easy(self):
        from repro.scheduling.easy import EasyBackfilling

        jobs = [
            make_job(1, submit=0.0, runtime=100.0, size=3),
            make_job(2, submit=1.0, runtime=100.0, size=4),
            make_job(3, submit=2.0, runtime=10.0, size=1),
            make_job(4, submit=3.0, runtime=10.0, size=1),
        ]
        machine = Machine("m", 4)
        fcfs = FcfsScheduler(machine, FixedGearPolicy()).run(jobs)
        easy = EasyBackfilling(machine, FixedGearPolicy()).run(jobs)
        assert easy.average_wait() <= fcfs.average_wait()
