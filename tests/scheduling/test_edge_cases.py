"""Edge cases and failure injection across the scheduling stack."""

import pytest

from repro.cluster.machine import Machine
from repro.core.frequency_policy import BsldThresholdPolicy, FixedGearPolicy
from repro.scheduling.base import SchedulerConfig
from repro.scheduling.conservative import ConservativeBackfilling
from repro.scheduling.easy import EasyBackfilling
from repro.scheduling.fcfs import FcfsScheduler
from repro.scheduling.job import Job
from repro.scheduling.reference import ReferenceEasyBackfilling
from tests.conftest import make_job

ALL_SCHEDULERS = [EasyBackfilling, FcfsScheduler, ConservativeBackfilling, ReferenceEasyBackfilling]


def run(scheduler_cls, jobs, cpus=4, policy=None):
    return scheduler_cls(
        Machine("m", cpus), policy or FixedGearPolicy(), config=SchedulerConfig(validate=True)
    ).run(jobs)


@pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
class TestDegenerateTraces:
    def test_empty_trace(self, scheduler_cls):
        result = run(scheduler_cls, [])
        assert result.job_count == 0
        assert result.energy.computational == 0.0
        assert result.makespan == 0.0

    def test_single_job(self, scheduler_cls):
        result = run(scheduler_cls, [make_job(1, runtime=100.0, size=4)])
        assert result.outcomes[0].start_time == 0.0
        assert result.outcomes[0].finish_time == pytest.approx(100.0)

    def test_zero_runtime_job(self, scheduler_cls):
        jobs = [
            make_job(1, submit=0.0, runtime=0.0, requested=900.0, size=2),
            make_job(2, submit=0.0, runtime=50.0, size=2),
        ]
        result = run(scheduler_cls, jobs)
        by_id = {o.job.job_id: o for o in result.outcomes}
        assert by_id[1].finish_time == by_id[1].start_time
        assert by_id[1].energy == 0.0

    def test_machine_filling_job(self, scheduler_cls):
        jobs = [
            make_job(1, submit=0.0, runtime=10.0, size=4),
            make_job(2, submit=1.0, runtime=10.0, size=4),
        ]
        result = run(scheduler_cls, jobs)
        by_id = {o.job.job_id: o for o in result.outcomes}
        assert by_id[2].start_time == pytest.approx(10.0)

    def test_single_cpu_machine(self, scheduler_cls):
        jobs = [make_job(i, submit=float(i), runtime=5.0, size=1) for i in range(1, 6)]
        result = run(scheduler_cls, jobs, cpus=1)
        starts = [o.start_time for o in result.outcomes]
        assert starts == sorted(starts)

    def test_mass_simultaneous_arrivals(self, scheduler_cls):
        jobs = [make_job(i, submit=100.0, runtime=10.0, size=2) for i in range(1, 21)]
        result = run(scheduler_cls, jobs)
        assert result.job_count == 20
        # 2 jobs fit at a time; FCFS pairs: ids (1,2) first
        by_id = {o.job.job_id: o for o in result.outcomes}
        assert by_id[1].start_time == 100.0
        assert by_id[2].start_time == 100.0

    def test_identical_jobs_keep_id_order(self, scheduler_cls):
        jobs = [make_job(i, submit=0.0, runtime=10.0, size=4) for i in range(1, 6)]
        result = run(scheduler_cls, jobs)
        starts = {o.job.job_id: o.start_time for o in result.outcomes}
        assert starts[1] < starts[2] < starts[3] < starts[4] < starts[5]


class TestSchedulerRejections:
    def test_oversized_job_rejected(self):
        with pytest.raises(ValueError, match="needs 8 CPUs"):
            run(EasyBackfilling, [make_job(1, size=8)], cpus=4)

    def test_unsorted_trace_rejected(self):
        jobs = [make_job(1, submit=10.0), make_job(2, submit=0.0)]
        with pytest.raises(ValueError, match="sorted"):
            run(EasyBackfilling, jobs)

    def test_duplicate_ids_rejected(self):
        jobs = [make_job(1), make_job(1, submit=5.0)]
        with pytest.raises(ValueError, match="duplicate"):
            run(EasyBackfilling, jobs)


class TestRequestedTimeExtremes:
    def test_huge_overestimates_still_finish_on_actuals(self):
        # 1000x overestimates: reservations are absurdly pessimistic but
        # early-finish rescheduling keeps the machine busy.
        jobs = [
            make_job(i, submit=float(i), runtime=10.0, requested=10000.0, size=2)
            for i in range(1, 11)
        ]
        result = run(EasyBackfilling, jobs)
        assert result.makespan < 200.0  # nowhere near the estimates

    def test_exact_estimates(self):
        jobs = [
            make_job(i, submit=0.0, runtime=50.0, requested=50.0, size=2)
            for i in range(1, 5)
        ]
        result = run(EasyBackfilling, jobs)
        assert result.makespan == pytest.approx(100.0)

    def test_tiny_fractional_runtimes(self):
        jobs = [
            make_job(i, submit=i * 1e-3, runtime=1e-3, requested=1.0, size=1)
            for i in range(1, 50)
        ]
        result = run(EasyBackfilling, jobs, cpus=2)
        assert result.job_count == 49


class TestPerJobBetaEndToEnd:
    def test_beta_zero_job_runs_at_lowest_without_stretch(self):
        policy = BsldThresholdPolicy(1.2, None)  # strict threshold
        jobs = [make_job(1, runtime=1000.0, requested=1000.0, size=2, beta=0.0)]
        result = run(EasyBackfilling, jobs, policy=policy)
        outcome = result.outcomes[0]
        assert outcome.gear.frequency == 0.8  # free to reduce
        assert outcome.penalized_runtime == pytest.approx(1000.0)  # no stretch

    def test_beta_one_job_stays_at_top_under_strict_threshold(self):
        policy = BsldThresholdPolicy(1.2, None)
        jobs = [make_job(1, runtime=1000.0, requested=1000.0, size=2, beta=1.0)]
        result = run(EasyBackfilling, jobs, policy=policy)
        # Coef at beta=1: 2.3/f; even 2.0GHz gives 1.15 < 1.2! check:
        # f=2.0 -> 2.3/2.0 = 1.15 < 1.2 -> reduced to 2.0GHz.
        outcome = result.outcomes[0]
        assert outcome.gear.frequency == pytest.approx(2.0)
        assert outcome.penalized_runtime == pytest.approx(1000.0 * 1.15)

    def test_fast_reference_equivalence_with_mixed_betas(self):
        from repro.power.beta_model import BimodalBeta
        from tests.conftest import random_workload

        base_jobs = random_workload(seed=61, n_jobs=60, max_cpus=8)
        betas = BimodalBeta().assign(len(base_jobs), seed=2)
        jobs = [job.with_beta(beta) for job, beta in zip(base_jobs, betas, strict=True)]
        machine = Machine("m", 8)
        fast = EasyBackfilling(
            machine, BsldThresholdPolicy(2.0, 4), config=SchedulerConfig(validate=True)
        ).run(jobs)
        reference = ReferenceEasyBackfilling(
            machine, BsldThresholdPolicy(2.0, 4), config=SchedulerConfig(validate=True)
        ).run(jobs)
        for a, b in zip(fast.outcomes, reference.outcomes, strict=True):
            assert a.start_time == pytest.approx(b.start_time, abs=1e-6)
            assert a.gear == b.gear

    def test_boost_respects_per_job_beta(self):
        from repro.core.dynamic_boost import DynamicBoostConfig

        # A beta=0 job boosted to top gains no time (its runtime never
        # depended on frequency) but starts costing top-gear power.
        policy = BsldThresholdPolicy(3.0, None)
        config = SchedulerConfig(
            validate=True,
            boost=DynamicBoostConfig(wq_trigger=0, min_remaining_seconds=0.0),
        )
        jobs = [
            Job(1, 0.0, 1000.0, 1000.0, 4, beta=0.0),
            Job(2, 100.0, 10.0, 10.0, 4),
        ]
        result = EasyBackfilling(Machine("m", 4), policy, config=config).run(jobs)
        outcome = {o.job.job_id: o for o in result.outcomes}[1]
        assert outcome.finish_time == pytest.approx(1000.0)  # unchanged by boost
