"""Unit and property tests for the β execution-time model (Eq. 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.gears import PAPER_GEAR_SET
from repro.power.time_model import BetaTimeModel, DEFAULT_BETA, PAPER_BETA

MODEL = BetaTimeModel(fmax=2.3, beta=0.5)

frequencies = st.floats(min_value=0.1, max_value=2.3, allow_nan=False)
betas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestConstruction:
    def test_paper_beta(self):
        assert PAPER_BETA == 0.5
        assert DEFAULT_BETA == PAPER_BETA

    def test_for_gear_set(self):
        model = BetaTimeModel.for_gear_set(PAPER_GEAR_SET)
        assert model.fmax == 2.3
        assert model.beta == DEFAULT_BETA

    @pytest.mark.parametrize("fmax", [0.0, -2.0])
    def test_rejects_bad_fmax(self, fmax):
        with pytest.raises(ValueError, match="fmax"):
            BetaTimeModel(fmax=fmax)

    @pytest.mark.parametrize("beta", [-0.1, 1.1])
    def test_rejects_bad_beta(self, beta):
        with pytest.raises(ValueError, match="beta"):
            BetaTimeModel(fmax=2.3, beta=beta)


class TestCoefficient:
    def test_identity_at_fmax(self):
        assert MODEL.coefficient(2.3) == pytest.approx(1.0)

    def test_paper_value_at_lowest_gear(self):
        # beta=0.5, f=0.8: 0.5*(2.3/0.8 - 1) + 1 = 1.9375
        assert MODEL.coefficient(0.8) == pytest.approx(1.9375)

    def test_beta_one_inverse_proportionality(self):
        model = BetaTimeModel(fmax=2.0, beta=1.0)
        assert model.coefficient(1.0) == pytest.approx(2.0)  # half speed, double time

    def test_beta_zero_is_flat(self):
        model = BetaTimeModel(fmax=2.0, beta=0.0)
        assert model.coefficient(0.5) == pytest.approx(1.0)

    def test_per_call_beta_overrides_default(self):
        assert MODEL.coefficient(0.8, beta=0.0) == pytest.approx(1.0)
        assert MODEL.coefficient(0.8, beta=1.0) == pytest.approx(2.3 / 0.8)

    def test_coefficient_for_gear(self):
        gear = PAPER_GEAR_SET.lowest
        assert MODEL.coefficient_for(gear) == MODEL.coefficient(gear.frequency)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError, match="frequency"):
            MODEL.coefficient(0.0)

    def test_rejects_bad_per_call_beta(self):
        with pytest.raises(ValueError, match="beta"):
            MODEL.coefficient(1.0, beta=2.0)

    @given(frequencies, betas)
    def test_coefficient_at_least_one_below_fmax(self, frequency, beta):
        assert MODEL.coefficient(frequency, beta) >= 1.0 - 1e-12

    @given(st.floats(min_value=0.1, max_value=2.2, allow_nan=False))
    def test_monotone_decreasing_in_frequency(self, frequency):
        assert MODEL.coefficient(frequency) > MODEL.coefficient(frequency + 0.1)

    @given(frequencies)
    def test_linear_in_beta(self, frequency):
        low = MODEL.coefficient(frequency, beta=0.0)
        high = MODEL.coefficient(frequency, beta=1.0)
        mid = MODEL.coefficient(frequency, beta=0.5)
        assert mid == pytest.approx((low + high) / 2.0)


class TestScaledTime:
    def test_scaling(self):
        assert MODEL.scaled_time(1000.0, 0.8) == pytest.approx(1937.5)

    def test_zero_time(self):
        assert MODEL.scaled_time(0.0, 0.8) == 0.0

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="time"):
            MODEL.scaled_time(-1.0, 0.8)
        with pytest.raises(ValueError, match="time"):
            MODEL.unscaled_time(-1.0, 0.8)

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), frequencies, betas)
    def test_scale_unscale_roundtrip(self, time, frequency, beta):
        scaled = MODEL.scaled_time(time, frequency, beta)
        assert MODEL.unscaled_time(scaled, frequency, beta) == pytest.approx(time, abs=1e-6)

    def test_slowdown_at(self):
        assert MODEL.slowdown_at(2.3) == pytest.approx(0.0)
        assert MODEL.slowdown_at(0.8) == pytest.approx(0.9375)


class TestFrequencySwitch:
    def test_switch_to_same_frequency_is_identity(self):
        assert MODEL.remaining_time_after_switch(500.0, 1.4, 1.4) == pytest.approx(500.0)

    def test_boost_shortens(self):
        remaining = MODEL.remaining_time_after_switch(1937.5, 0.8, 2.3)
        assert remaining == pytest.approx(1000.0)

    def test_rejects_negative_remaining(self):
        with pytest.raises(ValueError, match="remaining"):
            MODEL.remaining_time_after_switch(-1.0, 0.8, 2.3)

    @given(
        st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        frequencies,
        frequencies,
        betas,
    )
    def test_work_conservation(self, remaining, f_old, f_new, beta):
        """Switching f1->f2 then f2->f1 recovers the original remaining time."""
        there = MODEL.remaining_time_after_switch(remaining, f_old, f_new, beta)
        back = MODEL.remaining_time_after_switch(there, f_new, f_old, beta)
        assert back == pytest.approx(remaining, abs=1e-6)

    @given(st.floats(min_value=1.0, max_value=1e5, allow_nan=False), betas)
    def test_boost_never_lengthens(self, remaining, beta):
        boosted = MODEL.remaining_time_after_switch(remaining, 0.8, 2.3, beta)
        assert boosted <= remaining + 1e-9
