"""Unit tests for the CPU power model (Eqs. 3-4 and the paper's anchors)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.gears import Gear, GearSet, PAPER_GEAR_SET
from repro.power.model import PAPER_ACTIVITY_RATIO, PAPER_STATIC_SHARE, PowerModel

MODEL = PowerModel()


class TestPaperAnchors:
    """Numbers stated verbatim in §4 of the paper."""

    def test_idle_is_21_percent_of_top_running(self):
        # "an idle processor consumes 21% of the power consumed by a
        # processor executing a job at the highest frequency"
        assert MODEL.idle_fraction_of_top() == pytest.approx(0.21, abs=0.005)

    def test_static_share_at_top(self):
        top = PAPER_GEAR_SET.top
        static = MODEL.static_power(top)
        total = MODEL.active_power(top)
        assert static / total == pytest.approx(PAPER_STATIC_SHARE)

    def test_activity_ratio(self):
        assert PAPER_ACTIVITY_RATIO == 2.5
        low = PAPER_GEAR_SET.lowest
        running = MODEL.dynamic_power(low, running=True)
        idle = MODEL.dynamic_power(low, running=False)
        assert running / idle == pytest.approx(2.5)


class TestConstruction:
    @pytest.mark.parametrize("activity", [0.0, -1.0])
    def test_rejects_bad_activity(self, activity):
        with pytest.raises(ValueError, match="running_activity"):
            PowerModel(running_activity=activity)

    def test_rejects_activity_ratio_below_one(self):
        with pytest.raises(ValueError, match="activity_ratio"):
            PowerModel(activity_ratio=0.5)

    @pytest.mark.parametrize("share", [-0.1, 1.0, 1.5])
    def test_rejects_bad_static_share(self, share):
        with pytest.raises(ValueError, match="static_share"):
            PowerModel(static_share=share)

    def test_zero_static_share(self):
        model = PowerModel(static_share=0.0)
        assert model.alpha == 0.0
        assert model.static_power(PAPER_GEAR_SET.top) == 0.0

    def test_alpha_scales_with_activity(self):
        double = PowerModel(running_activity=2.0)
        assert double.alpha == pytest.approx(2.0 * MODEL.alpha)


class TestPowers:
    def test_dynamic_power_formula(self):
        gear = Gear(2.0, 1.4)
        assert MODEL.dynamic_power(gear) == pytest.approx(1.0 * 2.0 * 1.4**2)

    def test_active_power_is_dynamic_plus_static(self):
        for gear in PAPER_GEAR_SET:
            assert MODEL.active_power(gear) == pytest.approx(
                MODEL.dynamic_power(gear) + MODEL.static_power(gear)
            )

    def test_active_power_monotone_in_gear(self):
        ladder = PAPER_GEAR_SET.ascending()
        powers = [MODEL.active_power(g) for g in ladder]
        assert powers == sorted(powers)
        assert powers[0] < powers[-1]

    def test_idle_power_below_any_active_power(self):
        assert MODEL.idle_power() < MODEL.active_power(PAPER_GEAR_SET.lowest)

    def test_power_table_rows(self):
        table = MODEL.power_table()
        assert len(table) == len(PAPER_GEAR_SET)
        for _gear, dynamic, static, total in table:
            assert total == pytest.approx(dynamic + static)


class TestEnergies:
    def test_active_energy(self):
        gear = PAPER_GEAR_SET.top
        assert MODEL.active_energy(gear, 4, 100.0) == pytest.approx(
            4 * 100.0 * MODEL.active_power(gear)
        )

    def test_zero_cases(self):
        assert MODEL.active_energy(PAPER_GEAR_SET.top, 0, 100.0) == 0.0
        assert MODEL.active_energy(PAPER_GEAR_SET.top, 4, 0.0) == 0.0
        assert MODEL.idle_energy(0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="cpus"):
            MODEL.active_energy(PAPER_GEAR_SET.top, -1, 1.0)
        with pytest.raises(ValueError, match="seconds"):
            MODEL.active_energy(PAPER_GEAR_SET.top, 1, -1.0)
        with pytest.raises(ValueError, match="cpu_seconds"):
            MODEL.idle_energy(-1.0)

    @given(
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    )
    def test_energy_linear_in_cpus_and_time(self, cpus, seconds):
        gear = PAPER_GEAR_SET.top
        assert MODEL.active_energy(gear, cpus, seconds) == pytest.approx(
            cpus * MODEL.active_energy(gear, 1, seconds)
        )


class TestEnergyEfficiencyShape:
    """Running slower is power-cheaper but takes longer; with beta=0.5 the
    paper's gear ladder still wins on *energy* at every reduced gear."""

    def test_energy_per_work_decreases_with_gear(self):
        from repro.power.time_model import BetaTimeModel

        time_model = BetaTimeModel.for_gear_set(PAPER_GEAR_SET)
        top = PAPER_GEAR_SET.top
        base = MODEL.active_power(top) * 1.0  # unit nominal runtime
        for gear in PAPER_GEAR_SET:
            energy = MODEL.active_power(gear) * time_model.coefficient(gear.frequency)
            assert energy <= base + 1e-9

    def test_mismatched_gear_set_rejected_by_scheduler(self):
        from repro.cluster.machine import Machine
        from repro.core.frequency_policy import FixedGearPolicy
        from repro.scheduling.easy import EasyBackfilling

        other = GearSet([Gear(1.0, 1.0)])
        model = PowerModel(gears=other)
        with pytest.raises(ValueError, match="gear sets"):
            EasyBackfilling(Machine("m", 4), FixedGearPolicy(), power_model=model)
