"""Unit tests for the idle sleep-state energy model."""

import pytest

from repro.cluster.machine import Machine
from repro.core.frequency_policy import FixedGearPolicy
from repro.power.model import PowerModel
from repro.power.sleep import SleepStateConfig, busy_series, sleep_energy
from repro.scheduling.easy import EasyBackfilling
from tests.conftest import make_job, random_workload

MODEL = PowerModel()


def simulate(jobs, cpus=4):
    return EasyBackfilling(Machine("m", cpus), FixedGearPolicy()).run(jobs)


class TestConfig:
    @pytest.mark.parametrize(
        "kw,match",
        [
            (dict(sleep_after_seconds=-1.0), "sleep_after"),
            (dict(sleep_power_fraction=1.5), "sleep_power_fraction"),
            (dict(wake_energy_idle_seconds=-1.0), "wake_energy"),
        ],
    )
    def test_validation(self, kw, match):
        with pytest.raises(ValueError, match=match):
            SleepStateConfig(**kw)


class TestBusySeries:
    def test_single_job(self):
        result = simulate([make_job(1, submit=0.0, runtime=100.0, size=3)])
        series = busy_series(result)
        assert series == [(0.0, 3), (100.0, 0)]

    def test_overlapping_jobs(self):
        result = simulate(
            [
                make_job(1, submit=0.0, runtime=100.0, size=2),
                make_job(2, submit=50.0, runtime=100.0, size=2),
            ]
        )
        assert busy_series(result) == [(0.0, 2), (50.0, 4), (100.0, 2), (150.0, 0)]

    def test_back_to_back_merges_timestamp(self):
        result = simulate(
            [
                make_job(1, submit=0.0, runtime=100.0, requested=100.0, size=4),
                make_job(2, submit=0.0, runtime=50.0, size=4),
            ]
        )
        series = busy_series(result)
        # Finish+start at the same instant nets to zero: the level is
        # unchanged, so no (redundant) step is emitted at t=100.
        assert series == [(0.0, 4), (150.0, 0)]

    def test_zero_runtime_jobs_emit_no_redundant_steps(self):
        # A zero-runtime job starts and finishes in the same instant:
        # its events net to zero and must not duplicate the level.
        result = simulate(
            [
                make_job(1, submit=0.0, runtime=100.0, requested=100.0, size=2),
                make_job(2, submit=10.0, runtime=0.0, requested=1.0, size=1),
            ]
        )
        series = busy_series(result)
        assert series == [(0.0, 2), (100.0, 0)]
        levels = [busy for _, busy in series]
        assert all(a != b for a, b in zip(levels, levels[1:], strict=False))

    def test_only_zero_runtime_jobs(self):
        result = simulate([make_job(1, submit=5.0, runtime=0.0, requested=1.0, size=3)])
        assert busy_series(result) == [(5.0, 0)]


class TestSleepEnergy:
    def test_no_sleep_matches_plain_idle_accounting(self):
        """With an infinite threshold nothing sleeps: idle energy equals
        the simulator's own EnergyReport idle component."""
        jobs = random_workload(seed=9, n_jobs=30, max_cpus=4)
        result = simulate(jobs)
        config = SleepStateConfig(sleep_after_seconds=float("1e18"))
        report = sleep_energy(result, config, MODEL)
        assert report.asleep_cpu_seconds == 0.0
        assert report.wake_count == 0
        assert report.idle_energy == pytest.approx(result.energy.idle, rel=1e-9)
        assert report.idle_awake_cpu_seconds == pytest.approx(
            result.energy.idle_cpu_seconds, rel=1e-9
        )

    def test_immediate_perfect_sleep_zeroes_idle(self):
        jobs = [make_job(1, submit=0.0, runtime=100.0, size=2)]
        result = simulate(jobs)
        config = SleepStateConfig(
            sleep_after_seconds=0.0, sleep_power_fraction=0.0, wake_energy_idle_seconds=0.0
        )
        report = sleep_energy(result, config, MODEL)
        assert report.idle_energy == pytest.approx(0.0)
        assert report.sleep_fraction == pytest.approx(1.0)

    def test_hand_computed_scenario(self):
        # 4 CPUs; one 2-CPU job [0, 100): two CPUs idle 100s, two idle 0+.
        # Threshold 40s, sleep power 0, wake cost 0:
        #   the two never-used CPUs: 40 awake + 60 asleep each
        #   the two job CPUs: idle from t=100 = span end -> nothing.
        jobs = [make_job(1, submit=0.0, runtime=100.0, size=2)]
        result = simulate(jobs)
        config = SleepStateConfig(
            sleep_after_seconds=40.0, sleep_power_fraction=0.0, wake_energy_idle_seconds=0.0
        )
        report = sleep_energy(result, config, MODEL)
        assert report.idle_awake_cpu_seconds == pytest.approx(80.0)
        assert report.asleep_cpu_seconds == pytest.approx(120.0)
        assert report.idle_energy == pytest.approx(MODEL.idle_energy(80.0))
        # Both sleepers are still asleep when the span closes: they never
        # have to boot again, so no wake transitions are charged.
        assert report.wake_count == 0

    def test_no_wake_charged_for_nodes_asleep_at_span_end(self):
        # Regression: the residual settle used to charge one wake per
        # processor still asleep at span_end.  One short job, then a
        # long empty tail: every CPU sleeps to the end and none wakes.
        jobs = [make_job(1, submit=0.0, runtime=10.0, requested=10.0, size=4)]
        result = simulate(jobs)
        config = SleepStateConfig(
            sleep_after_seconds=100.0,
            sleep_power_fraction=0.0,
            wake_energy_idle_seconds=50.0,
        )
        report = sleep_energy(result, config, MODEL, span_end=100000.0)
        assert report.wake_count == 0
        assert report.asleep_cpu_seconds == pytest.approx(4 * (100000.0 - 10.0 - 100.0))
        # With zero sleep power, the tail costs exactly the 4 x 100s of
        # awake idling — no phantom wake energy.
        assert report.idle_energy == pytest.approx(MODEL.idle_energy(4 * 100.0))

    def test_interior_wakes_still_charged(self):
        # The fix must not drop *real* wakes: a second job rouses all
        # four CPUs mid-span, and only that transition is charged.
        jobs = [
            make_job(1, submit=0.0, runtime=10.0, requested=10.0, size=4),
            make_job(2, submit=5000.0, runtime=10.0, size=4),
        ]
        result = simulate(jobs)
        config = SleepStateConfig(
            sleep_after_seconds=100.0, sleep_power_fraction=0.0, wake_energy_idle_seconds=50.0
        )
        report = sleep_energy(result, config, MODEL)
        assert report.wake_count == 4  # woken at t=5000, none at span end

    def test_wake_cost_accounted(self):
        jobs = [
            make_job(1, submit=0.0, runtime=10.0, requested=10.0, size=4),
            make_job(2, submit=1000.0, runtime=10.0, size=4),
        ]
        result = simulate(jobs)
        config = SleepStateConfig(
            sleep_after_seconds=100.0, sleep_power_fraction=0.0, wake_energy_idle_seconds=50.0
        )
        report = sleep_energy(result, config, MODEL)
        # All 4 CPUs idle [10, 1000): 100 awake + 890 asleep each, one wake each.
        assert report.wake_count == 4
        expected = MODEL.idle_energy(4 * 100.0) + 4 * 50.0 * MODEL.idle_power()
        assert report.idle_energy == pytest.approx(expected)

    def test_lifo_discipline_maximises_sleep(self):
        # 2 CPUs; 1-CPU jobs alternating: [0,100), [150,250), ...
        # LIFO keeps re-using the same (recently idle) CPU, letting the
        # other one sleep through.
        jobs = [
            make_job(i + 1, submit=150.0 * i, runtime=100.0, requested=100.0, size=1)
            for i in range(4)
        ]
        result = simulate(jobs, cpus=2)
        config = SleepStateConfig(
            sleep_after_seconds=60.0, sleep_power_fraction=0.0, wake_energy_idle_seconds=0.0
        )
        report = sleep_energy(result, config, MODEL)
        # CPU B never runs anything: idle 0..550 -> 60 awake, 490 asleep.
        # CPU A: three 50s gaps (never sleeps) + nothing at the end.
        assert report.asleep_cpu_seconds == pytest.approx(490.0)
        assert report.idle_awake_cpu_seconds == pytest.approx(60.0 + 3 * 50.0)

    def test_partial_sleep_power(self):
        jobs = [make_job(1, submit=0.0, runtime=100.0, size=2)]
        result = simulate(jobs)
        config = SleepStateConfig(
            sleep_after_seconds=0.0, sleep_power_fraction=0.5, wake_energy_idle_seconds=0.0
        )
        report = sleep_energy(result, config, MODEL)
        assert report.idle_energy == pytest.approx(MODEL.idle_energy(200.0) * 0.5)

    def test_sleep_only_ever_helps(self):
        jobs = random_workload(seed=13, n_jobs=40, max_cpus=6)
        result = simulate(jobs, cpus=6)
        for threshold in (0.0, 100.0, 10000.0):
            config = SleepStateConfig(
                sleep_after_seconds=threshold, wake_energy_idle_seconds=0.0
            )
            report = sleep_energy(result, config, MODEL)
            assert report.idle_energy <= result.energy.idle * (1.0 + 1e-9)

    def test_explicit_span(self):
        jobs = [make_job(1, submit=0.0, runtime=10.0, size=4)]
        result = simulate(jobs)
        config = SleepStateConfig(sleep_after_seconds=1e18)
        report = sleep_energy(result, config, MODEL, span_start=0.0, span_end=100.0)
        assert report.idle_awake_cpu_seconds == pytest.approx(4 * 90.0)

    def test_bad_span_rejected(self):
        jobs = [make_job(1, submit=0.0, runtime=10.0, size=4)]
        result = simulate(jobs)
        with pytest.raises(ValueError, match="precedes"):
            sleep_energy(result, SleepStateConfig(), MODEL, span_start=10.0, span_end=0.0)
