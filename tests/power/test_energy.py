"""Unit tests for workload-level energy accounting."""

import pytest

from repro.core.gears import PAPER_GEAR_SET
from repro.power.energy import EnergyAccounting, EnergyReport
from repro.power.model import PowerModel

MODEL = PowerModel()


def make_report(**overrides):
    defaults = dict(
        computational=100.0, idle=10.0, busy_cpu_seconds=50.0, idle_cpu_seconds=5.0, span=20.0
    )
    defaults.update(overrides)
    return EnergyReport(**defaults)


class TestEnergyReport:
    def test_total(self):
        assert make_report().total_idle_low == pytest.approx(110.0)

    def test_by_scenario(self):
        report = make_report()
        assert report.by_scenario("idle0") == 100.0
        assert report.by_scenario("idlelow") == 110.0

    def test_by_scenario_rejects_unknown(self):
        with pytest.raises(ValueError, match="scenario"):
            make_report().by_scenario("idle-mid")


class TestEnergyAccounting:
    def test_single_job(self):
        accounting = EnergyAccounting(MODEL)
        gear = PAPER_GEAR_SET.top
        energy = accounting.add_job(gear, cpus=4, seconds=100.0)
        assert energy == pytest.approx(MODEL.active_energy(gear, 4, 100.0))
        assert accounting.jobs_accounted == 1

    def test_segments_sum_like_a_job(self):
        gear = PAPER_GEAR_SET.top
        whole = EnergyAccounting(MODEL)
        whole.add_job(gear, 2, 100.0)
        split = EnergyAccounting(MODEL)
        split.add_segment(gear, 2, 60.0)
        split.add_segment(gear, 2, 40.0)
        split.count_job()
        assert split.jobs_accounted == whole.jobs_accounted
        report_whole = whole.report(4, 0.0, 200.0)
        report_split = split.report(4, 0.0, 200.0)
        assert report_split.computational == pytest.approx(report_whole.computational)
        assert report_split.busy_cpu_seconds == pytest.approx(report_whole.busy_cpu_seconds)

    def test_mixed_gear_segments(self):
        low, top = PAPER_GEAR_SET.lowest, PAPER_GEAR_SET.top
        accounting = EnergyAccounting(MODEL)
        accounting.add_segment(low, 1, 100.0)
        accounting.add_segment(top, 1, 50.0)
        accounting.count_job()
        expected = MODEL.active_energy(low, 1, 100.0) + MODEL.active_energy(top, 1, 50.0)
        assert accounting.report(1, 0.0, 150.0).computational == pytest.approx(expected)

    def test_report_idle_accounting(self):
        accounting = EnergyAccounting(MODEL)
        accounting.add_job(PAPER_GEAR_SET.top, 2, 50.0)  # 100 busy cpu-seconds
        report = accounting.report(total_cpus=4, span_start=0.0, span_end=100.0)
        assert report.busy_cpu_seconds == pytest.approx(100.0)
        assert report.idle_cpu_seconds == pytest.approx(300.0)
        assert report.idle == pytest.approx(MODEL.idle_energy(300.0))
        assert report.span == pytest.approx(100.0)

    def test_report_empty_run(self):
        report = EnergyAccounting(MODEL).report(8, 0.0, 0.0)
        assert report.computational == 0.0
        assert report.idle == 0.0

    def test_report_rejects_bad_span(self):
        with pytest.raises(ValueError, match="span_end"):
            EnergyAccounting(MODEL).report(4, 10.0, 5.0)

    def test_report_rejects_bad_cpus(self):
        with pytest.raises(ValueError, match="total_cpus"):
            EnergyAccounting(MODEL).report(0, 0.0, 10.0)

    def test_overfull_machine_detected(self):
        accounting = EnergyAccounting(MODEL)
        accounting.add_job(PAPER_GEAR_SET.top, 10, 100.0)  # 1000 busy cpu-s
        with pytest.raises(ValueError, match="capacity"):
            accounting.report(total_cpus=2, span_start=0.0, span_end=100.0)

    def test_float_fuzz_tolerated(self):
        accounting = EnergyAccounting(MODEL)
        accounting.add_job(PAPER_GEAR_SET.top, 1, 100.0 + 1e-10)
        report = accounting.report(total_cpus=1, span_start=0.0, span_end=100.0)
        assert report.idle_cpu_seconds == 0.0

    def test_idle_low_always_at_least_computational(self):
        accounting = EnergyAccounting(MODEL)
        accounting.add_job(PAPER_GEAR_SET.lowest, 3, 10.0)
        report = accounting.report(8, 0.0, 50.0)
        assert report.total_idle_low >= report.computational
