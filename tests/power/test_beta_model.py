"""Unit tests for per-job β assignment models."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.power.beta_model import (
    BimodalBeta,
    ConstantBeta,
    TruncatedNormalBeta,
    UniformBeta,
    summarize_betas,
)

ASSIGNERS = [
    ConstantBeta(0.5),
    UniformBeta(0.2, 0.8),
    BimodalBeta(),
    TruncatedNormalBeta(0.5, 0.15),
]


@pytest.mark.parametrize("assigner", ASSIGNERS, ids=lambda a: type(a).__name__)
class TestCommonProperties:
    def test_samples_in_unit_interval(self, assigner):
        values = assigner.assign(500, seed=3)
        assert all(0.0 <= value <= 1.0 for value in values)

    def test_deterministic_in_seed(self, assigner):
        assert assigner.assign(50, seed=11) == assigner.assign(50, seed=11)

    def test_different_seeds_differ(self, assigner):
        if isinstance(assigner, ConstantBeta):
            pytest.skip("constant assigner is seed-independent by design")
        assert assigner.assign(50, seed=1) != assigner.assign(50, seed=2)


class TestConstantBeta:
    def test_always_same(self):
        assert set(ConstantBeta(0.3).assign(10)) == {0.3}

    @pytest.mark.parametrize("beta", [-0.1, 1.5])
    def test_validation(self, beta):
        with pytest.raises(ValueError, match="beta"):
            ConstantBeta(beta)


class TestUniformBeta:
    def test_within_range(self):
        values = UniformBeta(0.4, 0.6).assign(200, seed=5)
        assert all(0.4 <= v <= 0.6 for v in values)

    def test_validation(self):
        with pytest.raises(ValueError, match="low"):
            UniformBeta(0.8, 0.2)
        with pytest.raises(ValueError, match="low"):
            UniformBeta(-0.1, 0.5)


class TestBimodalBeta:
    def test_two_clusters(self):
        assigner = BimodalBeta(
            cpu_bound_fraction=0.5, cpu_bound_beta=0.9, memory_bound_beta=0.1, jitter=0.02
        )
        values = assigner.assign(400, seed=9)
        low = [v for v in values if v < 0.5]
        high = [v for v in values if v >= 0.5]
        assert 100 < len(low) < 300  # roughly half each
        assert all(v <= 0.12 for v in low)
        assert all(v >= 0.88 for v in high)

    def test_extreme_fractions(self):
        all_cpu = BimodalBeta(cpu_bound_fraction=1.0, jitter=0.0)
        assert set(all_cpu.assign(20)) == {all_cpu.cpu_bound_beta}
        no_cpu = BimodalBeta(cpu_bound_fraction=0.0, jitter=0.0)
        assert set(no_cpu.assign(20)) == {no_cpu.memory_bound_beta}

    def test_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            BimodalBeta(cpu_bound_fraction=1.2)
        with pytest.raises(ValueError, match="cpu_bound_beta"):
            BimodalBeta(cpu_bound_beta=1.2)
        with pytest.raises(ValueError, match="jitter"):
            BimodalBeta(jitter=-0.1)


class TestTruncatedNormal:
    def test_zero_std_is_constant(self):
        assert set(TruncatedNormalBeta(0.4, 0.0).assign(10)) == {0.4}

    def test_mean_roughly_respected(self):
        values = TruncatedNormalBeta(0.5, 0.1).assign(2000, seed=13)
        assert sum(values) / len(values) == pytest.approx(0.5, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError, match="mean"):
            TruncatedNormalBeta(mean=1.2)
        with pytest.raises(ValueError, match="std"):
            TruncatedNormalBeta(std=-0.5)


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize_betas([0.2, 0.4, 0.6])
        assert summary["n"] == 3
        assert summary["mean"] == pytest.approx(0.4)
        assert summary["min"] == 0.2
        assert summary["max"] == 0.6

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="betas"):
            summarize_betas([])

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1))
    def test_bounds_property(self, betas):
        summary = summarize_betas(betas)
        assert summary["min"] <= summary["mean"] <= summary["max"]
        assert summary["std"] >= 0.0


def test_sample_uses_supplied_rng():
    """sample() must draw from the passed rng, not global state."""
    assigner = UniformBeta(0.0, 1.0)
    a = assigner.sample(random.Random(42))
    b = assigner.sample(random.Random(42))
    assert a == b
