"""Unit tests for the component registries."""

import pytest

from repro.registry import (
    ABLATIONS,
    FIGURES,
    POLICIES,
    POWER_MODELS,
    Registry,
    RegistryError,
    SCHEDULERS,
    WORKLOAD_SOURCES,
)


class TestRegistryBasics:
    def test_register_and_get(self):
        registry: Registry[type] = Registry("widget")

        @registry.register("alpha")
        class Alpha:
            pass

        assert registry.get("alpha") is Alpha
        assert "alpha" in registry
        assert registry.names() == ("alpha",)
        assert len(registry) == 1
        assert list(registry) == ["alpha"]

    def test_decorator_returns_object_unchanged(self):
        registry: Registry[object] = Registry("widget")

        @registry.register("f")
        def f():
            return 42

        assert f() == 42

    def test_duplicate_key_rejected(self):
        registry: Registry[int] = Registry("widget")
        registry.add("a", 1)
        with pytest.raises(RegistryError, match="duplicate widget name 'a'"):
            registry.add("a", 2)
        assert registry.get("a") == 1

    def test_explicit_overwrite_allowed(self):
        registry: Registry[int] = Registry("widget")
        registry.add("a", 1)
        registry.add("a", 2, overwrite=True)
        assert registry.get("a") == 2

    def test_unknown_key_lists_available(self):
        registry: Registry[int] = Registry("widget")
        registry.add("left", 1)
        registry.add("right", 2)
        with pytest.raises(RegistryError, match="left, right"):
            registry.get("middle")

    def test_registry_error_is_a_key_error(self):
        registry: Registry[int] = Registry("widget")
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_bad_names_rejected(self):
        registry: Registry[int] = Registry("widget")
        with pytest.raises(ValueError, match="non-empty strings"):
            registry.add("", 1)
        with pytest.raises(ValueError, match="non-empty strings"):
            registry.add(3, 1)  # type: ignore[arg-type]

    def test_items_sorted(self):
        registry: Registry[int] = Registry("widget")
        registry.add("b", 2)
        registry.add("a", 1)
        assert registry.items() == (("a", 1), ("b", 2))

    def test_failed_lazy_import_surfaces_and_retries(self):
        """A broken default module propagates its real error on every
        lookup instead of leaving a silently half-empty registry."""
        registry: Registry[int] = Registry(
            "widget", modules=("repro_no_such_module_xyz",)
        )
        with pytest.raises(ModuleNotFoundError):
            registry.get("anything")
        with pytest.raises(ModuleNotFoundError):  # retried, not swallowed
            registry.names()


class TestDefaultRegistrations:
    """The bundled components all arrive through lazy module loading."""

    def test_schedulers(self):
        from repro.scheduling.conservative import ConservativeBackfilling
        from repro.scheduling.easy import EasyBackfilling
        from repro.scheduling.fcfs import FcfsScheduler

        assert SCHEDULERS.get("easy") is EasyBackfilling
        assert SCHEDULERS.get("fcfs") is FcfsScheduler
        assert SCHEDULERS.get("conservative") is ConservativeBackfilling

    def test_policy_kinds(self):
        assert POLICIES.names() == ("bsld", "fixed", "nodvfs", "util")

    def test_power_models(self):
        from repro.core.gears import PAPER_GEAR_SET

        assert "paper" in POWER_MODELS
        model = POWER_MODELS.get("paper")(PAPER_GEAR_SET)
        assert model.static_share == 0.25
        assert POWER_MODELS.get("nostatic")(PAPER_GEAR_SET).static_share == 0.0

    def test_workload_sources(self):
        assert "synthetic" in WORKLOAD_SOURCES
        assert "swf" in WORKLOAD_SOURCES

    def test_figures_and_ablations(self):
        assert FIGURES.names() == ("3", "4", "5", "6", "7", "8", "9")
        assert set(ABLATIONS.names()) == {
            "beta", "gears", "policies", "sleep", "static", "strict",
        }
