"""Tests for crash-safe sweeps: the manifest journal and resume."""

import json
import multiprocessing
import os

import pytest

import repro.batch as batch_module
from repro.experiments.config import PolicySpec, RunSpec
from repro.serialize import result_to_dict, spec_key
from repro.sweep import SweepManifest, run_sweep

N_JOBS = 30

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault injection relies on fork sharing the patched module",
)


def sweep_specs() -> list[RunSpec]:
    return [
        RunSpec(workload=workload, n_jobs=N_JOBS, policy=policy)
        for workload in ("CTC", "SDSC")
        for policy in (
            PolicySpec.baseline(),
            PolicySpec.power_aware(2.0, 0),
            PolicySpec.power_aware(2.0, None),
        )
    ]


def as_bytes(results) -> list[str]:
    return [json.dumps(result_to_dict(r), sort_keys=True) for r in results]


class _InterruptSweep(Exception):
    """Stands in for SIGKILL: aborts the sweep mid-flight."""


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_exactly_the_remaining_work(self, tmp_path):
        """Kill after K of N specs; the resume simulates exactly N - K
        and the final result list is byte-identical to an uninterrupted
        sweep."""
        specs = sweep_specs()
        n, k = len(specs), 2

        uninterrupted = run_sweep(
            specs,
            manifest_path=tmp_path / "reference.jsonl",
            cache_dir=tmp_path / "reference-cache",
            max_workers=1,
        )
        assert uninterrupted.completed == n and uninterrupted.skipped == 0

        manifest_path = tmp_path / "sweep.jsonl"
        cache_dir = tmp_path / "cache"
        landed = []

        def kill_after_k(spec, result):
            landed.append(spec)
            if len(landed) == k:
                raise _InterruptSweep()

        with pytest.raises(_InterruptSweep):
            run_sweep(
                specs,
                manifest_path=manifest_path,
                cache_dir=cache_dir,
                max_workers=1,
                progress=kill_after_k,
            )
        assert len(list(cache_dir.glob("*.json"))) == k
        assert SweepManifest.load(manifest_path).describe().startswith(f"{k}/{n}")

        resumed = run_sweep(
            specs,
            manifest_path=manifest_path,
            cache_dir=cache_dir,
            resume=True,
            max_workers=1,
        )
        assert resumed.completed == n - k  # exactly the unfinished work
        assert resumed.skipped == k
        assert resumed.failures == ()
        assert as_bytes(resumed.results) == as_bytes(uninterrupted.results)

        manifest = SweepManifest.load(manifest_path)
        assert manifest.remaining == 0 and manifest.failed == {}

    def test_completed_sweep_resumes_as_pure_cache_hits(self, tmp_path):
        specs = sweep_specs()[:3]
        first = run_sweep(
            specs, manifest_path=tmp_path / "m.jsonl", cache_dir=tmp_path / "c",
            max_workers=1,
        )
        again = run_sweep(
            specs, manifest_path=tmp_path / "m.jsonl", cache_dir=tmp_path / "c",
            resume=True, max_workers=1,
        )
        assert again.completed == 0 and again.skipped == len(specs)
        assert as_bytes(again.results) == as_bytes(first.results)

    def test_existing_manifest_without_resume_rejected(self, tmp_path):
        specs = sweep_specs()[:2]
        run_sweep(
            specs, manifest_path=tmp_path / "m.jsonl", cache_dir=tmp_path / "c",
            max_workers=1,
        )
        with pytest.raises(FileExistsError, match="resume"):
            run_sweep(
                specs, manifest_path=tmp_path / "m.jsonl", cache_dir=tmp_path / "c",
                max_workers=1,
            )

    def test_resume_with_different_grid_rejected(self, tmp_path):
        run_sweep(
            sweep_specs()[:2], manifest_path=tmp_path / "m.jsonl",
            cache_dir=tmp_path / "c", max_workers=1,
        )
        with pytest.raises(ValueError, match="different spec set"):
            run_sweep(
                sweep_specs()[2:4], manifest_path=tmp_path / "m.jsonl",
                cache_dir=tmp_path / "c", resume=True, max_workers=1,
            )

    def test_torn_trailing_line_tolerated(self, tmp_path):
        specs = sweep_specs()[:3]
        run_sweep(
            specs, manifest_path=tmp_path / "m.jsonl", cache_dir=tmp_path / "c",
            max_workers=1,
        )
        with open(tmp_path / "m.jsonl", "a", encoding="utf-8") as stream:
            stream.write('{"status": "do')  # crash mid-append
        manifest = SweepManifest.load(tmp_path / "m.jsonl")
        assert len(manifest.done) == len(specs)

    def test_duplicate_specs_count_once(self, tmp_path):
        spec = sweep_specs()[0]
        report = run_sweep(
            [spec, spec], manifest_path=tmp_path / "m.jsonl",
            cache_dir=tmp_path / "c", max_workers=1,
        )
        assert report.total == 1
        assert len(report.results) == 2
        assert as_bytes(report.results[:1]) == as_bytes(report.results[1:])


class TestFailureJournaling:
    @fork_only
    def test_failed_spec_journaled_by_identity_and_retried_on_resume(
        self, tmp_path, monkeypatch
    ):
        specs = sweep_specs()
        bad = specs[0]
        real = batch_module._build_simulation

        def dying(spec, validate):
            if spec == bad:
                os._exit(13)
            return real(spec, validate)

        monkeypatch.setattr(batch_module, "_build_simulation", dying)
        report = run_sweep(
            specs, manifest_path=tmp_path / "m.jsonl", cache_dir=tmp_path / "c",
            max_workers=2, on_error="skip",
        )
        assert report.results[0] is None
        assert all(result is not None for result in report.results[1:])
        (failure,) = report.failures
        assert failure.spec == bad

        manifest = SweepManifest.load(tmp_path / "m.jsonl")
        (entry,) = manifest.failed.values()
        assert entry["key"] == spec_key(bad)
        assert entry["spec"]["workload"] == bad.workload
        assert "BrokenProcessPool" in entry["error"]

        # "Fix the bug" (drop the injection) and resume: only the failed
        # spec is re-run, and the journal converges to fully done.
        monkeypatch.setattr(batch_module, "_build_simulation", real)
        resumed = run_sweep(
            specs, manifest_path=tmp_path / "m.jsonl", cache_dir=tmp_path / "c",
            resume=True, max_workers=1,
        )
        assert resumed.completed == 1 and resumed.skipped == len(specs) - 1
        assert all(result is not None for result in resumed.results)
        converged = SweepManifest.load(tmp_path / "m.jsonl")
        assert converged.remaining == 0 and converged.failed == {}


class TestManifestFormat:
    def test_header_records_version_total_digest(self, tmp_path):
        specs = sweep_specs()[:3]
        run_sweep(
            specs, manifest_path=tmp_path / "m.jsonl", cache_dir=tmp_path / "c",
            max_workers=1,
        )
        lines = (tmp_path / "m.jsonl").read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "sweep-manifest"
        assert header["total"] == 3
        assert header["digest"] == SweepManifest.digest_of(specs)
        assert all(json.loads(line)["status"] == "done" for line in lines[1:])

    def test_non_manifest_file_rejected(self, tmp_path):
        path = tmp_path / "not-a-manifest.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(ValueError, match="not a sweep manifest"):
            SweepManifest.load(path)

    def test_version_mismatch_rejected(self, tmp_path):
        specs = sweep_specs()[:2]
        path = tmp_path / "m.jsonl"
        run_sweep(specs, manifest_path=path, cache_dir=tmp_path / "c", max_workers=1)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 1
        path.write_text("\n".join([json.dumps(header), *lines[1:]]) + "\n")
        with pytest.raises(ValueError, match="format version"):
            SweepManifest.load(path)
