"""Unit tests for per-class metric breakdowns."""

import pytest

from repro.cluster.machine import Machine
from repro.core.frequency_policy import BsldThresholdPolicy, FixedGearPolicy
from repro.metrics.breakdown import (
    DEFAULT_RUNTIME_BANDS,
    DEFAULT_SIZE_BANDS,
    breakdown,
    by_reduction,
    by_runtime_bands,
    by_size_bands,
)
from repro.scheduling.easy import EasyBackfilling
from tests.conftest import make_job, random_workload


@pytest.fixture(scope="module")
def result():
    jobs = random_workload(seed=77, n_jobs=80, max_cpus=8)
    return EasyBackfilling(Machine("m", 8), BsldThresholdPolicy(3.0, None)).run(jobs)


class TestGenericBreakdown:
    def test_classes_partition_jobs(self, result):
        classes = breakdown(result, lambda o: "even" if o.job.job_id % 2 == 0 else "odd")
        assert sum(c.jobs for c in classes) == result.job_count

    def test_energy_partition(self, result):
        classes = breakdown(result, lambda o: str(o.job.size % 3))
        assert sum(c.energy for c in classes) == pytest.approx(result.energy.computational)

    def test_fixed_order_includes_empty_classes(self, result):
        classes = breakdown(result, lambda o: "all", order=["none", "all"])
        assert [c.label for c in classes] == ["none", "all"]
        assert classes[0].jobs == 0
        assert classes[0].avg_bsld == 0.0

    def test_unknown_label_rejected(self, result):
        with pytest.raises(ValueError, match="unknown label"):
            breakdown(result, lambda o: "mystery", order=["known"])


class TestSizeBands:
    def test_default_bands_cover_everything(self, result):
        classes = by_size_bands(result)
        assert [c.label for c in classes] == [label for label, _ in DEFAULT_SIZE_BANDS]
        assert sum(c.jobs for c in classes) == result.job_count

    def test_serial_band(self):
        jobs = [
            make_job(1, submit=0.0, runtime=100.0, size=1),
            make_job(2, submit=1.0, runtime=100.0, size=4),
        ]
        run = EasyBackfilling(Machine("m", 8), FixedGearPolicy()).run(jobs)
        classes = {c.label: c for c in by_size_bands(run)}
        assert classes["serial"].jobs == 1
        assert classes["2-8"].jobs == 1

    def test_custom_bands(self, result):
        classes = by_size_bands(result, bands=(("small", 4), ("big", 10**9)))
        assert [c.label for c in classes] == ["small", "big"]


class TestRuntimeBands:
    def test_default_bands(self, result):
        classes = by_runtime_bands(result)
        assert [c.label for c in classes] == [label for label, _ in DEFAULT_RUNTIME_BANDS]
        assert sum(c.jobs for c in classes) == result.job_count

    def test_band_boundaries(self):
        jobs = [
            make_job(1, submit=0.0, runtime=600.0, size=1),   # <=10min (inclusive)
            make_job(2, submit=1.0, runtime=601.0, size=1),   # 10min-1h
        ]
        run = EasyBackfilling(Machine("m", 8), FixedGearPolicy()).run(jobs)
        classes = {c.label: c for c in by_runtime_bands(run)}
        assert classes["<=10min"].jobs == 1
        assert classes["10min-1h"].jobs == 1


class TestReductionSplit:
    def test_reduced_class_counts(self, result):
        classes = {c.label: c for c in by_reduction(result)}
        assert classes["reduced"].jobs == result.reduced_jobs
        assert classes["reduced"].jobs + classes["full speed"].jobs == result.job_count
        assert classes["reduced"].reduced_fraction == (
            1.0 if classes["reduced"].jobs else 0.0
        )

    def test_reduced_jobs_cheaper_per_cpu_second(self, result):
        """The point of the policy: reduced jobs burn less energy per
        CPU-second of occupation than full-speed ones."""
        classes = {c.label: c for c in by_reduction(result)}
        reduced, full = classes["reduced"], classes["full speed"]
        if reduced.jobs and full.jobs:
            assert (reduced.energy / reduced.cpu_seconds) < (full.energy / full.cpu_seconds)
