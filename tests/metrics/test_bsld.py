"""Unit and property tests for the BSLD formulas (Eqs. 1, 2, 6)."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.bsld import (
    BSLD_THRESHOLD_SECONDS,
    bounded_slowdown,
    predicted_bsld,
)

waits = st.floats(min_value=0.0, max_value=1e7, allow_nan=False)
runtimes = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
coefficients = st.floats(min_value=1.0, max_value=3.0, allow_nan=False)


class TestBoundedSlowdown:
    def test_paper_threshold_default(self):
        assert BSLD_THRESHOLD_SECONDS == 600.0

    def test_no_wait_long_job_is_one(self):
        assert bounded_slowdown(0.0, 3600.0) == 1.0

    def test_plain_slowdown_for_long_jobs(self):
        # wait 3600 on a 3600s job: (3600+3600)/3600 = 2
        assert bounded_slowdown(3600.0, 3600.0) == pytest.approx(2.0)

    def test_short_jobs_bounded_by_threshold(self):
        # 60s job with 60s wait: (60+60)/600, clamped to 1 -- the bound
        # exists precisely to mute such jobs.
        assert bounded_slowdown(60.0, 60.0) == 1.0

    def test_eq6_penalized_numerator_nominal_denominator(self):
        # 1000s job stretched to 1937.5s, no wait: the penalty must show.
        value = bounded_slowdown(0.0, 1000.0, penalized_runtime=1937.5)
        assert value == pytest.approx(1937.5 / 1000.0)

    def test_penalized_defaults_to_runtime(self):
        assert bounded_slowdown(500.0, 1000.0) == bounded_slowdown(
            500.0, 1000.0, penalized_runtime=1000.0
        )

    def test_zero_runtime_uses_threshold(self):
        assert bounded_slowdown(300.0, 0.0) == 1.0
        assert bounded_slowdown(1200.0, 0.0) == pytest.approx(2.0)

    def test_custom_threshold(self):
        assert bounded_slowdown(50.0, 50.0, threshold=10.0) == pytest.approx(2.0)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError, match="wait_time"):
            bounded_slowdown(-1.0, 100.0)
        with pytest.raises(ValueError, match="runtime"):
            bounded_slowdown(1.0, -100.0)
        with pytest.raises(ValueError, match="penalized"):
            bounded_slowdown(1.0, 100.0, penalized_runtime=-1.0)

    def test_zero_over_zero_rejected(self):
        with pytest.raises(ValueError, match="undefined"):
            bounded_slowdown(0.0, 0.0, threshold=0.0)

    @given(waits, runtimes)
    def test_at_least_one(self, wait, runtime):
        assert bounded_slowdown(wait, runtime) >= 1.0

    @given(runtimes, waits, waits)
    def test_monotone_in_wait(self, runtime, wait_a, wait_b):
        lo, hi = sorted((wait_a, wait_b))
        assert bounded_slowdown(lo, runtime) <= bounded_slowdown(hi, runtime)

    @given(waits, runtimes, st.floats(min_value=1.0, max_value=3.0, allow_nan=False))
    def test_monotone_in_penalty(self, wait, runtime, stretch):
        plain = bounded_slowdown(wait, runtime)
        stretched = bounded_slowdown(wait, runtime, penalized_runtime=runtime * stretch)
        assert stretched >= plain - 1e-12


class TestPredictedBsld:
    def test_eq2_shape(self):
        # WT=600, RQ=1200, Coef=1.5: (600 + 1800)/1200 = 2
        assert predicted_bsld(600.0, 1200.0, 1.5) == pytest.approx(2.0)

    def test_short_request_bounded(self):
        # RQ below the threshold: denominator is 600.
        assert predicted_bsld(0.0, 300.0, 1.0) == 1.0
        assert predicted_bsld(900.0, 300.0, 1.0) == pytest.approx(2.0)

    def test_zero_wait_top_gear_is_one(self):
        assert predicted_bsld(0.0, 10000.0, 1.0) == 1.0

    def test_zero_wait_reduced_gear_equals_coefficient(self):
        # For long requests the prediction at zero wait is exactly Coef(f).
        assert predicted_bsld(0.0, 10000.0, 1.9375) == pytest.approx(1.9375)

    def test_rejects_coefficient_below_one(self):
        with pytest.raises(ValueError, match="coefficient"):
            predicted_bsld(0.0, 1000.0, 0.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="wait_time"):
            predicted_bsld(-1.0, 1000.0)
        with pytest.raises(ValueError, match="requested_time"):
            predicted_bsld(1.0, -1000.0)

    def test_zero_request_zero_threshold_rejected(self):
        with pytest.raises(ValueError, match="undefined"):
            predicted_bsld(0.0, 0.0, threshold=0.0)

    @given(waits, runtimes, coefficients)
    def test_at_least_one(self, wait, request, coefficient):
        assert predicted_bsld(wait, request, coefficient) >= 1.0

    @given(waits, st.floats(min_value=1.0, max_value=1e6, allow_nan=False), coefficients)
    def test_monotone_in_coefficient(self, wait, request, coefficient):
        base = predicted_bsld(wait, request, 1.0)
        reduced = predicted_bsld(wait, request, coefficient)
        assert reduced >= base - 1e-12

    @given(st.floats(min_value=600.0, max_value=1e6, allow_nan=False), coefficients)
    def test_prediction_matches_outcome_for_exact_estimates(self, runtime, coefficient):
        """If the user estimate is exact and the wait is as predicted,
        Eq. 2 equals Eq. 6."""
        prediction = predicted_bsld(0.0, runtime, coefficient)
        outcome = bounded_slowdown(0.0, runtime, penalized_runtime=runtime * coefficient)
        assert prediction == pytest.approx(outcome)
