"""Unit tests for aggregate statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.aggregates import mean, median, percentile, stddev, summarize

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200
)


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_single(self):
        assert mean([7.0]) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            mean([])


class TestStddev:
    def test_constant_sample(self):
        assert stddev([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        assert stddev([1.0, 3.0]) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            stddev([])


class TestPercentile:
    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even_interpolates(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 1.0, 3.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 5.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25.0) == pytest.approx(2.5)

    def test_single_value(self):
        assert percentile([42.0], 90.0) == 42.0

    def test_out_of_range_q(self):
        with pytest.raises(ValueError, match="q"):
            percentile([1.0], -5.0)
        with pytest.raises(ValueError, match="q"):
            percentile([1.0], 101.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)

    @given(samples, st.floats(min_value=0.0, max_value=100.0))
    def test_within_sample_bounds(self, data, q):
        value = percentile(data, q)
        assert min(data) <= value <= max(data)

    @given(samples)
    def test_monotone_in_q(self, data):
        qs = [0.0, 25.0, 50.0, 75.0, 100.0]
        values = [percentile(data, q) for q in qs]
        assert values == sorted(values)


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary["n"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            summarize([])

    @given(samples)
    def test_ordering_property(self, data):
        summary = summarize(data)
        assert (
            summary["min"]
            <= summary["p50"]
            <= summary["p90"]
            <= summary["p99"]
            <= summary["max"]
        )
