"""Tests for the ``repro.api`` facade and the JSON spec/result codecs."""

import json

import pytest

from repro.api import DEFAULT_N_JOBS, Simulation, normalize_spec, run
from repro.experiments.config import PolicySpec, RunSpec
from repro.experiments.runner import ExperimentRunner
from repro.serialize import (
    SpecValidationError,
    result_from_dict,
    result_to_dict,
    spec_from_dict,
    spec_json,
    spec_key,
    spec_to_dict,
)
from repro.workloads.generator import load_workload
from repro.workloads.swf import write_swf


class TestNormalizeSpec:
    def test_unset_n_jobs_pinned_to_default(self):
        spec = normalize_spec(RunSpec(workload="CTC"))
        assert spec.n_jobs == DEFAULT_N_JOBS

    def test_custom_default(self):
        spec = normalize_spec(RunSpec(workload="CTC"), default_n_jobs=77)
        assert spec.n_jobs == 77

    def test_explicit_n_jobs_untouched(self):
        spec = RunSpec(workload="CTC", n_jobs=123)
        assert normalize_spec(spec) is spec


class TestSimulation:
    def test_matches_experiment_runner(self):
        spec = RunSpec(
            workload="CTC", n_jobs=60, policy=PolicySpec.power_aware(2.0, 4)
        )
        facade = Simulation(spec).run()
        runner = ExperimentRunner(n_jobs=60).run(spec)
        assert facade == runner

    def test_materialises_machine_and_jobs(self):
        sim = Simulation(RunSpec(workload="SDSCBlue", n_jobs=40, size_factor=1.5))
        assert sim.machine.total_cpus == 1728
        assert len(sim.jobs) == 40

    def test_scheduler_and_power_model_registries(self):
        spec = RunSpec(workload="CTC", n_jobs=40, scheduler="fcfs", power_model="nostatic")
        sim = Simulation(spec)
        scheduler = sim.build_scheduler()
        assert type(scheduler).__name__ == "FcfsScheduler"
        assert scheduler.power_model.static_share == 0.0
        assert sim.run().job_count == 40

    def test_run_convenience(self):
        assert run(RunSpec(workload="CTC", n_jobs=30)).job_count == 30

    def test_swf_source(self, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(path, load_workload("CTC", n_jobs=50), max_procs=430)
        result = Simulation(RunSpec(workload=str(path), source="swf", n_jobs=30)).run()
        assert result.job_count == 30
        assert result.machine.total_cpus == 430
        assert result.machine.name == "trace"

    def test_unknown_names_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="scheduler"):
            RunSpec(workload="CTC", scheduler="sjf")
        with pytest.raises(ValueError, match="power_model"):
            RunSpec(workload="CTC", power_model="quantum")
        with pytest.raises(ValueError, match="workload source"):
            RunSpec(workload="CTC", source="carrier-pigeon")


SPECS = [
    RunSpec(workload="CTC"),
    RunSpec(workload="SDSC", n_jobs=250, seed=7, size_factor=1.5, beta=0.3),
    RunSpec(
        workload="SDSCBlue",
        policy=PolicySpec.power_aware(1.5, 16, strict_top_backfill=True, boost_trigger=4),
        scheduler="conservative",
        power_model="highleak",
        record_timeline=True,
    ),
    RunSpec(workload="LLNLAtlas", policy=PolicySpec(kind="fixed", fixed_frequency=0.8)),
    RunSpec(workload="LLNLThunder", policy=PolicySpec(kind="util")),
]


class TestSpecRoundTrip:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.label())
    def test_dict_round_trip(self, spec):
        assert spec_from_dict(spec_to_dict(spec)) == spec

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.label())
    def test_json_round_trip(self, spec):
        assert spec_from_dict(json.loads(spec_json(spec))) == spec

    def test_key_stable_and_distinct(self):
        a = RunSpec(workload="CTC", policy=PolicySpec.power_aware(2.0, 4))
        b = RunSpec(workload="CTC", policy=PolicySpec.power_aware(2.0, 4))
        c = RunSpec(workload="CTC", policy=PolicySpec.power_aware(2.0, 16))
        assert spec_key(a) == spec_key(b)
        assert spec_key(a) != spec_key(c)


class TestSpecValidationErrors:
    """Malformed documents are rejected with a precise field path."""

    def _doc(self):
        return spec_to_dict(RunSpec(workload="CTC", n_jobs=30))

    def test_error_is_a_value_error_with_path_and_reason(self):
        with pytest.raises(SpecValidationError) as info:
            spec_from_dict({"policy": {}})
        assert isinstance(info.value, ValueError)
        assert info.value.path == "policy.kind"
        assert info.value.reason == "missing required field"
        assert "policy.kind" in str(info.value)

    def test_non_mapping_document(self):
        with pytest.raises(SpecValidationError) as info:
            spec_from_dict([1, 2, 3])
        assert info.value.path == ""
        assert "expected an object" in info.value.reason
        assert "document root" in str(info.value)

    @pytest.mark.parametrize(
        "field", ["workload", "n_jobs", "seed", "scheduler", "record_timeline"]
    )
    def test_missing_top_level_field(self, field):
        doc = self._doc()
        del doc[field]
        with pytest.raises(SpecValidationError) as info:
            spec_from_dict(doc)
        assert info.value.path == field

    def test_missing_policy_field(self):
        doc = self._doc()
        del doc["policy"]["wq_threshold"]
        with pytest.raises(SpecValidationError) as info:
            spec_from_dict(doc)
        assert info.value.path == "policy.wq_threshold"

    def test_policy_wrong_type(self):
        doc = self._doc()
        doc["policy"] = "power-aware"
        with pytest.raises(SpecValidationError) as info:
            spec_from_dict(doc)
        assert info.value.path == "policy"
        assert "expected an object, got str" in info.value.reason

    def test_bad_policy_value_wrapped_with_path(self):
        doc = self._doc()
        doc["policy"]["kind"] = "telepathy"
        with pytest.raises(SpecValidationError) as info:
            spec_from_dict(doc)
        assert info.value.path == "policy"
        assert "telepathy" in info.value.reason

    def test_instruments_not_an_array(self):
        doc = self._doc()
        doc["instruments"] = {"name": "event_trace"}
        with pytest.raises(SpecValidationError) as info:
            spec_from_dict(doc)
        assert info.value.path == "instruments"
        assert "expected an array" in info.value.reason

    def test_instrument_missing_name_carries_index(self):
        doc = self._doc()
        doc["instruments"] = [
            {"name": "event_trace", "params": []},
            {"params": []},
        ]
        with pytest.raises(SpecValidationError) as info:
            spec_from_dict(doc)
        assert info.value.path == "instruments[1].name"

    def test_instrument_params_wrong_type(self):
        doc = self._doc()
        doc["instruments"] = [{"name": "event_trace", "params": "none"}]
        with pytest.raises(SpecValidationError) as info:
            spec_from_dict(doc)
        assert info.value.path == "instruments[0].params"

    def test_sleep_wrong_type(self):
        doc = self._doc()
        doc["sleep"] = 60.0
        with pytest.raises(SpecValidationError) as info:
            spec_from_dict(doc)
        assert info.value.path == "sleep"

    def test_sleep_bad_field_wrapped_with_path(self):
        doc = self._doc()
        doc["sleep"] = {"sleep_after_seconds": 60.0, "nap_quality": "excellent"}
        with pytest.raises(SpecValidationError) as info:
            spec_from_dict(doc)
        assert info.value.path == "sleep"
        assert "nap_quality" in info.value.reason

    def test_bad_top_level_value_wrapped_at_root(self):
        doc = self._doc()
        doc["scheduler"] = "sjf"
        with pytest.raises(SpecValidationError) as info:
            spec_from_dict(doc)
        assert info.value.path == ""
        assert "scheduler" in info.value.reason


class TestResultValidationErrors:
    @pytest.fixture(scope="class")
    def result_doc(self):
        result = Simulation(RunSpec(workload="CTC", n_jobs=20)).run()
        return result_to_dict(result)

    def _copy(self, doc):
        return json.loads(json.dumps(doc))

    def test_missing_machine(self, result_doc):
        doc = self._copy(result_doc)
        del doc["machine"]
        with pytest.raises(SpecValidationError) as info:
            result_from_dict(doc)
        assert info.value.path == "machine"

    def test_bad_gear_carries_index(self, result_doc):
        doc = self._copy(result_doc)
        doc["machine"]["gears"][1] = {"frequency": 2.0}
        with pytest.raises(SpecValidationError) as info:
            result_from_dict(doc)
        assert info.value.path == "machine.gears[1].voltage"

    def test_bad_outcome_job_carries_index(self, result_doc):
        doc = self._copy(result_doc)
        doc["outcomes"][3]["job"]["wings"] = 2
        with pytest.raises(SpecValidationError) as info:
            result_from_dict(doc)
        assert info.value.path == "outcomes[3].job"
        assert "wings" in info.value.reason

    def test_outcome_missing_field(self, result_doc):
        doc = self._copy(result_doc)
        del doc["outcomes"][0]["finish_time"]
        with pytest.raises(SpecValidationError) as info:
            result_from_dict(doc)
        assert info.value.path == "outcomes[0].finish_time"

    def test_energy_bad_field(self, result_doc):
        doc = self._copy(result_doc)
        doc["energy"]["perpetual_motion"] = True
        with pytest.raises(SpecValidationError) as info:
            result_from_dict(doc)
        assert info.value.path == "energy"

    def test_timeline_entry_located(self, result_doc):
        doc = self._copy(result_doc)
        doc["timeline"] = [{"time": 0.0, "queued_jobs": 1}]
        with pytest.raises(SpecValidationError) as info:
            result_from_dict(doc)
        assert info.value.path == "timeline[0]"

    def test_instrument_report_located(self, result_doc):
        doc = self._copy(result_doc)
        doc["instruments"] = [{"summary": {}}]
        with pytest.raises(SpecValidationError) as info:
            result_from_dict(doc)
        assert info.value.path == "instruments[0].name"


class TestResultRoundTrip:
    def test_exact_equality_through_json(self):
        spec = RunSpec(
            workload="SDSC",
            n_jobs=60,
            policy=PolicySpec.power_aware(2.0, 0),
            record_timeline=True,
        )
        result = Simulation(spec).run()
        restored = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert restored == result
        assert restored.average_bsld() == result.average_bsld()
        assert restored.energy.total_idle_low == result.energy.total_idle_low
        assert restored.timeline == result.timeline

    def test_version_mismatch_rejected(self):
        result = Simulation(RunSpec(workload="CTC", n_jobs=20)).run()
        data = result_to_dict(result)
        data["version"] = 999
        with pytest.raises(ValueError, match="version"):
            result_from_dict(data)
