"""Tests for the ``repro.api`` facade and the JSON spec/result codecs."""

import json

import pytest

from repro.api import DEFAULT_N_JOBS, Simulation, normalize_spec, run
from repro.experiments.config import PolicySpec, RunSpec
from repro.experiments.runner import ExperimentRunner
from repro.serialize import (
    result_from_dict,
    result_to_dict,
    spec_from_dict,
    spec_json,
    spec_key,
    spec_to_dict,
)
from repro.workloads.generator import load_workload
from repro.workloads.swf import write_swf


class TestNormalizeSpec:
    def test_unset_n_jobs_pinned_to_default(self):
        spec = normalize_spec(RunSpec(workload="CTC"))
        assert spec.n_jobs == DEFAULT_N_JOBS

    def test_custom_default(self):
        spec = normalize_spec(RunSpec(workload="CTC"), default_n_jobs=77)
        assert spec.n_jobs == 77

    def test_explicit_n_jobs_untouched(self):
        spec = RunSpec(workload="CTC", n_jobs=123)
        assert normalize_spec(spec) is spec


class TestSimulation:
    def test_matches_experiment_runner(self):
        spec = RunSpec(
            workload="CTC", n_jobs=60, policy=PolicySpec.power_aware(2.0, 4)
        )
        facade = Simulation(spec).run()
        runner = ExperimentRunner(n_jobs=60).run(spec)
        assert facade == runner

    def test_materialises_machine_and_jobs(self):
        sim = Simulation(RunSpec(workload="SDSCBlue", n_jobs=40, size_factor=1.5))
        assert sim.machine.total_cpus == 1728
        assert len(sim.jobs) == 40

    def test_scheduler_and_power_model_registries(self):
        spec = RunSpec(workload="CTC", n_jobs=40, scheduler="fcfs", power_model="nostatic")
        sim = Simulation(spec)
        scheduler = sim.build_scheduler()
        assert type(scheduler).__name__ == "FcfsScheduler"
        assert scheduler.power_model.static_share == 0.0
        assert sim.run().job_count == 40

    def test_run_convenience(self):
        assert run(RunSpec(workload="CTC", n_jobs=30)).job_count == 30

    def test_swf_source(self, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(path, load_workload("CTC", n_jobs=50), max_procs=430)
        result = Simulation(RunSpec(workload=str(path), source="swf", n_jobs=30)).run()
        assert result.job_count == 30
        assert result.machine.total_cpus == 430
        assert result.machine.name == "trace"

    def test_unknown_names_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="scheduler"):
            RunSpec(workload="CTC", scheduler="sjf")
        with pytest.raises(ValueError, match="power_model"):
            RunSpec(workload="CTC", power_model="quantum")
        with pytest.raises(ValueError, match="workload source"):
            RunSpec(workload="CTC", source="carrier-pigeon")


SPECS = [
    RunSpec(workload="CTC"),
    RunSpec(workload="SDSC", n_jobs=250, seed=7, size_factor=1.5, beta=0.3),
    RunSpec(
        workload="SDSCBlue",
        policy=PolicySpec.power_aware(1.5, 16, strict_top_backfill=True, boost_trigger=4),
        scheduler="conservative",
        power_model="highleak",
        record_timeline=True,
    ),
    RunSpec(workload="LLNLAtlas", policy=PolicySpec(kind="fixed", fixed_frequency=0.8)),
    RunSpec(workload="LLNLThunder", policy=PolicySpec(kind="util")),
]


class TestSpecRoundTrip:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.label())
    def test_dict_round_trip(self, spec):
        assert spec_from_dict(spec_to_dict(spec)) == spec

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.label())
    def test_json_round_trip(self, spec):
        assert spec_from_dict(json.loads(spec_json(spec))) == spec

    def test_key_stable_and_distinct(self):
        a = RunSpec(workload="CTC", policy=PolicySpec.power_aware(2.0, 4))
        b = RunSpec(workload="CTC", policy=PolicySpec.power_aware(2.0, 4))
        c = RunSpec(workload="CTC", policy=PolicySpec.power_aware(2.0, 16))
        assert spec_key(a) == spec_key(b)
        assert spec_key(a) != spec_key(c)


class TestResultRoundTrip:
    def test_exact_equality_through_json(self):
        spec = RunSpec(
            workload="SDSC",
            n_jobs=60,
            policy=PolicySpec.power_aware(2.0, 0),
            record_timeline=True,
        )
        result = Simulation(spec).run()
        restored = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert restored == result
        assert restored.average_bsld() == result.average_bsld()
        assert restored.energy.total_idle_low == result.energy.total_idle_low
        assert restored.timeline == result.timeline

    def test_version_mismatch_rejected(self):
        result = Simulation(RunSpec(workload="CTC", n_jobs=20)).run()
        data = result_to_dict(result)
        data["version"] = 999
        with pytest.raises(ValueError, match="version"):
            result_from_dict(data)
