"""Unit tests for terminal chart rendering."""

import pytest

from repro.experiments.ascii_charts import bar_chart, format_table, line_plot, _downsample


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 20.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "1.500" in text
        assert "20.250" in text

    def test_large_floats_rounded(self):
        text = format_table(["v"], [[12345.678]])
        assert "12346" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])

    def test_string_cells_left_aligned(self):
        text = format_table(["w", "x"], [["abc", 1.0], ["defgh", 2.0]])
        lines = text.splitlines()
        assert lines[2].startswith("abc ")


class TestBarChart:
    def test_bars_scale(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title_and_values(self):
        text = bar_chart(["x"], [0.5], title="chart")
        assert text.startswith("chart")
        assert "0.500" in text

    def test_explicit_vmax(self):
        text = bar_chart(["x"], [1.0], width=10, vmax=2.0)
        assert text.count("#") == 5

    def test_empty(self):
        assert bar_chart([], [], title="t") == "t"

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="same length"):
            bar_chart(["a"], [1.0, 2.0])

    def test_negative_values_clamped(self):
        text = bar_chart(["a", "b"], [-1.0, 1.0], width=10)
        assert text.splitlines()[0].count("#") == 0


class TestLinePlot:
    def test_two_series_with_legend(self):
        text = line_plot({"one": [0, 1, 2, 3], "two": [3, 2, 1, 0]}, width=20, height=6)
        assert "*=one" in text
        assert "o=two" in text
        assert "+" + "-" * 20 in text

    def test_title(self):
        assert line_plot({"s": [1.0]}, title="wait").startswith("wait")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="series"):
            line_plot({})
        with pytest.raises(ValueError, match="non-empty"):
            line_plot({"s": []})

    def test_constant_series(self):
        text = line_plot({"flat": [5.0] * 10}, width=10, height=4)
        assert "*" in text


class TestDownsample:
    def test_short_series_padded(self):
        assert _downsample([1.0, 2.0], 4) == [1.0, 2.0, 2.0, 2.0]

    def test_long_series_averaged(self):
        out = _downsample([0.0, 2.0, 4.0, 6.0], 2)
        assert out == [1.0, 5.0]

    def test_exact_width(self):
        assert _downsample([1.0, 2.0, 3.0], 3) == [1.0, 2.0, 3.0]
