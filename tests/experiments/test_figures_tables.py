"""Integration tests for the table/figure builders (small traces).

These verify structure, normalisation identities and rendering — the
full-scale numbers live in the benchmarks and the ``repro-sim report``
output.
"""

import pytest

from repro.experiments.config import PolicySpec, RunSpec
from repro.experiments.figures import (
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    size_sweep,
    threshold_grid,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import PAPER_TABLE3, table1, table3
from repro.workloads.models import WORKLOAD_NAMES

N_JOBS = 120
WORKLOADS = ("CTC", "SDSC")  # a fast subset for grid structure tests


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(n_jobs=N_JOBS)


class TestThresholdGrid:
    def test_grid_covers_all_combinations(self, runner):
        grid = threshold_grid(runner, workloads=WORKLOADS)
        assert len(grid.runs) == len(WORKLOADS) * 3 * 4
        assert set(grid.baselines) == set(WORKLOADS)

    def test_grid_shares_runner_cache(self, runner):
        before = runner.cached_runs
        threshold_grid(runner, workloads=WORKLOADS)
        threshold_grid(runner, workloads=WORKLOADS)
        after = runner.cached_runs
        assert after == max(before, len(WORKLOADS) * 13)  # no duplicate runs


class TestFigure3:
    def test_normalization_is_relative_to_baseline(self, runner):
        from repro.experiments.figures import Figure3

        fig = Figure3(grid=threshold_grid(runner, workloads=WORKLOADS))
        for key in fig.grid:
            for scenario in ("idle0", "idlelow"):
                value = fig.normalized_energy(key, scenario)
                assert 0.0 < value < 2.0
        # energy can only be saved relative to baseline at fixed size
        # for the computational scenario (reduced gears are energy-cheaper)
        for key in fig.grid:
            assert fig.normalized_energy(key, "idle0") <= 1.0 + 1e-9

    def test_render(self, runner):
        from repro.experiments.figures import Figure3

        fig = Figure3(grid=threshold_grid(runner, workloads=WORKLOADS))
        text = fig.render()
        assert "E_idle=0" in text and "E_idle=low" in text
        assert "WQ NO" in text


class TestFigure4and5:
    def test_reduced_jobs_bounds(self, runner):
        from repro.experiments.figures import Figure4

        fig = Figure4(grid=threshold_grid(runner, workloads=WORKLOADS))
        for key in fig.grid:
            assert 0 <= fig.reduced_jobs(key) <= N_JOBS

    def test_wq_monotone_reduced_jobs_weakly(self, runner):
        """More permissive WQ thresholds can only help reduction counts
        on average; check the NO-limit column dominates WQ=0 per row."""
        from repro.experiments.figures import Figure4

        fig = Figure4(grid=threshold_grid(runner, workloads=WORKLOADS))
        for workload in WORKLOADS:
            for bsld in fig.grid.bsld_thresholds:
                assert fig.reduced_jobs((workload, bsld, None)) >= fig.reduced_jobs(
                    (workload, bsld, 0)
                ) * 0.5  # weak sanity: NO limit is not drastically below WQ0

    def test_figure5_baseline_accessor(self, runner):
        from repro.experiments.figures import Figure5

        fig = Figure5(grid=threshold_grid(runner, workloads=WORKLOADS))
        for workload in WORKLOADS:
            assert fig.baseline_bsld(workload) >= 1.0
            for bsld in fig.grid.bsld_thresholds:
                assert fig.average_bsld((workload, bsld, 0)) >= 1.0
        assert "no-DVFS baselines" in fig.render()


class TestFigure6:
    def test_series_aligned_and_windowed(self, runner):
        fig = figure6(runner, workload="SDSC", window=(10, 60))
        assert len(fig.original_waits) == 50
        assert len(fig.dvfs_waits) == 50
        assert fig.window == (10, 60)
        assert "DVFS_2_16" in fig.policy_label

    def test_default_window(self, runner):
        fig = figure6(runner, workload="SDSC")
        assert fig.window == (int(N_JOBS * 0.35), int(N_JOBS * 0.65))

    def test_bad_window_rejected(self, runner):
        with pytest.raises(ValueError, match="window"):
            figure6(runner, workload="SDSC", window=(50, 10))

    def test_render_has_plot_and_summary(self, runner):
        text = figure6(runner, workload="SDSC", window=(0, 40)).render()
        assert "Figure 6" in text
        assert "mean wait" in text


class TestSizeSweepFigures:
    def test_sweep_structure(self, runner):
        sweep = size_sweep(runner, wq_threshold=0, size_factors=(1.0, 1.5), workloads=WORKLOADS)
        assert set(sweep.runs) == {(w, f) for w in WORKLOADS for f in (1.0, 1.5)}

    def test_figure7_8_normalise_to_original_baseline(self, runner):
        from repro.experiments.figures import Figure7

        sweep = size_sweep(runner, wq_threshold=0, size_factors=(1.0, 2.0), workloads=WORKLOADS)
        fig = Figure7(figure_id=7, sweep=sweep)
        for workload in WORKLOADS:
            small = fig.normalized_energy(workload, 1.0, "idle0")
            large = fig.normalized_energy(workload, 2.0, "idle0")
            assert large <= small + 1e-9  # computational energy shrinks with size
        assert "Figure 7" in fig.render()

    def test_figure9_bsld_improves_with_size(self, runner):
        from repro.experiments.figures import Figure9, size_sweep as sweep_fn

        figure = Figure9(
            sweep_wq0=sweep_fn(runner, 0, size_factors=(1.0, 2.0), workloads=WORKLOADS),
            sweep_wqno=sweep_fn(runner, None, size_factors=(1.0, 2.0), workloads=WORKLOADS),
        )
        for workload in WORKLOADS:
            assert figure.average_bsld("NO", workload, 2.0) <= figure.average_bsld(
                "NO", workload, 1.0
            ) + 1e-9
        assert "Figure 9" in figure.render()


class TestTables:
    def test_table1_rows(self, runner):
        table = table1(runner)
        assert len(table.rows) == len(WORKLOAD_NAMES)
        for _name, _cpus, jobs, measured, paper in table.rows:
            assert jobs == N_JOBS
            assert measured >= 1.0
            assert paper >= 1.0
        assert table.measured("CTC") >= 1.0
        with pytest.raises(KeyError):
            table.measured("nope")
        assert "Table 1" in table.render()

    def test_table3_columns(self, runner):
        table = table3(runner)
        for name in WORKLOAD_NAMES:
            row = table.rows[name]
            assert set(row) == {"OrigNoDVFS", "OrigWQ0", "OrigWQNo", "Inc50WQ0", "Inc50WQNo"}
            for value in row.values():
                assert value >= 0.0
        assert table.paper is PAPER_TABLE3
        assert "Table 3" in table.render()

    def test_paper_table3_shape(self):
        # the paper's own numbers, sanity: +50% systems always wait less
        for _name, row in PAPER_TABLE3.items():
            assert row["Inc50WQ0"] <= row["OrigWQ0"] or row["OrigWQ0"] == 0
