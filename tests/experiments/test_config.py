"""Unit tests for experiment descriptors."""

import pytest

from repro.core.frequency_policy import BsldThresholdPolicy, FixedGearPolicy
from repro.core.util_policy import UtilizationTriggeredPolicy
from repro.experiments.config import (
    BSLD_THRESHOLDS,
    PolicySpec,
    RunSpec,
    SIZE_FACTORS,
    WQ_THRESHOLDS,
    wq_label,
)


class TestPaperGrids:
    def test_threshold_grid_matches_paper(self):
        assert BSLD_THRESHOLDS == (1.5, 2.0, 3.0)
        assert WQ_THRESHOLDS == (0, 4, 16, None)

    def test_size_factors_match_paper(self):
        assert SIZE_FACTORS == (1.0, 1.1, 1.2, 1.5, 1.75, 2.0, 2.25)

    def test_wq_label(self):
        assert wq_label(None) == "NO"
        assert wq_label(0) == "0"
        assert wq_label(16) == "16"


class TestPolicySpec:
    def test_baseline_builds_fixed_top(self):
        policy = PolicySpec.baseline().build()
        assert isinstance(policy, FixedGearPolicy)
        assert not policy.applies_dvfs

    def test_power_aware_builds_bsld_policy(self):
        spec = PolicySpec.power_aware(2.0, 4)
        policy = spec.build()
        assert isinstance(policy, BsldThresholdPolicy)
        assert policy.bsld_threshold == 2.0
        assert policy.wq_threshold == 4

    def test_util_kind(self):
        assert isinstance(PolicySpec(kind="util").build(), UtilizationTriggeredPolicy)

    def test_fixed_kind_requires_frequency(self):
        with pytest.raises(ValueError, match="fixed_frequency"):
            PolicySpec(kind="fixed")

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown policy kind"):
            PolicySpec(kind="magic")

    def test_boost_config(self):
        assert PolicySpec.baseline().boost_config() is None
        spec = PolicySpec.power_aware(2.0, None, boost_trigger=4)
        assert spec.boost_config().wq_trigger == 4

    def test_labels(self):
        assert PolicySpec.baseline().label() == "NoDVFS"
        assert PolicySpec.power_aware(2.0, None).label() == "DVFS(2,NO)"
        assert PolicySpec.power_aware(1.5, 4).label() == "DVFS(1.5,4)"
        assert "strict" in PolicySpec.power_aware(2.0, 0, strict_top_backfill=True).label()
        assert "boost" in PolicySpec.power_aware(2.0, 0, boost_trigger=2).label()
        assert PolicySpec(kind="fixed", fixed_frequency=0.8).label() == "Fixed0.8GHz"
        assert PolicySpec(kind="util").label() == "UtilTrigger"

    def test_hashable_for_caching(self):
        a = PolicySpec.power_aware(2.0, 4)
        b = PolicySpec.power_aware(2.0, 4)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestRunSpec:
    def test_defaults(self):
        spec = RunSpec(workload="CTC")
        assert spec.n_jobs is None  # "use the context's default trace length"
        assert spec.size_factor == 1.0
        assert spec.scheduler == "easy"
        assert spec.power_model == "paper"
        assert spec.source == "synthetic"

    def test_sized_pins_trace_length(self):
        spec = RunSpec(workload="CTC").sized(250)
        assert spec.n_jobs == 250

    def test_with_policy_and_scaled(self):
        spec = RunSpec(workload="CTC", n_jobs=100)
        powered = spec.with_policy(PolicySpec.power_aware(3.0, None))
        assert powered.policy.bsld_threshold == 3.0
        assert powered.n_jobs == 100
        bigger = powered.scaled(1.5)
        assert bigger.size_factor == 1.5
        assert bigger.policy == powered.policy

    def test_label(self):
        spec = RunSpec(workload="SDSC", policy=PolicySpec.power_aware(2.0, 0))
        assert spec.label() == "SDSC DVFS(2,0)"
        assert "x1.5" in spec.scaled(1.5).label()

    @pytest.mark.parametrize(
        "kw,match",
        [
            (dict(n_jobs=0), "n_jobs"),
            (dict(size_factor=0.0), "size_factor"),
            (dict(scheduler="random"), "scheduler"),
        ],
    )
    def test_validation(self, kw, match):
        with pytest.raises(ValueError, match=match):
            RunSpec(workload="CTC", **kw)
