"""Integration test for the reproduction report builder."""

import pytest

from repro.experiments.report import build_report
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def report_text():
    return build_report(ExperimentRunner(n_jobs=80), include_ablations=False)


class TestReport:
    def test_all_sections_present(self, report_text):
        for heading in (
            "Table 1",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "Table 3",
            "Reproduction notes",
        ):
            assert heading in report_text, f"missing section {heading!r}"

    def test_paper_values_embedded(self, report_text):
        assert "24.91" in report_text  # SDSC Table 1 anchor
        assert "1219" in report_text  # Thunder Figure 4 anchor
        assert "36001" in report_text  # SDSC Table 3 anchor

    def test_markdown_table_syntax(self, report_text):
        assert "| Workload | CPUs | Paper | Measured |" in report_text

    def test_no_ablations_flag(self, report_text):
        assert "Ablation A1" not in report_text

    def test_with_ablations(self):
        text = build_report(ExperimentRunner(n_jobs=60), include_ablations=True)
        assert "Ablation A1" in text
        assert "Ablation A4" in text

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "EXPERIMENTS.md"
        code = main(
            ["--jobs", "60", "report", "--no-ablations", "--output", str(out_file)]
        )
        assert code == 0
        assert "wrote report" in capsys.readouterr().out
        assert out_file.read_text().startswith("# EXPERIMENTS")

    def test_cli_sleep_ablation(self, capsys):
        from repro.cli import main

        assert main(["--jobs", "60", "ablation", "sleep"]) == 0
        assert "idle sleep states" in capsys.readouterr().out
