"""Unit tests for the memoising experiment runner."""

import pytest

from repro.experiments.config import PolicySpec, RunSpec
from repro.experiments.runner import ExperimentRunner


@pytest.fixture
def runner():
    return ExperimentRunner(n_jobs=150)


class TestTraceCache:
    def test_jobs_cached_by_identity(self, runner):
        assert runner.jobs_for("CTC") is runner.jobs_for("CTC")

    def test_distinct_workloads_distinct_traces(self, runner):
        assert runner.jobs_for("CTC") is not runner.jobs_for("SDSC")

    def test_explicit_length(self, runner):
        assert len(runner.jobs_for("CTC", 37)) == 37
        assert len(runner.jobs_for("CTC")) == 150


class TestMachineFor:
    def test_paper_sizes(self, runner):
        assert runner.machine_for("SDSCBlue").total_cpus == 1152
        assert runner.machine_for("SDSCBlue", 1.5).total_cpus == 1728

    def test_unknown_workload(self, runner):
        with pytest.raises(KeyError):
            runner.machine_for("nope")


class TestResultCache:
    def test_identical_spec_served_from_cache(self, runner):
        spec = RunSpec(workload="CTC", n_jobs=150)
        first = runner.run(spec)
        assert runner.cached_runs == 1
        second = runner.run(RunSpec(workload="CTC", n_jobs=150))
        assert second is first
        assert runner.cached_runs == 1

    def test_default_length_specs_normalised(self, runner):
        """Unset n_jobs is pinned to the runner default before caching, so
        both spellings of "the default-length run" share one entry."""
        first = runner.run(RunSpec(workload="CTC"))
        assert first.job_count == 150
        assert runner.cached_runs == 1
        second = runner.run(RunSpec(workload="CTC", n_jobs=150))
        assert second is first
        assert runner.cached_runs == 1

    def test_run_many_serial_matches_run(self, runner):
        specs = [
            RunSpec(workload="CTC"),
            RunSpec(workload="CTC", policy=PolicySpec.power_aware(2.0, 4)),
            RunSpec(workload="CTC"),  # duplicate resolves to the same result
        ]
        results = runner.run_many(specs)
        assert results[0] is results[2]
        assert results[1] is runner.run(specs[1])

    def test_different_policy_not_shared(self, runner):
        base = runner.baseline("CTC")
        powered = runner.power_aware("CTC", 2.0, 4)
        assert base is not powered
        assert runner.cached_runs == 2

    def test_baseline_helper_is_nodvfs(self, runner):
        result = runner.baseline("CTC")
        assert result.reduced_jobs == 0
        assert result.policy == "FixedGear(top)"

    def test_power_aware_helper(self, runner):
        result = runner.power_aware("LLNLThunder", 2.0, None)
        assert "BSLDthreshold=2" in result.policy

    def test_size_factor_spawns_new_run(self, runner):
        small = runner.baseline("CTC")
        large = runner.baseline("CTC", size_factor=1.5)
        assert large.machine.total_cpus == 645
        assert small.machine.total_cpus == 430

    def test_scheduler_choice(self, runner):
        spec = RunSpec(workload="CTC", n_jobs=80, scheduler="fcfs")
        fcfs = runner.run(spec)
        easy = runner.run(RunSpec(workload="CTC", n_jobs=80, scheduler="easy"))
        assert fcfs.average_wait() >= easy.average_wait() - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError, match="n_jobs"):
            ExperimentRunner(n_jobs=0)


class TestValidateMode:
    def test_validate_flag_runs_checks(self):
        runner = ExperimentRunner(n_jobs=60, validate=True)
        result = runner.power_aware("SDSC", 2.0, 4)
        assert result.job_count == 60
