"""Unit/integration tests for the system-dimensioning advisor."""

import pytest

from repro.experiments.advisor import recommend_system_size
from repro.experiments.config import PolicySpec
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(n_jobs=150)


class TestRecommendation:
    def test_chooses_sla_satisfying_candidate(self, runner):
        recommendation = recommend_system_size(
            runner, "SDSC", sla_bsld=8.0, size_factors=(1.0, 1.5, 2.0)
        )
        assert recommendation.sla_feasible
        assert recommendation.chosen.meets_sla
        assert recommendation.chosen.avg_bsld <= 8.0

    def test_unsatisfiable_sla_returns_none(self, runner):
        recommendation = recommend_system_size(
            runner, "SDSC", sla_bsld=1.0001, size_factors=(1.0,)
        )
        assert not recommendation.sla_feasible
        assert recommendation.chosen is None
        assert "No evaluated size satisfies" in recommendation.render()

    def test_loose_sla_minimises_energy(self, runner):
        """With every candidate feasible, the idle=low objective picks
        the energy minimum, not just the smallest machine."""
        recommendation = recommend_system_size(
            runner, "LLNLThunder", sla_bsld=100.0, size_factors=(1.0, 1.5, 2.0)
        )
        assert recommendation.sla_feasible
        energies = {c.size_factor: c.energy_idlelow for c in recommendation.candidates}
        assert recommendation.chosen.energy_idlelow == min(energies.values())

    def test_idle0_objective(self, runner):
        recommendation = recommend_system_size(
            runner, "LLNLThunder", sla_bsld=100.0, size_factors=(1.0, 1.5),
            objective="idle0",
        )
        feasible = [c for c in recommendation.candidates if c.meets_sla]
        assert recommendation.chosen.energy_idle0 == min(c.energy_idle0 for c in feasible)

    def test_custom_policy(self, runner):
        recommendation = recommend_system_size(
            runner, "CTC", sla_bsld=50.0,
            policy=PolicySpec.power_aware(1.5, 0), size_factors=(1.0,),
        )
        assert "DVFS(1.5,0)" in recommendation.render()

    def test_candidates_cover_all_factors(self, runner):
        recommendation = recommend_system_size(
            runner, "CTC", sla_bsld=50.0, size_factors=(1.0, 1.2, 1.5)
        )
        assert [c.size_factor for c in recommendation.candidates] == [1.0, 1.2, 1.5]

    def test_validation(self, runner):
        with pytest.raises(ValueError, match="unsatisfiable"):
            recommend_system_size(runner, "CTC", sla_bsld=0.5)
        with pytest.raises(ValueError, match="objective"):
            recommend_system_size(runner, "CTC", sla_bsld=2.0, objective="both")

    def test_render_marks_chosen(self, runner):
        recommendation = recommend_system_size(
            runner, "SDSC", sla_bsld=8.0, size_factors=(1.0, 2.0)
        )
        assert "<- chosen" in recommendation.render()

    def test_cli_advise(self, capsys):
        from repro.cli import main

        code = main(["--jobs", "80", "advise", "LLNLThunder", "--sla-bsld", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Dimensioning LLNLThunder" in out
