"""Integration tests for the ablation studies (small traces)."""

import pytest

from repro.experiments.ablations import (
    beta_sweep,
    gear_ladder_ablation,
    policy_comparison,
    static_share_sweep,
    strict_backfill_comparison,
)
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(n_jobs=100)


class TestBetaSweep:
    def test_beta_zero_reduces_everything_for_free(self, runner):
        sweep = beta_sweep(runner, workload="LLNLThunder", betas=(0.0, 1.0))
        by_beta = {row[0]: row for row in sweep.rows}
        # beta=0: no time penalty, all jobs reduced, max energy saving.
        assert by_beta[0.0][3] >= by_beta[1.0][3]
        assert by_beta[0.0][1] <= by_beta[1.0][1] + 1e-9

    def test_energy_ratio_bounds(self, runner):
        sweep = beta_sweep(runner, workload="CTC", betas=(0.0, 0.5))
        for _, energy, bsld, _reduced in sweep.rows:
            assert 0.0 < energy <= 1.0 + 1e-9
            assert bsld >= 1.0
        assert "beta sensitivity" in sweep.render()


class TestStaticShareSweep:
    def test_more_static_power_less_relative_saving(self, runner):
        """Static power scales only with V (not f*V^2), so a larger
        static share damps the relative benefit of down-clocking."""
        sweep = static_share_sweep(runner, workload="LLNLThunder", shares=(0.0, 0.5))
        by_share = {row[0]: row for row in sweep.rows}
        assert by_share[0.5][1] >= by_share[0.0][1] - 1e-9
        assert "static power share" in sweep.render()


class TestStrictBackfill:
    def test_three_variants(self, runner):
        comparison = strict_backfill_comparison(runner, workload="SDSC")
        labels = [row[0] for row in comparison.rows]
        assert labels == ["no-DVFS", "relaxed (default)", "strict (literal)"]

    def test_strict_never_waits_less(self, runner):
        comparison = strict_backfill_comparison(runner, workload="SDSC")
        by_label = {row[0]: row for row in comparison.rows}
        # strict mode blocks Ftop backfills -> waits cannot improve
        assert by_label["strict (literal)"][2] >= by_label["relaxed (default)"][2] - 1e-6
        assert "Figure-2" in comparison.render()


class TestPolicyComparison:
    def test_rows_present(self, runner):
        comparison = policy_comparison(runner, workload="CTC", n_jobs=100)
        labels = [row[0] for row in comparison.rows]
        assert "EASY no-DVFS" in labels
        assert "FCFS no-DVFS" in labels
        assert "Conservative DVFS(2,NO)" in labels
        assert any("boost" in label for label in labels)

    def test_fcfs_worst_or_equal_wait(self, runner):
        comparison = policy_comparison(runner, workload="CTC", n_jobs=100)
        by_label = {row[0]: row for row in comparison.rows}
        assert by_label["FCFS no-DVFS"][2] >= by_label["EASY no-DVFS"][2] - 1e-6

    def test_boost_between_plain_extremes(self, runner):
        comparison = policy_comparison(runner, workload="CTC", n_jobs=100)
        by_label = {row[0]: row for row in comparison.rows}
        plain = by_label["EASY DVFS(2,NO)"]
        boosted = by_label["EASY DVFS(2,NO)+boost4"]
        assert boosted[2] <= plain[2] + 1e-6  # boost can only cut waits
        assert "policy comparison" in comparison.render()


class TestGearLadder:
    def test_ladder_rows(self, runner):
        ablation = gear_ladder_ablation(runner, workload="SDSCBlue")
        assert len(ablation.rows) == 3
        for _, energy, bsld, reduced in ablation.rows:
            assert energy > 0.0
            assert bsld >= 1.0
            assert reduced >= 0
        assert "gear-set granularity" in ablation.render()

    def test_upper_half_ladder_saves_less_than_full(self, runner):
        ablation = gear_ladder_ablation(runner, workload="LLNLThunder")
        by_label = {row[0]: row for row in ablation.rows}
        full = by_label["full paper ladder"][1]
        upper = by_label["upper half {1.7, 2.0, 2.3}"][1]
        assert upper >= full - 1e-9  # fewer/shallower gears -> less saving
