"""Tests for the steppable SimulationSession and the instrument API.

Covers the session driving surface (step / run_until / run_for /
result), the typed lifecycle stream, the bundled instruments, spec
addressability (``RunSpec.instruments``) with exact serialisation, and
the two runtime-control scenarios: power capping and mid-run policy
hot-swap.  The hypothesis property at the bottom is the tentpole
invariant: attaching passive observers never changes what a simulation
computes.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Simulation
from repro.batch import BatchRunner
from repro.cluster.power import SleepPolicy
from repro.experiments.config import InstrumentSpec, PolicySpec, RunSpec
from repro.instruments import Instrument, PowerCapController, PowerTelemetrySampler
from repro.registry import INSTRUMENTS, RegistryError
from repro.scheduling.export import event_trace_to_csv
from repro.serialize import result_to_dict, spec_from_dict, spec_json, spec_to_dict
from repro.session import SessionCancelled
from repro.sim.events import (
    ClockTick,
    GearSelected,
    JobFinished,
    JobStarted,
    JobSubmitted,
    QueueDepthChanged,
)

SMALL = RunSpec(workload="SDSC", n_jobs=120, seed=7, policy=PolicySpec.baseline())
SMALL_DVFS = SMALL.with_policy(PolicySpec.power_aware(2.0, None))


def comparable(result) -> dict:
    """The result dict minus instrument reports (observation metadata)."""
    data = result_to_dict(result)
    data.pop("instruments")
    return data


class TestSessionDriving:
    def test_session_starts_unstarted(self):
        session = Simulation(SMALL).session()
        assert session.now == 0.0
        assert session.events_processed == 0
        assert session.pending_events == SMALL.n_jobs
        assert not session.done

    def test_step_until_drained_matches_run(self):
        base = Simulation(SMALL_DVFS).run()
        session = Simulation(SMALL_DVFS).session()
        steps = 0
        while session.step():
            steps += 1
        assert session.done
        assert steps == session.events_processed
        assert comparable(session.result()) == comparable(base)

    def test_run_for_counts_events(self):
        session = Simulation(SMALL).session()
        assert session.run_for(10) == 10
        assert session.events_processed == 10
        # Draining returns fewer than asked once the queue empties.
        total = session.run_for(10**9)
        assert session.done
        assert 10 + total == session.events_processed

    def test_run_for_rejects_negative(self):
        session = Simulation(SMALL).session()
        with pytest.raises(ValueError, match="non-negative"):
            session.run_for(-1)

    def test_stepping_enforces_the_event_budget(self):
        from repro.sim.engine import SimulationError

        session = Simulation(SMALL).session()
        session._scheduler._event_budget = 3  # simulate a runaway scheduler
        with pytest.raises(SimulationError, match="event budget"):
            session.run_for(10)
        assert session.events_processed == 3
        with pytest.raises(SimulationError, match="event budget"):
            session.step()

    def test_run_until_stops_the_clock(self):
        session = Simulation(SMALL).session()
        session.run_until(50_000.0)
        assert session.now <= 50_000.0
        assert not session.done
        before = session.events_processed
        session.run_until(50_000.0)  # idempotent: nothing earlier remains
        assert session.events_processed == before
        assert comparable(session.result()) == comparable(Simulation(SMALL).run())

    def test_mixed_driving_matches_run(self):
        session = Simulation(SMALL_DVFS).session()
        session.run_for(17)
        session.run_until(40_000.0)
        session.step()
        assert comparable(session.result()) == comparable(Simulation(SMALL_DVFS).run())

    def test_result_is_idempotent_and_seals_the_session(self):
        session = Simulation(SMALL).session()
        first = session.result()
        assert first is session.result()
        for drive in (session.step, lambda: session.run_for(1),
                      lambda: session.run_until(1.0), session.run_to_completion):
            with pytest.raises(RuntimeError, match="finalised"):
                drive()

    def test_facade_run_unchanged_without_instruments(self):
        # The trivial wrapper contract: run() == session().result() and
        # neither carries instrument reports when the spec names none.
        assert Simulation(SMALL).run().instruments == ()
        assert result_to_dict(Simulation(SMALL).session().result()) == result_to_dict(
            Simulation(SMALL).run()
        )


class TestInstrumentSpec:
    def test_params_are_canonicalised(self):
        a = InstrumentSpec.of("power_cap", release=0.9, cap=700.0)
        b = InstrumentSpec.of("power_cap", cap=700.0, release=0.9)
        assert a == b
        assert hash(a) == hash(b)
        assert a.params == (("cap", 700.0), ("release", 0.9))

    def test_unknown_instrument_rejected(self):
        with pytest.raises(ValueError, match="unknown instrument"):
            InstrumentSpec.of("definitely_not_registered")

    def test_nested_lists_become_tuples(self):
        spec = InstrumentSpec.of("power_cap", cap=700.0, schedule=[[0.0, 700.0], [10.0, 500.0]])
        assert spec.params == (
            ("cap", 700.0),
            ("schedule", ((0.0, 700.0), (10.0, 500.0))),
        )
        hash(spec)  # still hashable

    def test_build_materialises_registered_class(self):
        instrument = InstrumentSpec.of("power_telemetry", min_interval=60.0).build()
        assert isinstance(instrument, PowerTelemetrySampler)
        assert instrument.min_interval == 60.0

    def test_registry_carries_bundled_instruments(self):
        for name in ("power_telemetry", "bsld_monitor", "event_trace", "power_cap"):
            assert name in INSTRUMENTS
        with pytest.raises(RegistryError):
            INSTRUMENTS.get("nope")

    def test_spec_serialisation_round_trips(self):
        spec = SMALL.with_instruments(
            InstrumentSpec.of("power_cap", cap=700.0, schedule=((0.0, 700.0), (9.0, 500.0))),
            InstrumentSpec.of("power_telemetry", min_interval=30.0),
        )
        assert spec_from_dict(spec_to_dict(spec)) == spec
        assert spec_json(spec) != spec_json(SMALL)  # instruments are cache-key relevant

    def test_runspec_rejects_non_specs(self):
        with pytest.raises(ValueError, match="InstrumentSpec"):
            RunSpec(workload="SDSC", instruments=("power_telemetry",))

    def test_runspec_label_names_instruments(self):
        spec = SMALL.with_instruments(InstrumentSpec.of("power_telemetry"))
        assert spec.label().endswith("+power_telemetry")


class TestBundledInstruments:
    def test_power_telemetry_samples(self):
        spec = SMALL.with_instruments(InstrumentSpec.of("power_telemetry"))
        result = Simulation(spec).run()
        report = result.instrument("power_telemetry")
        samples = report["samples"]
        assert samples and report["sample_count"] == len(samples)
        times = [row[0] for row in samples]
        assert times == sorted(times)
        assert report["peak_watts"] == max(row[1] for row in samples)
        total = result.machine.total_cpus
        idle = Simulation(spec).build_scheduler().power_model.idle_power()
        for _, watts, busy, depth, asleep in samples:
            assert 0 <= busy <= total and depth >= 0
            assert asleep == 0  # no sleep policy on this spec
            assert watts >= idle * (total - busy) - 1e-9

    def test_power_telemetry_min_interval_thins(self):
        dense = Simulation(SMALL.with_instruments(
            InstrumentSpec.of("power_telemetry"))).run()
        sparse = Simulation(SMALL.with_instruments(
            InstrumentSpec.of("power_telemetry", min_interval=50_000.0))).run()
        assert (len(sparse.instrument("power_telemetry")["samples"])
                < len(dense.instrument("power_telemetry")["samples"]))

    def test_power_telemetry_max_samples_truncates_but_tracks_peak(self):
        capped = Simulation(SMALL.with_instruments(
            InstrumentSpec.of("power_telemetry", max_samples=3))).run()
        full = Simulation(SMALL.with_instruments(
            InstrumentSpec.of("power_telemetry"))).run()
        report = capped.instrument("power_telemetry")
        assert len(report["samples"]) == 3
        assert report["dropped_samples"] > 0
        assert report["peak_watts"] == full.instrument("power_telemetry")["peak_watts"]

    def test_bsld_monitor_matches_result_metrics(self):
        spec = SMALL_DVFS.with_instruments(InstrumentSpec.of("bsld_monitor", sample_every=25))
        result = Simulation(spec).run()
        report = result.instrument("bsld_monitor")
        assert report["count"] == result.job_count
        assert report["mean"] == pytest.approx(result.average_bsld())
        bslds = sorted(result.bslds())
        assert report["p50"] in bslds
        assert report["max"] == pytest.approx(bslds[-1])
        assert report["p50"] <= report["p90"] <= report["p99"] <= report["max"]
        # Periodic snapshots plus the closing one covering the tail
        # (120 jobs at sample_every=25 -> 4 periodic + 1 closing).
        assert len(report["series"]) == result.job_count // 25 + 1
        assert report["series"][-1][1] == result.job_count
        assert report["series"][-1][2] == pytest.approx(report["mean"])

    def test_bsld_monitor_series_closes_at_the_tail(self):
        """Regression: jobs finishing after the last sample_every multiple
        were missing from the series; the closing snapshot must agree
        with the report's own totals."""
        spec = SMALL_DVFS.with_instruments(InstrumentSpec.of("bsld_monitor", sample_every=50))
        report = Simulation(spec).run().instrument("bsld_monitor")
        # 120 jobs at sample_every=50: snapshots at 50, 100, then the tail.
        assert len(report["series"]) == 3
        closing = report["series"][-1]
        assert closing[1] == report["count"]
        assert closing[2] == pytest.approx(report["mean"])
        assert closing[3] == report["p50"]
        assert closing[4] == report["p90"]
        assert closing[5] == report["p99"]
        times = [row[0] for row in report["series"]]
        assert times == sorted(times)

    def test_bsld_monitor_series_not_doubled_when_divisible(self):
        """When the job count lands exactly on a sampling boundary the
        periodic snapshot already covers the tail; no duplicate."""
        spec = SMALL_DVFS.with_instruments(InstrumentSpec.of("bsld_monitor", sample_every=40))
        result = Simulation(spec).run()
        report = result.instrument("bsld_monitor")
        assert len(report["series"]) == result.job_count // 40
        assert report["series"][-1][1] == report["count"]

    def test_event_trace_records_full_lifecycle(self):
        spec = SMALL_DVFS.with_instruments(InstrumentSpec.of("event_trace"))
        result = Simulation(spec).run()
        events = result.instrument("event_trace")["events"]
        kinds = {row["event"] for row in events}
        assert {"JobSubmitted", "JobStarted", "JobFinished", "GearSelected",
                "ClockTick", "QueueDepthChanged"} <= kinds
        n = SMALL.n_jobs
        assert sum(row["event"] == "JobSubmitted" for row in events) == n
        assert sum(row["event"] == "JobStarted" for row in events) == n
        assert sum(row["event"] == "JobFinished" for row in events) == n
        times = [row["time"] for row in events]
        assert times == sorted(times)

    def test_event_trace_accepts_bare_kind_string(self):
        spec = SMALL.with_instruments(InstrumentSpec.of("event_trace", kinds="JobFinished"))
        report = Simulation(spec).run().instrument("event_trace")
        assert report["recorded"] == SMALL.n_jobs
        assert all(row["event"] == "JobFinished" for row in report["events"])

    def test_event_trace_kind_filter_and_limit(self):
        spec = SMALL.with_instruments(
            InstrumentSpec.of("event_trace", kinds=("JobFinished",), limit=10)
        )
        report = Simulation(spec).run().instrument("event_trace")
        assert len(report["events"]) == 10
        assert all(row["event"] == "JobFinished" for row in report["events"])
        assert report["dropped"] == SMALL.n_jobs - 10

    def test_event_trace_to_csv(self, tmp_path):
        spec = SMALL.with_instruments(InstrumentSpec.of("event_trace"))
        result = Simulation(spec).run()
        path = tmp_path / "trace.csv"
        rows = event_trace_to_csv(result, path)
        lines = path.read_text().splitlines()
        assert rows == result.instrument("event_trace")["recorded"]
        assert len(lines) == rows + 1
        assert lines[0].startswith("event,time,job_id")

    def test_event_trace_to_csv_rejects_unknown_fields(self, tmp_path):
        with pytest.raises(ValueError, match="outside the trace schema"):
            event_trace_to_csv([{"event": "X", "mystery": 1}], tmp_path / "bad.csv")


class TestPowerCapScenario:
    def test_cap_forces_reduced_gears_under_nodvfs(self):
        plain = Simulation(SMALL).run()
        telemetry = Simulation(SMALL.with_instruments(
            InstrumentSpec.of("power_telemetry"))).run()
        peak = telemetry.instrument("power_telemetry")["peak_watts"]
        capped = Simulation(SMALL.with_instruments(
            InstrumentSpec.of("power_cap", cap=0.8 * peak))).run()
        report = capped.instrument("power_cap")
        assert plain.reduced_jobs == 0
        assert capped.reduced_jobs > 0
        assert report["reductions"] > 0
        assert report["time_capped"] > 0.0
        assert report["transitions"]

    def test_generous_cap_never_engages(self):
        telemetry = Simulation(SMALL.with_instruments(
            InstrumentSpec.of("power_telemetry"))).run()
        peak = telemetry.instrument("power_telemetry")["peak_watts"]
        result = Simulation(SMALL.with_instruments(
            InstrumentSpec.of("power_cap", cap=2.0 * peak))).run()
        report = result.instrument("power_cap")
        assert report["reductions"] == 0
        assert report["transitions"] == []
        assert comparable(result) == comparable(Simulation(SMALL).run())

    def test_end_of_run_settles_open_capped_interval(self):
        """Satellite sweep: a run that ends while still capped must fold
        the open ``_capped_since`` interval into ``time_capped``."""
        result = Simulation(SMALL.with_instruments(
            InstrumentSpec.of("power_cap", cap=1.0))).run()  # unmeetable cap
        report = result.instrument("power_cap")
        assert report["engaged_at_end"] is True
        first_engaged = report["transitions"][0][0]
        assert report["time_capped"] == pytest.approx(result.makespan - first_engaged)
        assert report["time_capped"] > 0.0

    def test_capped_report_is_stable_across_calls(self):
        """The end-of-run settlement must not double-count when the
        report is read more than once."""
        session = Simulation(SMALL.with_instruments(
            InstrumentSpec.of("power_cap", cap=1.0))).session()
        session.run_to_completion()
        controller = session.instrument("power_cap")
        assert controller.report() == controller.report()

    def test_cap_schedule_steps(self):
        controller = PowerCapController(cap=100.0, schedule=((50.0, 80.0), (10.0, 90.0)))
        assert controller.schedule == ((10.0, 90.0), (50.0, 80.0))  # sorted
        assert controller.active_cap(0.0) == 100.0
        assert controller.active_cap(10.0) == 90.0
        assert controller.active_cap(49.9) == 90.0
        assert controller.active_cap(1e9) == 80.0

    def test_cap_validation(self):
        with pytest.raises(ValueError, match="cap must be positive"):
            PowerCapController(cap=0.0)
        with pytest.raises(ValueError, match="release"):
            PowerCapController(cap=1.0, release=0.0)
        with pytest.raises(ValueError, match="scheduled caps"):
            PowerCapController(cap=1.0, schedule=((0.0, -5.0),))


class TestSessionCancel:
    """Satellite: cancel mid-slice is pinned — scheduler handles stood
    down, no dangling engine timers, result() raises a clear error."""

    SLEEPY = dataclasses.replace(SMALL, sleep=SleepPolicy(sleep_after_seconds=10.0))

    def test_cancel_mid_run_stands_down_engine_handles(self):
        session = Simulation(self.SLEEPY).session()
        session.run_for(40)  # mid-flight: running jobs + armed sleep timer
        scheduler = session._scheduler
        assert scheduler._running  # jobs genuinely in flight
        assert not session.cancelled
        session.cancel("test teardown")
        assert session.cancelled
        for running in scheduler._running.values():
            assert running.finish_handle is None
        assert scheduler._sleep._timer is None
        assert scheduler._sleep._emit is None  # nothing can re-arm it

    def test_cancelled_session_refuses_everything(self):
        session = Simulation(SMALL).session()
        session.run_for(10)
        session.cancel("client went away")
        for drive in (session.step, lambda: session.run_for(1),
                      lambda: session.run_until(1.0), session.run_to_completion,
                      session.result):
            with pytest.raises(SessionCancelled, match="client went away"):
                drive()

    def test_cancel_without_reason_has_generic_message(self):
        session = Simulation(SMALL).session()
        session.cancel()
        with pytest.raises(SessionCancelled, match="session cancelled"):
            session.result()

    def test_cancel_is_idempotent(self):
        session = Simulation(SMALL).session()
        session.cancel("first")
        session.cancel("second")  # no-op, keeps the original reason
        with pytest.raises(SessionCancelled, match="first"):
            session.result()

    def test_cancel_after_result_is_rejected(self):
        session = Simulation(SMALL).session()
        result = session.result()
        with pytest.raises(RuntimeError, match="already finalised"):
            session.cancel()
        assert session.result() is result  # result stays retrievable

    def test_cancel_before_any_driving(self):
        session = Simulation(self.SLEEPY).session()
        session.cancel("never started")
        with pytest.raises(SessionCancelled, match="never started"):
            session.step()


class TestRuntimeControl:
    def test_policy_hot_swap_midrun(self):
        session = Simulation(SMALL).session()
        session.run_until(40_000.0)
        session.set_policy(PolicySpec.power_aware(3.0, None))
        result = session.result()
        assert "BSLDthreshold=3" in result.policy
        # Jobs started before the swap ran at the fixed top gear.
        swap_time = 40_000.0
        for outcome in result.outcomes:
            if outcome.start_time <= swap_time:
                assert not outcome.was_reduced

    def test_policy_hot_swap_accepts_built_policy(self):
        from repro.core.frequency_policy import FixedGearPolicy

        session = Simulation(SMALL_DVFS).session()
        session.run_for(5)
        session.set_policy(FixedGearPolicy())
        assert "FixedGear" in session.result().policy

    def test_manual_gear_cap(self):
        session = Simulation(SMALL).session()
        gears = Simulation(SMALL).machine.gears
        session.set_gear_cap(gears.lowest.frequency)
        assert session.gear_cap == gears.lowest.frequency
        result = session.result()
        assert result.reduced_jobs == result.job_count
        assert all(o.gear == gears.lowest for o in result.outcomes)
        # The label stays the configured policy: cap state is transient
        # controller input, not part of the run's identity.
        assert "cap" not in result.policy

    def test_gear_cap_lift_restores_base_policy(self):
        session = Simulation(SMALL).session()
        session.set_gear_cap(1.4)
        session.set_gear_cap(None)
        result = session.result()
        assert result.reduced_jobs == 0
        assert "cap" not in result.policy


class _Recorder(Instrument):
    """A bare instrument accumulating every event it sees."""

    def __init__(self) -> None:
        super().__init__()
        self.seen = []

    def on_event(self, event) -> None:
        self.seen.append(event)


class TestObserverSafety:
    """Satellite: observers can never mutate engine state."""

    EVENTS = (
        JobSubmitted(1.0, 7, 4, 100.0),
        JobStarted(1.0, 7, 4, 2.3, 0.0),
        JobFinished(2.0, 7, 4, 2.3, 50.0, 50.0, 55.0, 10.0, False),
        GearSelected(1.0, 7, 2.3, "start"),
        QueueDepthChanged(1.0, 3),
        ClockTick(1.0),
    )

    @pytest.mark.parametrize("event", EVENTS, ids=lambda e: type(e).__name__)
    def test_lifecycle_events_are_frozen(self, event):
        for field in dataclasses.fields(event):
            with pytest.raises(dataclasses.FrozenInstanceError):
                setattr(event, field.name, None)
        # Slots block novel attributes too; the exception type varies by
        # Python version (3.10/3.11 raise TypeError from the frozen
        # __setattr__'s super() call, later versions AttributeError).
        with pytest.raises((dataclasses.FrozenInstanceError, AttributeError, TypeError)):
            event.novel_attribute = 1

    def test_events_carry_scalars_only(self):
        for event in self.EVENTS:
            for field in dataclasses.fields(event):
                assert isinstance(
                    getattr(event, field.name), (int, float, str, bool)
                ), f"{type(event).__name__}.{field.name} is not a plain scalar"

    def test_direct_instrument_attachment(self):
        recorder = _Recorder()
        session = Simulation(SMALL).session(instruments=[recorder])
        result = session.result()
        assert len(recorder.seen) > 3 * SMALL.n_jobs
        assert result.instrument("_Recorder").summary == {}

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        workload=st.sampled_from(["SDSC", "CTC"]),
        policy=st.sampled_from(
            [
                PolicySpec.baseline(),
                PolicySpec.power_aware(2.0, 4),
                PolicySpec.power_aware(1.5, None),
            ]
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_passive_observers_never_change_the_simulation(self, seed, workload, policy):
        spec = RunSpec(workload=workload, n_jobs=60, seed=seed, policy=policy)
        plain = Simulation(spec).run()
        observed = Simulation(
            spec.with_instruments(
                InstrumentSpec.of("power_telemetry"),
                InstrumentSpec.of("bsld_monitor", sample_every=10),
                InstrumentSpec.of("event_trace"),
            )
        ).run()
        assert comparable(observed) == comparable(plain)


class TestBatchIntegration:
    def test_batch_runner_handles_instrumented_specs(self, tmp_path):
        spec = SMALL.with_instruments(InstrumentSpec.of("power_telemetry"))
        runner = BatchRunner(max_workers=0, cache_dir=tmp_path)
        first = runner.run([spec, SMALL])
        assert first[0].instrument("power_telemetry")["samples"]
        assert first[1].instruments == ()
        again = BatchRunner(max_workers=0, cache_dir=tmp_path).run([spec])
        assert again[0] == first[0]  # exact cache round-trip, reports included

    def test_instrumented_and_plain_specs_have_distinct_cache_keys(self):
        from repro.serialize import spec_key

        spec = SMALL.with_instruments(InstrumentSpec.of("power_telemetry"))
        assert spec_key(spec) != spec_key(SMALL)
