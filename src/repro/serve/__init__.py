"""Simulation as a service: the ``repro serve`` daemon and its client.

The package turns runs into requests: :class:`~repro.serve.server.ReproServer`
is an asyncio HTTP/JSON front door that validates submitted
:class:`~repro.experiments.config.RunSpec` documents through the exact
codecs in :mod:`repro.serialize`, multiplexes many concurrent
:class:`~repro.session.SimulationSession` runs over a worker pool,
streams instrument telemetry (the typed lifecycle events of
:mod:`repro.sim.events`) as NDJSON/SSE, and shares the on-disk result
cache across clients with single-flight dedup — identical cache-keyed
specs submitted concurrently run exactly once.

:mod:`~repro.serve.protocol` pins the wire schema (error payloads,
job states, the telemetry row format); :mod:`~repro.serve.quotas`
enforces per-client admission control; :mod:`~repro.serve.client`
is the thin blocking client the ``repro submit``/``repro status``
CLI verbs ride on.
"""

from repro.serve.client import ServeClient
from repro.serve.protocol import PROTOCOL_VERSION, ServeError
from repro.serve.quotas import QuotaLedger, QuotaPolicy
from repro.serve.server import ReproServer

__all__ = [
    "PROTOCOL_VERSION",
    "QuotaLedger",
    "QuotaPolicy",
    "ReproServer",
    "ServeClient",
    "ServeError",
]
