"""The serve wire protocol: error schema, job states, telemetry rows.

One error schema everywhere: a failed HTTP request and a failed CLI
invocation (``repro --json``) both produce a single JSON object shaped

    {"error": {"code": "...", "message": "...", "field": "..."}}

where ``code`` is drawn from the stable vocabulary below and maps to
both an HTTP status (on the wire) and a process exit code (in the
shell).  ``field`` is the offending spec field path when the failure is
a validation error (see :class:`repro.serialize.SpecValidationError`),
else ``null``.

Telemetry rows reuse the :class:`~repro.instruments.EventTraceRecorder`
row shape — the event's dataclass fields plus an ``"event"`` type tag —
so a streamed trace and a recorded one are interchangeable.  A stream
always ends with one ``{"event": "EndOfStream", ...}`` sentinel row
carrying the job's terminal state.
"""

from __future__ import annotations

import json
from dataclasses import fields as dataclass_fields
from typing import Any

from repro.sim.events import LifecycleEvent

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "HTTP_STATUS",
    "EXIT_CODES",
    "ServeError",
    "JOB_STATES",
    "TERMINAL_STATES",
    "END_OF_STREAM",
    "event_to_wire",
    "ndjson_line",
    "sse_line",
    "error_json",
]

#: Bumped when the request/response shapes change incompatibly.
PROTOCOL_VERSION = 1

# -- error vocabulary ---------------------------------------------------------
#: ``code -> (HTTP status, CLI exit code)``.  Exit codes are part of the
#: CLI contract (scripts branch on them); append, never renumber.
_ERROR_TABLE: dict[str, tuple[int, int]] = {
    "invalid_request": (400, 2),  # malformed HTTP/JSON envelope or flags
    "invalid_spec": (400, 3),  # RunSpec document failed validation
    "not_found": (404, 4),  # no such job (or route)
    "quota_exceeded": (429, 5),  # per-client admission control refused
    "cancelled": (409, 6),  # the job was cancelled; no result exists
    "not_ready": (409, 7),  # result requested before the run finished
    "unavailable": (503, 8),  # server shutting down / shedding load
    "simulation_failed": (500, 9),  # the run itself raised
    "server_error": (500, 1),  # anything else
    "lease_expired": (500, 10),  # worker slice outlived its lease; watchdog killed it
}

ERROR_CODES = frozenset(_ERROR_TABLE)
HTTP_STATUS = {code: status for code, (status, _exit) in _ERROR_TABLE.items()}
EXIT_CODES = {code: exit_code for code, (_status, exit_code) in _ERROR_TABLE.items()}


class ServeError(Exception):
    """A structured protocol failure.

    Raised server-side (rendered as the HTTP error payload) and
    re-raised client-side after decoding that payload, so callers on
    both ends handle one exception type.  ``field`` locates the
    offending spec field for validation failures.  ``retry_after``
    (seconds) rides along on load-shedding 503s — the server renders it
    as a ``Retry-After`` header and embeds it in the payload, and the
    client's backoff honours it.
    """

    def __init__(
        self,
        code: str,
        message: str,
        field: str | None = None,
        *,
        retry_after: float | None = None,
    ) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(f"[{code}] {message}" + (f" (field: {field})" if field else ""))
        self.code = code
        self.message = message
        self.field = field
        self.retry_after = retry_after

    @property
    def status(self) -> int:
        """The HTTP status this error renders as."""
        return HTTP_STATUS[self.code]

    @property
    def exit_code(self) -> int:
        """The stable process exit code for CLI surfaces."""
        return EXIT_CODES[self.code]

    def payload(self) -> dict[str, Any]:
        """The JSON body: ``{"error": {"code", "message", "field"}}``.

        ``retry_after`` is embedded only when set, so payloads without
        one keep the exact historical shape.
        """
        error: dict[str, Any] = {
            "code": self.code,
            "message": self.message,
            "field": self.field,
        }
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        return {"error": error}

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "ServeError":
        """Rebuild from a decoded error payload (client side)."""
        error = data.get("error")
        if not isinstance(error, dict) or "code" not in error:
            return cls("server_error", f"malformed error payload: {data!r}")
        code = error["code"]
        if code not in ERROR_CODES:
            code = "server_error"
        retry_after = error.get("retry_after")
        if not isinstance(retry_after, (int, float)):
            retry_after = None
        return cls(
            code,
            str(error.get("message", "")),
            error.get("field"),
            retry_after=retry_after,
        )


def error_json(error: ServeError) -> str:
    """One line of JSON for the error — the ``--json`` stderr format."""
    return json.dumps(error.payload(), sort_keys=True, separators=(",", ":"))


# -- job states ---------------------------------------------------------------
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: The sentinel ``event`` tag closing every telemetry stream.
END_OF_STREAM = "EndOfStream"


# -- telemetry rows -----------------------------------------------------------
def event_to_wire(event: LifecycleEvent) -> dict[str, Any]:
    """One lifecycle event as a JSON-ready row.

    The exact :class:`~repro.instruments.EventTraceRecorder` row shape:
    the frozen dataclass's fields plus an ``"event"`` type tag.
    """
    row: dict[str, Any] = {"event": type(event).__name__}
    for field in dataclass_fields(event):
        row[field.name] = getattr(event, field.name)
    return row


def ndjson_line(row: dict[str, Any]) -> bytes:
    """Encode one row as a newline-delimited-JSON line."""
    return (json.dumps(row, separators=(",", ":")) + "\n").encode("utf-8")


def sse_line(row: dict[str, Any]) -> bytes:
    """Encode one row as a Server-Sent-Events ``data:`` frame."""
    return b"data: " + json.dumps(row, separators=(",", ":")).encode("utf-8") + b"\n\n"
