"""A thin blocking client for the serve daemon.

Stdlib-only (:mod:`http.client`), one connection per request — the
daemon answers every request with ``Connection: close``, so there is
nothing to pool.  Server-side failures surface as the same
:class:`~repro.serve.protocol.ServeError` the daemon raised, rebuilt
from the wire payload.

Transient failures — refused/reset connections, torn reads, and
load-shedding 503s — are retried with jittered exponential backoff
(``retries`` attempts; a 503's ``Retry-After`` overrides the computed
delay).  Retrying a submit is safe because the daemon is single-flight
on the spec's cache key: a resubmission of a spec whose first submit
actually landed just attaches to the in-flight job.

    >>> client = ServeClient("127.0.0.1:8642")          # doctest: +SKIP
    >>> job = client.submit(RunSpec(workload="SDSC"))   # doctest: +SKIP
    >>> for row in client.stream_events(job["job_id"]): # doctest: +SKIP
    ...     print(row["event"])
    >>> result = client.result(job["job_id"])           # doctest: +SKIP
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Iterator

from repro.experiments.config import RunSpec
from repro.scheduling.result import SimulationResult
from repro.serialize import result_from_dict, spec_to_dict
from repro.serve.protocol import END_OF_STREAM, TERMINAL_STATES, ServeError
from repro.serve.quotas import DEFAULT_CLIENT

__all__ = ["ServeClient"]

#: ``wait`` starts polling this often ...
_POLL_MIN = 0.02
#: ... and backs off exponentially to at most this.
_POLL_MAX = 1.0
#: A server-sent Retry-After longer than this is clamped (a client
#: should re-probe rather than trust one stale hint for minutes).
_RETRY_AFTER_CAP = 30.0


class ServeClient:
    """Blocking HTTP client for one :class:`~repro.serve.server.ReproServer`.

    ``address`` is ``"host:port"`` (an ``http://`` prefix is
    tolerated); ``client_id`` is sent as ``X-Repro-Client`` and is the
    bucket quotas are charged to.

    ``retries`` bounds the *extra* attempts made after a transient
    failure (connect/read errors and 503s); ``0`` disables retrying.
    Delays grow as ``backoff_base * 2**attempt`` capped at
    ``backoff_max``, jittered into ``[delay/2, delay]`` so a fleet of
    clients released by the same outage does not stampede back in
    lockstep.  ``backoff_seed`` pins the jitter stream for
    deterministic tests.
    """

    def __init__(
        self,
        address: str,
        *,
        client_id: str = DEFAULT_CLIENT,
        timeout: float = 60.0,
        retries: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        backoff_seed: int | None = None,
    ) -> None:
        trimmed = address.removeprefix("http://").rstrip("/")
        host, sep, port_text = trimmed.rpartition(":")
        if not sep or not port_text.isdigit():
            raise ValueError(f"address must be 'host:port', got {address!r}")
        if retries < 0:
            raise ValueError(f"retries must be non-negative, got {retries}")
        if backoff_base <= 0 or backoff_max < backoff_base:
            raise ValueError(
                f"need 0 < backoff_base <= backoff_max, "
                f"got {backoff_base} / {backoff_max}"
            )
        self.host = host
        self.port = int(port_text)
        self.client_id = client_id
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._rng = random.Random(backoff_seed)

    # -- transport ---------------------------------------------------------------
    def _connection(self, timeout: float | None = None) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout if timeout is None else timeout
        )

    def _backoff_delay(self, attempt: int, retry_after: float | None) -> float:
        """Seconds to sleep before retry ``attempt`` (0-based)."""
        if retry_after is not None:
            return min(max(retry_after, 0.0), _RETRY_AFTER_CAP)
        cap = min(self.backoff_max, self.backoff_base * (2.0**attempt))
        return cap * (0.5 + 0.5 * self._rng.random())

    def _request(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> bytes:
        """One request with transient-failure retries (see class docs)."""
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload, timeout)
            except ServeError as err:
                # Only load shedding / shutdown (503) is transient; every
                # other code is a real answer and must surface at once.
                if err.code != "unavailable" or attempt >= self.retries:
                    raise
                delay = self._backoff_delay(attempt, err.retry_after)
            except (ConnectionError, http.client.HTTPException, OSError):
                # Connect refused, reset mid-read, torn response: the
                # daemon may be restarting — resubmission is idempotent.
                if attempt >= self.retries:
                    raise
                delay = self._backoff_delay(attempt, None)
            time.sleep(delay)
            attempt += 1

    def _request_once(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> bytes:
        connection = self._connection(timeout)
        try:
            body = (
                json.dumps(payload).encode("utf-8") if payload is not None else None
            )
            connection.request(
                method,
                path,
                body=body,
                headers={
                    "X-Repro-Client": self.client_id,
                    "Content-Type": "application/json",
                },
            )
            response = connection.getresponse()
            data = response.read()
            if response.status >= 400:
                raise self._decode_error(data)
            return data
        finally:
            connection.close()

    def _request_json(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        data = json.loads(self._request(method, path, payload, timeout))
        if not isinstance(data, dict):
            raise ServeError("server_error", f"expected a JSON object, got {data!r}")
        return data

    @staticmethod
    def _decode_error(data: bytes) -> ServeError:
        try:
            return ServeError.from_payload(json.loads(data))
        except (ValueError, UnicodeDecodeError):
            return ServeError("server_error", f"unparseable error body: {data[:200]!r}")

    # -- endpoints ---------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._request_json("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self._request_json("GET", "/stats")

    def submit(self, spec: RunSpec | dict[str, Any]) -> dict[str, Any]:
        """Submit a run; returns the job status payload (incl. ``job_id``).

        Accepts a built :class:`RunSpec` (serialised through the exact
        codec) or an already-encoded spec document.
        """
        document = spec_to_dict(spec) if isinstance(spec, RunSpec) else spec
        return self._request_json("POST", "/runs", {"spec": document})

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request_json("GET", f"/runs/{job_id}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request_json("POST", f"/runs/{job_id}/cancel")

    def wait(self, job_id: str, timeout: float = 300.0) -> dict[str, Any]:
        """Poll until the job is terminal; returns its final status.

        The poll interval backs off exponentially from 20 ms to 1 s:
        short jobs still return promptly, long ones cost the daemon a
        status request per second instead of twenty.
        """
        deadline = time.monotonic() + timeout
        interval = _POLL_MIN
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            now = time.monotonic()
            if now >= deadline:
                raise ServeError(
                    "not_ready", f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(min(interval, deadline - now))
            interval = min(interval * 2.0, _POLL_MAX)

    def result_bytes(
        self,
        job_id: str,
        *,
        aggregates_only: bool = False,
        wait: bool = True,
        timeout: float = 300.0,
    ) -> bytes:
        """The result document, verbatim as served (byte-identity surface)."""
        query = f"?aggregates={int(aggregates_only)}&wait={int(wait)}&timeout={timeout}"
        # The socket must outlive the server-side wait.
        return self._request(
            "GET", f"/runs/{job_id}/result{query}", timeout=timeout + self.timeout
        )

    def result(
        self,
        job_id: str,
        *,
        aggregates_only: bool = False,
        wait: bool = True,
        timeout: float = 300.0,
    ) -> SimulationResult:
        """The decoded :class:`SimulationResult` (full or aggregates-only)."""
        data = self.result_bytes(
            job_id, aggregates_only=aggregates_only, wait=wait, timeout=timeout
        )
        return result_from_dict(json.loads(data))

    def stream_events(
        self, job_id: str, *, timeout: float = 300.0
    ) -> Iterator[dict[str, Any]]:
        """Yield telemetry rows (NDJSON) until the stream's sentinel.

        Every yielded row is a dict with an ``"event"`` type tag; the
        final row is the ``EndOfStream`` sentinel carrying the job's
        terminal state.

        Only the *subscribe* (connect + response head) is retried:
        once rows have been yielded, a mid-stream failure propagates —
        silently resubscribing would replay the buffer and hand the
        caller duplicate rows.
        """
        connection, response = self._subscribe_events(job_id, timeout)
        try:
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                row = json.loads(line)
                yield row
                if row.get("event") == END_OF_STREAM:
                    return
        finally:
            connection.close()

    def _subscribe_events(
        self, job_id: str, timeout: float
    ) -> tuple[http.client.HTTPConnection, http.client.HTTPResponse]:
        """Open the telemetry stream, retrying transient connect failures."""
        attempt = 0
        while True:
            connection = self._connection(timeout)
            try:
                connection.request(
                    "GET",
                    f"/runs/{job_id}/events",
                    headers={"X-Repro-Client": self.client_id},
                )
                response = connection.getresponse()
                if response.status >= 400:
                    raise self._decode_error(response.read())
                return connection, response
            except ServeError as err:
                connection.close()
                if err.code != "unavailable" or attempt >= self.retries:
                    raise
                delay = self._backoff_delay(attempt, err.retry_after)
            except (ConnectionError, http.client.HTTPException, OSError):
                connection.close()
                if attempt >= self.retries:
                    raise
                delay = self._backoff_delay(attempt, None)
            time.sleep(delay)
            attempt += 1
