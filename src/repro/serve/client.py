"""A thin blocking client for the serve daemon.

Stdlib-only (:mod:`http.client`), one connection per request — the
daemon answers every request with ``Connection: close``, so there is
nothing to pool.  Server-side failures surface as the same
:class:`~repro.serve.protocol.ServeError` the daemon raised, rebuilt
from the wire payload.

    >>> client = ServeClient("127.0.0.1:8642")          # doctest: +SKIP
    >>> job = client.submit(RunSpec(workload="SDSC"))   # doctest: +SKIP
    >>> for row in client.stream_events(job["job_id"]): # doctest: +SKIP
    ...     print(row["event"])
    >>> result = client.result(job["job_id"])           # doctest: +SKIP
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator

from repro.experiments.config import RunSpec
from repro.scheduling.result import SimulationResult
from repro.serialize import result_from_dict, spec_to_dict
from repro.serve.protocol import END_OF_STREAM, TERMINAL_STATES, ServeError
from repro.serve.quotas import DEFAULT_CLIENT

__all__ = ["ServeClient"]


class ServeClient:
    """Blocking HTTP client for one :class:`~repro.serve.server.ReproServer`.

    ``address`` is ``"host:port"`` (an ``http://`` prefix is
    tolerated); ``client_id`` is sent as ``X-Repro-Client`` and is the
    bucket quotas are charged to.
    """

    def __init__(
        self,
        address: str,
        *,
        client_id: str = DEFAULT_CLIENT,
        timeout: float = 60.0,
    ) -> None:
        trimmed = address.removeprefix("http://").rstrip("/")
        host, sep, port_text = trimmed.rpartition(":")
        if not sep or not port_text.isdigit():
            raise ValueError(f"address must be 'host:port', got {address!r}")
        self.host = host
        self.port = int(port_text)
        self.client_id = client_id
        self.timeout = timeout

    # -- transport ---------------------------------------------------------------
    def _connection(self, timeout: float | None = None) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout if timeout is None else timeout
        )

    def _request(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> bytes:
        connection = self._connection(timeout)
        try:
            body = (
                json.dumps(payload).encode("utf-8") if payload is not None else None
            )
            connection.request(
                method,
                path,
                body=body,
                headers={
                    "X-Repro-Client": self.client_id,
                    "Content-Type": "application/json",
                },
            )
            response = connection.getresponse()
            data = response.read()
            if response.status >= 400:
                raise self._decode_error(data)
            return data
        finally:
            connection.close()

    def _request_json(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        data = json.loads(self._request(method, path, payload, timeout))
        if not isinstance(data, dict):
            raise ServeError("server_error", f"expected a JSON object, got {data!r}")
        return data

    @staticmethod
    def _decode_error(data: bytes) -> ServeError:
        try:
            return ServeError.from_payload(json.loads(data))
        except (ValueError, UnicodeDecodeError):
            return ServeError("server_error", f"unparseable error body: {data[:200]!r}")

    # -- endpoints ---------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._request_json("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self._request_json("GET", "/stats")

    def submit(self, spec: RunSpec | dict[str, Any]) -> dict[str, Any]:
        """Submit a run; returns the job status payload (incl. ``job_id``).

        Accepts a built :class:`RunSpec` (serialised through the exact
        codec) or an already-encoded spec document.
        """
        document = spec_to_dict(spec) if isinstance(spec, RunSpec) else spec
        return self._request_json("POST", "/runs", {"spec": document})

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request_json("GET", f"/runs/{job_id}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request_json("POST", f"/runs/{job_id}/cancel")

    def wait(self, job_id: str, timeout: float = 300.0) -> dict[str, Any]:
        """Poll until the job is terminal; returns its final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServeError(
                    "not_ready", f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(0.05)

    def result_bytes(
        self,
        job_id: str,
        *,
        aggregates_only: bool = False,
        wait: bool = True,
        timeout: float = 300.0,
    ) -> bytes:
        """The result document, verbatim as served (byte-identity surface)."""
        query = f"?aggregates={int(aggregates_only)}&wait={int(wait)}&timeout={timeout}"
        # The socket must outlive the server-side wait.
        return self._request(
            "GET", f"/runs/{job_id}/result{query}", timeout=timeout + self.timeout
        )

    def result(
        self,
        job_id: str,
        *,
        aggregates_only: bool = False,
        wait: bool = True,
        timeout: float = 300.0,
    ) -> SimulationResult:
        """The decoded :class:`SimulationResult` (full or aggregates-only)."""
        data = self.result_bytes(
            job_id, aggregates_only=aggregates_only, wait=wait, timeout=timeout
        )
        return result_from_dict(json.loads(data))

    def stream_events(
        self, job_id: str, *, timeout: float = 300.0
    ) -> Iterator[dict[str, Any]]:
        """Yield telemetry rows (NDJSON) until the stream's sentinel.

        Every yielded row is a dict with an ``"event"`` type tag; the
        final row is the ``EndOfStream`` sentinel carrying the job's
        terminal state.
        """
        connection = self._connection(timeout)
        try:
            connection.request(
                "GET",
                f"/runs/{job_id}/events",
                headers={"X-Repro-Client": self.client_id},
            )
            response = connection.getresponse()
            if response.status >= 400:
                raise self._decode_error(response.read())
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                row = json.loads(line)
                yield row
                if row.get("event") == END_OF_STREAM:
                    return
        finally:
            connection.close()
