"""The asyncio HTTP/JSON daemon behind ``repro serve``.

One process, two planes:

* the **asyncio plane** (one event loop) parses HTTP/1.1 requests,
  answers status/stats instantly, and tails telemetry buffers for
  streaming subscribers;
* the **worker plane** (a thread pool) drives each accepted run as a
  :class:`~repro.session.SimulationSession` in budgeted ``run_for``
  slices, checking the job's cancel flag and wall-clock budget at every
  slice boundary.

Endpoints (all JSON; errors use the shared
:mod:`~repro.serve.protocol` payload)::

    GET  /healthz                         liveness + versions
    GET  /stats                           counters, states, quotas
    POST /runs                            submit {"spec": {...}} -> job
    GET  /runs/{id}                       job status
    GET  /runs/{id}/result[?aggregates=1&wait=1&timeout=S]
    GET  /runs/{id}/events[?format=sse]   telemetry stream (NDJSON/SSE)
    POST /runs/{id}/cancel                request cancellation
    DELETE /runs/{id}                     same as cancel

Submissions are **single-flight** on the spec's cache key: while a run
for a key is queued, running, or done, further submissions of the same
key attach to it — they charge no quota, run no simulation, and fetch
the very same result bytes.  Results are canonical sorted-key compact
JSON of :func:`repro.serialize.result_to_dict`, so an HTTP-fetched
result is byte-identical to an in-process ``Simulation(spec).run()``
serialized the same way; the shared on-disk cache
(:class:`repro.batch.BatchRunner`'s format) extends that identity
across server restarts.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
import signal as signal_module
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.api import DEFAULT_N_JOBS, Simulation, normalize_spec
from repro.batch import BatchRunner
from repro.experiments.config import RunSpec
from repro.faults import InjectedFault, fire as fault_fire
from repro.instruments import Instrument
from repro.serialize import (
    SpecValidationError,
    result_to_dict,
    spec_from_dict,
    spec_key,
    spec_to_dict,
)
from repro.serve import protocol
from repro.serve.journal import RunJournal
from repro.sim.lanes import check_engine_available
from repro.serve.protocol import (
    END_OF_STREAM,
    PROTOCOL_VERSION,
    TERMINAL_STATES,
    ServeError,
    event_to_wire,
    ndjson_line,
    sse_line,
)
from repro.serve.quotas import DEFAULT_CLIENT, QuotaLedger, QuotaPolicy
from repro.session import SessionCancelled, SimulationSession
from repro.sim.events import LifecycleEvent

__all__ = ["ReproServer", "ServeJob", "canonical_result_bytes"]

_MAX_BODY_BYTES = 16 << 20
_MAX_HEADERS = 100
_READ_TIMEOUT = 30.0
#: Poll interval for the async plane tailing worker-plane state.
_TICK = 0.02

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def canonical_result_bytes(payload: dict[str, Any]) -> bytes:
    """The wire encoding of a result document: sorted-key compact JSON.

    Both sides of the byte-identity contract use this — the daemon when
    it serialises a finished run, and any client comparing against an
    in-process ``result_to_dict(Simulation(spec).run())``.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


class _TelemetryForwarder(Instrument):
    """Session instrument copying lifecycle events into the job buffer.

    Deliberately *not* registry-registered: it is server plumbing, not
    a user instrument, and its report is stripped from the result so
    the served bytes match an un-instrumented in-process run.
    """

    name = "_serve_telemetry"

    def __init__(self, job: "ServeJob") -> None:
        super().__init__()
        self._job = job

    def on_event(self, event: LifecycleEvent) -> None:
        self._job.record_event(event_to_wire(event))


class ServeJob:
    """One submitted run and everything the endpoints serve about it."""

    def __init__(
        self,
        job_id: str,
        spec: RunSpec,
        key: str,
        client: str,
        max_events: int,
        *,
        recovered: bool = False,
    ) -> None:
        self.job_id = job_id
        self.spec = spec
        self.key = key
        self.client = client
        self.state = protocol.QUEUED
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.submissions = 1  # total submits attached to this job (single-flight)
        self.from_cache = False
        self.recovered = recovered  # re-admitted from the journal at startup
        self.error: dict[str, Any] | None = None
        self.result_bytes: bytes | None = None
        self.result_obj: Any = None  # SimulationResult, kept for aggregates
        self.cancel_event = threading.Event()
        self.max_events = max_events
        # Watchdog surface: the live session (for cooperative cancel)
        # and the monotonic deadline its current slice must renew by.
        # GIL-atomic attribute hand-offs; None means "not running".
        self.session: SimulationSession | None = None
        self.lease_deadline: float | None = None
        # Telemetry replay buffer: appended by the worker thread,
        # sliced by streaming handlers; ``lock`` covers both plus the
        # lazily-built aggregates encoding.
        self.lock = threading.Lock()
        self.events: list[dict[str, Any]] = []
        self.events_dropped = 0
        self._aggregates_bytes: bytes | None = None

    def record_event(self, row: dict[str, Any]) -> None:
        with self.lock:
            if len(self.events) < self.max_events:
                self.events.append(row)
            else:
                self.events_dropped += 1

    def aggregates_bytes(self) -> bytes:
        """The aggregates-only encoding of the finished result (cached)."""
        with self.lock:
            if self._aggregates_bytes is None:
                result = self.result_obj
                if not result.is_aggregated:
                    result = result.to_aggregates()
                self._aggregates_bytes = canonical_result_bytes(result_to_dict(result))
            return self._aggregates_bytes

    def status_payload(self) -> dict[str, Any]:
        with self.lock:
            recorded = len(self.events)
            dropped = self.events_dropped
        return {
            "job_id": self.job_id,
            "state": self.state,
            "spec_key": self.key,
            "client": self.client,
            "submissions": self.submissions,
            "from_cache": self.from_cache,
            "recovered": self.recovered,
            "error": self.error,
            "events_recorded": recorded,
            "events_dropped": dropped,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class ReproServer:
    """The daemon.  Three ways to run it:

    * ``run_blocking()`` — the ``repro serve`` CLI entry point;
    * ``start_in_thread()`` / ``stop()`` (or ``with ReproServer(...)``)
      — a background instance for tests and examples;
    * ``await start()`` inside an existing event loop.

    ``port=0`` binds an ephemeral port; read ``server.port`` after
    start.  ``cache_dir`` enables the shared on-disk result cache (the
    exact :class:`~repro.batch.BatchRunner` format, so sweeps and the
    daemon interchange entries) **and** the crash-consistent run
    journal: a daemon restarted over the same ``cache_dir`` re-admits
    every job that was submitted but not yet terminal, under its
    original job id, and re-runs it byte-identically (or serves it
    straight from the cache when the result landed before the crash).

    ``shed_inflight`` is the load-shedding high-water mark: once that
    many jobs are non-terminal, further *new* submissions are refused
    with a 503 carrying ``Retry-After`` instead of being accepted into
    a queue the worker pool cannot drain in time (single-flight dedup
    hits still attach for free).  ``None`` disables shedding.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache_dir: str | None = None,
        max_workers: int = 4,
        quota: QuotaPolicy | None = None,
        default_n_jobs: int = DEFAULT_N_JOBS,
        slice_events: int = 20_000,
        validate: bool = False,
        shed_inflight: int | None = None,
    ) -> None:
        if max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if slice_events <= 0:
            raise ValueError(f"slice_events must be positive, got {slice_events}")
        if shed_inflight is not None and shed_inflight <= 0:
            raise ValueError(
                f"shed_inflight must be positive (or None to disable), "
                f"got {shed_inflight}"
            )
        self.host = host
        self.port = port
        self.quota = quota if quota is not None else QuotaPolicy()
        self.max_workers = max_workers
        self.default_n_jobs = default_n_jobs
        self.slice_events = slice_events
        self.validate = validate
        self.shed_inflight = shed_inflight
        # max_workers=0: the runner is used purely for its cache codec
        # (load/store under _cache_lock), never for its own pooling.
        self._runner = BatchRunner(
            max_workers=0, cache_dir=cache_dir, default_n_jobs=default_n_jobs
        )
        self._journal = (
            RunJournal(Path(cache_dir) / "serve-journal.jsonl")
            if cache_dir is not None
            else None
        )
        self._ledger = QuotaLedger(self.quota)
        self._state_lock = threading.Lock()
        self._cache_lock = threading.Lock()
        self._jobs: dict[str, ServeJob] = {}
        self._by_key: dict[str, ServeJob] = {}
        self._ids = itertools.count(1)
        self._accepting = True
        self._draining = False
        # Set at shutdown, checked by workers before the client-cancel
        # path: a job dying with the daemon must NOT journal a terminal
        # record (the next life re-admits it), unlike a client cancel.
        self._closing = threading.Event()
        self._submissions = 0
        self._deduped = 0
        self._simulations_run = 0
        self._recovered_jobs = 0
        self._shed_submissions = 0
        self._lease_expirations = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stopping: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread: threading.Thread | None = None
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop = threading.Event()

    # -- lifecycle ---------------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def start(self) -> "ReproServer":
        """Bind and begin accepting connections (inside a running loop)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-serve"
        )
        # Replay the journal *before* the port binds: recovered jobs are
        # queued (and their ids reserved) by the time the first request
        # can possibly arrive.
        self._recover_journal()
        self._watchdog_stop.clear()
        self._watchdog = threading.Thread(
            target=self._watchdog_main, name="repro-serve-watchdog", daemon=True
        )
        self._watchdog.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def _recover_journal(self) -> None:
        """Re-admit every submitted-but-unfinished job from a prior life."""
        if self._journal is None:
            return
        pending, next_id = self._journal.recover()
        if next_id > 1:
            self._ids = itertools.count(next_id)
        executor = self._executor
        assert executor is not None
        for entry in pending:
            try:
                spec = normalize_spec(spec_from_dict(entry.spec), self.default_n_jobs)
            except (SpecValidationError, TypeError, ValueError):
                continue  # journaled by an incompatible writer; skip
            # Recovered jobs were admitted in the previous life: they
            # bypass the admission *check* but still hold a counted slot.
            self._ledger.acquire(entry.client, force=True)
            job = ServeJob(
                entry.job_id,
                spec,
                entry.key,
                entry.client,
                self.quota.max_events,
                recovered=True,
            )
            with self._state_lock:
                self._jobs[job.job_id] = job
                self._by_key[entry.key] = job
                self._recovered_jobs += 1
            executor.submit(self._execute, job)

    async def _serve(self) -> None:
        try:
            await self.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        self._ready.set()
        self._install_signal_handlers()
        try:
            await self._stopping.wait()
        finally:
            await self._shutdown()

    def _install_signal_handlers(self) -> None:
        """Route SIGTERM through the graceful drain (main thread only).

        ``loop.add_signal_handler`` requires the loop to live on the
        main thread; background (``start_in_thread``) instances skip
        this and are stopped via :meth:`stop` instead.
        """
        if threading.current_thread() is not threading.main_thread():
            return
        assert self._loop is not None
        try:
            self._loop.add_signal_handler(
                signal_module.SIGTERM, self._begin_drain, 30.0
            )
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # platform without loop signal support

    async def _shutdown(self) -> None:
        self._closing.set()
        with self._state_lock:
            self._accepting = False
            jobs = list(self._jobs.values())
        assert self._server is not None and self._loop is not None
        self._server.close()
        await self._server.wait_closed()
        self._watchdog_stop.set()
        for job in jobs:
            if job.state not in TERMINAL_STATES:
                job.cancel_event.set()
                session = job.session
                if session is not None:
                    # Interrupt the slice in flight, not just the next
                    # boundary check — shutdown should not wait out a
                    # full slice.
                    session.request_cancel("server shutting down")
        executor = self._executor
        if executor is not None:
            await self._loop.run_in_executor(
                None, lambda: executor.shutdown(wait=True, cancel_futures=True)
            )
        watchdog = self._watchdog
        if watchdog is not None:
            await self._loop.run_in_executor(None, lambda: watchdog.join(timeout=5))
        # Queued jobs whose futures were cancelled never reached a
        # worker: close them out here (running ones closed themselves).
        # ``journal=False``: these jobs die with the daemon, not on
        # their merits — the journal keeps them pending so a restart
        # over the same cache_dir re-admits and re-runs them.
        for job in jobs:
            if job.state not in TERMINAL_STATES:
                self._finish(
                    job,
                    protocol.CANCELLED,
                    error={
                        "code": "unavailable",
                        "message": "server shut down",
                        "field": None,
                    },
                    journal=False,
                )

    def run_blocking(self) -> None:
        """Serve until interrupted — the ``repro serve`` entry point."""
        try:
            asyncio.run(self._serve())
        except KeyboardInterrupt:
            pass

    def start_in_thread(self) -> "ReproServer":
        """Run the loop in a daemon thread; returns once the port is bound."""
        if self._thread is not None:
            raise RuntimeError("server thread already running")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server did not start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException:
            # Startup failures are re-raised to the starting thread via
            # _startup_error; anything else here means we were stopped.
            if self._startup_error is None:
                raise

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the background server thread exits; True once it has."""
        thread = self._thread
        if thread is None:
            return True
        thread.join(timeout)
        return not thread.is_alive()

    def stop(self, timeout: float = 60.0) -> None:
        """Stop a ``start_in_thread`` server: drain workers, join the thread.

        Raises :class:`RuntimeError` if the server thread is still alive
        after ``timeout`` seconds — a silent return here would leave a
        zombie loop holding the port and the worker pool, and the
        caller's next move (rebind, re-start) would fail mysteriously.
        """
        thread = self._thread
        if thread is None:
            return
        if self._loop is not None and self._stopping is not None:
            stopping = self._stopping
            try:
                self._loop.call_soon_threadsafe(stopping.set)
            except RuntimeError:
                pass  # loop already closed (a drain beat us to shutdown)
        thread.join(timeout=timeout)
        if thread.is_alive():
            with self._state_lock:
                busy = sum(
                    1
                    for job in self._jobs.values()
                    if job.state not in TERMINAL_STATES
                )
            raise RuntimeError(
                f"server thread failed to stop within {timeout}s "
                f"({busy} jobs still non-terminal on {self.address}); "
                f"the loop is still running — the port and worker pool "
                f"are not released"
            )
        self._thread = None

    def __enter__(self) -> "ReproServer":
        return self.start_in_thread()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- submission & execution (worker plane) -----------------------------------
    def submit(self, spec: RunSpec, client: str = DEFAULT_CLIENT) -> tuple[ServeJob, bool]:
        """Admit ``spec``; returns ``(job, deduped)``.

        Single-flight: if a job for the same cache key is queued,
        running, or done, the submission attaches to it (no quota
        charge, no new simulation).  Failed or cancelled keys retry
        with a fresh job.
        """
        key = spec_key(spec)
        with self._state_lock:
            if not self._accepting:
                raise ServeError("unavailable", "server is shutting down")
            existing = self._by_key.get(key)
            if existing is not None and existing.state not in (
                protocol.FAILED,
                protocol.CANCELLED,
            ):
                existing.submissions += 1
                self._deduped += 1
                return existing, True
            # Load shedding: refuse *new* work (dedup hits above stay
            # free) once the non-terminal backlog reaches the high-water
            # mark.  Retry-After is sized to the backlog, not a fixed
            # constant, so clients back off harder under deeper queues.
            if self.shed_inflight is not None:
                backlog = sum(
                    1
                    for job in self._jobs.values()
                    if job.state not in TERMINAL_STATES
                )
                if backlog >= self.shed_inflight:
                    self._shed_submissions += 1
                    raise ServeError(
                        "unavailable",
                        f"server is shedding load: {backlog} jobs in flight "
                        f"(high-water mark {self.shed_inflight})",
                        retry_after=min(30.0, 0.5 * backlog),
                    )
            self._ledger.acquire(client)  # raises QuotaExceeded
            job = ServeJob(
                f"job-{next(self._ids):06d}", spec, key, client, self.quota.max_events
            )
            self._jobs[job.job_id] = job
            self._by_key[key] = job
            self._submissions += 1
            executor = self._executor
        assert executor is not None, "server not started"
        if self._journal is not None:
            try:
                self._journal.record_submitted(
                    job.job_id, key, client, spec_to_dict(spec)
                )
            except Exception as exc:
                # An admission we cannot journal is an admission a crash
                # would silently lose: refuse it and undo the bookkeeping.
                with self._state_lock:
                    self._jobs.pop(job.job_id, None)
                    if self._by_key.get(key) is job:
                        del self._by_key[key]
                    self._submissions -= 1
                self._ledger.release(client)
                raise ServeError(
                    "unavailable",
                    f"run journal rejected the submission: "
                    f"{type(exc).__name__}: {exc}",
                ) from exc
        executor.submit(self._execute, job)
        return job, False

    def _execute(self, job: ServeJob) -> None:
        try:
            if self._closing.is_set():
                # Dying with the daemon: leave the job non-terminal so
                # the shutdown close-out (journal=False) handles it and
                # the journal keeps it pending for the next life.
                return
            if job.cancel_event.is_set():
                self._finish(
                    job,
                    protocol.CANCELLED,
                    error={
                        "code": "cancelled",
                        "message": "cancelled before start",
                        "field": None,
                    },
                )
                return
            with self._state_lock:
                job.state = protocol.RUNNING
                job.started_at = time.time()
            with self._cache_lock:
                cached = self._runner.cache_load(job.spec)
            if cached is not None:
                # A cache hit streams no telemetry (the run happened in
                # some earlier life); subscribers get the sentinel only.
                job.from_cache = True
                job.result_obj = cached
                job.result_bytes = canonical_result_bytes(result_to_dict(cached))
                self._finish(job, protocol.DONE)
                return
            result = self._simulate(job)
            if result is None:
                return  # cancelled or over budget; _finish already ran
            with self._cache_lock:
                self._runner.cache_store(job.spec, result)
            job.result_obj = result
            job.result_bytes = canonical_result_bytes(result_to_dict(result))
            self._finish(job, protocol.DONE)
        except Exception as exc:
            self._finish(
                job,
                protocol.FAILED,
                error={
                    "code": "simulation_failed",
                    "message": f"{type(exc).__name__}: {exc}",
                    "field": None,
                },
            )

    def _simulate(self, job: ServeJob) -> Any:
        """Drive one session in slices; ``None`` if it did not finish."""
        forwarder = _TelemetryForwarder(job)
        session = Simulation(job.spec, validate=self.validate).session(
            instruments=[forwarder]
        )
        job.session = session
        deadline = time.monotonic() + self.quota.max_wall_seconds
        try:
            while not session.done:
                if self._closing.is_set():
                    session.cancel("server shutting down")
                    return None  # shutdown close-out finishes the job
                if job.cancel_event.is_set():
                    session.cancel("client request")
                    self._finish(
                        job,
                        protocol.CANCELLED,
                        error={
                            "code": "cancelled",
                            "message": "cancelled by client",
                            "field": None,
                        },
                    )
                    return None
                if time.monotonic() >= deadline:
                    session.cancel("wall-clock budget exhausted")
                    self._finish(
                        job,
                        protocol.FAILED,
                        error={
                            "code": "quota_exceeded",
                            "message": (
                                f"run exceeded the {self.quota.max_wall_seconds}s "
                                f"wall-clock budget"
                            ),
                            "field": None,
                        },
                    )
                    return None
                # Renew the progress lease, then run one slice.  A slice
                # that wedges misses the renewal; the watchdog observes
                # the stale deadline and cancels the session from outside.
                job.lease_deadline = time.monotonic() + self.quota.lease_seconds
                fault_fire("worker.slice")
                try:
                    session.run_for(self.slice_events)
                except SessionCancelled:
                    # The watchdog (or another thread) cancelled us
                    # mid-slice and already closed the job out.
                    return None
            result = session.result()
        finally:
            job.session = None
            job.lease_deadline = None
        with self._state_lock:
            self._simulations_run += 1
        # Strip the forwarder's report: it is server plumbing, and the
        # served bytes must equal a plain in-process run of the spec.
        reports = tuple(
            r for r in result.instruments if r.name != _TelemetryForwarder.name
        )
        return replace(result, instruments=reports)

    def _finish(
        self,
        job: ServeJob,
        state: str,
        error: dict[str, Any] | None = None,
        *,
        journal: bool = True,
    ) -> None:
        with self._state_lock:
            if job.state in TERMINAL_STATES:
                return
            job.state = state
            job.error = error
            job.finished_at = time.time()
            if (
                state in (protocol.FAILED, protocol.CANCELLED)
                and self._by_key.get(job.key) is job
            ):
                # Let a later submission of the same spec start afresh.
                del self._by_key[job.key]
        self._ledger.release(job.client)
        # ``journal=False`` is for shutdown close-outs: a job cancelled
        # only because the daemon is exiting must stay journalled as
        # pending so the next life re-admits it.
        if journal and self._journal is not None:
            try:
                self._journal.record_terminal(job.job_id, state)
            except Exception:
                # Best effort: a lost terminal record merely means the
                # next restart re-runs (or cache-hits) this job.
                pass

    # -- watchdog (lease enforcement) ---------------------------------------------
    def _watchdog_main(self) -> None:
        """Fail any job whose running slice outlived its progress lease."""
        lease = self.quota.lease_seconds
        if math.isinf(lease):
            return
        interval = max(0.05, min(1.0, lease / 4))
        while not self._watchdog_stop.wait(interval):
            now = time.monotonic()
            with self._state_lock:
                expired = [
                    job
                    for job in self._jobs.values()
                    if job.state == protocol.RUNNING
                    and job.lease_deadline is not None
                    and now >= job.lease_deadline
                ]
            for job in expired:
                self._expire_lease(job)

    def _expire_lease(self, job: ServeJob) -> None:
        """Cancel a wedged job from outside its worker thread."""
        if self._closing.is_set():
            return  # shutdown owns close-outs now; don't journal terminals
        job.cancel_event.set()
        session = job.session
        if session is not None:
            # Cooperative: posts a flag the driving thread materialises
            # at its next event boundary, raising SessionCancelled out
            # of the wedged run_for call.
            session.request_cancel("progress lease expired")
        with self._state_lock:
            self._lease_expirations += 1
        self._finish(
            job,
            protocol.FAILED,
            error={
                "code": "lease_expired",
                "message": (
                    f"worker slice made no progress within the "
                    f"{self.quota.lease_seconds}s lease; job cancelled"
                ),
                "field": None,
            },
        )

    # -- graceful drain -----------------------------------------------------------
    def request_drain(self, grace_seconds: float = 30.0) -> None:
        """Begin a graceful drain (thread- and signal-safe).

        Stops accepting new submissions immediately, lets in-flight
        jobs finish for up to ``grace_seconds``, then stops the loop —
        whatever is still running at that point is closed out by
        shutdown *without* a terminal journal record, so a restart
        picks it back up.  Idempotent.
        """
        loop = self._loop
        if loop is None or self._stopping is None:
            return
        loop.call_soon_threadsafe(self._begin_drain, grace_seconds)

    def _begin_drain(self, grace_seconds: float) -> None:
        if self._draining:
            return
        self._draining = True
        with self._state_lock:
            self._accepting = False
        assert self._loop is not None
        self._loop.create_task(self._drain(grace_seconds))

    async def _drain(self, grace_seconds: float) -> None:
        assert self._loop is not None and self._stopping is not None
        deadline = self._loop.time() + grace_seconds
        while self._loop.time() < deadline:
            with self._state_lock:
                busy = any(
                    job.state not in TERMINAL_STATES for job in self._jobs.values()
                )
            if not busy:
                break
            await asyncio.sleep(_TICK)
        self._stopping.set()

    # -- HTTP plumbing (asyncio plane) -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    self._read_request(reader), _READ_TIMEOUT
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError, ConnectionError):
                return
            if request is None:
                return
            method, target, headers, body = request
            try:
                await self._dispatch(method, target, headers, body, writer)
            except ServeError as err:
                await self._send_json(
                    writer, err.status, err.payload(), retry_after=err.retry_after
                )
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:
                fallback = ServeError("server_error", f"{type(exc).__name__}: {exc}")
                await self._send_json(writer, fallback.status, fallback.payload())
        except (ConnectionError, OSError, InjectedFault):
            # Peer went away mid-response (or chaos testing severed the
            # connection for us); nothing left to tell it.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        fault_fire("http.read")
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ServeError("invalid_request", "malformed HTTP request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
            if len(headers) > _MAX_HEADERS:
                raise ServeError("invalid_request", "too many headers")
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise ServeError(
                "invalid_request", f"bad Content-Length: {length_text!r}"
            ) from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise ServeError(
                "invalid_request",
                f"Content-Length {length} outside [0, {_MAX_BODY_BYTES}]",
            )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _dispatch(
        self,
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = {key: values[-1] for key, values in parse_qs(url.query).items()}
        client = headers.get("x-repro-client", DEFAULT_CLIENT)
        if path == "/healthz" and method == "GET":
            import repro

            await self._send_json(
                writer,
                200,
                {
                    "status": "ok",
                    "protocol": PROTOCOL_VERSION,
                    "version": repro.__version__,
                },
            )
        elif path == "/stats" and method == "GET":
            await self._send_json(writer, 200, self.stats())
        elif path == "/runs" and method == "POST":
            await self._handle_submit(body, client, writer)
        elif path.startswith("/runs/"):
            job_id, _, action = path[len("/runs/") :].partition("/")
            with self._state_lock:
                job = self._jobs.get(job_id)
            if job is None:
                raise ServeError("not_found", f"no such job: {job_id!r}")
            if action == "" and method == "GET":
                await self._send_json(writer, 200, job.status_payload())
            elif (action == "cancel" and method == "POST") or (
                action == "" and method == "DELETE"
            ):
                await self._handle_cancel(job, writer)
            elif action == "result" and method == "GET":
                await self._handle_result(job, query, writer)
            elif action == "events" and method == "GET":
                await self._handle_events(job, query, headers, writer)
            else:
                raise ServeError("not_found", f"no route for {method} {path}")
        else:
            raise ServeError("not_found", f"no route for {method} {path}")

    async def _handle_submit(
        self, body: bytes, client: str, writer: asyncio.StreamWriter
    ) -> None:
        try:
            document = json.loads(body.decode("utf-8")) if body else None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(
                "invalid_request", f"request body is not valid JSON: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise ServeError("invalid_request", "request body must be a JSON object")
        raw_spec = document.get("spec", document)  # envelope optional
        try:
            spec = normalize_spec(spec_from_dict(raw_spec), self.default_n_jobs)
            # Fail at submission, not mid-run: an unavailable engine
            # lane (spec-pinned or via REPRO_ENGINE) is a 400 with
            # field "engine", not a simulation_failed job.
            check_engine_available(spec)
        except SpecValidationError as exc:
            raise ServeError("invalid_spec", exc.reason, exc.path or None) from exc
        except (TypeError, ValueError) as exc:
            raise ServeError("invalid_spec", str(exc)) from exc
        job, deduped = self.submit(spec, client)
        payload = job.status_payload()
        payload["deduped"] = deduped
        await self._send_json(writer, 202, payload)

    async def _handle_cancel(
        self, job: ServeJob, writer: asyncio.StreamWriter
    ) -> None:
        terminal = job.state in TERMINAL_STATES
        if not terminal:
            job.cancel_event.set()
        payload = job.status_payload()
        payload["cancel_requested"] = not terminal
        await self._send_json(writer, 202, payload)

    async def _handle_result(
        self, job: ServeJob, query: dict[str, str], writer: asyncio.StreamWriter
    ) -> None:
        wait = _truthy(query.get("wait"))
        try:
            timeout = float(query.get("timeout", "60"))
        except ValueError:
            raise ServeError(
                "invalid_request", f"bad timeout: {query.get('timeout')!r}"
            ) from None
        assert self._loop is not None
        deadline = self._loop.time() + timeout
        while job.state not in TERMINAL_STATES:
            if not wait or self._loop.time() >= deadline:
                raise ServeError(
                    "not_ready", f"job {job.job_id} is {job.state}; retry or ?wait=1"
                )
            await asyncio.sleep(_TICK)
        if job.state == protocol.CANCELLED:
            raise ServeError("cancelled", f"job {job.job_id} was cancelled")
        if job.state == protocol.FAILED:
            error = job.error or {}
            raise ServeError(
                error.get("code", "simulation_failed"),
                error.get("message", "simulation failed"),
                error.get("field"),
            )
        if _truthy(query.get("aggregates")):
            assert self._loop is not None
            body = await self._loop.run_in_executor(None, job.aggregates_bytes)
        else:
            assert job.result_bytes is not None
            body = job.result_bytes
        await self._send_bytes(writer, 200, body, "application/json")

    async def _handle_events(
        self,
        job: ServeJob,
        query: dict[str, str],
        headers: dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> None:
        sse = query.get("format") == "sse" or "text/event-stream" in headers.get(
            "accept", ""
        )
        encode = sse_line if sse else ndjson_line
        content_type = "text/event-stream" if sse else "application/x-ndjson"
        await self._send_stream_head(writer, content_type)
        sent = 0
        while True:
            with job.lock:
                rows = job.events[sent:]
                dropped = job.events_dropped
            # Terminal state is only set after the run stopped emitting,
            # so a terminal snapshot taken *after* slicing the buffer
            # guarantees the slice already held every row.
            terminal = job.state in TERMINAL_STATES
            for row in rows:
                writer.write(encode(row))
            sent += len(rows)
            if rows:
                await writer.drain()
            if terminal:
                with job.lock:
                    rows = job.events[sent:]
                    dropped = job.events_dropped
                for row in rows:
                    writer.write(encode(row))
                sent += len(rows)
                writer.write(
                    encode(
                        {
                            "event": END_OF_STREAM,
                            "state": job.state,
                            "events": sent,
                            "events_dropped": dropped,
                        }
                    )
                )
                await writer.drain()
                return
            await asyncio.sleep(_TICK)

    # -- responses ---------------------------------------------------------------
    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        *,
        retry_after: float | None = None,
    ) -> None:
        if writer.is_closing():
            return
        body = (
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        await self._send_bytes(
            writer, status, body, "application/json", retry_after=retry_after
        )

    async def _send_bytes(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        *,
        retry_after: float | None = None,
    ) -> None:
        if writer.is_closing():
            return
        fault_fire("http.write")
        extra = ""
        if retry_after is not None:
            # Retry-After is delay-seconds; HTTP wants an integer, so
            # round up — never tell a client to come back too early.
            extra = f"Retry-After: {max(1, math.ceil(retry_after))}\r\n"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _send_stream_head(
        self, writer: asyncio.StreamWriter, content_type: str
    ) -> None:
        # No Content-Length: the stream is close-delimited (we answer
        # HTTP/1.1 with Connection: close on every response).
        fault_fire("http.write")
        head = (
            f"HTTP/1.1 200 OK\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Cache-Control: no-store\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()

    # -- introspection -----------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """The ``/stats`` payload (also handy in-process, e.g. in tests)."""
        with self._state_lock:
            states = Counter(job.state for job in self._jobs.values())
            payload: dict[str, Any] = {
                "protocol": PROTOCOL_VERSION,
                "accepting": self._accepting,
                "draining": self._draining,
                "jobs": {state: states.get(state, 0) for state in protocol.JOB_STATES},
                "submissions": self._submissions,
                "deduped_submissions": self._deduped,
                "simulations_run": self._simulations_run,
                "recovered_jobs": self._recovered_jobs,
                "shed_submissions": self._shed_submissions,
                "shed_inflight": self.shed_inflight,
                "lease_expirations": self._lease_expirations,
                "cache_hits": self._runner.cache_hits,
                "cache_misses": self._runner.cache_misses,
                "quota": {
                    "max_inflight": self.quota.max_inflight,
                    "max_events": self.quota.max_events,
                    "max_wall_seconds": self.quota.max_wall_seconds,
                    "lease_seconds": self.quota.lease_seconds,
                },
            }
        payload["inflight"] = self._ledger.snapshot()
        return payload

    @property
    def simulations_run(self) -> int:
        """Execution counter: simulations actually driven to completion."""
        with self._state_lock:
            return self._simulations_run


def _truthy(value: str | None) -> bool:
    return value is not None and value.lower() not in ("", "0", "false", "no")
