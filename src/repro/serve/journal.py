"""The daemon's crash-consistent run journal.

The result cache already makes *finished* work durable; the journal
makes *accepted* work durable.  It is an append-only JSONL file beside
the cache (``serve-journal.jsonl`` under ``--cache-dir``) recording two
operations::

    {"kind": "repro-serve-journal", "version": 1, "format": 4}
    {"op": "submitted", "job_id": "job-000001", "key": "3f2a...", "client": "alice", "spec": {...}}
    {"op": "terminal", "job_id": "job-000001", "state": "done"}

A job that was submitted but never reached a terminal record is exactly
the work a crashed daemon lost; :meth:`RunJournal.recover` returns
those entries so a restarted daemon re-admits them under their original
job ids.  Because every simulation is deterministic in its spec, the
re-run (or the cache hit, when the result landed before the crash)
reproduces the original result byte for byte.

Append-only for the same reason as :class:`~repro.sweep.SweepManifest`:
O(1) per state change, and a crash mid-append tears at most one line.
Robustness beats forensics here — :meth:`recover` *skips* corrupt lines
(counting them) instead of refusing to start, because the worst case of
a lost record is a job that deterministically re-runs.  Recovery also
compacts: the journal is rewritten (atomically) to hold only the
still-pending entries, so it does not grow across restarts.
"""

from __future__ import annotations

import json
import os
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.faults import InjectedCrash, torn_write
from repro.serialize import FORMAT_VERSION

__all__ = ["JOURNAL_VERSION", "RecoveredJob", "RunJournal"]

JOURNAL_VERSION = 1
_KIND = "repro-serve-journal"
_JOB_ID_PATTERN = re.compile(r"^job-(\d+)$")


@dataclass(frozen=True)
class RecoveredJob:
    """One submitted-but-unfinished job read back from the journal."""

    job_id: str
    key: str
    client: str
    spec: dict[str, Any]  # the encoded (already-normalized) RunSpec document


class RunJournal:
    """Append-only submitted/terminal journal for one daemon cache dir.

    Appends are serialized under an internal lock: submissions land from
    the asyncio plane while terminal records land from worker threads.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self.corrupt_lines = 0
        # Set when a torn (injected) append left an unterminated
        # fragment at EOF; the next append starts with a newline so the
        # fragment stays one (skippable) corrupt line instead of
        # swallowing the new record.
        self._needs_newline = False

    # -- appends ------------------------------------------------------------------
    def record_submitted(
        self, job_id: str, key: str, client: str, spec: dict[str, Any]
    ) -> None:
        """Journal an admitted job.  Raises on failure — the caller must
        treat an unjournalable admission as a refused admission, or the
        durability the journal promises is silently void."""
        self._append(
            {
                "op": "submitted",
                "job_id": job_id,
                "key": key,
                "client": client,
                "spec": spec,
            }
        )

    def record_terminal(self, job_id: str, state: str) -> None:
        """Journal a job reaching ``done``/``failed``/``cancelled``."""
        self._append({"op": "terminal", "job_id": job_id, "state": state})

    def _append(self, entry: dict[str, Any]) -> None:
        with self._lock:
            line = (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
            if self._needs_newline:
                line = b"\n" + line
            payload, torn = torn_write("journal.append", line)
            self._ensure_header()
            with open(self.path, "ab") as stream:
                stream.write(payload)
            if torn:
                self._needs_newline = not payload.endswith(b"\n")
                raise InjectedCrash(f"torn journal append to {self.path}")
            self._needs_newline = False

    def _ensure_header(self) -> None:
        if self.path.exists():
            return
        header = {"kind": _KIND, "version": JOURNAL_VERSION, "format": FORMAT_VERSION}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "x", encoding="utf-8") as stream:
            stream.write(json.dumps(header, sort_keys=True) + "\n")

    # -- recovery -----------------------------------------------------------------
    def recover(self) -> tuple[list[RecoveredJob], int]:
        """Read the journal back; returns ``(pending jobs, next job number)``.

        Pending jobs are in original submission order.  The journal is
        then compacted to exactly those entries.  A journal written by
        a different serialization format version is rotated aside
        (``.stale``) and treated as empty — its specs may no longer
        decode, and a fresh daemon must still come up.
        """
        if not self.path.exists():
            return [], 1
        try:
            with open(self.path, "r", encoding="utf-8") as stream:
                lines = stream.read().splitlines()
        except OSError:
            return [], 1
        if not lines:
            return [], 1
        header = self._decode_header(lines[0])
        if header is None:
            self._rotate_stale()
            return [], 1
        pending: dict[str, RecoveredJob] = {}
        max_number = 0
        for line in lines[1:]:
            entry = self._decode_line(line)
            if entry is None:
                continue
            job_id = entry.get("job_id")
            if not isinstance(job_id, str):
                self.corrupt_lines += 1
                continue
            match = _JOB_ID_PATTERN.match(job_id)
            if match:
                max_number = max(max_number, int(match.group(1)))
            if entry.get("op") == "submitted":
                spec = entry.get("spec")
                key = entry.get("key")
                client = entry.get("client")
                if isinstance(spec, dict) and isinstance(key, str) and isinstance(client, str):
                    pending[job_id] = RecoveredJob(
                        job_id=job_id, key=key, client=client, spec=spec
                    )
                else:
                    self.corrupt_lines += 1
            elif entry.get("op") == "terminal":
                pending.pop(job_id, None)
            else:
                self.corrupt_lines += 1
        recovered = list(pending.values())
        self._compact(recovered)
        return recovered, max_number + 1

    def _decode_header(self, line: str) -> dict[str, Any] | None:
        try:
            header = json.loads(line)
        except ValueError:
            return None
        if not isinstance(header, dict) or header.get("kind") != _KIND:
            return None
        if header.get("version") != JOURNAL_VERSION:
            return None
        if header.get("format") != FORMAT_VERSION:
            return None
        return header

    def _decode_line(self, line: str) -> dict[str, Any] | None:
        if not line.strip():
            return None
        try:
            entry = json.loads(line)
        except ValueError:
            self.corrupt_lines += 1
            return None
        if not isinstance(entry, dict):
            self.corrupt_lines += 1
            return None
        return entry

    def _compact(self, pending: list[RecoveredJob]) -> None:
        """Atomically rewrite the journal to header + pending entries."""
        header = {"kind": _KIND, "version": JOURNAL_VERSION, "format": FORMAT_VERSION}
        temp = self.path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(temp, "w", encoding="utf-8") as stream:
                stream.write(json.dumps(header, sort_keys=True) + "\n")
                for job in pending:
                    entry = {
                        "op": "submitted",
                        "job_id": job.job_id,
                        "key": job.key,
                        "client": job.client,
                        "spec": job.spec,
                    }
                    stream.write(json.dumps(entry, sort_keys=True) + "\n")
            os.replace(temp, self.path)
        except OSError:
            try:
                os.unlink(temp)
            except OSError:
                pass

    def _rotate_stale(self) -> None:
        """Move an unreadable/old-format journal aside and start fresh."""
        try:
            os.replace(self.path, self.path.with_suffix(".stale"))
        except OSError:
            pass
