"""Per-client admission control for the serve daemon.

A :class:`QuotaPolicy` is the server-wide limit set; a
:class:`QuotaLedger` tracks per-client in-flight runs against it.
Clients identify themselves with the ``X-Repro-Client`` header (the
daemon buckets unidentified traffic under one shared name), so quotas
are cooperative fairness, not authentication.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.serve.protocol import ServeError

__all__ = ["DEFAULT_CLIENT", "QuotaExceeded", "QuotaLedger", "QuotaPolicy"]

#: Bucket for requests that send no ``X-Repro-Client`` header.
DEFAULT_CLIENT = "anonymous"


class QuotaExceeded(ServeError):
    """Admission control refused the request (HTTP 429 / exit 5)."""

    def __init__(self, message: str, field: str | None = None) -> None:
        super().__init__("quota_exceeded", message, field)


@dataclass(frozen=True)
class QuotaPolicy:
    """Server-wide per-client limits.

    ``max_inflight``
        Concurrent non-terminal runs one client may own.  A deduped
        submission (single-flight hit on another client's run) is free.
    ``max_events``
        Telemetry replay-buffer bound per job: events beyond it are
        counted and dropped, never buffered (late stream subscribers
        see at most this many rows before the live tail).
    ``max_wall_seconds``
        Wall-clock budget per run; checked between ``run_for`` slices,
        so a run over budget fails with ``quota_exceeded`` at the next
        slice boundary.
    ``lease_seconds``
        Per-slice progress lease.  The worker renews the lease at every
        slice boundary; a slice that outlives it is presumed wedged —
        the watchdog cancels the session, fails the job with a
        structured ``lease_expired`` error, and releases the quota slot
        instead of letting a stuck worker pin it forever.  ``inf``
        disables the watchdog.
    """

    max_inflight: int = 4
    max_events: int = 10_000
    max_wall_seconds: float = 300.0
    lease_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.max_inflight <= 0:
            raise ValueError(f"max_inflight must be positive, got {self.max_inflight}")
        if self.max_events <= 0:
            raise ValueError(f"max_events must be positive, got {self.max_events}")
        if self.max_wall_seconds <= 0:
            raise ValueError(
                f"max_wall_seconds must be positive, got {self.max_wall_seconds}"
            )
        if self.lease_seconds <= 0:
            raise ValueError(
                f"lease_seconds must be positive, got {self.lease_seconds}"
            )


class QuotaLedger:
    """Thread-safe in-flight run counts, one slot ledger per client."""

    def __init__(self, policy: QuotaPolicy) -> None:
        self.policy = policy
        self._lock = threading.Lock()
        self._inflight: dict[str, int] = {}

    def acquire(self, client: str, *, force: bool = False) -> None:
        """Claim one in-flight slot for ``client`` or raise :class:`QuotaExceeded`.

        ``force`` claims the slot regardless of the limit — used for
        journal-recovered jobs, which were already admitted in the
        daemon's previous life and must not be dropped at restart just
        because they all arrive at once.  The slot is still counted (and
        released), so fresh submissions see honest pressure.
        """
        with self._lock:
            held = self._inflight.get(client, 0)
            if held >= self.policy.max_inflight and not force:
                raise QuotaExceeded(
                    f"client {client!r} already has {held} runs in flight "
                    f"(limit {self.policy.max_inflight})"
                )
            self._inflight[client] = held + 1

    def release(self, client: str) -> None:
        """Return a slot.  Releasing an unheld slot is a programming error."""
        with self._lock:
            held = self._inflight.get(client, 0)
            if held <= 0:
                raise RuntimeError(f"release without acquire for client {client!r}")
            if held == 1:
                del self._inflight[client]
            else:
                self._inflight[client] = held - 1

    def snapshot(self) -> dict[str, int]:
        """Current in-flight counts by client (for ``/stats``)."""
        with self._lock:
            return dict(self._inflight)
