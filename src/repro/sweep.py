"""Crash-safe sweep orchestration: an on-disk manifest plus resume.

A fleet-scale sweep (the 60-run paper grids, or a 10^5-run parameter
study) should survive being interrupted — a killed process, a crashed
worker, a rebooted machine — without losing the work already done.
:func:`run_sweep` layers that on :class:`~repro.batch.BatchRunner`:

* the **result cache** (``cache_dir``) already persists every finished
  run, keyed by spec; a resumed sweep re-runs only what is missing;
* the **sweep manifest** (``manifest_path``) is an append-only JSONL
  journal recording per-spec status (``done`` / ``failed``) plus a
  header that fingerprints the spec set, so a resume against a
  *different* grid is rejected instead of silently mixing sweeps.

The journal is append-only on purpose: completing a spec costs one
``write`` of one line (O(1)), not a rewrite of an N-entry document
(O(N) per completion, O(N^2) per sweep), and a crash mid-append leaves
at worst one torn trailing line, which loading tolerates.

Usage::

    report = run_sweep(specs, manifest_path="sweep.jsonl",
                       cache_dir=".repro-cache", max_workers=8,
                       on_error="retry")
    # ... interrupted?  Run the same call again with resume=True:
    report = run_sweep(specs, manifest_path="sweep.jsonl",
                       cache_dir=".repro-cache", max_workers=8,
                       on_error="retry", resume=True)

The resumed call re-simulates only the specs with no cached result;
everything else is served from disk, and the final result list is
identical to an uninterrupted sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.api import normalize_spec
from repro.batch import BatchRunner, SpecFailure
from repro.scheduling.result import SimulationResult
from repro.serialize import FORMAT_VERSION, spec_key, spec_to_dict
from repro.experiments.config import RunSpec

__all__ = ["SweepManifest", "SweepReport", "run_sweep"]

_HEADER_KIND = "sweep-manifest"


@dataclass(frozen=True)
class SweepReport:
    """What a sweep did, beyond the results themselves.

    ``results`` is in input order (``None`` at the positions of
    terminally-failed specs); ``completed`` counts the specs simulated
    by *this* call, ``skipped`` the unique specs served from the result
    cache (on a resume: the work the previous call already did).
    """

    results: list[SimulationResult | None]
    failures: tuple[SpecFailure, ...]
    total: int
    completed: int
    skipped: int


class SweepManifest:
    """The append-only JSONL journal behind one sweep.

    Line 1 is a header carrying the serialisation format version, the
    spec count and a digest over the sorted spec keys; every subsequent
    line records one spec reaching a terminal state::

        {"kind": "sweep-manifest", "version": 4, "total": 60, "digest": "..."}
        {"status": "done", "key": "3f2a..."}
        {"status": "failed", "key": "9c1b...", "error": "...", "attempts": 3, "spec": {...}}

    Failed entries embed the full spec dict so a post-mortem can name
    the failing run without the original grid-building code.
    """

    def __init__(self, path: str | os.PathLike[str], digest: str, total: int) -> None:
        self.path = Path(path)
        self.digest = digest
        self.total = total
        self.done: set[str] = set()
        self.failed: dict[str, dict] = {}

    # -- construction -----------------------------------------------------------
    @staticmethod
    def digest_of(specs: Sequence[RunSpec]) -> str:
        """A stable fingerprint of the (unique) spec set, order-free."""
        keys = sorted({spec_key(spec) for spec in specs})
        return hashlib.sha256("\n".join(keys).encode("ascii")).hexdigest()[:32]

    @classmethod
    def begin(cls, path: str | os.PathLike[str], specs: Sequence[RunSpec]) -> "SweepManifest":
        """Start a fresh manifest (refuses to clobber an existing one)."""
        path = Path(path)
        if path.exists():
            raise FileExistsError(
                f"sweep manifest {path} already exists; resume it or remove it"
            )
        digest = cls.digest_of(specs)
        total = len({spec_key(spec) for spec in specs})
        manifest = cls(path, digest, total)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "kind": _HEADER_KIND,
            "version": FORMAT_VERSION,
            "total": total,
            "digest": digest,
        }
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(json.dumps(header) + "\n")
        return manifest

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "SweepManifest":
        """Read a manifest back, tolerating one torn trailing line."""
        path = Path(path)
        with open(path, "r", encoding="utf-8") as stream:
            lines = stream.read().splitlines()
        if not lines:
            raise ValueError(f"sweep manifest {path} is empty")
        header = json.loads(lines[0])
        if header.get("kind") != _HEADER_KIND:
            raise ValueError(f"{path} is not a sweep manifest")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"sweep manifest {path} was written by format version "
                f"{header.get('version')!r}, expected {FORMAT_VERSION}; "
                f"re-run the sweep from scratch"
            )
        manifest = cls(path, header["digest"], header["total"])
        for index, line in enumerate(lines[1:], start=2):
            try:
                entry = json.loads(line)
            except ValueError:
                if index == len(lines):
                    continue  # a crash mid-append tears only the last line
                raise ValueError(f"corrupt sweep manifest {path}: line {index}")
            if entry.get("status") == "done":
                manifest.done.add(entry["key"])
                manifest.failed.pop(entry["key"], None)
            elif entry.get("status") == "failed":
                manifest.failed[entry["key"]] = entry
        return manifest

    @classmethod
    def resume(
        cls, path: str | os.PathLike[str], specs: Sequence[RunSpec]
    ) -> "SweepManifest":
        """Load ``path`` and verify it journals exactly this spec set."""
        manifest = cls.load(path)
        digest = cls.digest_of(specs)
        if digest != manifest.digest:
            raise ValueError(
                f"sweep manifest {path} journals a different spec set "
                f"(digest {manifest.digest}, grid has {digest}); "
                f"start a fresh manifest for a changed grid"
            )
        return manifest

    # -- journaling -------------------------------------------------------------
    def _append(self, entry: dict) -> None:
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps(entry) + "\n")

    def record_done(self, spec: RunSpec) -> None:
        key = spec_key(spec)
        self._append({"status": "done", "key": key})
        self.done.add(key)
        self.failed.pop(key, None)

    def record_failed(self, spec: RunSpec, error: str, attempts: int = 1) -> None:
        key = spec_key(spec)
        entry = {
            "status": "failed",
            "key": key,
            "error": error,
            "attempts": attempts,
            "spec": spec_to_dict(spec),
        }
        self._append(entry)
        self.failed[key] = entry

    @property
    def remaining(self) -> int:
        return self.total - len(self.done)

    def describe(self) -> str:
        return (
            f"{len(self.done)}/{self.total} specs done, "
            f"{len(self.failed)} failed, {self.remaining} remaining"
        )


def run_sweep(
    specs: Sequence[RunSpec],
    *,
    manifest_path: str | os.PathLike[str],
    cache_dir: str | os.PathLike[str],
    resume: bool = False,
    max_workers: int | None = None,
    validate: bool = False,
    default_n_jobs: int | None = None,
    aggregates_only: bool = False,
    on_error: str = "skip",
    retries: int = 2,
    engine: str | None = None,
    progress: Callable[[RunSpec, SimulationResult], None] | None = None,
) -> SweepReport:
    """Run ``specs`` as a crash-safe, resumable sweep.

    The result cache under ``cache_dir`` holds the actual work; the
    manifest at ``manifest_path`` journals per-spec status.  With
    ``resume=True`` an existing manifest is validated against the spec
    set and only uncached specs are simulated; without it an existing
    manifest is an error (so two different sweeps cannot silently share
    a journal).  ``on_error`` defaults to ``"skip"`` here — a sweep
    durable enough to want a manifest usually also wants to outlive one
    bad spec; failures are journaled and reported, and a later resume
    retries them.  ``engine`` selects the simulation core for specs
    that do not pin one; lane choice never enters the manifest digest
    or the cache keys, so a sweep may be resumed under a different
    engine and continues exactly where it left off.
    """
    runner = BatchRunner(
        max_workers=max_workers,
        cache_dir=cache_dir,
        validate=validate,
        default_n_jobs=default_n_jobs,
        aggregates_only=aggregates_only,
        on_error=on_error,
        retries=retries,
        engine=engine,
    )
    if default_n_jobs is not None:
        normalized = [normalize_spec(spec, default_n_jobs) for spec in specs]
    else:
        normalized = [normalize_spec(spec) for spec in specs]
    if resume and Path(manifest_path).exists():
        manifest = SweepManifest.resume(manifest_path, normalized)
    else:
        manifest = SweepManifest.begin(manifest_path, normalized)

    def on_progress(spec: RunSpec, result: SimulationResult) -> None:
        manifest.record_done(spec)
        if progress is not None:
            progress(spec, result)

    def on_failure(spec: RunSpec, error: str) -> None:
        attempts = next(
            (f.attempts for f in reversed(runner.failures) if f.spec == spec), 1
        )
        manifest.record_failed(spec, error, attempts)

    results = runner.run(normalized, progress=on_progress, on_failure=on_failure)
    # Cache hits were done before this call; journal them as done too,
    # so a manifest resumed twice converges instead of re-listing them
    # as remaining.
    seen: set[str] = set()
    for spec, result in zip(normalized, results, strict=True):
        key = spec_key(spec)
        if result is not None and key not in manifest.done and key not in seen:
            manifest.record_done(spec)
        seen.add(key)
    return SweepReport(
        results=results,
        failures=runner.failures,
        total=manifest.total,
        completed=runner.cache_misses,
        skipped=runner.cache_hits,
    )
