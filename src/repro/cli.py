"""Command-line interface: ``repro-sim`` / ``python -m repro.cli``.

Subcommands:

* ``run``       — simulate one workload under one policy and print metrics
* ``table``     — regenerate paper Table 1 or 3
* ``figure``    — regenerate a paper figure (3-9)
* ``ablation``  — run one of the ablation studies (beta, static, strict,
                  policies, gears, sleep)
* ``generate``  — write a synthetic workload to an SWF file
* ``stats``     — describe a workload (synthetic or an SWF file)
* ``report``    — regenerate the full EXPERIMENTS.md reproduction report
* ``advise``    — recommend a system size meeting a BSLD SLA (§5.2 as a tool)
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.ablations import (
    beta_sweep,
    gear_ladder_ablation,
    policy_comparison,
    sleep_vs_dvfs,
    static_share_sweep,
    strict_backfill_comparison,
)
from repro.experiments.config import PolicySpec, RunSpec
from repro.experiments.figures import (
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import table1, table3
from repro.workloads.generator import generate_workload, load_workload
from repro.workloads.models import WORKLOAD_NAMES, trace_model
from repro.workloads.stats import workload_stats
from repro.workloads.swf import read_swf, write_swf

_FIGURES = {3: figure3, 4: figure4, 5: figure5, 6: figure6, 7: figure7, 8: figure8, 9: figure9}
_ABLATIONS = {
    "beta": beta_sweep,
    "static": static_share_sweep,
    "strict": strict_backfill_comparison,
    "policies": policy_comparison,
    "gears": gear_ladder_ablation,
    "sleep": sleep_vs_dvfs,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Power-aware EASY backfilling on DVFS clusters - reproduction of "
            "Etinski et al., IPDPS Workshops 2010."
        ),
    )
    parser.add_argument(
        "--jobs", type=int, default=5000, help="trace length (default: 5000, as in the paper)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload under one policy")
    run.add_argument("workload", choices=WORKLOAD_NAMES)
    run.add_argument("--bsld-threshold", type=float, default=None,
                     help="enable the BSLD-threshold policy with this threshold")
    run.add_argument("--wq-threshold", default="NO",
                     help="wait-queue threshold (integer or NO; default NO)")
    run.add_argument("--size-factor", type=float, default=1.0,
                     help="machine enlargement factor (paper 5.2)")
    run.add_argument("--scheduler", choices=("easy", "fcfs", "conservative"), default="easy")
    run.add_argument("--beta", type=float, default=0.5, help="global beta (default 0.5)")
    run.add_argument("--boost", type=int, default=None,
                     help="dynamic-boost WQ trigger (extension; default off)")
    run.add_argument("--seed", type=int, default=None)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=(1, 3))

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=sorted(_FIGURES))

    ablation = sub.add_parser("ablation", help="run an ablation study")
    ablation.add_argument("name", choices=sorted(_ABLATIONS))
    ablation.add_argument("--workload", default=None, choices=WORKLOAD_NAMES)

    generate = sub.add_parser("generate", help="write a synthetic workload as SWF")
    generate.add_argument("workload", choices=WORKLOAD_NAMES)
    generate.add_argument("output", help="output .swf path")
    generate.add_argument("--seed", type=int, default=None)

    stats = sub.add_parser("stats", help="describe a workload")
    stats.add_argument("workload", help=f"one of {', '.join(WORKLOAD_NAMES)} or an .swf path")

    report = sub.add_parser(
        "report", help="regenerate the full EXPERIMENTS.md reproduction report"
    )
    report.add_argument("--output", default=None, help="write to a file instead of stdout")
    report.add_argument(
        "--no-ablations", action="store_true", help="skip the (slower) ablation studies"
    )

    advise = sub.add_parser(
        "advise", help="recommend a system size meeting a BSLD service-level agreement"
    )
    advise.add_argument("workload", choices=WORKLOAD_NAMES)
    advise.add_argument("--sla-bsld", type=float, required=True,
                        help="maximum acceptable average BSLD")
    advise.add_argument("--bsld-threshold", type=float, default=2.0)
    advise.add_argument("--wq-threshold", default="NO")
    advise.add_argument("--objective", choices=("idle0", "idlelow"), default="idlelow")

    return parser


def _parse_wq(raw: str) -> int | None:
    if raw.upper() in ("NO", "NONE", "NOLIMIT", "NO_LIMIT"):
        return None
    try:
        value = int(raw)
    except ValueError:
        raise SystemExit(f"--wq-threshold must be an integer or NO, got {raw!r}")
    if value < 0:
        raise SystemExit(f"--wq-threshold must be >= 0, got {value}")
    return value


def _cmd_run(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(n_jobs=args.jobs)
    if args.bsld_threshold is None:
        policy = PolicySpec.baseline()
    else:
        policy = PolicySpec.power_aware(
            args.bsld_threshold, _parse_wq(args.wq_threshold), boost_trigger=args.boost
        )
    spec = RunSpec(
        workload=args.workload,
        policy=policy,
        n_jobs=args.jobs,
        seed=args.seed,
        size_factor=args.size_factor,
        beta=args.beta,
        scheduler=args.scheduler,
    )
    result = runner.run(spec)
    baseline = runner.run(
        RunSpec(workload=args.workload, n_jobs=args.jobs, seed=args.seed,
                scheduler=args.scheduler)
    )
    print(result.describe())
    print(f"energy (idle=0):    {result.energy.computational:.4g} "
          f"[{result.energy.computational / baseline.energy.computational:.3f} of no-DVFS]")
    print(f"energy (idle=low):  {result.energy.total_idle_low:.4g} "
          f"[{result.energy.total_idle_low / baseline.energy.total_idle_low:.3f} of no-DVFS]")
    print(f"events processed:   {result.events_processed}")
    histogram = ", ".join(
        f"{gear.frequency:g}GHz: {count}" for gear, count in sorted(result.gear_histogram().items())
    )
    print(f"gear histogram:     {histogram}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(n_jobs=args.jobs)
    builder = table1 if args.number == 1 else table3
    print(builder(runner).render())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(n_jobs=args.jobs)
    print(_FIGURES[args.number](runner).render())
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(n_jobs=args.jobs)
    builder = _ABLATIONS[args.name]
    kwargs = {} if args.workload is None else {"workload": args.workload}
    print(builder(runner, **kwargs).render())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    model = trace_model(args.workload)
    jobs = generate_workload(model, args.jobs, args.seed)
    write_swf(
        args.output,
        jobs,
        max_procs=model.cpus,
        extra_header={"Workload": model.name, "Note": "synthetic repro trace"},
    )
    print(f"wrote {len(jobs)} jobs to {args.output} (machine: {model.cpus} CPUs)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.workload in WORKLOAD_NAMES:
        jobs = load_workload(args.workload, args.jobs)
        cpus: int | None = trace_model(args.workload).cpus
        print(f"{args.workload} (synthetic, {len(jobs)} jobs)")
    else:
        header, jobs = read_swf(args.workload)
        cpus = header.max_procs
        print(f"{args.workload} ({len(jobs)} jobs from SWF)")
    print(workload_stats(jobs, cpus).render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_report

    runner = ExperimentRunner(n_jobs=args.jobs)
    text = build_report(runner, include_ablations=not args.no_ablations)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(text)
        print(f"wrote report to {args.output}")
    else:
        print(text)
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.experiments.advisor import recommend_system_size

    runner = ExperimentRunner(n_jobs=args.jobs)
    policy = PolicySpec.power_aware(args.bsld_threshold, _parse_wq(args.wq_threshold))
    recommendation = recommend_system_size(
        runner, args.workload, args.sla_bsld, policy=policy, objective=args.objective
    )
    print(recommendation.render())
    if recommendation.chosen is not None:
        chosen = recommendation.chosen
        print(
            f"\n=> recommend a {(chosen.size_factor - 1) * 100:.0f}% larger system: "
            f"avg BSLD {chosen.avg_bsld:.2f} (SLA {args.sla_bsld:g}), "
            f"{args.objective} energy at {getattr(chosen, 'energy_' + args.objective):.3f} "
            f"of the original no-DVFS machine"
        )
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "table": _cmd_table,
    "figure": _cmd_figure,
    "ablation": _cmd_ablation,
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "report": _cmd_report,
    "advise": _cmd_advise,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
