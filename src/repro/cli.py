"""Command-line interface: ``repro-sim`` / ``python -m repro.cli``.

Subcommands:

* ``run``       — simulate one workload under one policy and print metrics
* ``watch``     — stream live power/queue telemetry while a run simulates
* ``sweep``     — run a custom policy/size grid (parallel-friendly)
* ``table``     — regenerate paper Table 1 or 3
* ``figure``    — regenerate a paper figure (3-9)
* ``ablation``  — run one of the ablation studies (beta, static, strict,
                  policies, gears, sleep)
* ``generate``  — write a synthetic workload to an SWF file
* ``stats``     — describe a workload (synthetic or an SWF file)
* ``report``    — regenerate the full reproduction report (markdown)
* ``advise``    — recommend a system size meeting a BSLD SLA (§5.2 as a tool)

Figure, ablation and scheduler names come from the registries in
:mod:`repro.registry`, so newly registered components appear in the CLI
without edits here.  The global ``--parallel N`` flag fans the
simulation sweeps behind ``sweep``/``table``/``figure``/``ablation``
out over N worker processes, and ``--cache-dir`` persists results
across invocations.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import NoReturn, Sequence

from repro.cluster.power import SleepPolicy
from repro.experiments.config import PolicySpec, RunSpec
from repro.experiments.runner import ExperimentRunner
from repro.registry import (
    ABLATIONS,
    ENGINES,
    FIGURES,
    POWER_MODELS,
    SCHEDULERS,
    SLEEP_POLICIES,
)
from repro.serialize import SpecValidationError
from repro.serve.protocol import ServeError, error_json
from repro.workloads.generator import generate_workload, load_workload
from repro.workloads.models import WORKLOAD_NAMES, trace_model
from repro.workloads.stats import workload_stats
from repro.workloads.swf import read_swf, write_swf

#: Set per-invocation by :func:`main`; parser errors consult it so the
#: ``--json`` contract covers argparse's own failures too.
_JSON_MODE = False


class _Parser(argparse.ArgumentParser):
    """ArgumentParser whose errors honour the global ``--json`` mode.

    ``add_subparsers`` instantiates subparsers with ``type(self)``, so
    every subcommand parser inherits this behaviour automatically.
    """

    def error(self, message: str) -> NoReturn:
        if _JSON_MODE:
            failure = ServeError("invalid_request", message)
            print(error_json(failure), file=sys.stderr)
            raise SystemExit(failure.exit_code)
        super().error(message)
        raise AssertionError("unreachable")  # argparse's error() always exits


def _build_parser() -> argparse.ArgumentParser:
    parser = _Parser(
        prog="repro-sim",
        description=(
            "Power-aware EASY backfilling on DVFS clusters - reproduction of "
            "Etinski et al., IPDPS Workshops 2010."
        ),
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable errors: one line of JSON on stderr plus a "
             "stable exit code (the serve daemon's error schema)",
    )
    parser.add_argument(
        "--jobs", type=int, default=5000, help="trace length (default: 5000, as in the paper)"
    )
    parser.add_argument(
        "--parallel", type=int, default=0, metavar="N",
        help="run simulation sweeps in up to N worker processes (default: serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist simulation results as JSON under DIR and reuse them",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload under one policy")
    run.add_argument("workload", choices=WORKLOAD_NAMES)
    run.add_argument("--bsld-threshold", type=float, default=None,
                     help="enable the BSLD-threshold policy with this threshold")
    run.add_argument("--wq-threshold", default="NO",
                     help="wait-queue threshold (integer or NO; default NO)")
    run.add_argument("--size-factor", type=float, default=1.0,
                     help="machine enlargement factor (paper 5.2)")
    run.add_argument("--scheduler", choices=SCHEDULERS.names(), default="easy")
    run.add_argument("--power-model", choices=POWER_MODELS.names(), default="paper",
                     help="registered power model (default: paper)")
    run.add_argument("--beta", type=float, default=0.5, help="global beta (default 0.5)")
    run.add_argument("--boost", type=int, default=None,
                     help="dynamic-boost WQ trigger (extension; default off)")
    run.add_argument("--seed", type=int, default=None)
    _add_engine_flag(run)
    _add_sleep_flags(run)
    run.set_defaults(handler=_cmd_run)

    watch = sub.add_parser(
        "watch", help="stream live telemetry from a steppable simulation session"
    )
    watch.add_argument("workload", choices=WORKLOAD_NAMES)
    watch.add_argument("--bsld-threshold", type=float, default=None,
                       help="enable the BSLD-threshold policy with this threshold")
    watch.add_argument("--wq-threshold", default="NO",
                       help="wait-queue threshold (integer or NO; default NO)")
    watch.add_argument("--scheduler", choices=SCHEDULERS.names(), default="easy")
    watch.add_argument("--seed", type=int, default=None)
    watch.add_argument("--interval", type=float, default=6 * 3600.0, metavar="SECONDS",
                       help="minimum simulated seconds between telemetry lines "
                            "(default: 21600, one line per 6 simulated hours)")
    watch.add_argument("--cap", type=float, default=None, metavar="WATTS",
                       help="attach a power-cap controller enforcing this cap "
                            "(model watts; see `run` output for the scale)")
    watch.add_argument("--step-events", type=int, default=256, metavar="N",
                       help="events to simulate between output flushes (default: 256)")
    _add_sleep_flags(watch)
    watch.set_defaults(handler=_cmd_watch)

    sweep = sub.add_parser(
        "sweep", help="run a policy/size grid through the batch runner"
    )
    sweep.add_argument("--workloads", nargs="+", choices=WORKLOAD_NAMES,
                       default=list(WORKLOAD_NAMES), metavar="W")
    sweep.add_argument("--bsld-thresholds", default="1.5,2,3",
                       help="comma-separated BSLD thresholds (default: 1.5,2,3)")
    sweep.add_argument("--wq-thresholds", default="0,4,16,NO",
                       help="comma-separated WQ thresholds, NO = no limit")
    sweep.add_argument("--size-factors", default="1",
                       help="comma-separated machine enlargement factors (default: 1)")
    sweep.add_argument("--scheduler", choices=SCHEDULERS.names(), default="easy")
    sweep.add_argument(
        "--aggregates-only", action="store_true",
        help="keep only headline metrics per run (fleet-scale memory footprint)",
    )
    sweep.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="journal per-spec status to this JSONL file (crash-safe sweeps; "
             "needs --cache-dir)",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted --manifest sweep, re-running only unfinished specs",
    )
    sweep.add_argument(
        "--on-error", choices=("raise", "skip", "retry"), default="retry",
        help="what a failing run does to a --manifest sweep (default: retry)",
    )
    sweep.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts per failing run under --on-error retry (default: 2)",
    )
    _add_engine_flag(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=(1, 3))
    table.set_defaults(handler=_cmd_table)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument(
        "number", type=int, choices=sorted(int(name) for name in FIGURES.names())
    )
    figure.set_defaults(handler=_cmd_figure)

    ablation = sub.add_parser("ablation", help="run an ablation study")
    ablation.add_argument("name", choices=ABLATIONS.names())
    ablation.add_argument("--workload", default=None, choices=WORKLOAD_NAMES)
    ablation.set_defaults(handler=_cmd_ablation)

    generate = sub.add_parser("generate", help="write a synthetic workload as SWF")
    generate.add_argument("workload", choices=WORKLOAD_NAMES)
    generate.add_argument("output", help="output .swf path")
    generate.add_argument("--seed", type=int, default=None)
    generate.set_defaults(handler=_cmd_generate)

    stats = sub.add_parser("stats", help="describe a workload")
    stats.add_argument("workload", help=f"one of {', '.join(WORKLOAD_NAMES)} or an .swf path")
    stats.set_defaults(handler=_cmd_stats)

    report = sub.add_parser(
        "report", help="regenerate the full reproduction report (markdown)"
    )
    report.add_argument("--output", default=None, help="write to a file instead of stdout")
    report.add_argument(
        "--no-ablations", action="store_true", help="skip the (slower) ablation studies"
    )
    report.set_defaults(handler=_cmd_report)

    advise = sub.add_parser(
        "advise", help="recommend a system size meeting a BSLD service-level agreement"
    )
    advise.add_argument("workload", choices=WORKLOAD_NAMES)
    advise.add_argument("--sla-bsld", type=float, required=True,
                        help="maximum acceptable average BSLD")
    advise.add_argument("--bsld-threshold", type=float, default=2.0)
    advise.add_argument("--wq-threshold", default="NO")
    advise.add_argument("--objective", choices=("idle0", "idlelow"), default="idlelow")
    advise.set_defaults(handler=_cmd_advise)

    serve = sub.add_parser(
        "serve", help="run the simulation-as-a-service daemon (HTTP/JSON)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="TCP port (0 binds an ephemeral port; default: 8642)")
    serve.add_argument("--max-workers", type=int, default=4,
                       help="simulation worker threads (default: 4)")
    serve.add_argument("--slice-events", type=int, default=20_000,
                       help="events per cooperative run_for slice (default: 20000)")
    serve.add_argument("--max-inflight", type=int, default=4,
                       help="per-client concurrent runs (default: 4)")
    serve.add_argument("--max-events", type=int, default=10_000,
                       help="per-job telemetry replay-buffer bound (default: 10000)")
    serve.add_argument("--max-wall-seconds", type=float, default=300.0,
                       help="per-run wall-clock budget (default: 300)")
    serve.add_argument("--lease-seconds", type=float, default=60.0,
                       help="per-slice progress lease before the watchdog "
                            "cancels a wedged run (default: 60)")
    serve.add_argument("--shed-inflight", type=int, default=None,
                       help="load-shedding high-water mark: refuse new "
                            "submissions with 503 + Retry-After once this "
                            "many jobs are non-terminal (default: off)")
    serve.add_argument("--drain-grace", type=float, default=30.0,
                       help="seconds SIGTERM lets in-flight jobs finish "
                            "before the daemon exits (default: 30)")
    serve.set_defaults(handler=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a RunSpec JSON document to a serve daemon"
    )
    submit.add_argument("spec", help="path to a spec JSON document, or - for stdin")
    submit.add_argument("--server", default="127.0.0.1:8642", metavar="HOST:PORT")
    submit.add_argument("--client-id", default=None,
                        help="quota bucket sent as X-Repro-Client")
    submit.add_argument("--wait", action="store_true",
                        help="block until done and print the result JSON on stdout")
    submit.add_argument("--aggregates-only", action="store_true",
                        help="with --wait, fetch the reduced (headline-metrics) result")
    submit.add_argument("--stream", action="store_true",
                        help="stream telemetry rows (NDJSON) to stdout while running")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="client-side wait budget in seconds (default: 300)")
    submit.set_defaults(handler=_cmd_submit)

    status = sub.add_parser(
        "status", help="query a serve daemon: job status, or server stats"
    )
    status.add_argument("job_id", nargs="?", default=None,
                        help="job to inspect (omit for server-wide stats)")
    status.add_argument("--server", default="127.0.0.1:8642", metavar="HOST:PORT")
    status.set_defaults(handler=_cmd_status)

    return parser


def _runner(args: argparse.Namespace, aggregates_only: bool = False) -> ExperimentRunner:
    """The experiment runner honouring the global flags."""
    if args.parallel < 0:
        raise SystemExit(f"--parallel must be >= 0, got {args.parallel}")
    return ExperimentRunner(
        n_jobs=args.jobs,
        max_workers=args.parallel or None,
        cache_dir=args.cache_dir,
        aggregates_only=aggregates_only,
    )


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", default=None, choices=ENGINES.names(), metavar="LANE",
        help="simulation core lane: one of "
             f"{', '.join(ENGINES.names())} (results are byte-identical; "
             "default: the REPRO_ENGINE environment variable, else reference)",
    )


def _add_sleep_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sleep", default=None, choices=SLEEP_POLICIES.names(), metavar="PRESET",
        help="power down idle nodes in-engine using this sleep-policy preset "
             f"({', '.join(SLEEP_POLICIES.names())}; default: always-on machine)",
    )
    parser.add_argument(
        "--sleep-after", type=float, default=None, metavar="SECONDS",
        help="override the preset's idle threshold before nodes power down",
    )
    parser.add_argument(
        "--wake-seconds", type=float, default=None, metavar="SECONDS",
        help="override the preset's wake-transition latency",
    )


def _parse_sleep(args: argparse.Namespace) -> SleepPolicy | None:
    overrides = {}
    if args.sleep_after is not None:
        overrides["sleep_after_seconds"] = args.sleep_after
    if args.wake_seconds is not None:
        overrides["wake_seconds"] = args.wake_seconds
    if args.sleep is None:
        if overrides:
            raise SystemExit("--sleep-after/--wake-seconds need --sleep PRESET")
        return None
    try:
        return SleepPolicy.preset(args.sleep, **overrides)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _parse_wq(raw: str) -> int | None:
    if raw.upper() in ("NO", "NONE", "NOLIMIT", "NO_LIMIT"):
        return None
    try:
        value = int(raw)
    except ValueError:
        raise SystemExit(f"--wq-threshold must be an integer or NO, got {raw!r}") from None
    if value < 0:
        raise SystemExit(f"--wq-threshold must be >= 0, got {value}")
    return value


def _parse_float_list(raw: str, flag: str) -> tuple[float, ...]:
    try:
        values = tuple(float(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"{flag} must be a comma-separated list of numbers, got {raw!r}") from None
    if not values:
        raise SystemExit(f"{flag} must name at least one value")
    return values


def _cmd_run(args: argparse.Namespace) -> int:
    runner = _runner(args)
    if args.bsld_threshold is None:
        policy = PolicySpec.baseline()
    else:
        policy = PolicySpec.power_aware(
            args.bsld_threshold, _parse_wq(args.wq_threshold), boost_trigger=args.boost
        )
    result, baseline = runner.run_many(
        [
            RunSpec(
                workload=args.workload,
                policy=policy,
                seed=args.seed,
                size_factor=args.size_factor,
                beta=args.beta,
                scheduler=args.scheduler,
                power_model=args.power_model,
                sleep=_parse_sleep(args),
                engine=args.engine,
            ),
            # The reference stays an always-on no-DVFS machine so the
            # energy ratios isolate what the policy (and sleep) saved.
            RunSpec(
                workload=args.workload, seed=args.seed,
                scheduler=args.scheduler, power_model=args.power_model,
                engine=args.engine,
            ),
        ]
    )
    print(result.describe())
    sleep_report = result.energy.sleep
    if sleep_report is not None:
        print(
            f"sleep states:       {sleep_report.sleep_fraction:.1%} of idle time asleep, "
            f"{sleep_report.wake_count} wakes, "
            f"{sleep_report.wake_delayed_jobs} starts stalled "
            f"{sleep_report.wake_delay_seconds_total:.0f}s total"
        )
    print(f"energy (idle=0):    {result.energy.computational:.4g} "
          f"[{result.energy.computational / baseline.energy.computational:.3f} of no-DVFS]")
    print(f"energy (idle=low):  {result.energy.total_idle_low:.4g} "
          f"[{result.energy.total_idle_low / baseline.energy.total_idle_low:.3f} of no-DVFS]")
    print(f"events processed:   {result.events_processed}")
    histogram = ", ".join(
        f"{gear.frequency:g}GHz: {count}" for gear, count in sorted(result.gear_histogram().items())
    )
    print(f"gear histogram:     {histogram}")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.api import Simulation
    from repro.experiments.config import InstrumentSpec

    if args.step_events <= 0:
        raise SystemExit(f"--step-events must be positive, got {args.step_events}")
    if args.bsld_threshold is None:
        policy = PolicySpec.baseline()
    else:
        policy = PolicySpec.power_aware(args.bsld_threshold, _parse_wq(args.wq_threshold))
    instruments = [InstrumentSpec.of("power_telemetry", min_interval=args.interval)]
    if args.cap is not None:
        if args.cap <= 0:
            raise SystemExit(f"--cap must be positive, got {args.cap}")
        instruments.append(InstrumentSpec.of("power_cap", cap=args.cap))
    sleep = _parse_sleep(args)
    # A disabled override (--sleep-after inf) bypasses the subsystem
    # entirely; show the asleep column only when it can ever be nonzero.
    show_asleep = sleep is not None and sleep.enabled
    spec = RunSpec(
        workload=args.workload,
        policy=policy,
        n_jobs=args.jobs,
        seed=args.seed,
        scheduler=args.scheduler,
        instruments=tuple(instruments),
        sleep=sleep,
    )
    session = Simulation(spec).session()
    sampler = session.instrument("power_telemetry")
    controller = session.instrument("power_cap") if args.cap is not None else None

    print(f"watching {spec.label()} ({args.jobs} jobs)")
    header = f"{'sim time [s]':>14} {'power [W]':>11} {'busy CPUs':>10} {'queued':>7}"
    if show_asleep:
        header += f" {'asleep':>7}"
    if controller is not None:
        header += f" {'gear cap':>9}"
    print(header)
    printed = 0
    # The cap column is reconstructed from the controller's transition
    # log so each line shows the cap in force at the *sample's* time,
    # not whatever it is when the batch flushes.
    transition_index = 0
    cap_at_sample: float | None = None
    while not session.done:
        session.run_for(args.step_events)
        for time, watts, busy, depth, asleep in sampler.samples[printed:]:
            line = f"{time:>14.0f} {watts:>11.1f} {busy:>10.0f} {depth:>7.0f}"
            if show_asleep:
                line += f" {asleep:>7.0f}"
            if controller is not None:
                transitions = controller.transitions
                while (
                    transition_index < len(transitions)
                    and transitions[transition_index][0] <= time
                ):
                    cap_at_sample = transitions[transition_index][2]
                    transition_index += 1
                label = "-" if cap_at_sample is None else f"{cap_at_sample:g}GHz"
                line += f" {label:>9}"
            print(line)
        printed = len(sampler.samples)

    result = session.result()
    print()
    print(result.describe())
    telemetry = result.instrument("power_telemetry")
    print(
        f"power: peak {telemetry['peak_watts']:.1f} at t={telemetry['peak_time']:.0f}, "
        f"mean {telemetry['mean_watts']:.1f} over {telemetry['sample_count']} samples"
    )
    if controller is not None:
        report = result.instrument("power_cap")
        print(
            f"cap {report['cap']:g}: {report['reductions']} gear reductions, "
            f"{len(report['transitions'])} transitions, "
            f"{report['time_capped']:.0f}s spent capped"
        )
    sleep_report = result.energy.sleep
    if sleep_report is not None:
        print(
            f"sleep: {sleep_report.sleep_fraction:.1%} of idle time asleep, "
            f"{sleep_report.wake_count} wakes, "
            f"{sleep_report.wake_delayed_jobs} starts stalled by wake latency"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.ascii_charts import format_table

    bsld_thresholds = _parse_float_list(args.bsld_thresholds, "--bsld-thresholds")
    wq_parts = [part for part in args.wq_thresholds.split(",") if part.strip()]
    if not wq_parts:
        raise SystemExit("--wq-thresholds must name at least one value")
    wq_thresholds = tuple(_parse_wq(part) for part in wq_parts)
    size_factors = _parse_float_list(args.size_factors, "--size-factors")
    if args.resume and args.manifest is None:
        raise SystemExit("--resume needs --manifest PATH")

    baselines = {
        workload: RunSpec(workload=workload, scheduler=args.scheduler, engine=args.engine)
        for workload in args.workloads
    }
    grid: list[RunSpec] = [
        RunSpec(
            workload=workload,
            policy=PolicySpec.power_aware(bsld, wq),
            size_factor=factor,
            scheduler=args.scheduler,
            engine=args.engine,
        )
        for workload in args.workloads
        for bsld in bsld_thresholds
        for wq in wq_thresholds
        for factor in size_factors
    ]
    all_specs = [*baselines.values(), *grid]

    if args.manifest is not None:
        # The crash-safe path: per-spec status journaled to the
        # manifest, finished results persisted in the cache, failures
        # reported instead of aborting the grid.
        if args.cache_dir is None:
            raise SystemExit(
                "--manifest needs --cache-dir (the cache holds the resumable results)"
            )
        from repro.sweep import run_sweep

        if args.parallel < 0:
            raise SystemExit(f"--parallel must be >= 0, got {args.parallel}")
        try:
            report = run_sweep(
                all_specs,
                manifest_path=args.manifest,
                cache_dir=args.cache_dir,
                resume=args.resume,
                max_workers=args.parallel or 1,
                default_n_jobs=args.jobs,
                aggregates_only=args.aggregates_only,
                on_error=args.on_error,
                retries=args.retries,
            )
        except (FileExistsError, ValueError) as exc:
            raise SystemExit(str(exc)) from None
        results = dict(zip(all_specs, report.results, strict=True))
        print(
            f"sweep: {report.completed} simulated, {report.skipped} from cache, "
            f"{len(report.failures)} failed (manifest: {args.manifest})"
        )
    else:
        runner = _runner(args, args.aggregates_only)
        runner.run_many(all_specs)
        results = {spec: runner.run(spec) for spec in all_specs}

    rows = []
    for spec in grid:
        run = results[spec]
        base = results[baselines[spec.workload]]
        if run is None or base is None:
            rows.append([spec.label(), "FAILED", "-", "-", "-", "-"])
            continue
        rows.append(
            [
                spec.label(),
                f"{run.average_bsld():.2f}",
                f"{run.average_wait():.0f}",
                f"{run.energy.computational / base.energy.computational:.3f}",
                f"{run.energy.total_idle_low / base.energy.total_idle_low:.3f}",
                str(run.reduced_jobs),
            ]
        )
    print(
        format_table(
            ["run", "avg BSLD", "avg wait [s]", "E_idle0/base", "E_idlelow/base", "reduced"],
            rows,
            title=(
                f"Sweep — {len(grid)} runs, {args.scheduler} scheduler "
                "(energies vs original-size no-DVFS baseline)"
            ),
        )
    )
    if args.manifest is not None and report.failures:
        print()
        for failure in report.failures:
            print(
                f"FAILED after {failure.attempts} attempt(s): "
                f"{failure.spec.label()} — {failure.error}"
            )
        print("resume with the same command plus --resume to retry failed specs")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments.tables import table1, table3

    runner = _runner(args)
    builder = table1 if args.number == 1 else table3
    print(builder(runner).render())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = _runner(args)
    print(FIGURES.get(str(args.number))(runner).render())
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    runner = _runner(args)
    builder = ABLATIONS.get(args.name)
    kwargs = {} if args.workload is None else {"workload": args.workload}
    print(builder(runner, **kwargs).render())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    model = trace_model(args.workload)
    jobs = generate_workload(model, args.jobs, args.seed)
    write_swf(
        args.output,
        jobs,
        max_procs=model.cpus,
        extra_header={"Workload": model.name, "Note": "synthetic repro trace"},
    )
    print(f"wrote {len(jobs)} jobs to {args.output} (machine: {model.cpus} CPUs)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.workload in WORKLOAD_NAMES:
        jobs = load_workload(args.workload, args.jobs)
        cpus: int | None = trace_model(args.workload).cpus
        print(f"{args.workload} (synthetic, {len(jobs)} jobs)")
    else:
        header, jobs = read_swf(args.workload)
        cpus = header.max_procs
        print(f"{args.workload} ({len(jobs)} jobs from SWF)")
    print(workload_stats(jobs, cpus).render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_report

    runner = _runner(args)
    text = build_report(runner, include_ablations=not args.no_ablations)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(text)
        print(f"wrote report to {args.output}")
    else:
        print(text)
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.experiments.advisor import recommend_system_size

    runner = _runner(args)
    policy = PolicySpec.power_aware(args.bsld_threshold, _parse_wq(args.wq_threshold))
    recommendation = recommend_system_size(
        runner, args.workload, args.sla_bsld, policy=policy, objective=args.objective
    )
    print(recommendation.render())
    if recommendation.chosen is not None:
        chosen = recommendation.chosen
        print(
            f"\n=> recommend a {(chosen.size_factor - 1) * 100:.0f}% larger system: "
            f"avg BSLD {chosen.avg_bsld:.2f} (SLA {args.sla_bsld:g}), "
            f"{args.objective} energy at {getattr(chosen, 'energy_' + args.objective):.3f} "
            f"of the original no-DVFS machine"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.serve.quotas import QuotaPolicy
    from repro.serve.server import ReproServer

    try:
        quota = QuotaPolicy(
            max_inflight=args.max_inflight,
            max_events=args.max_events,
            max_wall_seconds=args.max_wall_seconds,
            lease_seconds=args.lease_seconds,
        )
        server = ReproServer(
            args.host,
            args.port,
            cache_dir=args.cache_dir,
            max_workers=args.max_workers,
            quota=quota,
            default_n_jobs=args.jobs,
            slice_events=args.slice_events,
            shed_inflight=args.shed_inflight,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    server.start_in_thread()

    # SIGTERM drains gracefully: stop accepting, let in-flight jobs
    # finish for --drain-grace seconds, journal whatever remains, exit.
    # (SIGINT keeps its abrupt-but-clean KeyboardInterrupt path below.)
    def _on_sigterm(_signum: int, _frame: object) -> None:
        print(
            f"SIGTERM: draining (grace {args.drain_grace}s)", flush=True
        )
        server.request_drain(args.drain_grace)

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass  # not on the main thread (embedded use); drain via API only
    print(
        f"repro serve listening on {server.address} "
        f"(cache: {args.cache_dir or 'off'}, workers: {args.max_workers})",
        flush=True,
    )
    try:
        while not server.wait(1.0):
            pass
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        server.stop()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient

    if args.spec == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.spec, "r", encoding="utf-8") as stream:
                text = stream.read()
        except OSError as exc:
            raise SystemExit(f"cannot read spec: {exc}") from None
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ServeError("invalid_request", f"spec is not valid JSON: {exc}") from None
    if not isinstance(document, dict):
        raise ServeError("invalid_request", "spec must be a JSON object")
    try:
        client = ServeClient(args.server, client_id=args.client_id or "cli")
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    try:
        job = client.submit(document.get("spec", document))
        # Progress on stderr so stdout stays pipeable result/telemetry.
        print(
            f"submitted {job['job_id']} "
            f"({'deduped' if job.get('deduped') else 'new'}, state: {job['state']})",
            file=sys.stderr,
        )
        if args.stream:
            for row in client.stream_events(job["job_id"], timeout=args.timeout):
                print(json.dumps(row, separators=(",", ":")))
        if args.wait or args.aggregates_only:
            data = client.result_bytes(
                job["job_id"],
                aggregates_only=args.aggregates_only,
                timeout=args.timeout,
            )
            sys.stdout.write(data.decode("utf-8") + "\n")
        else:
            print(job["job_id"])
    except OSError as exc:
        raise ServeError(
            "unavailable", f"cannot reach server at {args.server}: {exc}"
        ) from None
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient

    try:
        client = ServeClient(args.server)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    try:
        payload = client.status(args.job_id) if args.job_id else client.stats()
    except OSError as exc:
        raise ServeError(
            "unavailable", f"cannot reach server at {args.server}: {exc}"
        ) from None
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    arg_list = list(argv) if argv is not None else sys.argv[1:]
    global _JSON_MODE
    _JSON_MODE = "--json" in arg_list
    try:
        args = _build_parser().parse_args(arg_list)
        return args.handler(args)
    except SpecValidationError as exc:
        # Spec-level failures (an unavailable engine lane, a malformed
        # submitted document) share the serve daemon's invalid_spec
        # vocabulary: exit code 3, field-bearing JSON under --json.
        failure = ServeError("invalid_spec", exc.reason, exc.path or None)
        if _JSON_MODE:
            print(error_json(failure), file=sys.stderr)
            return failure.exit_code
        raise SystemExit(str(failure)) from None
    except ServeError as exc:
        # The shared error schema: one JSON line + stable exit code in
        # --json mode, the familiar message-and-exit otherwise.
        if _JSON_MODE:
            print(error_json(exc), file=sys.stderr)
            return exc.exit_code
        raise SystemExit(str(exc)) from None
    except SystemExit as exc:
        if not _JSON_MODE:
            raise
        if isinstance(exc.code, str):
            failure = ServeError("invalid_request", exc.code)
            print(error_json(failure), file=sys.stderr)
            return failure.exit_code
        # Parser errors in --json mode already printed their JSON line;
        # hand the stable exit code back as a return value so embedding
        # callers (and tests) see one consistent contract.
        return exc.code if isinstance(exc.code, int) else 0


if __name__ == "__main__":
    sys.exit(main())
