"""Profile-based schedulers — the slow, obviously-correct references.

These schedulers reimplement :class:`repro.scheduling.easy.EasyBackfilling`
and :class:`repro.scheduling.conservative.ConservativeBackfilling`
directly on top of the flat
:class:`~repro.cluster.profile.ReferenceAvailabilityProfile`, the way the paper's
``findAllocation`` / ``TryToFindBackfilledAllocation`` pseudocode reads:
every pass rebuilds the running-jobs profile from scratch.  They exist
so property tests can assert that the fast implementations — EASY's
O(1) admission test, conservative's incrementally-maintained profile —
produce *identical schedules* (same start times, same gears) on
arbitrary workloads.  Do not use them for large traces.
"""

from __future__ import annotations

from collections import deque
from itertools import islice

from repro.cluster.profile import ReferenceAvailabilityProfile
from repro.core.frequency_policy import SchedulingContext
from repro.core.gears import Gear
from repro.scheduling.base import Scheduler
from repro.scheduling.job import Job
from repro.sim.engine import SimulationError

__all__ = ["ReferenceEasyBackfilling", "ReferenceConservativeBackfilling"]


class ReferenceEasyBackfilling(Scheduler):
    def _schedule_pass(self, now: float) -> None:
        self._start_heads(now)
        if not self._queue:
            return
        head = self._queue[0]
        profile = self._running_profile(now)
        t_res = self._head_start(profile, now, head)
        if len(self._queue) == 1:
            return
        trial = self._with_head_reserved(profile, now, head, t_res)
        for job in list(islice(self._queue, 1, len(self._queue))):
            if self._pool.free_cpus == 0:
                break
            if job.size > self._pool.free_cpus:
                continue
            gear = self._policy.select_gear(
                job,
                SchedulingContext.with_fixed_wait(
                    now=now,
                    wait_time=now - job.submit_time,
                    wq_size=len(self._queue) - 1,
                    utilization=self._utilization(),
                    must_schedule=False,
                    feasible=self._backfill_test(trial, job, now),
                ),
            )
            if gear is None:
                continue
            self._queue.remove(job)
            self._start_job(now, job, gear)
            profile = self._running_profile(now)
            t_res = self._head_start(profile, now, head)
            trial = self._with_head_reserved(profile, now, head, t_res)

    # -- profile plumbing -----------------------------------------------------
    def _running_profile(self, now: float) -> ReferenceAvailabilityProfile:
        """Free-CPU profile from running jobs' estimated completions.

        Jobs whose estimate has already elapsed (a completion pending at
        this very timestamp) contribute free processors from ``now`` on,
        mirroring the fast implementation's reservation walk; actual
        availability *right now* is separately gated on the pool.
        """
        profile = ReferenceAvailabilityProfile(self._pool.total_cpus, origin=now)
        for end, _job_id, size in self._estimates:
            if end > now:
                profile.reserve(now, end, size)
        return profile

    def _head_start(self, profile: ReferenceAvailabilityProfile, now: float, head: Job) -> float:
        duration = head.requested_time * self._time_model.coefficient(
            self._gears.top.frequency, head.beta
        )
        t_res = profile.find_start(now, duration, head.size)
        if t_res <= now and not self._pool.fits(head.size):
            # Free only because of a completion pending at this timestamp;
            # the head starts when that finish event fires its own pass.
            return t_res
        if t_res <= now:
            raise SimulationError(
                f"head {head.job_id} fits immediately but was not started"
            )
        return t_res

    def _with_head_reserved(
        self, profile: ReferenceAvailabilityProfile, now: float, head: Job, t_res: float
    ) -> ReferenceAvailabilityProfile:
        trial = profile.copy()
        duration = head.requested_time * self._time_model.coefficient(
            self._gears.top.frequency, head.beta
        )
        start = max(t_res, now)
        trial.reserve(start, start + duration, head.size)
        return trial

    def _backfill_test(self, trial: ReferenceAvailabilityProfile, job: Job, now: float):
        def feasible(gear: Gear) -> bool:
            if job.size > self._pool.free_cpus:
                return False
            duration = job.requested_time * self._time_model.coefficient(
                gear.frequency, job.beta
            )
            return trial.fits_at(now, duration, job.size)

        return feasible


class ReferenceConservativeBackfilling(Scheduler):
    """Conservative backfilling that replans on a fresh profile every pass.

    This is the original rebuild-per-pass implementation (O(R*S) profile
    construction per event on top of the O(Q²) planning work); the fast
    :class:`~repro.scheduling.conservative.ConservativeBackfilling`
    maintains the running-jobs profile incrementally and must stay
    schedule-identical to this one.
    """

    def _reset_pass_state(self) -> None:
        #: With ``config.validate``, every pass appends
        #: ``(trigger, now, {job_id: reserved_start})`` here; tests use it
        #: to assert the conservative no-delay guarantee.
        self.plan_log: list[tuple[str, float, dict[int, float]]] = []

    def _schedule_pass(self, now: float) -> None:
        if not self._queue:
            return
        profile = self._running_profile(now)
        pending = list(self._queue)
        still_waiting: deque[Job] = deque()
        plan: dict[int, float] = {}
        for job in pending:
            wq_size = len(pending) - 1
            gear = self._policy.select_gear(
                job,
                SchedulingContext(
                    now=now,
                    wait_time_for=self._wait_probe(profile, job, now),
                    wq_size=wq_size,
                    utilization=self._utilization(),
                    must_schedule=True,  # every job gets a reservation
                    feasible=lambda gear: True,
                ),
            )
            if gear is None:
                raise SimulationError(
                    f"policy {self._policy.describe()} refused job {job.job_id} "
                    f"in a must_schedule context"
                )
            duration = self._scaled_request(job, gear)
            start = profile.find_start(now, duration, job.size)
            begin = max(start, now)
            # Whether started or merely reserved, the job consumes profile
            # space so later queue entries cannot plan over it (the
            # conservative property).
            profile.reserve(begin, begin + duration, job.size)
            plan[job.job_id] = begin
            if start <= now and self._pool.fits(job.size):
                self._start_job(now, job, gear)
            else:
                still_waiting.append(job)
        self._queue.clear()
        self._queue.extend(still_waiting)
        if self._config.validate:
            self.plan_log.append((self._trigger, now, plan))

    # -- helpers ---------------------------------------------------------------
    def _running_profile(self, now: float) -> ReferenceAvailabilityProfile:
        profile = ReferenceAvailabilityProfile(self._pool.total_cpus, origin=now)
        for end, _job_id, size in self._estimates:
            if end > now:
                profile.reserve(now, end, size)
        return profile

    def _scaled_request(self, job: Job, gear: Gear) -> float:
        return job.requested_time * self._time_model.coefficient(gear.frequency, job.beta)

    def _wait_probe(self, profile: ReferenceAvailabilityProfile, job: Job, now: float):
        def wait_for(gear: Gear) -> float:
            duration = self._scaled_request(job, gear)
            start = profile.find_start(now, duration, job.size)
            return max(start, now) - job.submit_time

        return wait_for
