"""Profile-based EASY backfilling — the slow, obviously-correct reference.

This scheduler reimplements :class:`repro.scheduling.easy.EasyBackfilling`
directly on top of the general
:class:`~repro.cluster.profile.AvailabilityProfile`, the way the paper's
``findAllocation`` / ``TryToFindBackfilledAllocation`` pseudocode reads.
It exists so property tests can assert that the fast O(1)-admission
implementation produces *identical schedules* (same start times, same
gears) on arbitrary workloads.  Do not use it for large traces: every
backfill trial copies the profile.
"""

from __future__ import annotations

from itertools import islice

from repro.cluster.profile import AvailabilityProfile
from repro.core.frequency_policy import SchedulingContext
from repro.core.gears import Gear
from repro.scheduling.base import Scheduler
from repro.scheduling.job import Job
from repro.sim.engine import SimulationError

__all__ = ["ReferenceEasyBackfilling"]


class ReferenceEasyBackfilling(Scheduler):
    def _schedule_pass(self, now: float) -> None:
        self._start_heads(now)
        if not self._queue:
            return
        head = self._queue[0]
        profile = self._running_profile(now)
        t_res = self._head_start(profile, now, head)
        if len(self._queue) == 1:
            return
        trial = self._with_head_reserved(profile, now, head, t_res)
        for job in list(islice(self._queue, 1, len(self._queue))):
            if self._pool.free_cpus == 0:
                break
            if job.size > self._pool.free_cpus:
                continue
            gear = self._policy.select_gear(
                job,
                SchedulingContext.with_fixed_wait(
                    now=now,
                    wait_time=now - job.submit_time,
                    wq_size=len(self._queue) - 1,
                    utilization=self._utilization(),
                    must_schedule=False,
                    feasible=self._backfill_test(trial, job, now),
                ),
            )
            if gear is None:
                continue
            self._queue.remove(job)
            self._start_job(now, job, gear)
            profile = self._running_profile(now)
            t_res = self._head_start(profile, now, head)
            trial = self._with_head_reserved(profile, now, head, t_res)

    # -- profile plumbing -----------------------------------------------------
    def _running_profile(self, now: float) -> AvailabilityProfile:
        """Free-CPU profile from running jobs' estimated completions.

        Jobs whose estimate has already elapsed (a completion pending at
        this very timestamp) contribute free processors from ``now`` on,
        mirroring the fast implementation's reservation walk; actual
        availability *right now* is separately gated on the pool.
        """
        profile = AvailabilityProfile(self._pool.total_cpus, origin=now)
        for end, _job_id, size in self._estimates:
            if end > now:
                profile.reserve(now, end, size)
        return profile

    def _head_start(self, profile: AvailabilityProfile, now: float, head: Job) -> float:
        duration = head.requested_time * self._time_model.coefficient(
            self._gears.top.frequency, head.beta
        )
        t_res = profile.find_start(now, duration, head.size)
        if t_res <= now and not self._pool.fits(head.size):
            # Free only because of a completion pending at this timestamp;
            # the head starts when that finish event fires its own pass.
            return t_res
        if t_res <= now:
            raise SimulationError(
                f"head {head.job_id} fits immediately but was not started"
            )
        return t_res

    def _with_head_reserved(
        self, profile: AvailabilityProfile, now: float, head: Job, t_res: float
    ) -> AvailabilityProfile:
        trial = profile.copy()
        duration = head.requested_time * self._time_model.coefficient(
            self._gears.top.frequency, head.beta
        )
        start = max(t_res, now)
        trial.reserve(start, start + duration, head.size)
        return trial

    def _backfill_test(self, trial: AvailabilityProfile, job: Job, now: float):
        def feasible(gear: Gear) -> bool:
            if job.size > self._pool.free_cpus:
                return False
            duration = job.requested_time * self._time_model.coefficient(
                gear.frequency, job.beta
            )
            return trial.fits_at(now, duration, job.size)

        return feasible
