"""Parallel-job schedulers: FCFS, EASY backfilling and conservative."""

from repro.scheduling.base import Scheduler, SchedulerConfig
from repro.scheduling.conservative import ConservativeBackfilling
from repro.scheduling.easy import EasyBackfilling
from repro.scheduling.export import outcomes_to_csv, result_summary_row
from repro.scheduling.fcfs import FcfsScheduler
from repro.scheduling.job import Job, JobOutcome, validate_jobs
from repro.scheduling.reference import (
    ReferenceConservativeBackfilling,
    ReferenceEasyBackfilling,
)
from repro.scheduling.result import SimulationResult, TimelinePoint

__all__ = [
    "ConservativeBackfilling",
    "EasyBackfilling",
    "FcfsScheduler",
    "Job",
    "JobOutcome",
    "ReferenceConservativeBackfilling",
    "ReferenceEasyBackfilling",
    "outcomes_to_csv",
    "result_summary_row",
    "Scheduler",
    "SchedulerConfig",
    "SimulationResult",
    "TimelinePoint",
    "validate_jobs",
]
