"""Indexed FCFS wait queue with O(1) membership and vectorised scans.

The schedulers used to hold waiting jobs in a ``collections.deque``,
which made every backfill pass O(queue): materialising the candidate
list, probing each job's cheap admission gates in Python, and rebuilding
the deque after each pass that accepted anything.  On overloaded traces
the queue grows with the trace, so those per-pass scans are what turned
throughput superlinear (BENCH_2: SDSC collapses 3x from 5k to 50k jobs).

:class:`JobQueue` keeps jobs in arrival order in a tombstoned slot
array with parallel ``size`` / ``requested_time`` columns (numpy when
available), giving

* O(1) amortised ``append`` / ``popleft`` / ``remove`` (position map
  keyed by job id; removed slots become tombstones, compacted away once
  they outnumber live entries),
* :meth:`backfill_candidates`: the EASY admission pre-filter
  ``size <= free  AND  (size <= extra  OR  requested <= slack)``
  evaluated as one vectorised mask over the live slice instead of a
  Python loop over every waiting job.  Tombstones carry an impossible
  sentinel size, so they drop out of the mask for free.

The mask is a *superset* filter: callers re-verify every returned
candidate against the exact, current-state gates (thresholds only
tighten during a pass; see ``EasyBackfilling._backfill_scan``), so the
vectorisation cannot change a single scheduling decision — it only
skips jobs the exact scan would have skipped anyway.

The class implements the deque surface the schedulers use (``append``,
``popleft``, ``remove``, ``clear``, ``extend``, ``len``, iteration,
``[0]``), so it drops into :class:`~repro.scheduling.base.Scheduler`
unchanged.  Without numpy the same API works through pure-Python
fallbacks with identical semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # imported for annotations only; avoids package cycles
    from repro.scheduling.job import Job

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = ["JobQueue"]

#: Sentinel size for tombstoned slots: larger than any machine, so dead
#: slots always fail the ``size <= free`` gate and vanish from masks.
_DEAD_SIZE = 1 << 30

_MIN_CAPACITY = 64


class JobQueue:
    """Arrival-ordered wait queue backed by tombstoned parallel arrays."""

    __slots__ = (
        "_jobs", "_sizes", "_reqs", "_mask_buf", "_gate_buf", "_req_buf",
        "_head", "_n", "_live", "_pos", "_cap", "generation",
    )

    def __init__(self, jobs: Iterable[Job] = ()) -> None:
        self._cap = _MIN_CAPACITY
        self._jobs: list[Job | None] = [None] * self._cap
        if _np is not None:
            # int32/float32 columns halve the memory the mask streams
            # over.  Sizes are machine widths (< 2**30); requested times
            # round to float32, so mask consumers must pad their slack
            # threshold by a float32 ulp — see backfill_candidates.
            self._sizes = _np.full(self._cap, _DEAD_SIZE, dtype=_np.int32)
            self._reqs = _np.zeros(self._cap, dtype=_np.float32)
            self._mask_buf = _np.zeros(self._cap, dtype=bool)
            self._gate_buf = _np.zeros(self._cap, dtype=bool)
            self._req_buf = _np.zeros(self._cap, dtype=bool)
        else:  # pragma: no cover - exercised only without numpy
            self._sizes = [_DEAD_SIZE] * self._cap
            self._reqs = [0.0] * self._cap
        self._head = 0  # first live slot (== _n when empty)
        self._n = 0  # slots used so far
        self._live = 0
        self._pos: dict[int, int] = {}
        #: Bumped whenever positions are re-homed (compaction, clear);
        #: callers caching positions across passes key on it.
        self.generation = 0
        for job in jobs:
            self.append(job)

    # -- deque surface -----------------------------------------------------------
    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __iter__(self) -> Iterator[Job]:
        for index in range(self._head, self._n):
            job = self._jobs[index]
            if job is not None:
                yield job

    def __getitem__(self, index: int) -> Job:
        if index != 0:
            raise IndexError("JobQueue only supports [0] (the FCFS head)")
        if self._live == 0:
            raise IndexError("queue is empty")
        head = self._jobs[self._head]
        assert head is not None
        return head

    def append(self, job: Job) -> None:
        if self._n == self._cap:
            self._grow_or_compact()
        elif self._n - self._head - self._live > max(64, self._live):
            # Tombstones outnumber live entries: compact eagerly so scan
            # windows stay proportional to the live queue.  Safe here —
            # appends only happen between scheduling passes, so no
            # positions handed to a scan are outstanding.
            self._compact()
        index = self._n
        self._jobs[index] = job
        self._sizes[index] = job.size
        self._reqs[index] = job.requested_time
        self._pos[job.job_id] = index
        self._n += 1
        self._live += 1

    def popleft(self) -> Job:
        if self._live == 0:
            raise IndexError("pop from an empty JobQueue")
        index = self._head
        job = self._jobs[index]
        assert job is not None
        self._kill(index, job)
        return job

    def remove(self, job: Job) -> None:
        """Remove ``job`` (matched by id), as ``deque.remove`` would."""
        index = self._pos.get(job.job_id)
        if index is None:
            raise ValueError(f"job {job.job_id} is not queued")
        victim = self._jobs[index]
        assert victim is not None
        self._kill(index, victim)

    def clear(self) -> None:
        self._head = 0
        self._n = 0
        self._live = 0
        self.generation += 1
        self._pos.clear()
        for index in range(len(self._jobs)):
            self._jobs[index] = None
        if _np is not None:
            self._sizes[:] = _DEAD_SIZE
        else:  # pragma: no cover - exercised only without numpy
            for index in range(len(self._sizes)):
                self._sizes[index] = _DEAD_SIZE

    def extend(self, jobs: Iterable[Job]) -> None:
        for job in jobs:
            self.append(job)

    # -- scan API -----------------------------------------------------------------
    @property
    def slots_used(self) -> int:
        """Slots allocated so far; new appends land at this position."""
        return self._n

    @property
    def slots(self) -> list[Job | None]:
        """The backing slot list (read-only use; ``None`` = tombstone).

        Exposed so hot scan loops can index positions from
        :meth:`backfill_candidates` without a method call per job.
        """
        return self._jobs

    def job_at(self, position: int) -> Job:
        job = self._jobs[position]
        assert job is not None, f"position {position} is tombstoned"
        return job

    def remove_at(self, position: int) -> None:
        """Tombstone ``position`` (no compaction: positions stay stable
        for the remainder of the scheduling pass that looked them up)."""
        job = self._jobs[position]
        assert job is not None, f"position {position} already tombstoned"
        self._kill(position, job)

    def backfill_candidates(self, free: int, extra: int, slack: float, after: int | None = None):
        """Positions of queued non-head jobs passing the admission pre-filter.

        Yields, in arrival order, every live position strictly after
        the head (or after ``after`` when given) whose job satisfies
        ``size <= free and (size <= extra or requested_time <= slack)``.
        Callers must re-verify each candidate against exact current
        thresholds — this is a superset filter, never a decision.
        Returns a re-iterable sequence (list or ndarray) so callers can
        cache it across passes whose thresholds only tightened.
        """
        lo = (self._head if after is None else after) + 1
        hi = self._n
        if lo >= hi or free <= 0:
            return ()
        if _np is not None and hi - lo >= 64:
            # Wide window: one vectorised mask beats touching every slot.
            # Preallocated boolean buffers keep it allocation-free up to
            # the final nonzero().
            sizes = self._sizes[lo:hi]
            mask = _np.less_equal(sizes, free, out=self._mask_buf[lo:hi])
            if extra < free:  # otherwise `size <= free` already implies the OR
                gate = _np.less_equal(sizes, extra, out=self._gate_buf[lo:hi])
                if slack >= 0.0:  # requested_time is always positive
                    # Inflate past one float32 ulp: the column is f32,
                    # so a nearest-rounded request must still compare <=
                    # whenever its exact value does (superset rule).
                    slack32 = _np.float32(slack * (1.0 + 2.4e-7))
                    gate |= _np.less_equal(
                        self._reqs[lo:hi], slack32, out=self._req_buf[lo:hi]
                    )
                mask &= gate
            positions = mask.nonzero()[0]
            if lo:
                positions += lo
            return positions
        # Narrow window (or no numpy): scan the slots directly — the
        # fixed cost of array temporaries would outweigh the filtering.
        jobs = self._jobs
        positions = []
        for index in range(lo, hi):
            job = jobs[index]
            if job is None:
                continue
            size = job.size
            if size <= free and (size <= extra or job.requested_time <= slack):
                positions.append(index)
        return positions

    def extend_positions(self, positions, seen: int, n_now: int):
        """Append the (unfiltered) positions ``seen..n_now`` to a cached set."""
        fresh = range(seen, n_now)
        if _np is not None and isinstance(positions, _np.ndarray):
            return _np.concatenate(
                [positions, _np.arange(seen, n_now, dtype=positions.dtype)]
            )
        return list(positions) + list(fresh)

    def narrow_positions(self, positions, free: int):
        """Drop positions whose job cannot fit in ``free`` processors.

        A cheap gather over the size column; callers still re-verify
        the survivors (this only prunes, never admits).
        """
        if _np is not None and isinstance(positions, _np.ndarray) and positions.size:
            return positions[self._sizes[positions] <= free]
        return positions

    def check_consistency(self) -> None:
        """Verify the tombstone/column/position bookkeeping (sanitizer hook).

        The vectorised backfill mask is only a faithful superset filter
        while the parallel columns mirror the slot array exactly: a live
        slot must carry its job's true size (and float32-rounded
        requested time) and a tombstone the impossible sentinel, the
        position map must be a perfect index of live slots, and the
        live count must equal the number of live slots in the window.
        O(slots); called only under :mod:`repro.analysis.sanitize`.
        """
        from repro.analysis.sanitize import require

        require(
            0 <= self._head <= self._n <= self._cap,
            f"slot window corrupt: head={self._head} n={self._n} cap={self._cap}",
        )
        live = 0
        for index in range(self._n):
            job = self._jobs[index]
            if job is None:
                require(
                    self._sizes[index] == _DEAD_SIZE,
                    f"tombstone at slot {index} lacks the sentinel size",
                )
                continue
            require(
                index >= self._head,
                f"live job {job.job_id} at slot {index} before the head {self._head}",
            )
            live += 1
            require(
                self._pos.get(job.job_id) == index,
                f"position map lost job {job.job_id} (slot {index})",
            )
            require(
                self._sizes[index] == job.size,
                f"size column drift at slot {index}: "
                f"{self._sizes[index]} != {job.size}",
            )
            expected_req = (
                float(_np.float32(job.requested_time))
                if _np is not None
                else job.requested_time
            )
            require(
                float(self._reqs[index]) == expected_req,
                f"requested-time column drift at slot {index}",
            )
        for index in range(self._n, self._cap):
            require(
                self._jobs[index] is None,
                f"unused slot {index} beyond n={self._n} holds a job",
            )
        require(
            live == self._live == len(self._pos),
            f"live-count drift: {self._live} recorded, {live} slots, "
            f"{len(self._pos)} positions",
        )

    # -- internals ----------------------------------------------------------------
    def _kill(self, index: int, job: Job) -> None:
        self._jobs[index] = None
        self._sizes[index] = _DEAD_SIZE
        del self._pos[job.job_id]
        self._live -= 1
        if index == self._head:
            self._advance_head()

    def _advance_head(self) -> None:
        head = self._head
        n = self._n
        jobs = self._jobs
        while head < n and jobs[head] is None:
            head += 1
        self._head = head

    def _grow_or_compact(self) -> None:
        """Make room: compact away tombstones, or double the capacity.

        Only ever called from :meth:`append`, which schedulers invoke
        between passes — positions handed out by
        :meth:`backfill_candidates` are never invalidated mid-pass.
        """
        if self._live <= self._cap // 2:
            self._compact()
            return
        new_cap = self._cap * 2
        if _np is not None:
            sizes = _np.full(new_cap, _DEAD_SIZE, dtype=_np.int32)
            sizes[: self._n] = self._sizes[: self._n]
            reqs = _np.zeros(new_cap, dtype=_np.float32)
            reqs[: self._n] = self._reqs[: self._n]
            self._sizes = sizes
            self._reqs = reqs
            self._mask_buf = _np.zeros(new_cap, dtype=bool)
            self._gate_buf = _np.zeros(new_cap, dtype=bool)
            self._req_buf = _np.zeros(new_cap, dtype=bool)
        else:  # pragma: no cover - exercised only without numpy
            self._sizes.extend([_DEAD_SIZE] * (new_cap - self._cap))
            self._reqs.extend([0.0] * (new_cap - self._cap))
        self._jobs.extend([None] * (new_cap - self._cap))
        self._cap = new_cap

    def _compact(self) -> None:
        """Rewrite live entries to the front, dropping tombstones."""
        self.generation += 1
        write = 0
        jobs = self._jobs
        sizes = self._sizes
        reqs = self._reqs
        pos = self._pos
        for read in range(self._head, self._n):
            job = jobs[read]
            if job is None:
                continue
            jobs[write] = job
            sizes[write] = sizes[read]
            reqs[write] = reqs[read]
            pos[job.job_id] = write
            write += 1
        for index in range(write, self._n):
            jobs[index] = None
            sizes[index] = _DEAD_SIZE
        self._head = 0
        self._n = write
