"""The immutable record a scheduler run produces."""

from __future__ import annotations

from dataclasses import dataclass, field

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

from repro.cluster.machine import Machine
from repro.core.gears import Gear
from repro.metrics.aggregates import mean, nearest_rank
from repro.metrics.bsld import BSLD_THRESHOLD_SECONDS
from repro.power.energy import EnergyReport
from repro.scheduling.columns import OutcomeColumns
from repro.scheduling.job import JobOutcome

__all__ = [
    "ResultAggregates",
    "SimulationResult",
    "TimelinePoint",
    "InstrumentReport",
]


@dataclass(frozen=True)
class TimelinePoint:
    """Machine state sampled after one simulation event."""

    time: float
    queued_jobs: int
    busy_cpus: int


@dataclass(frozen=True)
class InstrumentReport:
    """One instrument's JSON-native summary of what it measured.

    ``summary`` holds only JSON-native values (dicts/lists/scalars) so
    results carrying reports keep the exact serialisation round-trip
    guarantee of :mod:`repro.serialize`.
    """

    name: str
    summary: dict

    def __getitem__(self, key: str):
        return self.summary[key]


@dataclass(frozen=True)
class ResultAggregates:
    """Reduced per-job statistics carried by an aggregates-only result.

    Everything a sweep table or figure pipeline reads off a result —
    headline means, the BSLD percentile spread (nearest-rank, matching
    :class:`~repro.instruments.BsldMonitor`), the gear histogram —
    without the per-job ``outcomes`` tuple.  A million-run sweep holding
    only these stays flat in memory where full results grow with trace
    length.  Built by :meth:`SimulationResult.to_aggregates`.
    """

    job_count: int
    bsld_threshold: float
    average_bsld: float
    bsld_p50: float
    bsld_p90: float
    bsld_p99: float
    bsld_max: float
    average_wait: float
    reduced_jobs: int
    makespan: float
    gear_histogram: tuple[tuple[Gear, int], ...]

    def __post_init__(self) -> None:
        if self.job_count < 0:
            raise ValueError(f"job_count must be non-negative, got {self.job_count}")


@dataclass(frozen=True)
class SimulationResult:
    """Everything measured during one simulation run.

    ``outcomes`` is ordered by job id, so paired runs of the same trace
    under different policies can be compared job-by-job (Figure 6 of
    the paper does exactly this for wait times).

    A result carries either the full per-job ``outcomes`` tuple (the
    default mode, unchanged) or — after :meth:`to_aggregates` — an
    ``aggregates`` record and an empty ``outcomes``.  Aggregates-only
    results answer every headline-metric query (:meth:`average_bsld`,
    :meth:`average_wait`, :attr:`reduced_jobs`, :meth:`gear_histogram`,
    :attr:`makespan`, the energy breakdown) but reject per-job series
    accessors, which would need the discarded outcomes.
    """

    machine: Machine
    policy: str
    outcomes: tuple[JobOutcome, ...]
    energy: EnergyReport
    events_processed: int
    timeline: tuple[TimelinePoint, ...] = field(default=())
    instruments: tuple[InstrumentReport, ...] = field(default=())
    aggregates: ResultAggregates | None = field(default=None)

    def __post_init__(self) -> None:
        if self.aggregates is not None and self.outcomes:
            raise ValueError("a result carries outcomes or aggregates, not both")
        if isinstance(self.outcomes, OutcomeColumns):
            # Column-backed results check order without materialising a
            # single outcome object (ids are unique, so strict ascent).
            jobs = self.outcomes.jobs
            if any(a.job_id >= b.job_id for a, b in zip(jobs, jobs[1:])):
                raise ValueError("outcomes must be ordered by job id")
            return
        ids = [o.job.job_id for o in self.outcomes]
        if ids != sorted(ids):
            raise ValueError("outcomes must be ordered by job id")

    # -- aggregates-only mode ----------------------------------------------------
    @property
    def is_aggregated(self) -> bool:
        """Whether this result carries aggregates instead of outcomes."""
        return self.aggregates is not None

    def to_aggregates(
        self, threshold: float = BSLD_THRESHOLD_SECONDS
    ) -> "SimulationResult":
        """This result reduced to headline metrics (no per-job outcomes).

        The returned result keeps the machine, policy, energy breakdown
        and instrument reports, drops the ``outcomes`` and ``timeline``
        tuples, and carries a :class:`ResultAggregates` computed at
        ``threshold``.  Reducing an already-aggregated result is the
        identity.
        """
        if self.is_aggregated:
            return self
        if self.outcomes:
            bslds = sorted(self.bslds(threshold))
            aggregates = ResultAggregates(
                job_count=len(self.outcomes),
                bsld_threshold=threshold,
                average_bsld=self.average_bsld(threshold),
                bsld_p50=nearest_rank(bslds, 50.0),
                bsld_p90=nearest_rank(bslds, 90.0),
                bsld_p99=nearest_rank(bslds, 99.0),
                bsld_max=bslds[-1],
                average_wait=self.average_wait(),
                reduced_jobs=self.reduced_jobs,
                makespan=self.makespan,
                gear_histogram=tuple(sorted(self.gear_histogram().items())),
            )
        else:
            aggregates = ResultAggregates(
                job_count=0,
                bsld_threshold=threshold,
                average_bsld=0.0,
                bsld_p50=0.0,
                bsld_p90=0.0,
                bsld_p99=0.0,
                bsld_max=0.0,
                average_wait=0.0,
                reduced_jobs=0,
                makespan=0.0,
                gear_histogram=(),
            )
        return SimulationResult(
            machine=self.machine,
            policy=self.policy,
            outcomes=(),
            energy=self.energy,
            events_processed=self.events_processed,
            timeline=(),
            instruments=self.instruments,
            aggregates=aggregates,
        )

    def _require_outcomes(self, what: str) -> None:
        if self.is_aggregated:
            raise ValueError(
                f"{what} needs per-job outcomes, which this aggregates-only "
                f"result does not carry; re-run without aggregates mode"
            )

    def _aggregated_bsld(self, threshold: float) -> float | None:
        """The stored average BSLD, when aggregated at ``threshold``."""
        if self.aggregates is None:
            return None
        if self.aggregates.job_count == 0:
            raise ValueError("mean of an empty sequence")
        if threshold != self.aggregates.bsld_threshold:  # det: allow(no-float-eq)
            raise ValueError(
                f"aggregates were reduced at BSLD threshold "
                f"{self.aggregates.bsld_threshold}, not {threshold}"
            )
        return self.aggregates.average_bsld

    # -- vectorized per-job series ---------------------------------------------
    def _job_arrays(self):
        """``(wait, runtime, penalized)`` float arrays, built once per result.

        Memoised on the instance (the frozen dataclass still owns a
        ``__dict__``): figure and table pipelines re-reduce the same
        result under several thresholds and metrics.  Without numpy the
        same triple comes back as plain lists, so every caller that does
        not vectorise further works unchanged on numpy-less installs.
        """
        self._require_outcomes("per-job series")
        arrays = self.__dict__.get("_arrays")
        if arrays is None:
            outcomes = self.outcomes
            if isinstance(outcomes, OutcomeColumns):
                # Column-backed results: one vectorised gather, no
                # outcome objects (same float64 values either way).
                arrays = outcomes.job_arrays()
            elif _np is None:
                wait: list[float] = []
                runtime: list[float] = []
                penalized: list[float] = []
                for outcome in outcomes:
                    wait.append(outcome.start_time - outcome.job.submit_time)
                    runtime.append(outcome.job.runtime)
                    penalized.append(outcome.penalized_runtime)
                arrays = (wait, runtime, penalized)
            else:
                n = len(outcomes)
                wait = _np.empty(n)
                runtime = _np.empty(n)
                penalized = _np.empty(n)
                for i, outcome in enumerate(outcomes):
                    job = outcome.job
                    wait[i] = outcome.start_time - job.submit_time
                    runtime[i] = job.runtime
                    penalized[i] = outcome.penalized_runtime
                arrays = (wait, runtime, penalized)
            object.__setattr__(self, "_arrays", arrays)
        return arrays

    def _bsld_array(self, threshold: float):
        """Eq. (6) over all jobs at once; None when the scalar path must run.

        The scalar :func:`~repro.metrics.bsld.bounded_slowdown` raises on
        degenerate inputs (negative waits, an all-zero denominator); those
        cannot come out of a simulation, but fall back rather than
        silently diverging if a hand-built result carries them.
        """
        if _np is None or threshold <= 0.0:
            return None
        wait, runtime, penalized = self._job_arrays()
        if wait.size and wait.min() < 0.0:
            return None
        bsld = (wait + penalized) / _np.maximum(runtime, threshold)
        _np.maximum(bsld, 1.0, out=bsld)
        return bsld

    # -- headline metrics ------------------------------------------------------
    @property
    def job_count(self) -> int:
        if self.aggregates is not None:
            return self.aggregates.job_count
        return len(self.outcomes)

    def average_bsld(self, threshold: float = BSLD_THRESHOLD_SECONDS) -> float:
        """BSLD averaged over all simulated jobs (the paper's Figure 5 metric)."""
        aggregated = self._aggregated_bsld(threshold)
        if aggregated is not None:
            return aggregated
        bsld = self._bsld_array(threshold)
        if bsld is None:
            return mean([o.bsld(threshold) for o in self.outcomes])
        return mean(bsld)

    def average_wait(self) -> float:
        """Mean wait time in seconds (the paper's Table 3 metric)."""
        if self.aggregates is not None:
            if self.aggregates.job_count == 0:
                raise ValueError("mean of an empty sequence")
            return self.aggregates.average_wait
        if _np is None:
            return mean([o.wait_time for o in self.outcomes])
        return mean(self._job_arrays()[0])

    @property
    def reduced_jobs(self) -> int:
        """Jobs run at a frequency below Ftop (the paper's Figure 4 metric)."""
        if self.aggregates is not None:
            return self.aggregates.reduced_jobs
        if isinstance(self.outcomes, OutcomeColumns):
            return self.outcomes.reduced_count()
        return sum(1 for o in self.outcomes if o.was_reduced)

    def gear_histogram(self) -> dict[Gear, int]:
        if self.aggregates is not None:
            return dict(self.aggregates.gear_histogram)
        if isinstance(self.outcomes, OutcomeColumns):
            return self.outcomes.gear_counts()
        histogram: dict[Gear, int] = {}
        for outcome in self.outcomes:
            histogram[outcome.gear] = histogram.get(outcome.gear, 0) + 1
        return histogram

    @property
    def makespan(self) -> float:
        if self.aggregates is not None:
            return self.aggregates.makespan
        if not self.outcomes:
            return 0.0
        if isinstance(self.outcomes, OutcomeColumns):
            return self.outcomes.max_finish()
        return max(o.finish_time for o in self.outcomes)

    @property
    def utilization(self) -> float:
        """Busy CPU-seconds over machine capacity across the accounting span."""
        capacity = self.machine.total_cpus * self.energy.span
        if capacity <= 0.0:
            return 0.0
        return self.energy.busy_cpu_seconds / capacity

    # -- per-job series -----------------------------------------------------------
    def wait_times(self) -> list[float]:
        """Per-job wait times ordered by job id (Figure 6's series)."""
        self._require_outcomes("wait_times()")
        if _np is None:
            return [o.wait_time for o in self.outcomes]
        return self._job_arrays()[0].tolist()

    def bslds(self, threshold: float = BSLD_THRESHOLD_SECONDS) -> list[float]:
        self._require_outcomes("bslds()")
        bsld = self._bsld_array(threshold)
        if bsld is None:
            return [o.bsld(threshold) for o in self.outcomes]
        return bsld.tolist()

    def instrument(self, name: str) -> InstrumentReport:
        """The report of the instrument registered under ``name``."""
        for report in self.instruments:
            if report.name == name:
                return report
        raise KeyError(
            f"no instrument report named {name!r}; have "
            f"{[report.name for report in self.instruments]}"
        )

    def describe(self) -> str:
        mode = " [aggregates]" if self.is_aggregated else ""
        return (
            f"{self.machine.name}: {self.job_count} jobs under {self.policy}{mode}; "
            f"avg BSLD {self.average_bsld():.2f}, avg wait {self.average_wait():.0f}s, "
            f"{self.reduced_jobs} reduced jobs, utilization {self.utilization:.1%}"
        )
