"""The immutable record a scheduler run produces."""

from __future__ import annotations

from dataclasses import dataclass, field

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

from repro.cluster.machine import Machine
from repro.core.gears import Gear
from repro.metrics.aggregates import mean
from repro.metrics.bsld import BSLD_THRESHOLD_SECONDS
from repro.power.energy import EnergyReport
from repro.scheduling.job import JobOutcome

__all__ = ["SimulationResult", "TimelinePoint", "InstrumentReport"]


@dataclass(frozen=True)
class TimelinePoint:
    """Machine state sampled after one simulation event."""

    time: float
    queued_jobs: int
    busy_cpus: int


@dataclass(frozen=True)
class InstrumentReport:
    """One instrument's JSON-native summary of what it measured.

    ``summary`` holds only JSON-native values (dicts/lists/scalars) so
    results carrying reports keep the exact serialisation round-trip
    guarantee of :mod:`repro.serialize`.
    """

    name: str
    summary: dict

    def __getitem__(self, key: str):
        return self.summary[key]


@dataclass(frozen=True)
class SimulationResult:
    """Everything measured during one simulation run.

    ``outcomes`` is ordered by job id, so paired runs of the same trace
    under different policies can be compared job-by-job (Figure 6 of
    the paper does exactly this for wait times).
    """

    machine: Machine
    policy: str
    outcomes: tuple[JobOutcome, ...]
    energy: EnergyReport
    events_processed: int
    timeline: tuple[TimelinePoint, ...] = field(default=())
    instruments: tuple[InstrumentReport, ...] = field(default=())

    def __post_init__(self) -> None:
        ids = [o.job.job_id for o in self.outcomes]
        if ids != sorted(ids):
            raise ValueError("outcomes must be ordered by job id")

    # -- vectorized per-job series ---------------------------------------------
    def _job_arrays(self):
        """``(wait, runtime, penalized)`` float arrays, built once per result.

        Memoised on the instance (the frozen dataclass still owns a
        ``__dict__``): figure and table pipelines re-reduce the same
        result under several thresholds and metrics.
        """
        arrays = self.__dict__.get("_arrays")
        if arrays is None:
            outcomes = self.outcomes
            n = len(outcomes)
            wait = _np.empty(n)
            runtime = _np.empty(n)
            penalized = _np.empty(n)
            for i, outcome in enumerate(outcomes):
                job = outcome.job
                wait[i] = outcome.start_time - job.submit_time
                runtime[i] = job.runtime
                penalized[i] = outcome.penalized_runtime
            arrays = (wait, runtime, penalized)
            object.__setattr__(self, "_arrays", arrays)
        return arrays

    def _bsld_array(self, threshold: float):
        """Eq. (6) over all jobs at once; None when the scalar path must run.

        The scalar :func:`~repro.metrics.bsld.bounded_slowdown` raises on
        degenerate inputs (negative waits, an all-zero denominator); those
        cannot come out of a simulation, but fall back rather than
        silently diverging if a hand-built result carries them.
        """
        if _np is None or threshold <= 0.0:
            return None
        wait, runtime, penalized = self._job_arrays()
        if wait.size and wait.min() < 0.0:
            return None
        bsld = (wait + penalized) / _np.maximum(runtime, threshold)
        _np.maximum(bsld, 1.0, out=bsld)
        return bsld

    # -- headline metrics ------------------------------------------------------
    @property
    def job_count(self) -> int:
        return len(self.outcomes)

    def average_bsld(self, threshold: float = BSLD_THRESHOLD_SECONDS) -> float:
        """BSLD averaged over all simulated jobs (the paper's Figure 5 metric)."""
        bsld = self._bsld_array(threshold)
        if bsld is None:
            return mean([o.bsld(threshold) for o in self.outcomes])
        return mean(bsld)

    def average_wait(self) -> float:
        """Mean wait time in seconds (the paper's Table 3 metric)."""
        if _np is None:
            return mean([o.wait_time for o in self.outcomes])
        return mean(self._job_arrays()[0])

    @property
    def reduced_jobs(self) -> int:
        """Jobs run at a frequency below Ftop (the paper's Figure 4 metric)."""
        return sum(1 for o in self.outcomes if o.was_reduced)

    def gear_histogram(self) -> dict[Gear, int]:
        histogram: dict[Gear, int] = {}
        for outcome in self.outcomes:
            histogram[outcome.gear] = histogram.get(outcome.gear, 0) + 1
        return histogram

    @property
    def makespan(self) -> float:
        if not self.outcomes:
            return 0.0
        return max(o.finish_time for o in self.outcomes)

    @property
    def utilization(self) -> float:
        """Busy CPU-seconds over machine capacity across the accounting span."""
        capacity = self.machine.total_cpus * self.energy.span
        if capacity <= 0.0:
            return 0.0
        return self.energy.busy_cpu_seconds / capacity

    # -- per-job series -----------------------------------------------------------
    def wait_times(self) -> list[float]:
        """Per-job wait times ordered by job id (Figure 6's series)."""
        if _np is None:
            return [o.wait_time for o in self.outcomes]
        return self._job_arrays()[0].tolist()

    def bslds(self, threshold: float = BSLD_THRESHOLD_SECONDS) -> list[float]:
        bsld = self._bsld_array(threshold)
        if bsld is None:
            return [o.bsld(threshold) for o in self.outcomes]
        return bsld.tolist()

    def instrument(self, name: str) -> InstrumentReport:
        """The report of the instrument registered under ``name``."""
        for report in self.instruments:
            if report.name == name:
                return report
        raise KeyError(
            f"no instrument report named {name!r}; have "
            f"{[report.name for report in self.instruments]}"
        )

    def describe(self) -> str:
        return (
            f"{self.machine.name}: {self.job_count} jobs under {self.policy}; "
            f"avg BSLD {self.average_bsld():.2f}, avg wait {self.average_wait():.0f}s, "
            f"{self.reduced_jobs} reduced jobs, utilization {self.utilization:.1%}"
        )
