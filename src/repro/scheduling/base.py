"""Shared scheduler machinery: job lifecycle, bookkeeping, boost, results.

Concrete policies (FCFS, EASY, conservative) subclass
:class:`Scheduler` and implement a single hook, ``_schedule_pass``,
invoked after every arrival and completion — the paper's "rescheduling
of all queued jobs is done when a job finishes earlier than it has been
expected" falls out of re-running the pass on each completion event.
"""

from __future__ import annotations

import gc
from abc import ABC, abstractmethod
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Callable

from repro.analysis.sanitize import enabled as sanitize_enabled
from repro.cluster.allocation import Allocation
from repro.cluster.machine import Machine
from repro.cluster.power import NodePowerManager, SleepPolicy
from repro.cluster.processors import ProcessorPool
from repro.core.dynamic_boost import DynamicBoostConfig, boost_plan
from repro.core.frequency_policy import FrequencyPolicy, GearCappedPolicy, SchedulingContext
from repro.core.gears import Gear
from repro.power.energy import EnergyAccounting, SleepEnergyBreakdown
from repro.power.model import PowerModel
from repro.power.time_model import BetaTimeModel, DEFAULT_BETA
from repro.scheduling.job import Job, JobOutcome, validate_jobs
from repro.scheduling.queue import JobQueue
from repro.scheduling.result import SimulationResult, TimelinePoint
from repro.sim.engine import Engine, SimulationError
from repro.sim.events import (
    ClockTick,
    EventKind,
    GearSelected,
    JobFinished,
    JobStarted,
    JobSubmitted,
    LifecycleEvent,
    NodesWoke,
    QueueDepthChanged,
)

__all__ = ["Scheduler", "SchedulerConfig"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Cross-cutting simulation options.

    Attributes
    ----------
    track_processor_ids:
        Use explicit first-fit CPU identities (slower; on a flat
        machine every CPU is interchangeable, so identities do not
        affect any reported metric).
    validate:
        Enable per-pass invariant assertions (used heavily in tests).
    boost:
        Dynamic-boost extension configuration, or ``None`` to disable.
    record_timeline:
        Record a (time, queue length, busy CPUs) sample after every
        event; needed only by timeline-style figures.
    clamp_runtimes:
        Clamp ``runtime`` to ``requested_time`` on ingest
        (kill-at-limit semantics; keeps reservations conservative).
    sleep:
        In-engine node power management
        (:class:`~repro.cluster.power.SleepPolicy`), or ``None`` for a
        conventional always-on machine.  A policy that can never sleep
        (``sleep_after_seconds=inf``) is treated as ``None``, keeping
        the run byte-identical to one without the subsystem.
    sanitize:
        Run the deep structural sanitizer after every scheduling pass
        (:mod:`repro.analysis.sanitize`); also enabled process-wide by
        ``REPRO_SANITIZE=1``.  Unlike ``validate`` (cross-structure
        accounting identities), the sanitizer re-verifies each core
        structure's *internal* invariants — event-queue ordering, queue
        tombstone columns, profile summaries, idle-stack netting,
        energy-book signs.  Zero cost when off.
    """

    track_processor_ids: bool = False
    validate: bool = False
    boost: DynamicBoostConfig | None = None
    record_timeline: bool = False
    clamp_runtimes: bool = True
    sleep: SleepPolicy | None = None
    sanitize: bool = False


class _RunningJob:
    """Mutable state of a job in execution."""

    __slots__ = (
        "job",
        "gear",
        "first_gear",
        "start",
        "segment_start",
        "energy",
        "actual_end",
        "estimated_end",
        "finish_handle",
        "ever_reduced",
        "allocation",
        "estimate_entry",
    )

    def __init__(self, job: Job, gear: Gear, start: float, allocation: Allocation) -> None:
        self.job = job
        self.gear = gear
        self.first_gear = gear
        self.start = start
        self.segment_start = start
        self.energy = 0.0
        self.actual_end = start
        self.estimated_end = start
        self.finish_handle = None
        self.ever_reduced = False
        self.allocation = allocation
        self.estimate_entry: tuple[float, int, int] | None = None


class Scheduler(ABC):
    """Base event-driven job scheduler over a DVFS machine."""

    def __init__(
        self,
        machine: Machine,
        policy: FrequencyPolicy,
        *,
        beta: float = DEFAULT_BETA,
        power_model: PowerModel | None = None,
        config: SchedulerConfig | None = None,
    ) -> None:
        self._machine = machine
        self._gears = machine.gears
        self._policy = policy
        self._time_model = BetaTimeModel.for_gear_set(machine.gears, beta)
        policy.bind(machine.gears, self._time_model)
        if power_model is not None and power_model.gears != machine.gears:
            raise ValueError("power model and machine use different gear sets")
        self._power_model = power_model or PowerModel(gears=machine.gears)
        self._config = config or SchedulerConfig()

        # Runtime-control state: the policy the run was configured with
        # (hot-swappable via set_policy) and an optional frequency cap
        # layered on top of it (set_gear_cap / the power_cap instrument).
        self._base_policy = policy
        self._gear_cap: float | None = None

        # Observers receive the typed lifecycle stream; with none
        # attached (every paper-reproduction path) emission costs one
        # truthiness check per hook site.
        self._observers: list[Callable[[LifecycleEvent], None]] = []

        # With no boost, validation, timeline, sanitizer or observers
        # configured, a pass is just the scheduling hook — _run_pass
        # takes a one-branch fast path instead of re-testing all five
        # per event.
        self._plain_pass = False
        self._sanitize = False

        # Schedulers that don't maintain incremental running-set state
        # (EASY, FCFS) skip the virtual no-op hook call per job event.
        cls = type(self)
        self._wants_lifecycle_hooks = (
            cls._note_started is not Scheduler._note_started
            or cls._note_finished is not Scheduler._note_finished
            or cls._note_reestimated is not Scheduler._note_reestimated
        )

        # Per-run state, initialised in prepare().
        self._sleep: NodePowerManager | None = None
        self._engine: Engine
        self._pool: ProcessorPool
        self._accounting: EnergyAccounting
        self._queue: JobQueue
        self._running: dict[int, _RunningJob]
        self._estimates: list[tuple[float, int, int]]  # (estimated_end, job_id, size)
        self._outcomes: list[JobOutcome]
        self._timeline: list[TimelinePoint]
        self._jobs_loaded = 0
        self._span_start = 0.0
        self._event_budget = 0

    # -- read-only views used by policies and tests -----------------------------
    @property
    def machine(self) -> Machine:
        return self._machine

    @property
    def policy(self) -> FrequencyPolicy:
        return self._policy

    @property
    def time_model(self) -> BetaTimeModel:
        return self._time_model

    @property
    def power_model(self) -> PowerModel:
        return self._power_model

    @property
    def config(self) -> SchedulerConfig:
        return self._config

    # -- session probes (valid between prepare() and finalize()) ----------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._engine.now

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting on execution."""
        return len(self._queue)

    @property
    def busy_cpus(self) -> int:
        return self._pool.busy_cpus

    @property
    def asleep_cpus(self) -> int:
        """Processors currently powered down (0 without a sleep policy)."""
        if self._sleep is None:
            return 0
        return self._sleep.asleep_cpus(self._engine.now)

    @property
    def event_budget(self) -> int:
        """The runaway guard sized for the loaded trace."""
        return self._event_budget

    def instantaneous_power(self) -> float:
        """Machine power right now, in the power model's (arbitrary) watts.

        Running jobs draw active power at their current gear; every idle
        processor draws the model's idle power — the same accounting the
        energy report integrates, sampled instantaneously.  Under a
        sleep policy, powered-down processors draw only the policy's
        fraction of idle power, and a job still waiting out its wake
        stall (``segment_start`` in the future) draws idle power, not
        its gear's — matching how the energy books price the boot.
        """
        model = self._power_model
        idle_power = model.idle_power()
        sleep = self._sleep
        if sleep is None:
            active = sum(
                model.active_power(r.gear) * r.job.size for r in self._running.values()
            )
            return active + idle_power * self._pool.free_cpus
        now = self._engine.now
        active = 0.0
        stalled = 0
        for r in self._running.values():
            if r.segment_start > now:
                stalled += r.job.size
            else:
                active += model.active_power(r.gear) * r.job.size
        asleep = sleep.asleep_cpus(now)
        awake_idle = self._pool.free_cpus - asleep
        return active + idle_power * (
            awake_idle + stalled + asleep * sleep.policy.sleep_power_fraction
        )

    # -- observers and runtime control -------------------------------------------
    def attach_observer(self, observer: Callable[[LifecycleEvent], None]) -> None:
        """Subscribe ``observer`` to the typed lifecycle stream.

        Observers are called synchronously, in attachment order, with
        frozen :class:`~repro.sim.events.LifecycleEvent` instances.
        Attach before :meth:`prepare` (sessions do): sleep-transition
        timers — and therefore ``NodesSlept``/``NodesWoke`` events —
        are armed only when an observer is present at prepare time.
        """
        self._observers.append(observer)
        self._plain_pass = False

    def _emit(self, event: LifecycleEvent) -> None:
        for observer in self._observers:
            observer(event)

    def set_policy(self, policy: FrequencyPolicy) -> None:
        """Hot-swap the frequency policy mid-run.

        Takes effect from the next scheduling decision; jobs already
        running keep their gears.  An active gear cap stays layered on
        top of the new policy.
        """
        policy.bind(self._gears, self._time_model)
        self._base_policy = policy
        self._refresh_policy()

    def set_gear_cap(self, frequency: float | None) -> None:
        """Cap future gear selections at ``frequency`` GHz (``None`` lifts it)."""
        self._gear_cap = frequency
        self._refresh_policy()

    @property
    def gear_cap(self) -> float | None:
        return self._gear_cap

    def _refresh_policy(self) -> None:
        if self._gear_cap is None:
            self._policy = self._base_policy
        else:
            capped = GearCappedPolicy(self._base_policy, self._gear_cap)
            capped.bind(self._gears, self._time_model)
            self._policy = capped

    # -- the public entry points ---------------------------------------------------
    def run(self, jobs: list[Job]) -> SimulationResult:
        """Simulate ``jobs`` (sorted by submit time) to completion.

        The cyclic garbage collector is paused for the duration of the
        event loop: a run allocates millions of short-lived, acyclic
        objects (outcomes, handles, contexts), and periodic gen-0 scans
        over that churn cost ~8% of wall time while reference counting
        already reclaims everything.  The collector is restored — and
        the few long-lived cycles (engine ↔ handlers) collected — the
        moment the loop exits.
        """
        engine = self.prepare(jobs)
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            engine.run(max_events=self._event_budget)
        finally:
            if was_enabled:
                gc.enable()
        return self.finalize()

    def prepare(self, jobs: list[Job]) -> Engine:
        """Load ``jobs`` and arm the engine without processing any event.

        The first half of :meth:`run`, exposed so a
        :class:`~repro.session.SimulationSession` can drive the
        simulation incrementally; returns the armed engine.
        """
        if self._config.clamp_runtimes:
            jobs = [job.clamped() for job in jobs]
        validate_jobs(jobs, self._machine.total_cpus)

        self._engine = Engine()
        self._pool = ProcessorPool(
            self._machine.total_cpus, track_ids=self._config.track_processor_ids
        )
        self._accounting = EnergyAccounting(self._power_model)
        self._queue = JobQueue()
        self._running = {}
        self._estimates = []
        # Bumped on every estimate insert/remove; lets schedulers memoise
        # pure functions of the estimate profile (e.g. EASY's head
        # reservation) across passes that did not move it.
        self._est_version = 0
        self._outcomes = []
        self._timeline = []
        self._trigger = "init"  # "arrival" | "finish": what fired the current pass
        self._starts_count = 0  # jobs started so far (validate-mode slip bounds)
        self._jobs_loaded = len(jobs)
        self._span_start = jobs[0].submit_time if jobs else 0.0
        self._event_budget = 4 * len(jobs) + 64
        self._last_tick = float("-inf")
        self._last_depth = 0
        config = self._config
        # Resolved once per run: the env flag must not be re-read per
        # pass, and a disabled sanitizer must keep the plain fast path.
        self._sanitize = config.sanitize or sanitize_enabled()
        self._plain_pass = (
            config.boost is None
            and not config.validate
            and not config.record_timeline
            and not self._sanitize
            and not self._observers
        )
        self._reset_pass_state()

        self._engine.on(EventKind.JOB_ARRIVAL, self._on_arrival)
        self._engine.on(EventKind.JOB_FINISH, self._on_finish)
        self._engine.schedule_sorted(
            EventKind.JOB_ARRIVAL, [(job.submit_time, job) for job in jobs]
        )
        # Armed after the arrivals bulk-load: the manager schedules its
        # first sleep-transition CONTROL timer immediately, and
        # schedule_sorted requires an empty queue.
        sleep = self._config.sleep
        if sleep is not None and sleep.enabled:
            # CONTROL timers announce sleep transitions: at most one per
            # distinct release timestamp plus re-arms — comfortably
            # inside a doubled budget.
            self._event_budget = 8 * len(jobs) + 256
            self._engine.on(EventKind.CONTROL, self._on_sleep_timer)
            self._sleep = NodePowerManager(
                self._machine.total_cpus,
                sleep,
                self._span_start,
                engine=self._engine,
                emit=self._emit if self._observers else None,
            )
        else:
            self._sleep = None
        return self._engine

    def _on_sleep_timer(self, now: float, payload: object) -> None:
        self._sleep.on_timer(now, payload)

    def finalize(self) -> SimulationResult:
        """Close the books after the event queue drained.

        The second half of :meth:`run`; raises if any loaded job never
        completed (a drained queue with missing outcomes is a
        simulation bug, an undrained one a session stopped early).
        """
        if len(self._outcomes) != self._jobs_loaded:
            raise SimulationError(
                f"{self._jobs_loaded - len(self._outcomes)} of {self._jobs_loaded} "
                f"jobs never completed"
            )
        outcomes = tuple(sorted(self._outcomes, key=lambda o: o.job.job_id))
        span_end = max((o.finish_time for o in outcomes), default=self._span_start)
        breakdown = None
        if self._sleep is not None:
            manager = self._sleep
            manager.finalize(span_end)
            breakdown = SleepEnergyBreakdown(
                idle_awake_cpu_seconds=manager.idle_awake_cpu_seconds,
                asleep_cpu_seconds=manager.asleep_cpu_seconds,
                wake_count=manager.wake_count,
                sleep_power_fraction=manager.policy.sleep_power_fraction,
                wake_energy_idle_seconds=manager.policy.wake_energy_idle_seconds,
                wake_stall_cpu_seconds=manager.wake_stall_cpu_seconds,
                wake_delay_seconds_total=manager.wake_delay_seconds_total,
                wake_delayed_jobs=manager.wake_delayed_jobs,
            )
        report = self._accounting.report(
            self._machine.total_cpus, self._span_start, span_end, sleep=breakdown
        )
        return SimulationResult(
            machine=self._machine,
            # The *configured* policy (after any hot-swap), not the
            # transient gear-cap wrapper: whether a power-cap controller
            # happens to be engaged at the final event must not change
            # how the run is labelled.
            policy=self._base_policy.describe(),
            outcomes=outcomes,
            energy=report,
            events_processed=self._engine.events_processed,
            timeline=tuple(self._timeline),
        )

    def abort(self) -> None:
        """Stand down a run abandoned mid-flight (session cancel).

        Cancels every live engine handle this scheduler owns — running
        jobs' finish events and the sleep manager's transition timer —
        so nothing in the abandoned engine queue still points back at
        scheduler state.  Queued arrivals remain (they carry no
        scheduler references); the run can never be resumed or
        finalised after this.
        """
        for running in self._running.values():
            if running.finish_handle is not None:
                self._engine.cancel(running.finish_handle)
                running.finish_handle = None
        if self._sleep is not None:
            self._sleep.disarm()

    # -- event handlers ----------------------------------------------------------
    def _on_arrival(self, now: float, job: Job) -> None:
        self._queue.append(job)
        if self._observers:
            self._emit(JobSubmitted(now, job.job_id, job.size, job.requested_time))
        self._trigger = "arrival"
        self._run_pass(now)

    def _on_finish(self, now: float, running: _RunningJob) -> None:
        running.energy += self._accounting.add_segment(
            running.gear, running.job.size, now - running.segment_start
        )
        self._accounting.count_job()
        self._pool.release(running.allocation)
        if self._sleep is not None:
            self._sleep.release(running.job.size, now)
        self._drop_estimate(running)
        del self._running[running.job.job_id]
        if self._wants_lifecycle_hooks:
            self._note_finished(running, now)
        self._outcomes.append(
            JobOutcome(
                job=running.job,
                start_time=running.start,
                finish_time=now,
                gear=running.first_gear,
                penalized_runtime=now - running.start,
                energy=running.energy,
                was_reduced=running.ever_reduced,
            )
        )
        if self._observers:
            job = running.job
            self._emit(
                JobFinished(
                    time=now,
                    job_id=job.job_id,
                    size=job.size,
                    frequency=running.first_gear.frequency,
                    wait_time=running.start - job.submit_time,
                    runtime=job.runtime,
                    penalized_runtime=now - running.start,
                    energy=running.energy,
                    was_reduced=running.ever_reduced,
                )
            )
        self._trigger = "finish"
        self._run_pass(now)

    def _run_pass(self, now: float) -> None:
        if self._plain_pass:
            self._schedule_pass(now)
            return
        self._schedule_pass(now)
        if self._maybe_boost(now):
            # Boosting shortens running-job estimates, which can open new
            # backfill windows; run one more pass (boost is then a no-op).
            self._schedule_pass(now)
        if self._config.validate:
            self._check_invariants(now)
        if self._sanitize:
            self._sanitize_pass(now)
        if self._config.record_timeline:
            self._timeline.append(
                TimelinePoint(time=now, queued_jobs=len(self._queue), busy_cpus=self._pool.busy_cpus)
            )
        if self._observers:
            self._post_pass_emit(now)

    def _post_pass_emit(self, now: float) -> None:
        """ClockTick on a new timestamp, QueueDepthChanged on a new depth."""
        if now > self._last_tick:
            self._last_tick = now
            self._emit(ClockTick(now))
        depth = len(self._queue)
        if depth != self._last_depth:
            self._last_depth = depth
            self._emit(QueueDepthChanged(now, depth))

    # -- the policy hook -------------------------------------------------------------
    @abstractmethod
    def _schedule_pass(self, now: float) -> None:
        """Start/reserve/backfill queued jobs at time ``now``."""

    def _reset_pass_state(self) -> None:
        """Hook for subclasses holding per-run scratch state."""

    # -- running-set lifecycle hooks --------------------------------------------
    # Subclasses that maintain incremental structures over the running
    # set (e.g. conservative backfilling's availability profile) override
    # these; the defaults cost one no-op call per job event.
    def _note_started(self, running: _RunningJob, now: float) -> None:
        """Called after ``running`` starts and its estimate is registered."""

    def _note_finished(self, running: _RunningJob, now: float) -> None:
        """Called after ``running`` completes and leaves the running set."""

    def _note_reestimated(self, running: _RunningJob, old_estimated_end: float, now: float) -> None:
        """Called after a mid-run gear switch moved ``running``'s estimate."""

    # -- shared mechanics ----------------------------------------------------------
    def _start_heads(self, now: float) -> None:
        """Launch queue heads while they fit (shared FCFS prefix of every pass)."""
        queue = self._queue
        pool = self._pool
        # Reads the queue's head slot directly: this runs on every pass
        # and usually starts nothing, so the three method calls of the
        # naive `while queue: queue[0]` loop are worth skipping.
        while queue._live:
            head = queue._jobs[queue._head]
            if not pool.fits(head.size):
                break
            ctx = SchedulingContext.with_fixed_wait(
                now=now,
                wait_time=now - head.submit_time,
                wq_size=len(self._queue) - 1,
                utilization=self._utilization(),
                must_schedule=True,
            )
            gear = self._policy.select_gear(head, ctx)
            if gear is None:
                raise SimulationError(
                    f"policy {self._policy.describe()} refused to schedule queue head "
                    f"{head.job_id} (must_schedule contexts cannot be skipped)"
                )
            self._queue.popleft()
            self._start_job(now, head, gear)

    def _start_job(self, now: float, job: Job, gear: Gear) -> _RunningJob:
        coefficient = self._time_model.coefficient(gear.frequency, job.beta)
        allocation = self._pool.allocate(job.size)
        # A start that rouses sleeping nodes stalls for the wake
        # transition: the whole execution window stretches by the delay.
        # The job holds its processors from dispatch, but active power is
        # billed only from `begin` — the stall itself is priced at idle
        # power by the manager (plus the explicit per-node transition
        # energy), not at the job's gear.
        begin = now
        woken = 0
        if self._sleep is not None:
            delay, woken = self._sleep.acquire(job.size, now)
            begin = now + delay
        running = _RunningJob(job, gear, now, allocation)
        running.segment_start = begin
        running.actual_end = begin + job.runtime * coefficient
        estimated = begin + job.requested_time * coefficient
        # Keep the reservation profile conservative even for unclamped traces.
        running.estimated_end = max(estimated, running.actual_end)
        running.ever_reduced = gear != self._gears.top
        running.finish_handle = self._engine.schedule(
            running.actual_end, EventKind.JOB_FINISH, running
        )
        entry = (running.estimated_end, job.job_id, job.size)
        insort(self._estimates, entry)
        self._est_version += 1
        running.estimate_entry = entry
        self._running[job.job_id] = running
        self._starts_count += 1
        if self._wants_lifecycle_hooks:
            self._note_started(running, now)
        if self._observers:
            if woken:
                # Emitted here, not inside the manager: by now the
                # running set is consistent, so observers reacting to
                # the wake sample sane machine state.
                self._emit(NodesWoke(now, woken, begin - now))
            self._emit(GearSelected(now, job.job_id, gear.frequency, "start"))
            self._emit(
                JobStarted(now, job.job_id, job.size, gear.frequency, now - job.submit_time)
            )
        return running

    def _drop_estimate(self, running: _RunningJob) -> None:
        entry = running.estimate_entry
        if entry is None:
            raise SimulationError(f"job {running.job.job_id} has no estimate entry")
        index = bisect_left(self._estimates, entry)
        if index >= len(self._estimates) or self._estimates[index] != entry:
            raise SimulationError(f"estimate entry for job {running.job.job_id} lost")
        self._estimates.pop(index)
        self._est_version += 1
        running.estimate_entry = None

    def _maybe_boost(self, now: float) -> bool:
        boost = self._config.boost
        if boost is None or not boost.should_boost(len(self._queue)):
            return False
        top = self._gears.top
        boosted = False
        for running in self._running.values():
            if running.gear == top:
                continue
            # A job still waiting out a wake stall has not started
            # executing: anchor the plan at segment_start so only the
            # execution window is gear-scaled — scaling from `now` would
            # compress the (frequency-invariant) boot time and could
            # reschedule the finish before the nodes have even booted.
            anchor = running.segment_start if running.segment_start > now else now
            plan = boost_plan(
                now=anchor,
                current_gear=running.gear,
                gears=self._gears,
                time_model=self._time_model,
                beta=running.job.beta,
                actual_end=running.actual_end,
                estimated_end=running.estimated_end,
                config=boost,
            )
            if plan is None:
                continue
            new_actual, new_estimated = plan
            self._switch_gear(running, top, now, new_actual, new_estimated)
            boosted = True
        return boosted

    def _switch_gear(
        self,
        running: _RunningJob,
        gear: Gear,
        now: float,
        new_actual_end: float,
        new_estimated_end: float,
        reason: str = "boost",
    ) -> None:
        elapsed = now - running.segment_start
        if elapsed > 0.0:
            running.energy += self._accounting.add_segment(
                running.gear, running.job.size, elapsed
            )
            running.segment_start = now
        # else: the job is still inside its wake stall — the pending
        # active segment keeps its (future) start and bills at the new
        # gear from there.
        running.gear = gear
        self._engine.cancel(running.finish_handle)
        running.finish_handle = self._engine.schedule(
            new_actual_end, EventKind.JOB_FINISH, running
        )
        running.actual_end = new_actual_end
        self._drop_estimate(running)
        old_estimated_end = running.estimated_end
        running.estimated_end = new_estimated_end
        entry = (new_estimated_end, running.job.job_id, running.job.size)
        insort(self._estimates, entry)
        self._est_version += 1
        running.estimate_entry = entry
        if self._wants_lifecycle_hooks:
            self._note_reestimated(running, old_estimated_end, now)
        if self._observers:
            self._emit(GearSelected(now, running.job.job_id, gear.frequency, reason))

    def _utilization(self) -> float:
        return self._pool.busy_cpus / self._pool.total_cpus

    def _sanitize_pass(self, now: float) -> None:
        """Deep structural re-verification of every core structure.

        Called after each settled scheduling pass when the sanitizer is
        on (:mod:`repro.analysis.sanitize`).  Subclasses holding extra
        incremental structures (conservative backfilling's availability
        profile) extend this.  Raises
        :class:`~repro.analysis.sanitize.SanitizeError` on the first
        violated invariant.
        """
        from repro.analysis.sanitize import require

        self._engine.check_consistency()
        self._queue.check_consistency()
        pool = self._pool
        require(
            0 <= pool.free_cpus <= pool.total_cpus,
            f"pool free count {pool.free_cpus} outside "
            f"[0, {pool.total_cpus}] at t={now}",
        )
        require(
            self._accounting._computational >= 0.0,
            f"computational energy went negative at t={now}",
        )
        require(
            self._accounting._busy_cpu_seconds >= 0.0,
            f"busy CPU-seconds went negative at t={now}",
        )
        estimates = self._estimates
        for index in range(1, len(estimates)):
            require(
                estimates[index - 1] <= estimates[index],
                f"estimate profile lost its ordering at index {index}",
            )
        if self._sleep is not None:
            self._sleep.check_consistency(pool.free_cpus)

    # -- validation -----------------------------------------------------------------
    def _check_invariants(self, now: float) -> None:
        busy = sum(r.job.size for r in self._running.values())
        if busy != self._pool.busy_cpus:
            raise SimulationError(
                f"CPU accounting drift at t={now}: running jobs hold {busy} CPUs "
                f"but the pool reports {self._pool.busy_cpus}"
            )
        if not 0 <= self._pool.free_cpus <= self._pool.total_cpus:
            raise SimulationError(f"free CPU count out of range: {self._pool.free_cpus}")
        if len(self._estimates) != len(self._running):
            raise SimulationError(
                f"estimate list ({len(self._estimates)}) out of sync with "
                f"running set ({len(self._running)})"
            )
        for running in self._running.values():
            if running.estimated_end + 1e-9 < running.actual_end:
                raise SimulationError(
                    f"job {running.job.job_id} estimate precedes its actual end"
                )
        submits = [job.submit_time for job in self._queue]
        if submits != sorted(submits):
            raise SimulationError("wait queue lost FCFS order")
