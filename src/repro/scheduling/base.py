"""Shared scheduler machinery: job lifecycle, bookkeeping, boost, results.

Concrete policies (FCFS, EASY, conservative) subclass
:class:`Scheduler` and implement a single hook, ``_schedule_pass``,
invoked after every arrival and completion — the paper's "rescheduling
of all queued jobs is done when a job finishes earlier than it has been
expected" falls out of re-running the pass on each completion event.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass

from repro.cluster.allocation import Allocation
from repro.cluster.machine import Machine
from repro.cluster.processors import ProcessorPool
from repro.core.dynamic_boost import DynamicBoostConfig, boost_plan
from repro.core.frequency_policy import FrequencyPolicy, SchedulingContext
from repro.core.gears import Gear
from repro.power.energy import EnergyAccounting
from repro.power.model import PowerModel
from repro.power.time_model import BetaTimeModel, DEFAULT_BETA
from repro.scheduling.job import Job, JobOutcome, validate_jobs
from repro.scheduling.result import SimulationResult, TimelinePoint
from repro.sim.engine import Engine, SimulationError
from repro.sim.events import EventKind

__all__ = ["Scheduler", "SchedulerConfig"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Cross-cutting simulation options.

    Attributes
    ----------
    track_processor_ids:
        Use explicit first-fit CPU identities (slower; on a flat
        machine every CPU is interchangeable, so identities do not
        affect any reported metric).
    validate:
        Enable per-pass invariant assertions (used heavily in tests).
    boost:
        Dynamic-boost extension configuration, or ``None`` to disable.
    record_timeline:
        Record a (time, queue length, busy CPUs) sample after every
        event; needed only by timeline-style figures.
    clamp_runtimes:
        Clamp ``runtime`` to ``requested_time`` on ingest
        (kill-at-limit semantics; keeps reservations conservative).
    """

    track_processor_ids: bool = False
    validate: bool = False
    boost: DynamicBoostConfig | None = None
    record_timeline: bool = False
    clamp_runtimes: bool = True


class _RunningJob:
    """Mutable state of a job in execution."""

    __slots__ = (
        "job",
        "gear",
        "first_gear",
        "start",
        "segment_start",
        "energy",
        "actual_end",
        "estimated_end",
        "finish_handle",
        "ever_reduced",
        "allocation",
        "estimate_entry",
    )

    def __init__(self, job: Job, gear: Gear, start: float, allocation: Allocation) -> None:
        self.job = job
        self.gear = gear
        self.first_gear = gear
        self.start = start
        self.segment_start = start
        self.energy = 0.0
        self.actual_end = start
        self.estimated_end = start
        self.finish_handle = None
        self.ever_reduced = False
        self.allocation = allocation
        self.estimate_entry: tuple[float, int, int] | None = None


class Scheduler(ABC):
    """Base event-driven job scheduler over a DVFS machine."""

    def __init__(
        self,
        machine: Machine,
        policy: FrequencyPolicy,
        *,
        beta: float = DEFAULT_BETA,
        power_model: PowerModel | None = None,
        config: SchedulerConfig | None = None,
    ) -> None:
        self._machine = machine
        self._gears = machine.gears
        self._policy = policy
        self._time_model = BetaTimeModel.for_gear_set(machine.gears, beta)
        policy.bind(machine.gears, self._time_model)
        if power_model is not None and power_model.gears != machine.gears:
            raise ValueError("power model and machine use different gear sets")
        self._power_model = power_model or PowerModel(gears=machine.gears)
        self._config = config or SchedulerConfig()

        # Per-run state, initialised in run().
        self._engine: Engine
        self._pool: ProcessorPool
        self._accounting: EnergyAccounting
        self._queue: deque[Job]
        self._running: dict[int, _RunningJob]
        self._estimates: list[tuple[float, int, int]]  # (estimated_end, job_id, size)
        self._outcomes: list[JobOutcome]
        self._timeline: list[TimelinePoint]

    # -- read-only views used by policies and tests -----------------------------
    @property
    def machine(self) -> Machine:
        return self._machine

    @property
    def policy(self) -> FrequencyPolicy:
        return self._policy

    @property
    def time_model(self) -> BetaTimeModel:
        return self._time_model

    @property
    def power_model(self) -> PowerModel:
        return self._power_model

    @property
    def config(self) -> SchedulerConfig:
        return self._config

    # -- the public entry point ----------------------------------------------------
    def run(self, jobs: list[Job]) -> SimulationResult:
        """Simulate ``jobs`` (sorted by submit time) to completion."""
        if self._config.clamp_runtimes:
            jobs = [job.clamped() for job in jobs]
        validate_jobs(jobs, self._machine.total_cpus)

        self._engine = Engine()
        self._pool = ProcessorPool(
            self._machine.total_cpus, track_ids=self._config.track_processor_ids
        )
        self._accounting = EnergyAccounting(self._power_model)
        self._queue = deque()
        self._running = {}
        self._estimates = []
        self._outcomes = []
        self._timeline = []
        self._trigger = "init"  # "arrival" | "finish": what fired the current pass
        self._reset_pass_state()

        self._engine.on(EventKind.JOB_ARRIVAL, self._on_arrival)
        self._engine.on(EventKind.JOB_FINISH, self._on_finish)
        for job in jobs:
            self._engine.schedule(job.submit_time, EventKind.JOB_ARRIVAL, job)
        self._engine.run(max_events=4 * len(jobs) + 64)

        if len(self._outcomes) != len(jobs):
            raise SimulationError(
                f"{len(jobs) - len(self._outcomes)} of {len(jobs)} jobs never completed"
            )
        outcomes = tuple(sorted(self._outcomes, key=lambda o: o.job.job_id))
        span_start = jobs[0].submit_time if jobs else 0.0
        span_end = max((o.finish_time for o in outcomes), default=span_start)
        report = self._accounting.report(self._machine.total_cpus, span_start, span_end)
        return SimulationResult(
            machine=self._machine,
            policy=self._policy.describe(),
            outcomes=outcomes,
            energy=report,
            events_processed=self._engine.events_processed,
            timeline=tuple(self._timeline),
        )

    # -- event handlers ----------------------------------------------------------
    def _on_arrival(self, now: float, job: Job) -> None:
        self._queue.append(job)
        self._trigger = "arrival"
        self._run_pass(now)

    def _on_finish(self, now: float, running: _RunningJob) -> None:
        running.energy += self._accounting.add_segment(
            running.gear, running.job.size, now - running.segment_start
        )
        self._accounting.count_job()
        self._pool.release(running.allocation)
        self._drop_estimate(running)
        del self._running[running.job.job_id]
        self._note_finished(running, now)
        self._outcomes.append(
            JobOutcome(
                job=running.job,
                start_time=running.start,
                finish_time=now,
                gear=running.first_gear,
                penalized_runtime=now - running.start,
                energy=running.energy,
                was_reduced=running.ever_reduced,
            )
        )
        self._trigger = "finish"
        self._run_pass(now)

    def _run_pass(self, now: float) -> None:
        self._schedule_pass(now)
        if self._maybe_boost(now):
            # Boosting shortens running-job estimates, which can open new
            # backfill windows; run one more pass (boost is then a no-op).
            self._schedule_pass(now)
        if self._config.validate:
            self._check_invariants(now)
        if self._config.record_timeline:
            self._timeline.append(
                TimelinePoint(time=now, queued_jobs=len(self._queue), busy_cpus=self._pool.busy_cpus)
            )

    # -- the policy hook -------------------------------------------------------------
    @abstractmethod
    def _schedule_pass(self, now: float) -> None:
        """Start/reserve/backfill queued jobs at time ``now``."""

    def _reset_pass_state(self) -> None:
        """Hook for subclasses holding per-run scratch state."""

    # -- running-set lifecycle hooks --------------------------------------------
    # Subclasses that maintain incremental structures over the running
    # set (e.g. conservative backfilling's availability profile) override
    # these; the defaults cost one no-op call per job event.
    def _note_started(self, running: _RunningJob, now: float) -> None:
        """Called after ``running`` starts and its estimate is registered."""

    def _note_finished(self, running: _RunningJob, now: float) -> None:
        """Called after ``running`` completes and leaves the running set."""

    def _note_reestimated(self, running: _RunningJob, old_estimated_end: float, now: float) -> None:
        """Called after a mid-run gear switch moved ``running``'s estimate."""

    # -- shared mechanics ----------------------------------------------------------
    def _start_heads(self, now: float) -> None:
        """Launch queue heads while they fit (shared FCFS prefix of every pass)."""
        while self._queue:
            head = self._queue[0]
            if not self._pool.fits(head.size):
                break
            ctx = SchedulingContext.with_fixed_wait(
                now=now,
                wait_time=now - head.submit_time,
                wq_size=len(self._queue) - 1,
                utilization=self._utilization(),
                must_schedule=True,
            )
            gear = self._policy.select_gear(head, ctx)
            if gear is None:
                raise SimulationError(
                    f"policy {self._policy.describe()} refused to schedule queue head "
                    f"{head.job_id} (must_schedule contexts cannot be skipped)"
                )
            self._queue.popleft()
            self._start_job(now, head, gear)

    def _start_job(self, now: float, job: Job, gear: Gear) -> _RunningJob:
        coefficient = self._time_model.coefficient(gear.frequency, job.beta)
        allocation = self._pool.allocate(job.size)
        running = _RunningJob(job, gear, now, allocation)
        running.actual_end = now + job.runtime * coefficient
        estimated = now + job.requested_time * coefficient
        # Keep the reservation profile conservative even for unclamped traces.
        running.estimated_end = max(estimated, running.actual_end)
        running.ever_reduced = gear != self._gears.top
        running.finish_handle = self._engine.schedule(
            running.actual_end, EventKind.JOB_FINISH, running
        )
        entry = (running.estimated_end, job.job_id, job.size)
        insort(self._estimates, entry)
        running.estimate_entry = entry
        self._running[job.job_id] = running
        self._note_started(running, now)
        return running

    def _drop_estimate(self, running: _RunningJob) -> None:
        entry = running.estimate_entry
        if entry is None:
            raise SimulationError(f"job {running.job.job_id} has no estimate entry")
        index = bisect_left(self._estimates, entry)
        if index >= len(self._estimates) or self._estimates[index] != entry:
            raise SimulationError(f"estimate entry for job {running.job.job_id} lost")
        self._estimates.pop(index)
        running.estimate_entry = None

    def _maybe_boost(self, now: float) -> bool:
        boost = self._config.boost
        if boost is None or not boost.should_boost(len(self._queue)):
            return False
        top = self._gears.top
        boosted = False
        for running in self._running.values():
            if running.gear == top:
                continue
            plan = boost_plan(
                now=now,
                current_gear=running.gear,
                gears=self._gears,
                time_model=self._time_model,
                beta=running.job.beta,
                actual_end=running.actual_end,
                estimated_end=running.estimated_end,
                config=boost,
            )
            if plan is None:
                continue
            new_actual, new_estimated = plan
            self._switch_gear(running, top, now, new_actual, new_estimated)
            boosted = True
        return boosted

    def _switch_gear(
        self,
        running: _RunningJob,
        gear: Gear,
        now: float,
        new_actual_end: float,
        new_estimated_end: float,
    ) -> None:
        running.energy += self._accounting.add_segment(
            running.gear, running.job.size, now - running.segment_start
        )
        running.segment_start = now
        running.gear = gear
        self._engine.cancel(running.finish_handle)
        running.finish_handle = self._engine.schedule(
            new_actual_end, EventKind.JOB_FINISH, running
        )
        running.actual_end = new_actual_end
        self._drop_estimate(running)
        old_estimated_end = running.estimated_end
        running.estimated_end = new_estimated_end
        entry = (new_estimated_end, running.job.job_id, running.job.size)
        insort(self._estimates, entry)
        running.estimate_entry = entry
        self._note_reestimated(running, old_estimated_end, now)

    def _utilization(self) -> float:
        return self._pool.busy_cpus / self._pool.total_cpus

    # -- validation -----------------------------------------------------------------
    def _check_invariants(self, now: float) -> None:
        busy = sum(r.job.size for r in self._running.values())
        if busy != self._pool.busy_cpus:
            raise SimulationError(
                f"CPU accounting drift at t={now}: running jobs hold {busy} CPUs "
                f"but the pool reports {self._pool.busy_cpus}"
            )
        if not 0 <= self._pool.free_cpus <= self._pool.total_cpus:
            raise SimulationError(f"free CPU count out of range: {self._pool.free_cpus}")
        if len(self._estimates) != len(self._running):
            raise SimulationError(
                f"estimate list ({len(self._estimates)}) out of sync with "
                f"running set ({len(self._running)})"
            )
        for running in self._running.values():
            if running.estimated_end + 1e-9 < running.actual_end:
                raise SimulationError(
                    f"job {running.job.job_id} estimate precedes its actual end"
                )
        submits = [job.submit_time for job in self._queue]
        if submits != sorted(submits):
            raise SimulationError("wait queue lost FCFS order")
