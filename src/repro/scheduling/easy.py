"""EASY backfilling with pluggable frequency assignment (paper §2).

EASY (Mu'alem & Feitelson) runs jobs in FCFS order, gives the queue
head a reservation at the earliest time enough processors free up, and
*backfills* later arrivals into the gaps provided they cannot delay the
head.  The power-aware variant of the paper is this scheduler with a
:class:`~repro.core.frequency_policy.BsldThresholdPolicy` plugged in:
``MakeJobReservation`` corresponds to the head path below and
``BackfillJob`` to the backfill scan.

The implementation exploits a structural fact: with only running jobs
holding processors, the free-CPU profile is *non-decreasing in time*,
so the head's earliest start ``t_res`` does not depend on its duration
and the classic O(1) backfill admission test is exact:

    size <= free_now  AND  (now + duration <= t_res  OR  size <= extra)

where ``extra`` is the number of processors left over at ``t_res`` once
the head has its share.  A slow profile-based reference implementation
(:mod:`repro.scheduling.reference`) cross-validates this scheduler in
the test suite.
"""

from __future__ import annotations

from itertools import islice

from repro.core.frequency_policy import SchedulingContext, _always_feasible
from repro.core.gears import Gear
from repro.registry import SCHEDULERS
from repro.scheduling.base import Scheduler
from repro.scheduling.job import Job
from repro.sim.engine import SimulationError

__all__ = ["EasyBackfilling"]


@SCHEDULERS.register("easy")
class EasyBackfilling(Scheduler):
    """EASY backfilling; the paper's baseline and power-aware scheduler."""

    def _reset_pass_state(self) -> None:
        self._reservation_watch: tuple[int, float] | None = None

    def _schedule_pass(self, now: float) -> None:
        self._start_heads(now)
        if not self._queue:
            self._reservation_watch = None
            return
        head = self._queue[0]
        t_res, extra = self._head_reservation(head)
        if self.config.validate:
            self._watch_reservation(head, t_res)
        if len(self._queue) > 1:
            self._backfill_scan(now, head, t_res, extra)

    # -- reservation --------------------------------------------------------------
    def _head_reservation(self, head: Job) -> tuple[float, int]:
        """Earliest start ``t_res`` for the head, and the spare CPUs then.

        Walks running jobs in order of their *estimated* (requested-time
        based) completions, accumulating freed processors until the head
        fits.  All completions sharing the crossing timestamp count
        towards ``extra``.
        """
        free = self._pool.free_cpus
        if free >= head.size:
            raise SimulationError(
                f"reservation requested for head {head.job_id} that already fits"
            )
        estimates = self._estimates
        t_res: float | None = None
        index = 0
        for index, (end, _job_id, size) in enumerate(estimates):
            free += size
            if free >= head.size:
                t_res = end
                break
        if t_res is None:
            raise SimulationError(
                f"head {head.job_id} (size {head.size}) cannot fit even on the "
                f"drained machine; trace validation should have caught this"
            )
        for end, _job_id, size in islice(estimates, index + 1, None):
            if end != t_res:
                break
            free += size
        return t_res, free - head.size

    def _watch_reservation(self, head: Job, t_res: float) -> None:
        """Validate the EASY guarantee: a head's reservation never slips."""
        watch = self._reservation_watch
        if watch is not None and watch[0] == head.job_id and t_res > watch[1] + 1e-9:
            raise SimulationError(
                f"EASY guarantee violated: head {head.job_id} reservation moved "
                f"from {watch[1]} to {t_res}"
            )
        self._reservation_watch = (head.job_id, t_res)

    # -- backfilling -----------------------------------------------------------------
    def _backfill_scan(self, now: float, head: Job, t_res: float, extra: int) -> None:
        """Try every queued non-head job against the O(1) admission test.

        The candidate set is fixed at pass start; accepted jobs are
        collected and spliced out of the queue once at the end instead
        of one O(n) ``deque.remove`` (with a full dataclass ``__eq__``
        per probed element) per acceptance.  ``queue_len`` mirrors what
        ``len(self._queue)`` would read under eager removal, so policy
        decisions (the WQ-threshold gate) are unchanged.
        """
        queue = self._queue
        pool = self._pool
        total_cpus = pool.total_cpus
        coefficient = self._time_model.coefficient
        candidates = list(islice(queue, 1, len(queue)))
        queue_len = len(queue)
        free_now = pool.free_cpus  # mirrored locally; only _start_job moves it
        started_ids: set[int] | None = None
        for job in candidates:
            if free_now == 0:
                break
            size = job.size
            if size > free_now:
                continue
            if size <= extra:
                # Fits beside the head's reservation at any duration.
                feasible = _always_feasible
            elif not (now + job.requested_time <= t_res):
                # Even the top gear (Coef == 1, the shortest stretch) ends
                # past the shadow time, so no gear is feasible.  Policies
                # never return an infeasible gear in a may-skip context,
                # so the decision is a foregone None — skip the call.
                continue
            else:
                feasible = self._backfill_test(job, now, t_res, coefficient)
            # self._policy is read per candidate, not cached at pass
            # start: a controller instrument reacting to the JobStarted
            # just emitted by _start_job may have swapped or capped the
            # policy, and the rest of the scan must honour that.
            gear = self._policy.select_gear(
                job,
                SchedulingContext.with_fixed_wait(
                    now=now,
                    wait_time=now - job.submit_time,
                    wq_size=queue_len - 1,
                    utilization=(total_cpus - free_now) / total_cpus,
                    must_schedule=False,
                    feasible=feasible,
                ),
            )
            if gear is None:
                continue
            if started_ids is None:
                started_ids = set()
            started_ids.add(job.job_id)
            queue_len -= 1
            free_now -= size
            self._start_job(now, job, gear)
            # The new running job changes the estimate profile; recompute.
            t_res, extra = self._head_reservation(head)
        if started_ids:
            kept = [job for job in queue if job.job_id not in started_ids]
            queue.clear()
            queue.extend(kept)

    def _backfill_test(self, job: Job, now: float, t_res: float, coefficient):
        """The O(1) admission test at a given gear (see module docstring).

        The ``size <= extra`` disjunct and the free-CPU gate are decided
        before this closure is built (neither changes while one
        candidate is evaluated), leaving only the duration-vs-shadow
        comparison per gear.
        """
        requested = job.requested_time
        beta = job.beta

        def feasible(gear: Gear) -> bool:
            return now + requested * coefficient(gear.frequency, beta) <= t_res

        return feasible
