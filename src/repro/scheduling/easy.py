"""EASY backfilling with pluggable frequency assignment (paper §2).

EASY (Mu'alem & Feitelson) runs jobs in FCFS order, gives the queue
head a reservation at the earliest time enough processors free up, and
*backfills* later arrivals into the gaps provided they cannot delay the
head.  The power-aware variant of the paper is this scheduler with a
:class:`~repro.core.frequency_policy.BsldThresholdPolicy` plugged in:
``MakeJobReservation`` corresponds to the head path below and
``BackfillJob`` to the backfill scan.

The implementation exploits a structural fact: with only running jobs
holding processors, the free-CPU profile is *non-decreasing in time*,
so the head's earliest start ``t_res`` does not depend on its duration
and the classic O(1) backfill admission test is exact:

    size <= free_now  AND  (now + duration <= t_res  OR  size <= extra)

where ``extra`` is the number of processors left over at ``t_res`` once
the head has its share.  A slow profile-based reference implementation
(:mod:`repro.scheduling.reference`) cross-validates this scheduler in
the test suite.

Scaling: a pass no longer touches every waiting job.  When no processor
is free, nothing can start or backfill, so the pass ends after the
shared FCFS prefix — on an overloaded trace that is most passes.
Otherwise the candidate walk is driven by
:meth:`~repro.scheduling.queue.JobQueue.backfill_candidates`, a
vectorised superset pre-filter of the admission gates; only jobs that
pass it are touched in Python, and each is re-verified against the
exact gates, so schedules are bit-identical to the full scan's.  The
gates change only when an acceptance consumes processors and moves the
head's reservation, so the scan re-enumerates the remaining tail after
every acceptance — between acceptances the thresholds are static and
the pre-filter is a superset by construction.
"""

from __future__ import annotations

from repro.core.frequency_policy import SchedulingContext, _always_feasible
from repro.core.gears import Gear
from repro.registry import SCHEDULERS
from repro.scheduling.base import Scheduler
from repro.scheduling.job import Job
from repro.sim.engine import SimulationError

__all__ = ["EasyBackfilling"]


@SCHEDULERS.register("easy")
class EasyBackfilling(Scheduler):
    """EASY backfilling; the paper's baseline and power-aware scheduler."""

    def _reset_pass_state(self) -> None:
        # (head_id, last t_res, starts_count at observation)
        self._reservation_watch: tuple[int, float, int] | None = None
        self._default_coef_by_frequency = {
            gear.frequency: self._time_model.coefficient(gear.frequency)
            for gear in self._gears
        }
        # (head_id, free_cpus, estimates version) -> (t_res, extra): the
        # reservation is a pure function of those three, so passes that
        # moved none of them (e.g. a burst of arrivals with nothing
        # starting) reuse the previous walk.
        self._reservation_memo: tuple[tuple[int, int, int], tuple[float, int]] | None = None
        # Candidate positions of the last acceptance-free scan, keyed by
        # (head_id, free_cpus, estimates version, queue generation).  A
        # later pass with the same key differs only by appended arrivals
        # and an advanced clock, which can only *tighten* the admission
        # gates — so the cached positions plus the new tail are a valid
        # superset and the pre-filter mask need not be recomputed.
        # Every candidate (including previously policy-skipped ones) is
        # still re-decided against current state, so arbitrary policies
        # stay exact.
        self._scan_cache: tuple[tuple[int, int, int, int], object, int] | None = None

    def _schedule_pass(self, now: float) -> None:
        self._start_heads(now)
        queue_len = len(self._queue)
        if queue_len == 0:
            self._reservation_watch = None
            return
        if not self.config.validate and (self._pool.free_cpus == 0 or queue_len == 1):
            # Nothing can backfill (no free processor, or no non-head
            # candidate); the head reservation is a pure computation
            # consumed only by the scan (and by the validate-mode watch,
            # which keeps the full path).
            return
        head = self._queue[0]
        t_res, extra = self._head_reservation(head)
        if self.config.validate:
            self._watch_reservation(head, t_res)
        if queue_len > 1:
            self._backfill_scan(now, head, t_res, extra)

    # -- reservation --------------------------------------------------------------
    def _head_reservation(self, head: Job) -> tuple[float, int]:
        """Earliest start ``t_res`` for the head, and the spare CPUs then.

        Walks running jobs in order of their *estimated* (requested-time
        based) completions, accumulating freed processors until the head
        fits.  All completions sharing the crossing timestamp count
        towards ``extra``.
        """
        free = self._pool.free_cpus
        if free >= head.size:
            raise SimulationError(
                f"reservation requested for head {head.job_id} that already fits"
            )
        key = (head.job_id, free, self._est_version)
        memo = self._reservation_memo
        if memo is not None and memo[0] == key:
            return memo[1]
        estimates = self._estimates
        t_res: float | None = None
        index = 0
        for index, (end, _job_id, size) in enumerate(estimates):
            free += size
            if free >= head.size:
                t_res = end
                break
        if t_res is None:
            raise SimulationError(
                f"head {head.job_id} (size {head.size}) cannot fit even on the "
                f"drained machine; trace validation should have caught this"
            )
        for end, _job_id, size in estimates[index + 1 :]:
            if end != t_res:
                break
            free += size
        result = (t_res, free - head.size)
        self._reservation_memo = (key, result)
        return result

    def _watch_reservation(self, head: Job, t_res: float) -> None:
        """Validate the EASY guarantee: a head's reservation never slips.

        The guarantee is stated for instantaneous starts; with a
        non-zero wake latency every job started since the last watch may
        legitimately overrun the shadow time by up to one wake
        transition (the admission test is gear-exact but wake-blind),
        and each such overrun can push the head's crossing by at most
        that transition — so the watch tolerates exactly
        ``starts x wake_seconds`` of slip and still catches anything
        larger.
        """
        wake = self._sleep.wake_seconds if self._sleep is not None else 0.0
        watch = self._reservation_watch
        if watch is not None and watch[0] == head.job_id:
            allowed = watch[1] + (self._starts_count - watch[2]) * wake + 1e-9
            if t_res > allowed:
                raise SimulationError(
                    f"EASY guarantee violated: head {head.job_id} reservation moved "
                    f"from {watch[1]} to {t_res} (allowed {allowed})"
                )
        self._reservation_watch = (head.job_id, t_res, self._starts_count)

    # -- backfilling -----------------------------------------------------------------
    def _backfill_scan(self, now: float, head: Job, t_res: float, extra: int) -> None:
        """Walk the pre-filtered candidates against the exact admission test.

        ``queue.backfill_candidates`` hands back only positions whose
        jobs can possibly pass the cheap gates under the pass-start
        thresholds; each is then re-tested against the *current*
        thresholds, which is exactly what the full queue scan decided
        (jobs outside the pre-filter would have been skipped by the
        same comparisons).  ``queue_len`` mirrors what ``len(queue)``
        reads under eager removal, so policy decisions (the
        WQ-threshold gate) are unchanged.
        """
        queue = self._queue
        pool = self._pool
        total_cpus = pool.total_cpus
        coefficient = self._time_model.coefficient
        free_now = pool.free_cpus  # mirrored locally; only _start_job moves it
        if free_now == 0:
            return
        # Pre-filter slack, padded by a few ulps: the exact per-job gate
        # is `now + requested <= t_res`, whose rounding can differ from
        # the mask's `requested <= t_res - now` — the pad keeps the mask
        # a superset, and the exact form below re-decides every hit.
        slack = (t_res - now) + 1e-9 + 1e-12 * abs(t_res)
        key = (head.job_id, free_now, self._est_version, queue.generation)
        cache = self._scan_cache
        if cache is not None and cache[0] == key:
            # Same head, free count and running set as the last clean
            # scan: only arrivals were appended and the clock advanced,
            # so the cached candidates plus the new tail cover every
            # possibly-admissible job without recomputing the mask.
            positions, seen = cache[1], cache[2]
            n_now = queue.slots_used
            if n_now > seen:
                positions = queue.extend_positions(positions, seen, n_now)
        else:
            positions = queue.backfill_candidates(free_now, extra, slack)
        slots = queue.slots
        queue_len = len(queue)
        mask_t_res = t_res
        mask_extra = extra
        accepted_any = False
        while True:
            accepted_index = None
            for index, position in enumerate(positions):
                job = slots[position]
                if job is None:  # pragma: no cover - defensive
                    continue
                size = job.size
                if size > free_now:
                    continue
                if size <= extra:
                    # Fits beside the head's reservation at any duration.
                    feasible = _always_feasible
                elif not (now + job.requested_time <= t_res):
                    # Even the top gear (Coef == 1, the shortest stretch) ends
                    # past the shadow time, so no gear is feasible.  Policies
                    # never return an infeasible gear in a may-skip context,
                    # so the decision is a foregone None — skip the call.
                    continue
                else:
                    feasible = self._backfill_test(job, now, t_res, coefficient)
                # self._policy is read per candidate, not cached at pass
                # start: a controller instrument reacting to the JobStarted
                # just emitted by _start_job may have swapped or capped the
                # policy, and the rest of the scan must honour that.
                gear = self._policy.select_gear(
                    job,
                    SchedulingContext.with_fixed_wait(
                        now=now,
                        wait_time=now - job.submit_time,
                        wq_size=queue_len - 1,
                        utilization=(total_cpus - free_now) / total_cpus,
                        must_schedule=False,
                        feasible=feasible,
                    ),
                )
                if gear is None:
                    continue
                queue.remove_at(position)
                queue_len -= 1
                free_now -= size
                started = self._start_job(now, job, gear)
                accepted_index = index
                break
            if accepted_index is None:
                if not accepted_any:
                    # Clean scan: every candidate was visited and none
                    # accepted, so the enumeration stays a valid
                    # superset for the next same-key pass.
                    self._scan_cache = (key, positions, queue.slots_used)
                return
            if free_now == 0:
                return
            accepted_any = True
            # The accepted job changed the estimate profile and the free
            # count; gates are static between acceptances, so the rest of
            # the scan visits the remaining tail under the new thresholds.
            # The reservation updates in O(1): the free processors the job
            # took and the estimate it added cancel exactly at t_res when
            # it ends by then; ending later, it consumes `size` of the
            # spare capacity.  Only an estimate overrunning t_res with
            # size beyond the spare (unclamped runtimes) moves t_res —
            # then rewalk.
            if started.estimated_end <= t_res:
                pass  # t_res and extra are unchanged
            elif size <= extra:
                extra -= size
            else:
                t_res, extra = self._head_reservation(head)
            if t_res > mask_t_res or extra > mask_extra:
                # Thresholds loosened past the pre-filter (only possible
                # with unclamped runtimes, where an estimate may overrun
                # t_res): the old enumeration is no longer a superset —
                # recompute it from the accepted position on.
                slack = (t_res - now) + 1e-9 + 1e-12 * abs(t_res)
                mask_t_res = t_res
                mask_extra = extra
                positions = queue.backfill_candidates(
                    free_now, extra, slack, after=int(position)
                )
            else:
                # Tightened only: the remaining tail is still a superset;
                # one cheap size gather drops most of the now-too-big jobs
                # without re-masking the whole window.
                positions = queue.narrow_positions(positions[index + 1 :], free_now)
            slots = queue.slots

    def _backfill_test(self, job: Job, now: float, t_res: float, coefficient):
        """The O(1) admission test at a given gear (see module docstring).

        The ``size <= extra`` disjunct and the free-CPU gate are decided
        before this closure is built (neither changes while one
        candidate is evaluated), leaving only the duration-vs-shadow
        comparison per gear.  Global-β jobs read the per-gear
        coefficient from a flat table instead of the memoised call.
        """
        requested = job.requested_time
        beta = job.beta
        if beta is None:
            table = self._default_coef_by_frequency

            def feasible(gear: Gear) -> bool:
                return now + requested * table[gear.frequency] <= t_res

            return feasible

        def feasible(gear: Gear) -> bool:
            return now + requested * coefficient(gear.frequency, beta) <= t_res

        return feasible
