"""Columnar per-job outcome store: array-backed, lazily materialised.

The reference core records one :class:`~repro.scheduling.job.JobOutcome`
dataclass per job; at a million jobs that tuple dominates a result's
memory (five boxed floats, a bool and two object pointers per job).
:class:`OutcomeColumns` keeps the same information in six parallel
numpy arrays plus the (already materialised) trace jobs, and presents
it through the ``Sequence[JobOutcome]`` surface the rest of the code
reads — iteration and indexing materialise outcome objects on demand,
so every existing consumer (CSV export, serialisation, equality tests)
works unchanged, while the vectorised fast paths in
:class:`~repro.scheduling.result.SimulationResult` reduce straight off
the columns without ever building a per-job object.

Bit-exactness: the stored columns are the exact float64 values the
reference core would have put in the dataclasses (the columnar engine
computes them with the same scalar expressions), and materialisation
converts with ``float()``/``bool()``, so a materialised outcome — and
anything serialised from it — is byte-identical to the reference's.

This module only requires numpy at construction time (the columnar
engine is the sole producer); importing it without numpy is fine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Sequence, overload

if TYPE_CHECKING:  # imported for annotations only; avoids package cycles
    from repro.core.gears import Gear

from repro.scheduling.job import Job, JobOutcome

__all__ = ["OutcomeColumns"]


class OutcomeColumns(Sequence[JobOutcome]):
    """Job outcomes ordered by job id, backed by parallel numpy arrays.

    Parameters
    ----------
    jobs:
        The trace jobs sorted by ``job_id`` (ascending, unique).
    ladder:
        The machine's gears in ascending order; ``gear_index`` values
        index into it.
    start / finish / gear_index / energy / was_reduced:
        Per-job columns aligned with ``jobs``: float64 start and finish
        times, the integer ladder index of the first gear, float64
        active energy, and the reduced-frequency flag.
    """

    __slots__ = (
        "jobs",
        "ladder",
        "start",
        "finish",
        "gear_index",
        "energy",
        "was_reduced",
        "_trace_arrays",
    )

    def __init__(
        self,
        jobs: tuple[Job, ...],
        ladder: tuple[Gear, ...],
        start: Any,
        finish: Any,
        gear_index: Any,
        energy: Any,
        was_reduced: Any,
    ) -> None:
        n = len(jobs)
        for name, column in (
            ("start", start),
            ("finish", finish),
            ("gear_index", gear_index),
            ("energy", energy),
            ("was_reduced", was_reduced),
        ):
            if len(column) != n:
                raise ValueError(
                    f"column {name!r} has {len(column)} rows for {n} jobs"
                )
        self.jobs = jobs
        self.ladder = ladder
        self.start = start
        self.finish = finish
        self.gear_index = gear_index
        self.energy = energy
        self.was_reduced = was_reduced
        self._trace_arrays: tuple[Any, Any] | None = None

    # -- the Sequence[JobOutcome] surface ----------------------------------------
    def __len__(self) -> int:
        return len(self.jobs)

    def _materialise(self, index: int) -> JobOutcome:
        start = float(self.start[index])
        finish = float(self.finish[index])
        return JobOutcome(
            job=self.jobs[index],
            start_time=start,
            finish_time=finish,
            gear=self.ladder[int(self.gear_index[index])],
            # The exact expression the reference core stores
            # (finish - start in float64), not a separately-carried
            # column: penalized runtime is derived, so deriving it
            # keeps the store one column smaller at identical bytes.
            penalized_runtime=finish - start,
            energy=float(self.energy[index]),
            was_reduced=bool(self.was_reduced[index]),
        )

    @overload
    def __getitem__(self, index: int) -> JobOutcome: ...

    @overload
    def __getitem__(self, index: slice) -> tuple[JobOutcome, ...]: ...

    def __getitem__(self, index: int | slice) -> JobOutcome | tuple[JobOutcome, ...]:
        if isinstance(index, slice):
            return tuple(
                self._materialise(i) for i in range(*index.indices(len(self.jobs)))
            )
        if index < 0:
            index += len(self.jobs)
        if not 0 <= index < len(self.jobs):
            raise IndexError("outcome index out of range")
        return self._materialise(index)

    def __iter__(self) -> Iterator[JobOutcome]:
        for index in range(len(self.jobs)):
            yield self._materialise(index)

    def __eq__(self, other: object) -> bool:
        """Element-wise equality against any outcome sequence.

        Serialisation round-trip tests compare a columnar result to one
        decoded into a plain tuple; both orders must agree (``tuple``'s
        own ``__eq__`` returns ``NotImplemented`` for us, so Python
        reflects here).
        """
        if other is self:
            return True
        if isinstance(other, OutcomeColumns):
            if self.jobs != other.jobs or self.ladder != other.ladder:
                return False
            return bool(
                (self.start == other.start).all()
                and (self.finish == other.finish).all()
                and (self.gear_index == other.gear_index).all()
                and (self.energy == other.energy).all()
                and (self.was_reduced == other.was_reduced).all()
            )
        if not isinstance(other, (tuple, list)):
            return NotImplemented
        if len(other) != len(self.jobs):
            return False
        return all(mine == theirs for mine, theirs in zip(self, other))

    def __hash__(self) -> int:
        # Rare (results are hashed only by tests); must agree with an
        # equal tuple of materialised outcomes.
        return hash(tuple(self))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OutcomeColumns({len(self.jobs)} jobs)"

    # -- vectorised views ----------------------------------------------------------
    def job_arrays(self) -> tuple[Any, Any, Any]:
        """``(wait, runtime, penalized)`` float64 arrays, job-id order.

        The columnar fast path behind
        :meth:`SimulationResult._job_arrays`: identical values to the
        per-outcome loop (float64 subtraction is the same operation the
        reference performs per job), with the trace columns gathered
        once and cached.
        """
        import numpy as np

        trace = self._trace_arrays
        if trace is None:
            n = len(self.jobs)
            submit = np.empty(n)
            runtime = np.empty(n)
            for index, job in enumerate(self.jobs):
                submit[index] = job.submit_time
                runtime[index] = job.runtime
            trace = (submit, runtime)
            self._trace_arrays = trace
        submit, runtime = trace
        return (self.start - submit, runtime, self.finish - self.start)

    def reduced_count(self) -> int:
        """How many jobs ran below Ftop (vectorised ``reduced_jobs``)."""
        import numpy as np

        return int(np.count_nonzero(self.was_reduced))

    def gear_counts(self) -> dict[Gear, int]:
        """Jobs per first gear (vectorised ``gear_histogram``), gears with 0 omitted."""
        import numpy as np

        counts = np.bincount(self.gear_index, minlength=len(self.ladder))
        return {
            self.ladder[index]: int(count)
            for index, count in enumerate(counts)
            if count
        }

    def max_finish(self) -> float:
        """The latest finish time (vectorised ``makespan``)."""
        return float(self.finish.max())
