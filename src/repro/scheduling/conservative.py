"""Conservative backfilling (extension baseline), incremental profile.

Unlike EASY, *every* queued job holds a reservation, and a job may only
backfill if it delays no reservation at all.  The paper's frequency-
assignment loop plugs in unchanged — here the predicted wait time is
genuinely gear-dependent (a slower, longer job may only fit into a
later hole), which exercises the ``wait_time_for`` generality of
:class:`~repro.core.frequency_policy.SchedulingContext`.

Queued-job reservations are still replanned from scratch on every event
(classic "compression on early completion" behaviour), but the
*running-jobs* availability profile — which the original implementation
rebuilt with one ``reserve`` per running job per pass — is maintained
incrementally across events through the scheduler lifecycle hooks: a
starting job reserves ``[now, estimated_end)`` once, a finishing job
releases its remaining claim, and each pass merely advances the profile
origin and copies it.  The rebuild-per-pass implementation lives on as
:class:`~repro.scheduling.reference.ReferenceConservativeBackfilling`,
and a differential test pins this scheduler to it schedule-for-schedule.
"""

from __future__ import annotations

from collections import deque

from repro.cluster.profile import AvailabilityProfile
from repro.core.frequency_policy import SchedulingContext, _always_feasible
from repro.core.gears import Gear
from repro.registry import SCHEDULERS
from repro.scheduling.base import Scheduler, _RunningJob
from repro.scheduling.job import Job
from repro.sim.engine import SimulationError

__all__ = ["ConservativeBackfilling"]


class _StartProbe:
    """Memoizing earliest-start prober for one queued job in one pass.

    The BSLD policy asks for the prospective wait at up to every gear,
    and the planning loop needs the start of the chosen gear again; each
    ask used to be an independent profile scan from ``now``.  Two exact
    properties collapse that: identical durations share one answer (the
    memo), and for a fixed size a shorter window never starts later —
    so the top-gear (shortest, ``Coef == 1``) start, computed once,
    floors the scan for every slower gear without changing its result.
    """

    __slots__ = (
        "_profile", "_now", "_size", "_submit", "_requested", "_beta",
        "_coefficient", "_top_frequency", "_cache", "_floor",
    )

    def __init__(self, profile: AvailabilityProfile, job: Job, now: float,
                 coefficient, top_frequency: float) -> None:
        self._profile = profile
        self._now = now
        self._size = job.size
        self._submit = job.submit_time
        self._requested = job.requested_time
        self._beta = job.beta
        self._coefficient = coefficient
        self._top_frequency = top_frequency
        self._cache: dict[float, float] = {}
        self._floor: float | None = None

    def duration_for(self, gear: Gear) -> float:
        return self._requested * self._coefficient(gear.frequency, self._beta)

    def start_for(self, duration: float) -> float:
        cache = self._cache
        start = cache.get(duration)
        if start is not None:
            return start
        floor = self._floor
        if floor is None:
            top_duration = self._requested * self._coefficient(
                self._top_frequency, self._beta
            )
            floor = self._profile.find_start(self._now, top_duration, self._size)
            self._floor = floor
            cache[top_duration] = floor
            if duration == top_duration:
                return floor
        start = self._profile.find_start(floor, duration, self._size)
        cache[duration] = start
        return start

    def wait_for(self, gear: Gear) -> float:
        start = self.start_for(self.duration_for(gear))
        if start < self._now:
            start = self._now
        return start - self._submit


@SCHEDULERS.register("conservative")
class ConservativeBackfilling(Scheduler):
    def _reset_pass_state(self) -> None:
        #: With ``config.validate``, every pass appends
        #: ``(trigger, now, {job_id: reserved_start})`` here; tests use it
        #: to assert the conservative no-delay guarantee.
        self.plan_log: list[tuple[str, float, dict[int, float]]] = []
        #: Free-CPU profile of the *running* jobs only, kept in sync by
        #: the lifecycle hooks below.  Queued-job reservations never
        #: enter it — they are replanned on a per-pass copy.
        self._profile = AvailabilityProfile(self._pool.total_cpus)

    # -- incremental profile maintenance ----------------------------------------
    def _note_started(self, running: _RunningJob, now: float) -> None:
        if running.estimated_end > now:
            self._profile.reserve(now, running.estimated_end, running.job.size)

    def _note_finished(self, running: _RunningJob, now: float) -> None:
        # Return the unused tail of the estimate (early completion); the
        # consumed part lies in the past and is dropped by the next
        # ``advance_origin``.
        if running.estimated_end > now:
            self._profile.release(now, running.estimated_end, running.job.size)

    def _note_reestimated(self, running: _RunningJob, old_estimated_end: float, now: float) -> None:
        size = running.job.size
        if old_estimated_end > now:
            self._profile.release(now, old_estimated_end, size)
        if running.estimated_end > now:
            self._profile.reserve(now, running.estimated_end, size)

    def _sanitize_pass(self, now: float) -> None:
        super()._sanitize_pass(now)
        # The incremental running-set profile is this scheduler's extra
        # structure; a stale block summary would silently misplace
        # reservations on the next replanning pass.
        self._profile.check_consistency()

    # -- the pass ----------------------------------------------------------------
    def _schedule_pass(self, now: float) -> None:
        self._profile.advance_origin(now)
        if not self._queue:
            return
        if self._pool.free_cpus == 0 and not self._config.validate:
            # Replanning is pure computation until something can start:
            # reservations are rebuilt from scratch on every pass, so a
            # pass that provably starts nothing (no free processor, and
            # frequency policies are pure functions of their inputs)
            # leaves no trace — the next pass with free capacity replans
            # identically.  Validate mode keeps the full path so the
            # plan log covers every event.
            return
        profile = self._profile.copy()
        pending = list(self._queue)
        still_waiting: deque[Job] = deque()
        plan: dict[int, float] = {}
        coefficient = self._time_model.coefficient
        top_frequency = self._gears.top.frequency
        wq_size = len(pending) - 1
        for job in pending:
            probe = _StartProbe(profile, job, now, coefficient, top_frequency)
            gear = self._policy.select_gear(
                job,
                SchedulingContext(
                    now=now,
                    wait_time_for=probe.wait_for,
                    wq_size=wq_size,
                    # Recomputed per job: jobs started earlier in this very
                    # pass raise the utilisation later candidates observe.
                    utilization=self._utilization(),
                    must_schedule=True,  # every job gets a reservation
                    feasible=_always_feasible,
                ),
            )
            if gear is None:
                raise SimulationError(
                    f"policy {self._policy.describe()} refused job {job.job_id} "
                    f"in a must_schedule context"
                )
            duration = probe.duration_for(gear)
            start = probe.start_for(duration)
            begin = max(start, now)
            # Whether started or merely reserved, the job consumes profile
            # space so later queue entries cannot plan over it (the
            # conservative property).
            end = begin + duration
            plan[job.job_id] = begin
            if start <= now and self._pool.fits(job.size):
                started = self._start_job(now, job, gear)
                stall = started.segment_start - now
                if stall > 0.0:
                    # The start roused sleeping nodes: its true window
                    # includes the wake stall, and later queue entries in
                    # this very pass must not plan over the boot (future
                    # reservations stay wake-blind — wake state at a
                    # future start is unknowable — but every pass replans
                    # over the incremental profile, which carries the
                    # stall through estimated_end).  Keyed on the actual
                    # stall, never on estimate overruns, so zero-wake
                    # (and unclamped) schedules stay byte-identical to a
                    # sleep-free run.
                    end += stall
            else:
                still_waiting.append(job)
            profile.reserve(begin, end, job.size)
        self._queue.clear()
        self._queue.extend(still_waiting)
        if self._config.validate:
            self.plan_log.append((self._trigger, now, plan))

