"""Conservative backfilling (extension baseline).

Unlike EASY, *every* queued job holds a reservation, and a job may only
backfill if it delays no reservation at all.  The paper's frequency-
assignment loop plugs in unchanged — here the predicted wait time is
genuinely gear-dependent (a slower, longer job may only fit into a
later hole), which exercises the ``wait_time_for`` generality of
:class:`~repro.core.frequency_policy.SchedulingContext`.

The implementation replans from scratch on every event (classic
"compression on early completion" behaviour): O(Q²) profile work per
event, intended for analyses on moderate traces, not the 5000-job
sweeps.
"""

from __future__ import annotations

from collections import deque

from repro.cluster.profile import AvailabilityProfile
from repro.core.frequency_policy import SchedulingContext
from repro.core.gears import Gear
from repro.registry import SCHEDULERS
from repro.scheduling.base import Scheduler
from repro.scheduling.job import Job
from repro.sim.engine import SimulationError

__all__ = ["ConservativeBackfilling"]


@SCHEDULERS.register("conservative")
class ConservativeBackfilling(Scheduler):
    def _reset_pass_state(self) -> None:
        #: With ``config.validate``, every pass appends
        #: ``(trigger, now, {job_id: reserved_start})`` here; tests use it
        #: to assert the conservative no-delay guarantee.
        self.plan_log: list[tuple[str, float, dict[int, float]]] = []

    def _schedule_pass(self, now: float) -> None:
        if not self._queue:
            return
        profile = self._running_profile(now)
        pending = list(self._queue)
        still_waiting: deque[Job] = deque()
        plan: dict[int, float] = {}
        for job in pending:
            wq_size = len(pending) - 1
            gear = self._policy.select_gear(
                job,
                SchedulingContext(
                    now=now,
                    wait_time_for=self._wait_probe(profile, job, now),
                    wq_size=wq_size,
                    utilization=self._utilization(),
                    must_schedule=True,  # every job gets a reservation
                    feasible=lambda gear: True,
                ),
            )
            if gear is None:
                raise SimulationError(
                    f"policy {self._policy.describe()} refused job {job.job_id} "
                    f"in a must_schedule context"
                )
            duration = self._scaled_request(job, gear)
            start = profile.find_start(now, duration, job.size)
            begin = max(start, now)
            # Whether started or merely reserved, the job consumes profile
            # space so later queue entries cannot plan over it (the
            # conservative property).
            profile.reserve(begin, begin + duration, job.size)
            plan[job.job_id] = begin
            if start <= now and self._pool.fits(job.size):
                self._start_job(now, job, gear)
            else:
                still_waiting.append(job)
        self._queue.clear()
        self._queue.extend(still_waiting)
        if self._config.validate:
            self.plan_log.append((self._trigger, now, plan))

    # -- helpers ---------------------------------------------------------------
    def _running_profile(self, now: float) -> AvailabilityProfile:
        profile = AvailabilityProfile(self._pool.total_cpus, origin=now)
        for end, _job_id, size in self._estimates:
            if end > now:
                profile.reserve(now, end, size)
        return profile

    def _scaled_request(self, job: Job, gear: Gear) -> float:
        return job.requested_time * self._time_model.coefficient(gear.frequency, job.beta)

    def _wait_probe(self, profile: AvailabilityProfile, job: Job, now: float):
        def wait_for(gear: Gear) -> float:
            duration = self._scaled_request(job, gear)
            start = profile.find_start(now, duration, job.size)
            return max(start, now) - job.submit_time

        return wait_for
