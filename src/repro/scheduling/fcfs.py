"""Strict first-come-first-served scheduling (no backfilling).

The sanity baseline: jobs start in submission order only.  Useful for
quantifying how much of EASY's performance comes from backfilling and
as a lower bound in policy-comparison ablations.
"""

from __future__ import annotations

from repro.registry import SCHEDULERS
from repro.scheduling.base import Scheduler

__all__ = ["FcfsScheduler"]


@SCHEDULERS.register("fcfs")
class FcfsScheduler(Scheduler):
    """Start queue heads while they fit; never look past the head."""

    def _schedule_pass(self, now: float) -> None:
        self._start_heads(now)
