"""Job model: trace-side :class:`Job` and simulation-side :class:`JobOutcome`.

A :class:`Job` is the immutable description read from a workload trace
(SWF record or synthetic generator).  All times are seconds relative to
the trace origin; ``runtime`` and ``requested_time`` are *nominal*, i.e.
measured at the machine's top frequency — the β time model stretches
them when a lower gear is assigned.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

from repro.metrics.bsld import BSLD_THRESHOLD_SECONDS, bounded_slowdown

if TYPE_CHECKING:  # imported for annotations only; avoids package cycles
    from repro.core.gears import Gear

__all__ = ["Job", "JobOutcome", "validate_jobs"]


@dataclass(frozen=True)
class Job:
    """One rigid parallel job from a workload trace.

    Attributes
    ----------
    job_id:
        Unique identifier within the trace (SWF job number).
    submit_time:
        Arrival time in seconds from trace origin.
    runtime:
        Actual execution time at the top frequency, in seconds.
    requested_time:
        The user's runtime estimate (backfilling relies on it); jobs are
        assumed killed at this limit, so ``runtime <= requested_time``
        after normalisation.
    size:
        Number of processors (rigid allocation).
    user_id / group_id / executable:
        Optional SWF metadata (``-1`` = unknown).
    beta:
        Optional per-job CPU-boundedness for the β time model;
        ``None`` means "use the simulation's global β".
    """

    job_id: int
    submit_time: float
    runtime: float
    requested_time: float
    size: int
    user_id: int = -1
    group_id: int = -1
    executable: int = -1
    beta: float | None = None

    def __post_init__(self) -> None:
        if self.submit_time < 0.0:
            raise ValueError(f"job {self.job_id}: negative submit time {self.submit_time}")
        if self.runtime < 0.0:
            raise ValueError(f"job {self.job_id}: negative runtime {self.runtime}")
        if self.requested_time <= 0.0:
            raise ValueError(
                f"job {self.job_id}: requested_time must be positive, got {self.requested_time}"
            )
        if self.size <= 0:
            raise ValueError(f"job {self.job_id}: size must be positive, got {self.size}")
        if self.beta is not None and not 0.0 <= self.beta <= 1.0:
            raise ValueError(f"job {self.job_id}: beta must be in [0, 1], got {self.beta}")

    def clamped(self) -> "Job":
        """Copy with ``runtime`` clamped to ``requested_time`` (kill-at-limit)."""
        if self.runtime <= self.requested_time:
            return self
        return replace(self, runtime=self.requested_time)

    def with_beta(self, beta: float) -> "Job":
        return replace(self, beta=beta)

    @property
    def area(self) -> float:
        """CPU-seconds of work at the top frequency (``size * runtime``)."""
        return self.size * self.runtime


@dataclass(frozen=True)
class JobOutcome:
    """What the simulation decided and observed for one job."""

    job: Job
    start_time: float
    finish_time: float
    gear: Gear
    penalized_runtime: float
    energy: float
    was_reduced: bool

    def __post_init__(self) -> None:
        if self.start_time < self.job.submit_time - 1e-9:
            raise ValueError(
                f"job {self.job.job_id} started at {self.start_time} "
                f"before submission {self.job.submit_time}"
            )
        if self.finish_time < self.start_time - 1e-9:
            raise ValueError(
                f"job {self.job.job_id} finished at {self.finish_time} "
                f"before starting at {self.start_time}"
            )

    @property
    def wait_time(self) -> float:
        return self.start_time - self.job.submit_time

    def bsld(self, threshold: float = BSLD_THRESHOLD_SECONDS) -> float:
        """Eq. (6): penalised runtime in the numerator, nominal in the bound."""
        return bounded_slowdown(
            wait_time=self.wait_time,
            runtime=self.job.runtime,
            penalized_runtime=self.penalized_runtime,
            threshold=threshold,
        )

    @property
    def slowdown_factor(self) -> float:
        """``Coef(f)`` actually experienced (1.0 when not reduced)."""
        if self.job.runtime == 0.0:
            return 1.0
        return self.penalized_runtime / self.job.runtime


def validate_jobs(jobs: Sequence[Job], total_cpus: int) -> None:
    """Reject traces no schedule could ever run on ``total_cpus`` CPUs."""
    if total_cpus <= 0:
        raise ValueError(f"machine must have at least one CPU, got {total_cpus}")
    seen: set[int] = set()
    previous_submit = 0.0
    for job in jobs:
        if job.job_id in seen:
            raise ValueError(f"duplicate job id {job.job_id} in trace")
        seen.add(job.job_id)
        if job.size > total_cpus:
            raise ValueError(
                f"job {job.job_id} needs {job.size} CPUs but the machine has {total_cpus}"
            )
        if job.submit_time < previous_submit:
            raise ValueError(
                f"jobs not sorted by submit time at job {job.job_id} "
                f"({job.submit_time} < {previous_submit})"
            )
        previous_submit = job.submit_time
