"""Export simulation outcomes and event traces for external analysis.

``outcomes_to_csv`` writes one row per job with everything a downstream
notebook needs (waits, gears, BSLD, energy) — it is also the byte-pinned
golden-trace format.  ``event_trace_to_csv`` streams the typed lifecycle
record captured by an ``event_trace`` instrument
(:class:`~repro.instruments.EventTraceRecorder`), the structured
successor to ad-hoc per-run export code: attach the instrument via
``RunSpec.instruments`` and every execution path (facade, session,
batch, CLI) carries the trace in its result.  ``result_summary_row``
flattens a whole run into one record for sweep dataframes.
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, Mapping

from repro.metrics.bsld import BSLD_THRESHOLD_SECONDS
from repro.scheduling.result import SimulationResult

__all__ = ["outcomes_to_csv", "event_trace_to_csv", "result_summary_row"]

_FIELDS = (
    "job_id",
    "submit_time",
    "size",
    "runtime",
    "requested_time",
    "beta",
    "start_time",
    "finish_time",
    "wait_time",
    "penalized_runtime",
    "frequency_ghz",
    "voltage",
    "was_reduced",
    "bsld",
    "energy",
)


def outcomes_to_csv(
    result: SimulationResult,
    path: str | os.PathLike[str],
    *,
    bsld_threshold: float = BSLD_THRESHOLD_SECONDS,
) -> int:
    """Write per-job rows to ``path``; returns the number of rows."""
    with open(path, "w", encoding="utf-8", newline="") as stream:
        writer = csv.writer(stream)
        writer.writerow(_FIELDS)
        for outcome in result.outcomes:
            job = outcome.job
            writer.writerow(
                [
                    job.job_id,
                    f"{job.submit_time:.6f}",
                    job.size,
                    f"{job.runtime:.6f}",
                    f"{job.requested_time:.6f}",
                    "" if job.beta is None else f"{job.beta:.4f}",
                    f"{outcome.start_time:.6f}",
                    f"{outcome.finish_time:.6f}",
                    f"{outcome.wait_time:.6f}",
                    f"{outcome.penalized_runtime:.6f}",
                    f"{outcome.gear.frequency:g}",
                    f"{outcome.gear.voltage:g}",
                    int(outcome.was_reduced),
                    f"{outcome.bsld(bsld_threshold):.6f}",
                    f"{outcome.energy:.6f}",
                ]
            )
    return len(result.outcomes)


#: Union of all lifecycle-event fields, in a stable column order.
_TRACE_FIELDS = (
    "event",
    "time",
    "job_id",
    "size",
    "frequency",
    "reason",
    "wait_time",
    "runtime",
    "penalized_runtime",
    "energy",
    "was_reduced",
    "requested_time",
    "depth",
    # NodesSlept / NodesWoke (in-engine node power management)
    "count",
    "asleep",
    "delay_seconds",
)


def event_trace_to_csv(
    events: Iterable[Mapping[str, object]] | SimulationResult,
    path: str | os.PathLike[str],
) -> int:
    """Write a lifecycle event trace to ``path``; returns the row count.

    Accepts either the ``events`` rows of an
    :class:`~repro.instruments.EventTraceRecorder` report (each a
    mapping with an ``"event"`` type tag) or a whole
    :class:`SimulationResult` carrying an ``event_trace`` instrument
    report.  Columns not applicable to an event kind are left empty.
    """
    if isinstance(events, SimulationResult):
        events = events.instrument("event_trace")["events"]
    rows = 0
    with open(path, "w", encoding="utf-8", newline="") as stream:
        writer = csv.DictWriter(stream, fieldnames=_TRACE_FIELDS, restval="")
        writer.writeheader()
        for event in events:
            unknown = set(event) - set(_TRACE_FIELDS)
            if unknown:
                raise ValueError(
                    f"event row carries fields outside the trace schema: {sorted(unknown)}"
                )
            writer.writerow(event)
            rows += 1
    return rows


def result_summary_row(result: SimulationResult) -> Mapping[str, float | int | str]:
    """One flat record summarising a run (for sweep tabulation)."""
    return {
        "machine": result.machine.name,
        "total_cpus": result.machine.total_cpus,
        "policy": result.policy,
        "jobs": result.job_count,
        "avg_bsld": result.average_bsld(),
        "avg_wait": result.average_wait(),
        "reduced_jobs": result.reduced_jobs,
        "energy_idle0": result.energy.computational,
        "energy_idlelow": result.energy.total_idle_low,
        "busy_cpu_seconds": result.energy.busy_cpu_seconds,
        "idle_cpu_seconds": result.energy.idle_cpu_seconds,
        "span": result.energy.span,
        "utilization": result.utilization,
        "makespan": result.makespan,
        "events": result.events_processed,
    }
