"""repro — reproduction of *BSLD Threshold Driven Power Management
Policy for HPC Centers* (Etinski, Corbalán, Labarta, Valero; IPDPS
Workshops 2010).

The package simulates DVFS-enabled clusters running parallel-job
workloads under EASY backfilling, with the paper's BSLD-threshold
frequency-assignment policy layered on top.  Typical use:

    >>> from repro import (EasyBackfilling, BsldThresholdPolicy,
    ...                    FixedGearPolicy, Machine, load_workload)
    >>> jobs = load_workload("CTC", n_jobs=500)
    >>> machine = Machine("CTC", total_cpus=430)
    >>> baseline = EasyBackfilling(machine, FixedGearPolicy()).run(jobs)
    >>> powered = EasyBackfilling(
    ...     machine, BsldThresholdPolicy(bsld_threshold=2.0, wq_threshold=4)
    ... ).run(jobs)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.cluster.machine import Machine
from repro.core.dynamic_boost import DynamicBoostConfig
from repro.core.frequency_policy import (
    BsldThresholdPolicy,
    FixedGearPolicy,
    FrequencyPolicy,
    NO_WQ_LIMIT,
    SchedulingContext,
)
from repro.core.gears import Gear, GearSet, PAPER_GEAR_SET
from repro.core.util_policy import UtilizationTriggeredPolicy
from repro.metrics.bsld import BSLD_THRESHOLD_SECONDS, bounded_slowdown, predicted_bsld
from repro.power.energy import EnergyReport
from repro.power.model import PowerModel
from repro.power.time_model import BetaTimeModel, DEFAULT_BETA, PAPER_BETA
from repro.scheduling.base import Scheduler, SchedulerConfig
from repro.scheduling.conservative import ConservativeBackfilling
from repro.scheduling.easy import EasyBackfilling
from repro.scheduling.fcfs import FcfsScheduler
from repro.scheduling.job import Job, JobOutcome
from repro.scheduling.result import SimulationResult
from repro.workloads.generator import generate_workload, load_workload
from repro.workloads.models import PAPER_BASELINE_BSLD, TRACE_MODELS, WORKLOAD_NAMES
from repro.workloads.swf import read_swf, write_swf

__version__ = "1.0.0"

__all__ = [
    "BSLD_THRESHOLD_SECONDS",
    "BetaTimeModel",
    "BsldThresholdPolicy",
    "ConservativeBackfilling",
    "DEFAULT_BETA",
    "DynamicBoostConfig",
    "EasyBackfilling",
    "EnergyReport",
    "FcfsScheduler",
    "FixedGearPolicy",
    "FrequencyPolicy",
    "Gear",
    "GearSet",
    "Job",
    "JobOutcome",
    "Machine",
    "NO_WQ_LIMIT",
    "PAPER_BASELINE_BSLD",
    "PAPER_BETA",
    "PAPER_GEAR_SET",
    "PowerModel",
    "Scheduler",
    "SchedulerConfig",
    "SchedulingContext",
    "SimulationResult",
    "TRACE_MODELS",
    "UtilizationTriggeredPolicy",
    "WORKLOAD_NAMES",
    "bounded_slowdown",
    "generate_workload",
    "load_workload",
    "predicted_bsld",
    "read_swf",
    "write_swf",
    "__version__",
]
