"""repro — reproduction of *BSLD Threshold Driven Power Management
Policy for HPC Centers* (Etinski, Corbalán, Labarta, Valero; IPDPS
Workshops 2010).

The package simulates DVFS-enabled clusters running parallel-job
workloads under EASY backfilling, with the paper's BSLD-threshold
frequency-assignment policy layered on top.  The recommended entry
point is the :mod:`repro.api` facade:

    >>> from repro import PolicySpec, RunSpec, Simulation
    >>> baseline = Simulation(RunSpec(workload="CTC", n_jobs=500)).run()
    >>> powered = Simulation(
    ...     RunSpec(workload="CTC", n_jobs=500,
    ...             policy=PolicySpec.power_aware(2.0, 4))
    ... ).run()

The lower-level pieces (schedulers, policies, machines, workload
generators) remain importable for direct composition:

    >>> from repro import (EasyBackfilling, BsldThresholdPolicy,
    ...                    FixedGearPolicy, Machine, load_workload)
    >>> jobs = load_workload("CTC", n_jobs=500)
    >>> machine = Machine("CTC", total_cpus=430)
    >>> result = EasyBackfilling(machine, FixedGearPolicy()).run(jobs)

For *runtime* visibility and control — live telemetry, power capping,
mid-run policy hot-swap — arm a steppable session instead of calling
``run()``:

    >>> from repro import InstrumentSpec, RunSpec, Simulation
    >>> spec = RunSpec(workload="CTC", n_jobs=500,
    ...                instruments=(InstrumentSpec.of("power_telemetry"),))
    >>> session = Simulation(spec).session()
    >>> session.run_until(3600.0); result = session.result()

New components (schedulers, policy kinds, power models, workload
sources, instruments) plug in by registering on :mod:`repro.registry`;
see README.md for a quickstart and the extension walkthrough.
"""

from repro.api import DEFAULT_N_JOBS, Simulation, normalize_spec
from repro.batch import BatchReport, BatchRunner, SpecFailure
from repro.cluster.machine import Machine
from repro.cluster.power import NodePowerManager, SleepPolicy
from repro.core.dynamic_boost import DynamicBoostConfig
from repro.core.frequency_policy import (
    BsldThresholdPolicy,
    FixedGearPolicy,
    FrequencyPolicy,
    GearCappedPolicy,
    NO_WQ_LIMIT,
    SchedulingContext,
)
from repro.core.gears import Gear, GearSet, PAPER_GEAR_SET
from repro.core.util_policy import UtilizationTriggeredPolicy
from repro.experiments.config import InstrumentSpec, PolicySpec, RunSpec
from repro.experiments.runner import ExperimentRunner
from repro.instruments import (
    BsldMonitor,
    EventTraceRecorder,
    Instrument,
    InstrumentContext,
    PowerCapController,
    PowerTelemetrySampler,
)
from repro.metrics.bsld import BSLD_THRESHOLD_SECONDS, bounded_slowdown, predicted_bsld
from repro.power.energy import EnergyReport
from repro.power.model import PowerModel
from repro.registry import (
    ABLATIONS,
    ENGINES,
    FIGURES,
    INSTRUMENTS,
    POLICIES,
    POWER_MODELS,
    Registry,
    RegistryError,
    SCHEDULERS,
    SLEEP_POLICIES,
    WORKLOAD_SOURCES,
)
from repro.power.time_model import BetaTimeModel, DEFAULT_BETA, PAPER_BETA
from repro.scheduling.base import Scheduler, SchedulerConfig
from repro.scheduling.conservative import ConservativeBackfilling
from repro.scheduling.easy import EasyBackfilling
from repro.scheduling.fcfs import FcfsScheduler
from repro.scheduling.job import Job, JobOutcome
from repro.scheduling.result import InstrumentReport, ResultAggregates, SimulationResult
from repro.serialize import SpecValidationError
from repro.serve import QuotaPolicy, ReproServer, ServeClient, ServeError
from repro.session import SessionCancelled, SimulationSession
from repro.sweep import SweepManifest, SweepReport, run_sweep
from repro.workloads.generator import generate_workload, load_workload
from repro.workloads.models import PAPER_BASELINE_BSLD, TRACE_MODELS, WORKLOAD_NAMES
from repro.workloads.swf import read_swf, write_swf

__version__ = "1.3.0"

__all__ = [
    "ABLATIONS",
    "BSLD_THRESHOLD_SECONDS",
    "BatchReport",
    "BatchRunner",
    "BetaTimeModel",
    "BsldThresholdPolicy",
    "ConservativeBackfilling",
    "DEFAULT_BETA",
    "DEFAULT_N_JOBS",
    "DynamicBoostConfig",
    "ENGINES",
    "EasyBackfilling",
    "EnergyReport",
    "ExperimentRunner",
    "FIGURES",
    "FcfsScheduler",
    "BsldMonitor",
    "EventTraceRecorder",
    "FixedGearPolicy",
    "FrequencyPolicy",
    "Gear",
    "GearCappedPolicy",
    "GearSet",
    "INSTRUMENTS",
    "Instrument",
    "InstrumentContext",
    "InstrumentReport",
    "InstrumentSpec",
    "Job",
    "JobOutcome",
    "Machine",
    "NO_WQ_LIMIT",
    "NodePowerManager",
    "PAPER_BASELINE_BSLD",
    "PAPER_BETA",
    "PAPER_GEAR_SET",
    "POLICIES",
    "POWER_MODELS",
    "PolicySpec",
    "PowerCapController",
    "PowerModel",
    "PowerTelemetrySampler",
    "QuotaPolicy",
    "Registry",
    "RegistryError",
    "ReproServer",
    "ResultAggregates",
    "RunSpec",
    "SCHEDULERS",
    "SLEEP_POLICIES",
    "Scheduler",
    "SchedulerConfig",
    "SchedulingContext",
    "ServeClient",
    "ServeError",
    "SessionCancelled",
    "SleepPolicy",
    "Simulation",
    "SimulationResult",
    "SimulationSession",
    "SpecFailure",
    "SpecValidationError",
    "SweepManifest",
    "SweepReport",
    "TRACE_MODELS",
    "UtilizationTriggeredPolicy",
    "WORKLOAD_NAMES",
    "WORKLOAD_SOURCES",
    "bounded_slowdown",
    "generate_workload",
    "load_workload",
    "normalize_spec",
    "predicted_bsld",
    "read_swf",
    "run_sweep",
    "write_swf",
    "__version__",
]
