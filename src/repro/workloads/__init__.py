"""Workloads: SWF ingestion, synthetic PWA-style generators, cleaning."""

from repro.workloads.cleaning import FlurryFilter, remove_flurries
from repro.workloads.generator import generate_workload, load_workload
from repro.workloads.models import (
    ArrivalModel,
    EstimateModel,
    PAPER_BASELINE_BSLD,
    RuntimeClass,
    SizeModel,
    TRACE_MODELS,
    TraceModel,
    WORKLOAD_NAMES,
    trace_model,
)
from repro.workloads.segment import (
    busiest_segment,
    rebase_times,
    segment_load,
    select_segment,
)
from repro.workloads.stats import WorkloadStats, workload_stats
from repro.workloads.swf import SwfError, SwfHeader, read_swf, write_swf

__all__ = [
    "ArrivalModel",
    "EstimateModel",
    "FlurryFilter",
    "PAPER_BASELINE_BSLD",
    "RuntimeClass",
    "SizeModel",
    "SwfError",
    "SwfHeader",
    "TRACE_MODELS",
    "TraceModel",
    "WORKLOAD_NAMES",
    "WorkloadStats",
    "busiest_segment",
    "generate_workload",
    "load_workload",
    "read_swf",
    "rebase_times",
    "remove_flurries",
    "segment_load",
    "select_segment",
    "trace_model",
    "workload_stats",
    "write_swf",
]
