"""Descriptive statistics of a workload (used by reports and tests)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.metrics.aggregates import Summary, summarize
from repro.scheduling.job import Job

__all__ = ["WorkloadStats", "workload_stats"]


@dataclass(frozen=True)
class WorkloadStats:
    jobs: int
    serial_fraction: float
    total_area: float
    span: float
    offered_load_per_cpu: float | None
    sizes: Summary
    runtimes: Summary
    requests: Summary
    overestimation: Summary  # requested_time / runtime, runtime > 0 only

    def render(self) -> str:
        lines = [
            f"jobs: {self.jobs}",
            f"serial fraction: {self.serial_fraction:.1%}",
            f"span: {self.span / 3600.0:.1f} h",
        ]
        if self.offered_load_per_cpu is not None:
            lines.append(f"offered load: {self.offered_load_per_cpu:.2f} of capacity")
        for label, summary in (
            ("size", self.sizes),
            ("runtime [s]", self.runtimes),
            ("request [s]", self.requests),
            ("overestimation x", self.overestimation),
        ):
            lines.append(
                f"{label}: mean {summary['mean']:.1f}, p50 {summary['p50']:.1f}, "
                f"p90 {summary['p90']:.1f}, max {summary['max']:.1f}"
            )
        return "\n".join(lines)


def workload_stats(jobs: Sequence[Job], total_cpus: int | None = None) -> WorkloadStats:
    """Compute summary statistics; ``total_cpus`` enables the load figure."""
    if not jobs:
        raise ValueError("cannot summarise an empty workload")
    sizes = [float(job.size) for job in jobs]
    runtimes = [job.runtime for job in jobs]
    requests = [job.requested_time for job in jobs]
    ratios = [job.requested_time / job.runtime for job in jobs if job.runtime > 0.0]
    span = max(job.submit_time for job in jobs) - min(job.submit_time for job in jobs)
    area = sum(job.area for job in jobs)
    load = None
    if total_cpus is not None and span > 0.0:
        load = area / (span * total_cpus)
    return WorkloadStats(
        jobs=len(jobs),
        serial_fraction=sum(1 for job in jobs if job.size == 1) / len(jobs),
        total_area=area,
        span=span,
        offered_load_per_cpu=load,
        sizes=summarize(sizes),
        runtimes=summarize(runtimes),
        requests=summarize(requests),
        overestimation=summarize(ratios) if ratios else summarize([1.0]),
    )
