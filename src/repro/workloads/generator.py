"""Synthetic workload generation from :class:`~repro.workloads.models.TraceModel`.

The generator is fully deterministic given ``(model, n_jobs, seed)``:
each stochastic component (runtime class choice, runtimes, sizes,
estimates, arrival gaps) draws from its own named substream, so traces
are stable across Python versions and immune to draw-order refactoring
in unrelated components.
"""

from __future__ import annotations

import math
from random import Random

from repro.scheduling.job import Job
from repro.sim.rng import RngStreams
from repro.workloads.models import EstimateModel, SizeModel, TraceModel, trace_model

__all__ = [
    "generate_workload",
    "generate_workload_xl",
    "load_workload",
    "sample_size",
    "sample_estimate",
    "XL_MAX_UTILIZATION",
    "XL_GENERATOR_VERSION",
]

_DAY_SECONDS = 86_400.0


def _round_up(value: float, grid: float) -> float:
    return math.ceil(value / grid - 1e-9) * grid


def sample_size(model: SizeModel, machine_cpus: int, rng: Random) -> int:
    """Draw one job size according to the size model."""
    kind = rng.random()
    if kind < model.serial_fraction:
        return 1
    if kind < model.serial_fraction + model.wide_fraction:
        width = rng.uniform(model.wide_lo, model.wide_hi) * machine_cpus
        size = model.multiple_of * max(1, math.ceil(width / model.multiple_of))
        cap = max(model.min_size, int(machine_cpus * model.max_fraction))
        return max(model.min_size, min(size, cap, machine_cpus))
    raw = 2.0 ** rng.gauss(model.log2_mean, model.log2_sigma)
    if rng.random() < model.pow2_bias:
        size = 2 ** max(0, round(math.log2(max(raw, 1.0))))
    else:
        size = max(1, round(raw))
    if model.multiple_of > 1:
        size = model.multiple_of * max(1, math.ceil(size / model.multiple_of))
    cap = max(model.min_size, int(machine_cpus * model.max_fraction))
    return max(model.min_size, min(size, cap, machine_cpus))


def sample_estimate(model: EstimateModel, runtime: float, rng: Random) -> float:
    """Draw a requested time >= runtime, rounded up to the human grid."""
    if rng.random() < model.accurate_fraction:
        factor = 1.0
    else:
        factor = math.exp(rng.gauss(model.factor_log_mean, model.factor_log_sigma))
        factor = max(factor, 1.0)
    estimate = _round_up(runtime * factor, model.grid_seconds)
    estimate = min(estimate, model.max_request_seconds)
    return max(estimate, runtime, model.grid_seconds)


def _sample_runtime(trace: TraceModel, rng_class: Random, rng_runtime: Random) -> float:
    classes = trace.runtimes
    weights = trace.runtime_weights
    pick = rng_class.random()
    cumulative = 0.0
    chosen = classes[-1]
    for cls, weight in zip(classes, weights, strict=True):
        cumulative += weight
        if pick < cumulative:
            chosen = cls
            break
    runtime = math.exp(rng_runtime.gauss(chosen.log_mean, chosen.log_sigma))
    return min(max(runtime, chosen.min_seconds), chosen.cap_seconds)


def _daily_rate_factor(time_seconds: float, amplitude: float, peak_hour: float) -> float:
    """Multiplicative arrival-rate modulation, mean 1 over a day."""
    if amplitude == 0.0:
        return 1.0
    phase = 2.0 * math.pi * (time_seconds / _DAY_SECONDS - peak_hour / 24.0)
    return 1.0 + amplitude * math.cos(phase)


def generate_workload(
    trace: TraceModel,
    n_jobs: int,
    seed: int | None = None,
    *,
    utilization_override: float | None = None,
) -> list[Job]:
    """Generate ``n_jobs`` jobs for ``trace``; deterministic in the seed.

    ``utilization_override`` replaces the model's calibrated offered
    load — the knob the calibration script and the sensitivity tests
    turn.
    """
    if n_jobs <= 0:
        raise ValueError(f"n_jobs must be positive, got {n_jobs}")
    streams = RngStreams(trace.default_seed if seed is None else seed)
    rng_class = streams["runtime-class"]
    rng_runtime = streams["runtime"]
    rng_size = streams["size"]
    rng_estimate = streams["estimate"]
    rng_arrival = streams["arrival"]

    runtimes = [_sample_runtime(trace, rng_class, rng_runtime) for _ in range(n_jobs)]
    sizes = [sample_size(trace.sizes, trace.cpus, rng_size) for _ in range(n_jobs)]
    estimates = [
        sample_estimate(trace.estimates, runtime, rng_estimate) for runtime in runtimes
    ]
    # Requests are capped at the site limit; keep runtimes honest.
    runtimes = [min(runtime, estimate) for runtime, estimate in zip(runtimes, estimates, strict=True)]

    utilization = (
        trace.arrivals.utilization if utilization_override is None else utilization_override
    )
    if utilization <= 0.0:
        raise ValueError(f"utilization must be positive, got {utilization}")
    mean_area = sum(size * runtime for size, runtime in zip(sizes, runtimes, strict=True)) / n_jobs
    mean_gap = mean_area / (utilization * trace.cpus)

    shape = trace.arrivals.burst_shape
    scale = mean_gap / shape
    clock = 0.0
    submits: list[float] = []
    for _ in range(n_jobs):
        gap = rng_arrival.gammavariate(shape, scale)
        factor = _daily_rate_factor(
            clock, trace.arrivals.daily_amplitude, trace.arrivals.peak_hour
        )
        clock += gap / max(factor, 1e-6)
        submits.append(clock)
    # The burst/daily-cycle interaction biases the realised span (slow
    # phases absorb disproportionate wall-clock), so rescale submits to
    # make the offered load over the submission window exactly match
    # the requested utilization.
    span = submits[-1] - submits[0]
    if span > 0.0:
        target_span = n_jobs * mean_gap
        ratio = target_span / span
        first = submits[0]
        submits = [first * ratio + (s - first) * ratio for s in submits]

    jobs = [
        Job(
            job_id=index + 1,
            submit_time=submit,
            runtime=runtime,
            requested_time=estimate,
            size=size,
            user_id=index % 97,  # synthetic-but-plausible user mix
            group_id=index % 11,
        )
        for index, (submit, runtime, estimate, size) in enumerate(
            zip(submits, runtimes, estimates, sizes, strict=True)
        )
    ]
    return jobs


def load_workload(
    name: str,
    n_jobs: int = 5000,
    seed: int | None = None,
    *,
    utilization_override: float | None = None,
) -> list[Job]:
    """Generate the named paper workload (``CTC``, ``SDSC``, ...)."""
    return generate_workload(
        trace_model(name), n_jobs, seed, utilization_override=utilization_override
    )


# -- scale-out generation -------------------------------------------------------

#: Offered-load ceiling of the scale-out mode.  The per-model
#: ``utilization`` knobs are calibrated against 5000-job traces, where a
#: value slightly above 1 reproduces the paper's observed backlog; over
#: a million-job horizon the same overload makes the queue (and with it
#: the cost of every scheduling pass) grow without bound, which no real
#: site sustains.  Scale-out traces therefore clamp the offered load to
#: a stationary regime.
XL_MAX_UTILIZATION = 0.95

#: Bumped when the vectorised sampler changes (cache key component).
XL_GENERATOR_VERSION = 1


def generate_workload_xl(
    trace: TraceModel,
    n_jobs: int,
    seed: int | None = None,
    *,
    utilization_override: float | None = None,
    max_utilization: float = XL_MAX_UTILIZATION,
) -> list[Job]:
    """Vectorised million-job workload synthesis from a fitted model.

    Statistically matches :func:`generate_workload` (same mixtures,
    size/estimate models and arrival process) but draws every component
    as a numpy batch, making month- and year-long traces practical:
    a million jobs synthesise in seconds instead of minutes.  The
    stream layout differs from the scalar generator, so the two produce
    *different* (equally valid) traces for the same seed — the scalar
    path remains the calibrated paper reproduction; this one exists for
    scale.  Deterministic in ``(trace, n_jobs, seed)``.

    Offered load is clamped to ``max_utilization`` (see
    :data:`XL_MAX_UTILIZATION`); pass ``utilization_override`` to probe
    other regimes (still clamped).
    """
    import numpy as np

    if n_jobs <= 0:
        raise ValueError(f"n_jobs must be positive, got {n_jobs}")
    if not 0.0 < max_utilization < 1.5:
        raise ValueError(f"max_utilization must be in (0, 1.5), got {max_utilization}")
    root = np.random.SeedSequence(trace.default_seed if seed is None else seed)
    streams = [np.random.Generator(np.random.PCG64(child)) for child in root.spawn(5)]
    rng_class, rng_runtime, rng_size, rng_estimate, rng_arrival = streams

    # Runtimes: lognormal mixture, truncated per class.
    weights = np.array(trace.runtime_weights)
    classes = rng_class.choice(len(weights), size=n_jobs, p=weights)
    runtimes = np.empty(n_jobs)
    for index, runtime_class in enumerate(trace.runtimes):
        mask = classes == index
        count = int(mask.sum())
        if not count:
            continue
        draws = np.exp(rng_runtime.normal(runtime_class.log_mean, runtime_class.log_sigma, count))
        runtimes[mask] = np.clip(draws, runtime_class.min_seconds, runtime_class.cap_seconds)

    # Sizes: serial spike + wide jobs + discretised lognormal body.
    sizes_model = trace.sizes
    cpus = trace.cpus
    kind = rng_size.random(n_jobs)
    serial = kind < sizes_model.serial_fraction
    wide = (~serial) & (kind < sizes_model.serial_fraction + sizes_model.wide_fraction)
    body = ~(serial | wide)
    sizes = np.ones(n_jobs, dtype=np.int64)
    if wide.any():
        width = rng_size.uniform(sizes_model.wide_lo, sizes_model.wide_hi, int(wide.sum())) * cpus
        snapped = sizes_model.multiple_of * np.maximum(
            1, np.ceil(width / sizes_model.multiple_of)
        )
        sizes[wide] = snapped.astype(np.int64)
    if body.any():
        count = int(body.sum())
        raw = np.exp2(rng_size.normal(sizes_model.log2_mean, sizes_model.log2_sigma, count))
        rounded = np.maximum(1, np.round(raw)).astype(np.int64)
        pow2 = np.exp2(
            np.maximum(0, np.round(np.log2(np.maximum(raw, 1.0))))
        ).astype(np.int64)
        use_pow2 = rng_size.random(count) < sizes_model.pow2_bias
        chosen = np.where(use_pow2, pow2, rounded)
        if sizes_model.multiple_of > 1:
            chosen = sizes_model.multiple_of * np.maximum(
                1, -(-chosen // sizes_model.multiple_of)
            )
        sizes[body] = chosen
    cap = max(sizes_model.min_size, int(cpus * sizes_model.max_fraction))
    sizes[~serial] = np.clip(sizes[~serial], sizes_model.min_size, min(cap, cpus))

    # Estimates: accurate fraction + lognormal overestimation, grid-rounded.
    est = trace.estimates
    factor = np.exp(rng_estimate.normal(est.factor_log_mean, est.factor_log_sigma, n_jobs))
    factor = np.maximum(factor, 1.0)
    factor[rng_estimate.random(n_jobs) < est.accurate_fraction] = 1.0
    estimates = np.ceil(runtimes * factor / est.grid_seconds - 1e-9) * est.grid_seconds
    estimates = np.minimum(estimates, est.max_request_seconds)
    estimates = np.maximum(np.maximum(estimates, runtimes), est.grid_seconds)
    runtimes = np.minimum(runtimes, estimates)  # requests stay honest caps

    # Arrivals: Gamma gaps under the clamped offered load, with the
    # daily cycle applied sequentially (cheap scalar pass).
    utilization = (
        trace.arrivals.utilization if utilization_override is None else utilization_override
    )
    if utilization <= 0.0:
        raise ValueError(f"utilization must be positive, got {utilization}")
    utilization = min(utilization, max_utilization)
    mean_area = float(np.mean(sizes * runtimes))
    mean_gap = mean_area / (utilization * cpus)
    shape = trace.arrivals.burst_shape
    gaps = rng_arrival.gamma(shape, mean_gap / shape, n_jobs)
    amplitude = trace.arrivals.daily_amplitude
    if amplitude == 0.0:
        submits_arr = np.cumsum(gaps)
        submits = submits_arr.tolist()
    else:
        peak = trace.arrivals.peak_hour
        clock = 0.0
        submits = []
        append = submits.append
        two_pi_over_day = 2.0 * math.pi / _DAY_SECONDS
        phase_offset = 2.0 * math.pi * peak / 24.0
        cos = math.cos
        for gap in gaps.tolist():
            factor_now = 1.0 + amplitude * cos(clock * two_pi_over_day - phase_offset)
            clock += gap / max(factor_now, 1e-6)
            append(clock)
    span = submits[-1] - submits[0]
    if span > 0.0:
        ratio = (n_jobs * mean_gap) / span
        submits = [s * ratio for s in submits]

    # Bulk Job materialisation (validated inputs; see jobs_from_columns).
    from repro.workloads.cache import jobs_from_columns

    columns = {
        "job_id": np.arange(1, n_jobs + 1, dtype=np.int64),
        "size": sizes,
        "user_id": np.arange(n_jobs, dtype=np.int64) % 97,
        "group_id": np.arange(n_jobs, dtype=np.int64) % 11,
        "executable": np.full(n_jobs, -1, dtype=np.int64),
        "submit_time": np.asarray(submits, dtype=np.float64),
        "runtime": runtimes,
        "requested_time": estimates,
        "beta": np.full(n_jobs, np.nan),
    }
    return jobs_from_columns(columns)
