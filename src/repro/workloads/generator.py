"""Synthetic workload generation from :class:`~repro.workloads.models.TraceModel`.

The generator is fully deterministic given ``(model, n_jobs, seed)``:
each stochastic component (runtime class choice, runtimes, sizes,
estimates, arrival gaps) draws from its own named substream, so traces
are stable across Python versions and immune to draw-order refactoring
in unrelated components.
"""

from __future__ import annotations

import math
from random import Random

from repro.scheduling.job import Job
from repro.sim.rng import RngStreams
from repro.workloads.models import EstimateModel, SizeModel, TraceModel, trace_model

__all__ = ["generate_workload", "load_workload", "sample_size", "sample_estimate"]

_DAY_SECONDS = 86_400.0


def _round_up(value: float, grid: float) -> float:
    return math.ceil(value / grid - 1e-9) * grid


def sample_size(model: SizeModel, machine_cpus: int, rng: Random) -> int:
    """Draw one job size according to the size model."""
    kind = rng.random()
    if kind < model.serial_fraction:
        return 1
    if kind < model.serial_fraction + model.wide_fraction:
        width = rng.uniform(model.wide_lo, model.wide_hi) * machine_cpus
        size = model.multiple_of * max(1, math.ceil(width / model.multiple_of))
        cap = max(model.min_size, int(machine_cpus * model.max_fraction))
        return max(model.min_size, min(size, cap, machine_cpus))
    raw = 2.0 ** rng.gauss(model.log2_mean, model.log2_sigma)
    if rng.random() < model.pow2_bias:
        size = 2 ** max(0, round(math.log2(max(raw, 1.0))))
    else:
        size = max(1, round(raw))
    if model.multiple_of > 1:
        size = model.multiple_of * max(1, math.ceil(size / model.multiple_of))
    cap = max(model.min_size, int(machine_cpus * model.max_fraction))
    return max(model.min_size, min(size, cap, machine_cpus))


def sample_estimate(model: EstimateModel, runtime: float, rng: Random) -> float:
    """Draw a requested time >= runtime, rounded up to the human grid."""
    if rng.random() < model.accurate_fraction:
        factor = 1.0
    else:
        factor = math.exp(rng.gauss(model.factor_log_mean, model.factor_log_sigma))
        factor = max(factor, 1.0)
    estimate = _round_up(runtime * factor, model.grid_seconds)
    estimate = min(estimate, model.max_request_seconds)
    return max(estimate, runtime, model.grid_seconds)


def _sample_runtime(trace: TraceModel, rng_class: Random, rng_runtime: Random) -> float:
    classes = trace.runtimes
    weights = trace.runtime_weights
    pick = rng_class.random()
    cumulative = 0.0
    chosen = classes[-1]
    for cls, weight in zip(classes, weights):
        cumulative += weight
        if pick < cumulative:
            chosen = cls
            break
    runtime = math.exp(rng_runtime.gauss(chosen.log_mean, chosen.log_sigma))
    return min(max(runtime, chosen.min_seconds), chosen.cap_seconds)


def _daily_rate_factor(time_seconds: float, amplitude: float, peak_hour: float) -> float:
    """Multiplicative arrival-rate modulation, mean 1 over a day."""
    if amplitude == 0.0:
        return 1.0
    phase = 2.0 * math.pi * (time_seconds / _DAY_SECONDS - peak_hour / 24.0)
    return 1.0 + amplitude * math.cos(phase)


def generate_workload(
    trace: TraceModel,
    n_jobs: int,
    seed: int | None = None,
    *,
    utilization_override: float | None = None,
) -> list[Job]:
    """Generate ``n_jobs`` jobs for ``trace``; deterministic in the seed.

    ``utilization_override`` replaces the model's calibrated offered
    load — the knob the calibration script and the sensitivity tests
    turn.
    """
    if n_jobs <= 0:
        raise ValueError(f"n_jobs must be positive, got {n_jobs}")
    streams = RngStreams(trace.default_seed if seed is None else seed)
    rng_class = streams["runtime-class"]
    rng_runtime = streams["runtime"]
    rng_size = streams["size"]
    rng_estimate = streams["estimate"]
    rng_arrival = streams["arrival"]

    runtimes = [_sample_runtime(trace, rng_class, rng_runtime) for _ in range(n_jobs)]
    sizes = [sample_size(trace.sizes, trace.cpus, rng_size) for _ in range(n_jobs)]
    estimates = [
        sample_estimate(trace.estimates, runtime, rng_estimate) for runtime in runtimes
    ]
    # Requests are capped at the site limit; keep runtimes honest.
    runtimes = [min(runtime, estimate) for runtime, estimate in zip(runtimes, estimates)]

    utilization = (
        trace.arrivals.utilization if utilization_override is None else utilization_override
    )
    if utilization <= 0.0:
        raise ValueError(f"utilization must be positive, got {utilization}")
    mean_area = sum(size * runtime for size, runtime in zip(sizes, runtimes)) / n_jobs
    mean_gap = mean_area / (utilization * trace.cpus)

    shape = trace.arrivals.burst_shape
    scale = mean_gap / shape
    clock = 0.0
    submits: list[float] = []
    for _ in range(n_jobs):
        gap = rng_arrival.gammavariate(shape, scale)
        factor = _daily_rate_factor(
            clock, trace.arrivals.daily_amplitude, trace.arrivals.peak_hour
        )
        clock += gap / max(factor, 1e-6)
        submits.append(clock)
    # The burst/daily-cycle interaction biases the realised span (slow
    # phases absorb disproportionate wall-clock), so rescale submits to
    # make the offered load over the submission window exactly match
    # the requested utilization.
    span = submits[-1] - submits[0]
    if span > 0.0:
        target_span = n_jobs * mean_gap
        ratio = target_span / span
        first = submits[0]
        submits = [first * ratio + (s - first) * ratio for s in submits]

    jobs = [
        Job(
            job_id=index + 1,
            submit_time=submit,
            runtime=runtime,
            requested_time=estimate,
            size=size,
            user_id=index % 97,  # synthetic-but-plausible user mix
            group_id=index % 11,
        )
        for index, (submit, runtime, estimate, size) in enumerate(
            zip(submits, runtimes, estimates, sizes)
        )
    ]
    return jobs


def load_workload(
    name: str,
    n_jobs: int = 5000,
    seed: int | None = None,
    *,
    utilization_override: float | None = None,
) -> list[Job]:
    """Generate the named paper workload (``CTC``, ``SDSC``, ...)."""
    return generate_workload(
        trace_model(name), n_jobs, seed, utilization_override=utilization_override
    )
