"""Standard Workload Format (SWF) reader and writer.

SWF is the Parallel Workload Archive's trace format: `;`-prefixed
header comments followed by one record per line with 18 whitespace-
separated integer fields.  The paper's five workloads are distributed
in this format; this module lets real archive traces drop straight into
the simulator, while :mod:`repro.workloads.generator` produces
format-identical synthetic substitutes.

Field reference (1-based, per the archive definition):

 1 job number          7 used memory          13 group id
 2 submit time         8 requested processors 14 executable number
 3 wait time           9 requested time       15 queue number
 4 run time           10 requested memory     16 partition number
 5 allocated procs    11 status               17 preceding job
 6 average CPU time   12 user id              18 think time
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, TextIO

from repro.scheduling.job import Job

__all__ = ["SwfHeader", "SwfError", "read_swf", "iter_swf", "write_swf", "jobs_from_records"]

_FIELD_COUNT = 18


class SwfError(ValueError):
    """A malformed SWF line or header."""


@dataclass
class SwfHeader:
    """Parsed `; Key: Value` header comments plus free-form comment lines."""

    fields: dict[str, str] = field(default_factory=dict)
    comments: list[str] = field(default_factory=list)

    @property
    def max_procs(self) -> int | None:
        raw = self.fields.get("MaxProcs")
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError as exc:
            raise SwfError(f"non-integer MaxProcs header: {raw!r}") from exc

    def add_line(self, line: str) -> None:
        body = line.lstrip(";").strip()
        if ":" in body:
            key, _, value = body.partition(":")
            key = key.strip()
            if key and " " not in key:
                self.fields[key] = value.strip()
                return
        self.comments.append(body)


def _parse_record(line: str, line_number: int) -> tuple[int, ...]:
    parts = line.split()
    if len(parts) != _FIELD_COUNT:
        raise SwfError(
            f"line {line_number}: expected {_FIELD_COUNT} fields, got {len(parts)}"
        )
    try:
        # SWF is an integer format; a few archive traces carry floats in
        # time columns, so parse via float and round.
        return tuple(int(round(float(p))) for p in parts)
    except ValueError as exc:
        raise SwfError(f"line {line_number}: non-numeric field in {line!r}") from exc


def iter_swf(stream: TextIO) -> Iterator[tuple[SwfHeader, tuple[int, ...]]]:
    """Yield ``(header_so_far, record)`` for each data line."""
    header = SwfHeader()
    for line_number, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            header.add_line(line)
            continue
        yield header, _parse_record(line, line_number)


def jobs_from_records(
    records: Iterable[tuple[int, ...]],
    *,
    drop_invalid: bool = True,
    clamp_runtime: bool = True,
) -> list[Job]:
    """Convert raw SWF records to :class:`Job` objects.

    ``drop_invalid`` skips records no scheduler could run (non-positive
    size, negative runtime, cancelled-before-start entries); with it off
    such records raise :class:`SwfError`.
    """
    jobs: list[Job] = []
    for record in records:
        (
            job_id,
            submit,
            _wait,
            runtime,
            allocated,
            _avg_cpu,
            _used_mem,
            requested_procs,
            requested_time,
            _req_mem,
            _status,
            user_id,
            group_id,
            executable,
            _queue,
            _partition,
            _preceding,
            _think,
        ) = record
        size = allocated if allocated > 0 else requested_procs
        if runtime < 0 or size <= 0 or submit < 0:
            if drop_invalid:
                continue
            raise SwfError(
                f"job {job_id}: unusable record (runtime={runtime}, size={size}, "
                f"submit={submit})"
            )
        request = requested_time if requested_time > 0 else max(runtime, 1)
        job = Job(
            job_id=job_id,
            submit_time=float(submit),
            runtime=float(runtime),
            requested_time=float(request),
            size=size,
            user_id=user_id,
            group_id=group_id,
            executable=executable,
        )
        if clamp_runtime:
            job = job.clamped()
        jobs.append(job)
    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    return jobs


def read_swf(
    path: str | os.PathLike[str],
    *,
    drop_invalid: bool = True,
    clamp_runtime: bool = True,
) -> tuple[SwfHeader, list[Job]]:
    """Read a trace file; returns the parsed header and the job list."""
    header = SwfHeader()
    records: list[tuple[int, ...]] = []
    with open(path, "r", encoding="utf-8") as stream:
        # ``header`` deliberately rebinds to the (shared, progressively
        # populated) header object; its final state is returned below.
        for header, record in iter_swf(stream):
            records.append(record)
    jobs = jobs_from_records(records, drop_invalid=drop_invalid, clamp_runtime=clamp_runtime)
    return header, jobs


def write_swf(
    path: str | os.PathLike[str],
    jobs: Iterable[Job],
    *,
    max_procs: int | None = None,
    extra_header: dict[str, str] | None = None,
) -> None:
    """Write jobs as a well-formed SWF file (round-trips with read_swf)."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write("; Generated by the repro package\n")
        stream.write("; Version: 2.2\n")
        if max_procs is not None:
            stream.write(f"; MaxProcs: {max_procs}\n")
        for key, value in (extra_header or {}).items():
            stream.write(f"; {key}: {value}\n")
        for job in jobs:
            record = (
                job.job_id,
                int(round(job.submit_time)),
                -1,  # wait time: unknown before simulation
                int(round(job.runtime)),
                job.size,
                -1,  # average CPU time
                -1,  # used memory
                job.size,
                int(round(job.requested_time)),
                -1,  # requested memory
                1,  # status: completed
                job.user_id,
                job.group_id,
                job.executable,
                -1,  # queue
                -1,  # partition
                -1,  # preceding job
                -1,  # think time
            )
            stream.write(" ".join(str(value) for value in record) + "\n")
