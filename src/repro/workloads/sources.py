"""Workload sources: where a :class:`~repro.experiments.config.RunSpec` gets its jobs.

A *source* resolves ``RunSpec.workload`` into a concrete job list plus
the machine it was logged on.  Two sources ship by default:

* ``"synthetic"`` — the calibrated generators behind the paper's five
  workloads (``workload`` names a :data:`~repro.workloads.models.TRACE_MODELS`
  entry);
* ``"swf"`` — a Standard Workload Format file (``workload`` is the
  path; CPUs come from the ``MaxProcs`` header or the widest job).

Additional sources register themselves on
:data:`repro.registry.WORKLOAD_SOURCES` under a new name.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.registry import WORKLOAD_SOURCES
from repro.scheduling.job import Job
from repro.workloads.generator import generate_workload
from repro.workloads.models import trace_model
from repro.workloads.swf import read_swf

__all__ = ["WorkloadBundle", "synthetic_source", "swf_source"]


@dataclass(frozen=True)
class WorkloadBundle:
    """A resolved workload: the jobs plus the machine they belong to."""

    jobs: tuple[Job, ...]
    machine_name: str
    total_cpus: int

    def __post_init__(self) -> None:
        if self.total_cpus <= 0:
            raise ValueError(
                f"workload {self.machine_name!r}: total_cpus must be positive, "
                f"got {self.total_cpus}"
            )


@WORKLOAD_SOURCES.register("synthetic")
def synthetic_source(workload: str, n_jobs: int, seed: int | None) -> WorkloadBundle:
    """Generate one of the paper's calibrated synthetic traces."""
    model = trace_model(workload)
    jobs = generate_workload(model, n_jobs, seed)
    return WorkloadBundle(
        jobs=tuple(jobs), machine_name=model.name, total_cpus=model.cpus
    )


@WORKLOAD_SOURCES.register("swf")
def swf_source(workload: str, n_jobs: int, seed: int | None) -> WorkloadBundle:
    """Read a Standard Workload Format trace; ``workload`` is the file path.

    ``n_jobs`` truncates the trace (the whole file is used when it is
    shorter); ``seed`` is ignored — SWF traces are already concrete.
    """
    header, jobs = read_swf(workload)
    if not jobs:
        raise ValueError(f"SWF trace {workload!r} contains no usable jobs")
    if n_jobs and n_jobs < len(jobs):
        jobs = jobs[:n_jobs]
    cpus = header.max_procs or max(job.size for job in jobs)
    name = os.path.splitext(os.path.basename(str(workload)))[0] or "swf"
    return WorkloadBundle(jobs=tuple(jobs), machine_name=name, total_cpus=cpus)
