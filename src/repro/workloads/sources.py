"""Workload sources: where a :class:`~repro.experiments.config.RunSpec` gets its jobs.

A *source* resolves ``RunSpec.workload`` into a concrete job list plus
the machine it was logged on.  Two sources ship by default:

* ``"synthetic"`` — the calibrated generators behind the paper's five
  workloads (``workload`` names a :data:`~repro.workloads.models.TRACE_MODELS`
  entry);
* ``"synthetic-xl"`` — the vectorised scale-out generator for the same
  models: million-job traces at a sustainable (clamped) offered load,
  optionally cached on disk via ``REPRO_WORKLOAD_CACHE_DIR``;
* ``"swf"`` — a Standard Workload Format file (``workload`` is the
  path; CPUs come from the ``MaxProcs`` header or the widest job).
  Parses go through the binary ``.npz`` sidecar cache
  (:mod:`repro.workloads.cache`; disable with
  ``REPRO_WORKLOAD_CACHE=0``).

Additional sources register themselves on
:data:`repro.registry.WORKLOAD_SOURCES` under a new name.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.registry import WORKLOAD_SOURCES
from repro.scheduling.job import Job
from repro.workloads.cache import cached_jobs, read_swf_cached
from repro.workloads.generator import (
    XL_GENERATOR_VERSION,
    generate_workload,
    generate_workload_xl,
)
from repro.workloads.models import trace_model

__all__ = ["WorkloadBundle", "synthetic_source", "synthetic_xl_source", "swf_source"]


@dataclass(frozen=True)
class WorkloadBundle:
    """A resolved workload: the jobs plus the machine they belong to."""

    jobs: tuple[Job, ...]
    machine_name: str
    total_cpus: int

    def __post_init__(self) -> None:
        if self.total_cpus <= 0:
            raise ValueError(
                f"workload {self.machine_name!r}: total_cpus must be positive, "
                f"got {self.total_cpus}"
            )


@WORKLOAD_SOURCES.register("synthetic")
def synthetic_source(workload: str, n_jobs: int, seed: int | None) -> WorkloadBundle:
    """Generate one of the paper's calibrated synthetic traces."""
    model = trace_model(workload)
    jobs = generate_workload(model, n_jobs, seed)
    return WorkloadBundle(
        jobs=tuple(jobs), machine_name=model.name, total_cpus=model.cpus
    )


@WORKLOAD_SOURCES.register("synthetic-xl")
def synthetic_xl_source(workload: str, n_jobs: int, seed: int | None) -> WorkloadBundle:
    """Scale-out synthesis of a paper workload (vectorised, load-clamped).

    Set ``REPRO_WORKLOAD_CACHE_DIR`` to memoise generated traces on
    disk — the benchmark and CI do, so million-job traces are drawn
    once per machine.
    """
    model = trace_model(workload)
    cache_dir = os.environ.get("REPRO_WORKLOAD_CACHE_DIR") or None
    jobs = cached_jobs(
        cache_dir,
        {
            "kind": "synthetic-xl",
            "generator": XL_GENERATOR_VERSION,
            "workload": model.name,
            "n_jobs": n_jobs,
            "seed": seed,
        },
        lambda: generate_workload_xl(model, n_jobs, seed),
    )
    return WorkloadBundle(
        jobs=tuple(jobs), machine_name=model.name, total_cpus=model.cpus
    )


@WORKLOAD_SOURCES.register("swf")
def swf_source(workload: str, n_jobs: int, seed: int | None) -> WorkloadBundle:
    """Read a Standard Workload Format trace; ``workload`` is the file path.

    ``n_jobs`` truncates the trace (the whole file is used when it is
    shorter); ``seed`` is ignored — SWF traces are already concrete.
    Parsed columns are cached in a binary sidecar (see
    :mod:`repro.workloads.cache`).
    """
    header, jobs = read_swf_cached(workload)
    if not jobs:
        raise ValueError(f"SWF trace {workload!r} contains no usable jobs")
    if n_jobs and n_jobs < len(jobs):
        jobs = jobs[:n_jobs]
    cpus = header.max_procs or max(job.size for job in jobs)
    name = os.path.splitext(os.path.basename(str(workload)))[0] or "swf"
    return WorkloadBundle(jobs=tuple(jobs), machine_name=name, total_cpus=cpus)
