"""Statistical models of the paper's five Parallel Workload Archive logs.

The reproduction has no network access to the archive, so each log is
replaced by a seeded synthetic generator whose knobs encode what the
paper (§3.2, Table 1) and the archive documentation state about the
system:

* **CTC-430** (IBM SP2, Cornell): many jobs, low degree of parallelism,
  sizeable serial fraction; baseline avg BSLD 4.66.
* **SDSC-128** (IBM SP2, San Diego): small machine under chronic
  overload — the paper's hardest workload (avg BSLD 24.91); fewer
  serial jobs than CTC, similar runtimes.
* **SDSC-Blue-1152** (Blue Horizon): allocation granularity of 8-CPU
  nodes, no serial jobs; avg BSLD 5.15.
* **LLNL-Thunder-4008**: large machine devoted to many small/medium and
  mostly short jobs; avg BSLD 1.00 (essentially no queueing, most jobs
  below the 600 s BSLD bound).
* **LLNL-Atlas-9216**: large parallel (capability) jobs; avg BSLD 1.08.

The ``utilization`` knob of each arrival model is *calibrated* so the
no-DVFS EASY baseline reproduces the paper's Table 1 average BSLD on
the default 5000-job trace (``repro-sim table 1`` prints paper vs
measured); everything else is fixed from the qualitative description.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "RuntimeClass",
    "SizeModel",
    "EstimateModel",
    "ArrivalModel",
    "TraceModel",
    "TRACE_MODELS",
    "WORKLOAD_NAMES",
    "PAPER_BASELINE_BSLD",
    "trace_model",
]

#: Table 1 of the paper: average BSLD without DVFS, the calibration target.
PAPER_BASELINE_BSLD = {
    "CTC": 4.66,
    "SDSC": 24.91,
    "SDSCBlue": 5.15,
    "LLNLThunder": 1.0,
    "LLNLAtlas": 1.08,
}


@dataclass(frozen=True)
class RuntimeClass:
    """One lognormal component of the runtime mixture.

    ``log_mean``/``log_sigma`` parameterise ``exp(N(log_mean, log_sigma))``
    seconds, truncated to ``[min_seconds, cap_seconds]``.
    """

    weight: float
    log_mean: float
    log_sigma: float
    cap_seconds: float
    min_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.weight <= 0.0:
            raise ValueError(f"class weight must be positive, got {self.weight}")
        if self.log_sigma < 0.0:
            raise ValueError(f"log_sigma must be non-negative, got {self.log_sigma}")
        if not 0.0 < self.min_seconds <= self.cap_seconds:
            raise ValueError(
                f"need 0 < min_seconds <= cap_seconds, got "
                f"[{self.min_seconds}, {self.cap_seconds}]"
            )


@dataclass(frozen=True)
class SizeModel:
    """Job-size distribution: serial spike + discretised lognormal body.

    Parallel sizes are drawn as ``2**N(log2_mean, log2_sigma)`` rounded
    to an integer; with probability ``pow2_bias`` the draw is rounded to
    the nearest power of two (the well-documented PWA size artifact),
    then snapped up to ``multiple_of`` granularity and clamped to
    ``[min_size, max_fraction * machine]``.
    """

    serial_fraction: float
    log2_mean: float
    log2_sigma: float
    min_size: int = 1
    multiple_of: int = 1
    max_fraction: float = 0.5
    pow2_bias: float = 0.6
    #: Fraction of jobs that are *wide* (capability) jobs spanning
    #: ``[wide_lo, wide_hi]`` of the machine.  A wide job at the queue
    #: head blocks everything behind its EASY reservation -- the
    #: dominant source of high BSLD at moderate utilisation in the real
    #: archive logs.
    wide_fraction: float = 0.0
    wide_lo: float = 0.25
    wide_hi: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError(f"serial_fraction must be in [0,1], got {self.serial_fraction}")
        if self.min_size < 1:
            raise ValueError(f"min_size must be >= 1, got {self.min_size}")
        if self.multiple_of < 1:
            raise ValueError(f"multiple_of must be >= 1, got {self.multiple_of}")
        if not 0.0 < self.max_fraction <= 1.0:
            raise ValueError(f"max_fraction must be in (0,1], got {self.max_fraction}")
        if not 0.0 <= self.pow2_bias <= 1.0:
            raise ValueError(f"pow2_bias must be in [0,1], got {self.pow2_bias}")
        if self.serial_fraction > 0.0 and self.min_size > 1:
            raise ValueError("a serial fraction is incompatible with min_size > 1")
        if not 0.0 <= self.wide_fraction <= 1.0 - self.serial_fraction:
            raise ValueError(
                f"wide_fraction must fit beside serial_fraction, got {self.wide_fraction}"
            )
        if not 0.0 < self.wide_lo <= self.wide_hi <= 1.0:
            raise ValueError(
                f"need 0 < wide_lo <= wide_hi <= 1, got [{self.wide_lo}, {self.wide_hi}]"
            )


@dataclass(frozen=True)
class EstimateModel:
    """User runtime-estimate (requested time) model, after Mu'alem & Feitelson.

    A fraction of users request (almost) exactly the runtime; the rest
    multiply by an overestimation factor drawn lognormally.  Estimates
    are then rounded *up* to a human grid (15 min by default) and capped
    at the site limit ``max_request_seconds``; the runtime itself is
    capped to the same limit so requests stay honest upper bounds.
    """

    accurate_fraction: float = 0.15
    factor_log_mean: float = 1.0  # exp(1) ~ 2.7x median overestimation
    factor_log_sigma: float = 0.9
    grid_seconds: float = 900.0
    max_request_seconds: float = 18.0 * 3600.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.accurate_fraction <= 1.0:
            raise ValueError(
                f"accurate_fraction must be in [0,1], got {self.accurate_fraction}"
            )
        if self.grid_seconds <= 0.0:
            raise ValueError(f"grid_seconds must be positive, got {self.grid_seconds}")
        if self.max_request_seconds <= 0.0:
            raise ValueError(
                f"max_request_seconds must be positive, got {self.max_request_seconds}"
            )


@dataclass(frozen=True)
class ArrivalModel:
    """Bursty arrival process with a daily cycle.

    Inter-arrival gaps are Gamma distributed (``burst_shape < 1`` gives
    a coefficient of variation above 1, i.e. bursts), with the
    instantaneous rate modulated by a cosine daily cycle peaking at
    ``peak_hour``.  The mean gap is derived from ``utilization``: the
    offered load ``utilization * cpus`` CPU-seconds per second.
    """

    utilization: float
    burst_shape: float = 0.45
    daily_amplitude: float = 0.4
    peak_hour: float = 14.0

    def __post_init__(self) -> None:
        if not 0.0 < self.utilization < 1.5:
            raise ValueError(f"utilization must be in (0, 1.5), got {self.utilization}")
        if self.burst_shape <= 0.0:
            raise ValueError(f"burst_shape must be positive, got {self.burst_shape}")
        if not 0.0 <= self.daily_amplitude < 1.0:
            raise ValueError(
                f"daily_amplitude must be in [0, 1), got {self.daily_amplitude}"
            )
        if not 0.0 <= self.peak_hour < 24.0:
            raise ValueError(f"peak_hour must be in [0, 24), got {self.peak_hour}")


@dataclass(frozen=True)
class TraceModel:
    """Everything needed to synthesise one system's workload."""

    name: str
    cpus: int
    sizes: SizeModel
    runtimes: tuple[RuntimeClass, ...]
    estimates: EstimateModel = field(default_factory=EstimateModel)
    arrivals: ArrivalModel = field(default_factory=lambda: ArrivalModel(utilization=0.7))
    default_seed: int = 2010

    def __post_init__(self) -> None:
        if self.cpus <= 0:
            raise ValueError(f"model {self.name!r}: cpus must be positive, got {self.cpus}")
        if not self.runtimes:
            raise ValueError(f"model {self.name!r}: needs at least one runtime class")
        if self.sizes.min_size > self.cpus:
            raise ValueError(f"model {self.name!r}: min_size exceeds machine size")

    @property
    def runtime_weights(self) -> tuple[float, ...]:
        total = sum(c.weight for c in self.runtimes)
        return tuple(c.weight / total for c in self.runtimes)


# --- the five systems --------------------------------------------------------

_SHORT = RuntimeClass(weight=1.0, log_mean=5.0, log_sigma=1.1, cap_seconds=600.0, min_seconds=10.0)
_MEDIUM = RuntimeClass(weight=1.0, log_mean=7.8, log_sigma=1.0, cap_seconds=6.0 * 3600.0)
_LONG = RuntimeClass(weight=1.0, log_mean=9.6, log_sigma=0.7, cap_seconds=18.0 * 3600.0)


def _classes(short: float, medium: float, long: float) -> tuple[RuntimeClass, ...]:
    return (
        RuntimeClass(short, _SHORT.log_mean, _SHORT.log_sigma, _SHORT.cap_seconds, _SHORT.min_seconds),
        RuntimeClass(medium, _MEDIUM.log_mean, _MEDIUM.log_sigma, _MEDIUM.cap_seconds, _MEDIUM.min_seconds),
        RuntimeClass(long, _LONG.log_mean, _LONG.log_sigma, _LONG.cap_seconds, _LONG.min_seconds),
    )


TRACE_MODELS: dict[str, TraceModel] = {
    "CTC": TraceModel(
        name="CTC",
        cpus=430,
        sizes=SizeModel(
            serial_fraction=0.33,
            log2_mean=3.1,
            log2_sigma=1.6,
            max_fraction=0.75,
            pow2_bias=0.55,
            wide_fraction=0.08,
            wide_lo=0.3,
            wide_hi=0.75,
        ),
        runtimes=_classes(short=0.30, medium=0.45, long=0.25),
        estimates=EstimateModel(max_request_seconds=18.0 * 3600.0),
        arrivals=ArrivalModel(utilization=0.7773, burst_shape=0.45),
        default_seed=430,
    ),
    "SDSC": TraceModel(
        name="SDSC",
        cpus=128,
        sizes=SizeModel(
            serial_fraction=0.18,
            log2_mean=3.0,
            log2_sigma=1.5,
            max_fraction=1.0,
            pow2_bias=0.65,
        ),
        runtimes=_classes(short=0.28, medium=0.44, long=0.28),
        estimates=EstimateModel(max_request_seconds=36.0 * 3600.0),
        arrivals=ArrivalModel(utilization=1.0781, burst_shape=0.35),
        default_seed=128,
    ),
    "SDSCBlue": TraceModel(
        name="SDSCBlue",
        cpus=1152,
        sizes=SizeModel(
            serial_fraction=0.0,
            log2_mean=5.1,
            log2_sigma=1.3,
            min_size=8,
            multiple_of=8,
            max_fraction=0.75,
            pow2_bias=0.7,
            wide_fraction=0.06,
            wide_lo=0.3,
            wide_hi=0.75,
        ),
        runtimes=_classes(short=0.32, medium=0.45, long=0.23),
        estimates=EstimateModel(max_request_seconds=36.0 * 3600.0),
        arrivals=ArrivalModel(utilization=0.8248, burst_shape=0.45),
        default_seed=1152,
    ),
    "LLNLThunder": TraceModel(
        name="LLNLThunder",
        cpus=4008,
        sizes=SizeModel(
            serial_fraction=0.05,
            log2_mean=3.8,
            log2_sigma=1.4,
            max_fraction=0.25,
            pow2_bias=0.6,
        ),
        runtimes=(
            RuntimeClass(weight=0.65, log_mean=4.8, log_sigma=1.0, cap_seconds=600.0, min_seconds=5.0),
            RuntimeClass(weight=0.30, log_mean=7.4, log_sigma=0.8, cap_seconds=2.0 * 3600.0),
            RuntimeClass(weight=0.05, log_mean=8.6, log_sigma=0.5, cap_seconds=6.0 * 3600.0),
        ),
        estimates=EstimateModel(max_request_seconds=12.0 * 3600.0),
        # High but smooth load: the real Thunder queue was essentially
        # always empty (Table 3: 0 s average wait) although the machine
        # ran hot -- exactly the regime in which DVFS stretching is what
        # creates queueing (the feedback the paper describes in 5.1).
        arrivals=ArrivalModel(utilization=0.90, burst_shape=4.0, daily_amplitude=0.05),
        default_seed=4008,
    ),
    "LLNLAtlas": TraceModel(
        name="LLNLAtlas",
        cpus=9216,
        sizes=SizeModel(
            serial_fraction=0.02,
            log2_mean=7.3,
            log2_sigma=1.5,
            min_size=1,
            multiple_of=8,
            max_fraction=0.5,
            pow2_bias=0.7,
        ),
        runtimes=_classes(short=0.25, medium=0.45, long=0.30),
        estimates=EstimateModel(max_request_seconds=24.0 * 3600.0),
        arrivals=ArrivalModel(utilization=0.5336, burst_shape=0.5),
        default_seed=9216,
    ),
}

WORKLOAD_NAMES: tuple[str, ...] = tuple(TRACE_MODELS)


def trace_model(name: str) -> TraceModel:
    """Look up a model by workload name (raises with the known names)."""
    try:
        return TRACE_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(WORKLOAD_NAMES)}"
        ) from None
