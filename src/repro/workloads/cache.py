"""Binary workload cache: parse SWF once, load the columns ever after.

Text SWF parsing is O(trace) Python per run — a million-job trace costs
tens of seconds before the first event is simulated.  This module
stores a parsed trace as a compressed ``.npz`` of parallel numpy
columns next to the source file (or in an explicit cache directory), so
subsequent loads are a single binary read plus bulk ``Job``
materialisation.

Keys and invalidation
---------------------

Every cache entry embeds a key built from

* the SHA-256 of the source file's bytes (so *any* edit to the trace
  invalidates the entry),
* the cleaning configuration (``drop_invalid`` / ``clamp_runtime`` —
  entries for different cleanings coexist),
* :data:`CACHE_VERSION` (bumped whenever the column layout changes).

A mismatched, corrupt or unreadable entry is silently re-parsed and
rewritten; deleting the ``.npz`` is always safe.  Set the environment
variable ``REPRO_WORKLOAD_CACHE=0`` to disable the cache entirely.

:func:`cached_jobs` provides the same mechanism for *generated*
workloads keyed by an explicit string (model, length, seed) — the
benchmark harness uses it so million-job synthetic traces are drawn
once per machine, not once per run.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path
from typing import Callable, Sequence

from repro.scheduling.job import Job
from repro.workloads.swf import SwfHeader, read_swf

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = [
    "CACHE_VERSION",
    "cache_enabled",
    "swf_cache_path",
    "read_swf_cached",
    "jobs_to_columns",
    "jobs_from_columns",
    "cached_jobs",
]

#: Bump when the column layout or Job semantics change.
CACHE_VERSION = 1

_FLOAT_FIELDS = ("submit_time", "runtime", "requested_time", "beta")
_INT_FIELDS = ("job_id", "size", "user_id", "group_id", "executable")


def cache_enabled() -> bool:
    """Whether the on-disk workload cache is active (env kill switch)."""
    return _np is not None and os.environ.get("REPRO_WORKLOAD_CACHE", "1") != "0"


def swf_cache_path(path: str | os.PathLike[str]) -> Path:
    """The sidecar cache file for an SWF trace (``<name>.swf.cache.npz``)."""
    return Path(f"{os.fspath(path)}.cache.npz")


# -- column codec ---------------------------------------------------------------
def jobs_to_columns(jobs: Sequence[Job]) -> dict:
    """Encode jobs as parallel numpy columns (``beta=None`` → NaN)."""
    assert _np is not None
    columns = {
        "job_id": _np.array([job.job_id for job in jobs], dtype=_np.int64),
        "size": _np.array([job.size for job in jobs], dtype=_np.int64),
        "user_id": _np.array([job.user_id for job in jobs], dtype=_np.int64),
        "group_id": _np.array([job.group_id for job in jobs], dtype=_np.int64),
        "executable": _np.array([job.executable for job in jobs], dtype=_np.int64),
        "submit_time": _np.array([job.submit_time for job in jobs], dtype=_np.float64),
        "runtime": _np.array([job.runtime for job in jobs], dtype=_np.float64),
        "requested_time": _np.array([job.requested_time for job in jobs], dtype=_np.float64),
        "beta": _np.array(
            [float("nan") if job.beta is None else job.beta for job in jobs],
            dtype=_np.float64,
        ),
    }
    return columns


def jobs_from_columns(columns) -> list[Job]:
    """Materialise jobs from parallel columns.

    Bulk ``tolist`` conversion amortises the numpy-scalar boxing; the
    jobs themselves go through the normal validated constructor — a
    ``__dict__``-stuffing fast path was measured ~1.8x quicker but
    doubles per-object memory by defeating CPython's key-sharing
    instance dicts, the wrong trade at a million jobs.
    """
    betas = columns["beta"].tolist()
    return [
        Job(
            job_id=job_id,
            submit_time=submit,
            runtime=runtime,
            requested_time=requested,
            size=size,
            user_id=user,
            group_id=group,
            executable=executable,
            beta=None if beta != beta else beta,  # NaN encodes None
        )
        for job_id, submit, runtime, requested, size, user, group, executable, beta in zip(
            columns["job_id"].tolist(),
            columns["submit_time"].tolist(),
            columns["runtime"].tolist(),
            columns["requested_time"].tolist(),
            columns["size"].tolist(),
            columns["user_id"].tolist(),
            columns["group_id"].tolist(),
            columns["executable"].tolist(),
            betas,
            strict=True,
        )
    ]


# -- entry I/O ------------------------------------------------------------------
def _write_entry(path: Path, key: str, jobs: Sequence[Job], meta: dict) -> None:
    """Atomically persist one cache entry; failures are non-fatal."""
    assert _np is not None
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_suffix(f".tmp.{os.getpid()}.npz")
        payload = jobs_to_columns(jobs)
        payload["key"] = _np.array(key)
        payload["meta"] = _np.array(json.dumps(meta))
        with open(temp, "wb") as stream:
            _np.savez_compressed(stream, **payload)
        os.replace(temp, path)
    except OSError:
        pass  # read-only checkout, full disk, ...: caching is best-effort


def _read_entry(path: Path, key: str) -> tuple[list[Job], dict] | None:
    assert _np is not None
    try:
        with _np.load(path, allow_pickle=False) as data:
            if str(data["key"]) != key:
                return None
            meta = json.loads(str(data["meta"]))
            jobs = jobs_from_columns(data)
        return jobs, meta
    except (OSError, KeyError, ValueError, json.JSONDecodeError, zipfile.BadZipFile):
        return None  # missing or corrupt entries are re-parsed


def _file_sha256(path: str | os.PathLike[str]) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        for chunk in iter(lambda: stream.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def read_swf_cached(
    path: str | os.PathLike[str],
    *,
    drop_invalid: bool = True,
    clamp_runtime: bool = True,
    cache: bool | None = None,
    cache_path: str | os.PathLike[str] | None = None,
) -> tuple[SwfHeader, list[Job]]:
    """:func:`repro.workloads.swf.read_swf` through the binary cache.

    ``cache=None`` follows :func:`cache_enabled`; ``cache=False`` always
    parses the text.  ``cache_path`` overrides the sidecar location.
    """
    use_cache = cache_enabled() if cache is None else (cache and _np is not None)
    if not use_cache:
        return read_swf(path, drop_invalid=drop_invalid, clamp_runtime=clamp_runtime)
    entry = Path(cache_path) if cache_path is not None else swf_cache_path(path)
    key = json.dumps(
        {
            "version": CACHE_VERSION,
            "kind": "swf",
            "sha256": _file_sha256(path),
            "drop_invalid": drop_invalid,
            "clamp_runtime": clamp_runtime,
        },
        sort_keys=True,
    )
    cached = _read_entry(entry, key)
    if cached is not None:
        jobs, meta = cached
        header = SwfHeader(fields=dict(meta.get("fields", {})), comments=list(meta.get("comments", [])))
        return header, jobs
    header, jobs = read_swf(path, drop_invalid=drop_invalid, clamp_runtime=clamp_runtime)
    _write_entry(entry, key, jobs, {"fields": header.fields, "comments": header.comments})
    return header, jobs


def cached_jobs(
    cache_dir: str | os.PathLike[str] | None,
    key_parts: dict,
    builder: Callable[[], list[Job]],
) -> list[Job]:
    """Memoise a generated workload on disk under ``cache_dir``.

    ``key_parts`` must uniquely determine the builder's output (model
    name, job count, seed, generator version ...).  With ``cache_dir``
    unset (or numpy missing) the builder runs directly.
    """
    if cache_dir is None or not cache_enabled():
        return builder()
    key = json.dumps({"version": CACHE_VERSION, **key_parts}, sort_keys=True)
    digest = hashlib.sha256(key.encode()).hexdigest()[:32]
    entry = Path(cache_dir) / f"workload_{digest}.npz"
    cached = _read_entry(entry, key)
    if cached is not None:
        return cached[0]
    jobs = builder()
    _write_entry(entry, key, jobs, {})
    return jobs
