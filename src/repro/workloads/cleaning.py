"""Trace cleaning: flurry removal in the spirit of the PWA cleaned logs.

The paper simulates *cleaned* archive traces: "a cleaned trace does not
contain flurries of activity by individual users which may not be
representative of normal usage."  When ingesting raw SWF logs this
module provides the analogous filter: bursts of many near-identical
submissions by one user are thinned to a representative sample.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.scheduling.job import Job

__all__ = ["FlurryFilter", "remove_flurries"]


@dataclass(frozen=True)
class FlurryFilter:
    """Parameters of the flurry heuristic.

    A *flurry* is more than ``max_burst`` jobs from the same user inside
    a sliding ``window_seconds`` window whose sizes and runtimes are
    each within ``similarity`` relative tolerance of the burst's first
    job.  From every detected flurry only each ``keep_every``-th job
    survives.
    """

    window_seconds: float = 3600.0
    max_burst: int = 20
    similarity: float = 0.2
    keep_every: int = 10

    def __post_init__(self) -> None:
        if self.window_seconds <= 0.0:
            raise ValueError(f"window_seconds must be positive, got {self.window_seconds}")
        if self.max_burst < 1:
            raise ValueError(f"max_burst must be >= 1, got {self.max_burst}")
        if not 0.0 <= self.similarity <= 1.0:
            raise ValueError(f"similarity must be in [0, 1], got {self.similarity}")
        if self.keep_every < 1:
            raise ValueError(f"keep_every must be >= 1, got {self.keep_every}")

    def similar(self, a: Job, b: Job) -> bool:
        def close(x: float, y: float) -> bool:
            scale = max(abs(x), abs(y), 1.0)
            return abs(x - y) <= self.similarity * scale

        return a.size == b.size and close(a.runtime, b.runtime)


def remove_flurries(jobs: Sequence[Job], config: FlurryFilter | None = None) -> list[Job]:
    """Return ``jobs`` with per-user flurries thinned (order preserved).

    Jobs with unknown users (``user_id < 0``) are never treated as
    flurries — there is no identity to attribute the burst to.
    """
    config = config or FlurryFilter()
    recent: dict[int, deque[Job]] = {}
    burst_position: dict[int, int] = {}
    kept: list[Job] = []
    for job in jobs:
        if job.user_id < 0:
            kept.append(job)
            continue
        window = recent.setdefault(job.user_id, deque())
        while window and job.submit_time - window[0].submit_time > config.window_seconds:
            window.popleft()
        similar_count = sum(1 for other in window if config.similar(job, other))
        window.append(job)
        if similar_count >= config.max_burst:
            position = burst_position.get(job.user_id, 0)
            burst_position[job.user_id] = position + 1
            if position % config.keep_every != 0:
                continue
        else:
            burst_position[job.user_id] = 0
        kept.append(job)
    return kept
