"""Trace segment selection (the paper's §3.2 methodology).

The paper simulates 5000-job *segments* of much longer archive logs
(e.g. "jobs 20K-25K" of CTC), chosen "so that they do not have many
jobs removed".  These helpers reproduce that workflow for users feeding
real SWF logs into the simulator.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.scheduling.job import Job

__all__ = ["select_segment", "rebase_times", "busiest_segment", "segment_load"]


def rebase_times(jobs: Sequence[Job]) -> list[Job]:
    """Shift submit times so the first job arrives at t=0."""
    if not jobs:
        return []
    origin = min(job.submit_time for job in jobs)
    if origin == 0.0:
        return list(jobs)
    return [replace(job, submit_time=job.submit_time - origin) for job in jobs]


def select_segment(
    jobs: Sequence[Job],
    start_index: int,
    count: int,
    *,
    rebase: bool = True,
    renumber: bool = False,
) -> list[Job]:
    """Jobs ``start_index .. start_index + count`` of a longer trace.

    ``rebase`` shifts submit times to start at zero (the simulator does
    not require it but normalised spans compare more easily);
    ``renumber`` rewrites job ids to ``1..count`` (useful when merging
    segments from different logs).
    """
    if start_index < 0:
        raise ValueError(f"start_index must be >= 0, got {start_index}")
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if start_index + count > len(jobs):
        raise ValueError(
            f"segment [{start_index}, {start_index + count}) exceeds the "
            f"{len(jobs)}-job trace"
        )
    segment = list(jobs[start_index : start_index + count])
    if rebase:
        segment = rebase_times(segment)
    if renumber:
        segment = [replace(job, job_id=index + 1) for index, job in enumerate(segment)]
    return segment


def segment_load(jobs: Sequence[Job], total_cpus: int) -> float:
    """Offered load (CPU-seconds per capacity-second) over the segment span."""
    if not jobs:
        raise ValueError("empty segment")
    if total_cpus <= 0:
        raise ValueError(f"total_cpus must be positive, got {total_cpus}")
    span = max(job.submit_time for job in jobs) - min(job.submit_time for job in jobs)
    if span <= 0.0:
        return float("inf")
    return sum(job.area for job in jobs) / (span * total_cpus)


def busiest_segment(
    jobs: Sequence[Job],
    count: int,
    total_cpus: int,
    *,
    stride: int | None = None,
) -> tuple[int, list[Job]]:
    """The ``count``-job window with the highest offered load.

    Returns ``(start_index, segment)``; the segment is rebased.  The
    scan uses ``stride`` (default ``count // 10``) between candidate
    windows, which is plenty for the smooth load profiles of real logs.
    """
    if count > len(jobs):
        raise ValueError(f"trace has {len(jobs)} jobs, cannot take {count}")
    step = stride if stride is not None else max(count // 10, 1)
    if step <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    best_index = 0
    best_load = -1.0
    for start in range(0, len(jobs) - count + 1, step):
        window = jobs[start : start + count]
        load = segment_load(window, total_cpus)
        if load > best_load:
            best_load = load
            best_index = start
    return best_index, select_segment(jobs, best_index, count)
