"""JSON round-trips for :class:`RunSpec` and :class:`SimulationResult`.

The codecs are exact: every float survives ``dumps``/``loads`` bit-for-bit
(Python serialises floats with their shortest round-tripping repr), so
``spec_from_dict(spec_to_dict(s)) == s`` and
``result_from_dict(result_to_dict(r)) == r`` hold with plain ``==``.
:class:`~repro.batch.BatchRunner` builds its on-disk result cache and
its worker protocol on top of these, and :func:`spec_key` derives the
cache key from the canonical spec JSON.
"""

from __future__ import annotations

import hashlib
import json
from math import isinf
from typing import Any

from repro.cluster.machine import Machine
from repro.cluster.power import SleepPolicy
from repro.core.gears import Gear, GearSet
from repro.experiments.config import InstrumentSpec, PolicySpec, RunSpec, _tupled
from repro.power.energy import EnergyReport, SleepEnergyBreakdown
from repro.scheduling.job import Job, JobOutcome
from repro.scheduling.result import (
    InstrumentReport,
    ResultAggregates,
    SimulationResult,
    TimelinePoint,
)

__all__ = [
    "SpecValidationError",
    "jsonable",
    "spec_to_dict",
    "spec_from_dict",
    "spec_json",
    "spec_key",
    "result_to_dict",
    "result_from_dict",
]

#: Bumped whenever the serialised layout changes; cached results with a
#: different version are ignored rather than misread.
#: v2: specs gained ``instruments``, results gained instrument reports.
#: v3: specs gained ``sleep`` (in-engine node power-down); energy
#:     reports gained the ``sleep`` breakdown.
#: v4: results gained ``aggregates`` (the aggregates-only result mode;
#:     ``None`` for full results, whose layout is unchanged otherwise).
FORMAT_VERSION = 4


class SpecValidationError(ValueError):
    """A submitted document failed to decode.

    ``path`` locates the offending field inside the JSON document —
    ``"policy.kind"``, ``"instruments[2].name"``, ``"sleep"`` — with
    ``""`` standing for the document root, and ``reason`` says what is
    wrong with it.  The decoders below raise this (never a bare
    ``KeyError``) on malformed input, so callers holding untrusted
    documents — the serve daemon's 400 responses in particular — can
    point at the exact field.
    """

    def __init__(self, path: str, reason: str) -> None:
        super().__init__(f"{path or 'document root'}: {reason}")
        self.path = path
        self.reason = reason


def _join(path: str, key: str) -> str:
    return f"{path}.{key}" if path else key


def _require_mapping(data: Any, path: str) -> dict[str, Any]:
    if not isinstance(data, dict):
        raise SpecValidationError(
            path, f"expected an object, got {type(data).__name__}"
        )
    return data


def _require_list(data: Any, path: str) -> list[Any]:
    if not isinstance(data, list):
        raise SpecValidationError(path, f"expected an array, got {type(data).__name__}")
    return data


def _get(data: Any, key: str, path: str) -> Any:
    """Mandatory ``data[key]``, raising a located error on absence."""
    mapping = _require_mapping(data, path)
    try:
        return mapping[key]
    except KeyError:
        raise SpecValidationError(_join(path, key), "missing required field") from None


def jsonable(value: Any) -> Any:
    """Recursively coerce tuples to lists so a value JSON-round-trips.

    The encode-side inverse of
    :func:`repro.experiments.config._tupled` (which re-tuples on load
    for hashability); instrument reports and spec params both flow
    through this pair.
    """
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, dict):
        return {key: jsonable(item) for key, item in value.items()}
    return value


def _params_to_json(params: tuple[tuple[str, Any], ...]) -> list[list[Any]]:
    """Instrument params as JSON ([[key, value], ...]; tuples become lists)."""
    return [[key, jsonable(value)] for key, value in params]


def _params_from_json(data: list[list[Any]]) -> tuple[tuple[str, Any], ...]:
    return tuple((key, _tupled(value)) for key, value in data)


# -- RunSpec ------------------------------------------------------------------
def _sleep_to_dict(sleep: SleepPolicy | None) -> dict[str, float | None] | None:
    if sleep is None:
        return None
    after = sleep.sleep_after_seconds
    return {
        # ``inf`` (the never-sleeps configuration) maps to null so the
        # emitted document stays strict JSON — json.dump would otherwise
        # write the non-standard ``Infinity`` token.
        "sleep_after_seconds": None if isinf(after) else after,
        "sleep_power_fraction": sleep.sleep_power_fraction,
        "wake_energy_idle_seconds": sleep.wake_energy_idle_seconds,
        "wake_seconds": sleep.wake_seconds,
    }


def _sleep_from_dict(
    data: dict[str, Any] | None, path: str = "sleep"
) -> SleepPolicy | None:
    if data is None:
        return None
    fields = dict(_require_mapping(data, path))
    if fields.get("sleep_after_seconds") is None:
        fields["sleep_after_seconds"] = float("inf")
    try:
        return SleepPolicy(**fields)
    except (TypeError, ValueError) as exc:
        raise SpecValidationError(path, str(exc)) from exc


def spec_to_dict(spec: RunSpec) -> dict[str, Any]:
    """A JSON-ready dict capturing every identity field of ``spec``.

    ``engine`` is deliberately omitted: lanes are pinned byte-identical,
    so the canonical JSON — and therefore :func:`spec_key` — must not
    depend on which core executes the run (cached and served results
    are shared across lanes).
    """
    return {
        "workload": spec.workload,
        "policy": {
            "kind": spec.policy.kind,
            "bsld_threshold": spec.policy.bsld_threshold,
            "wq_threshold": spec.policy.wq_threshold,
            "strict_top_backfill": spec.policy.strict_top_backfill,
            "fixed_frequency": spec.policy.fixed_frequency,
            "boost_trigger": spec.policy.boost_trigger,
        },
        "n_jobs": spec.n_jobs,
        "seed": spec.seed,
        "size_factor": spec.size_factor,
        "beta": spec.beta,
        "scheduler": spec.scheduler,
        "power_model": spec.power_model,
        "source": spec.source,
        "record_timeline": spec.record_timeline,
        "instruments": [
            {"name": inst.name, "params": _params_to_json(inst.params)}
            for inst in spec.instruments
        ],
        "sleep": _sleep_to_dict(spec.sleep),
    }


def spec_from_dict(data: dict[str, Any]) -> RunSpec:
    """Decode :func:`spec_to_dict` output back into a :class:`RunSpec`.

    Malformed documents raise :class:`SpecValidationError` locating the
    offending field — never a bare ``KeyError``/``TypeError``.

    An optional ``engine`` key selects the simulation core (it is
    accepted on input for submit documents even though
    :func:`spec_to_dict` never emits it — the lane is execution
    metadata, not run identity).
    """
    engine = data.get("engine") if isinstance(data, dict) else None
    if engine is not None:
        from repro.registry import ENGINES  # deferred: keeps import cycles out

        if not isinstance(engine, str) or engine not in ENGINES:
            raise SpecValidationError(
                "engine",
                f"unknown engine {engine!r}; available: {', '.join(ENGINES.names())}",
            )
    policy = _require_mapping(_get(data, "policy", ""), "policy")
    try:
        decoded_policy = PolicySpec(
            kind=_get(policy, "kind", "policy"),
            bsld_threshold=_get(policy, "bsld_threshold", "policy"),
            wq_threshold=_get(policy, "wq_threshold", "policy"),
            strict_top_backfill=_get(policy, "strict_top_backfill", "policy"),
            fixed_frequency=_get(policy, "fixed_frequency", "policy"),
            boost_trigger=_get(policy, "boost_trigger", "policy"),
        )
    except SpecValidationError:
        raise
    except (TypeError, ValueError) as exc:
        raise SpecValidationError("policy", str(exc)) from exc
    instruments: list[InstrumentSpec] = []
    raw_instruments = _require_list(data.get("instruments", []), "instruments")
    for index, inst in enumerate(raw_instruments):
        inst_path = f"instruments[{index}]"
        params = _require_list(
            _get(inst, "params", inst_path), _join(inst_path, "params")
        )
        try:
            instruments.append(
                InstrumentSpec(
                    name=_get(inst, "name", inst_path),
                    params=_params_from_json(params),
                )
            )
        except SpecValidationError:
            raise
        except (TypeError, ValueError) as exc:
            raise SpecValidationError(inst_path, str(exc)) from exc
    try:
        return RunSpec(
            workload=_get(data, "workload", ""),
            policy=decoded_policy,
            n_jobs=_get(data, "n_jobs", ""),
            seed=_get(data, "seed", ""),
            size_factor=_get(data, "size_factor", ""),
            beta=_get(data, "beta", ""),
            scheduler=_get(data, "scheduler", ""),
            power_model=_get(data, "power_model", ""),
            source=_get(data, "source", ""),
            record_timeline=_get(data, "record_timeline", ""),
            instruments=tuple(instruments),
            sleep=_sleep_from_dict(data.get("sleep"), "sleep"),
            engine=engine,
        )
    except SpecValidationError:
        raise
    except (TypeError, ValueError) as exc:
        raise SpecValidationError("", str(exc)) from exc


def spec_json(spec: RunSpec) -> str:
    """Canonical (sorted-key, compact) JSON for ``spec``."""
    return json.dumps(spec_to_dict(spec), sort_keys=True, separators=(",", ":"))


def spec_key(spec: RunSpec) -> str:
    """A stable filesystem-safe cache key for ``spec``."""
    return hashlib.sha256(spec_json(spec).encode("utf-8")).hexdigest()[:32]


# -- SimulationResult ---------------------------------------------------------
def _gear_to_dict(gear: Gear) -> dict[str, float]:
    return {"frequency": gear.frequency, "voltage": gear.voltage}


def _gear_from_dict(data: dict[str, float], path: str = "") -> Gear:
    return Gear(
        frequency=_get(data, "frequency", path), voltage=_get(data, "voltage", path)
    )


def _job_to_dict(job: Job) -> dict[str, Any]:
    return {
        "job_id": job.job_id,
        "submit_time": job.submit_time,
        "runtime": job.runtime,
        "requested_time": job.requested_time,
        "size": job.size,
        "user_id": job.user_id,
        "group_id": job.group_id,
        "executable": job.executable,
        "beta": job.beta,
    }


def _job_from_dict(data: dict[str, Any], path: str = "") -> Job:
    try:
        return Job(**_require_mapping(data, path))
    except (TypeError, ValueError) as exc:
        raise SpecValidationError(path, str(exc)) from exc


def _outcome_to_dict(outcome: JobOutcome) -> dict[str, Any]:
    return {
        "job": _job_to_dict(outcome.job),
        "start_time": outcome.start_time,
        "finish_time": outcome.finish_time,
        "gear": _gear_to_dict(outcome.gear),
        "penalized_runtime": outcome.penalized_runtime,
        "energy": outcome.energy,
        "was_reduced": outcome.was_reduced,
    }


def _outcome_from_dict(data: dict[str, Any], path: str = "") -> JobOutcome:
    return JobOutcome(
        job=_job_from_dict(_get(data, "job", path), _join(path, "job")),
        start_time=_get(data, "start_time", path),
        finish_time=_get(data, "finish_time", path),
        gear=_gear_from_dict(_get(data, "gear", path), _join(path, "gear")),
        penalized_runtime=_get(data, "penalized_runtime", path),
        energy=_get(data, "energy", path),
        was_reduced=_get(data, "was_reduced", path),
    )


def _aggregates_to_dict(aggregates: ResultAggregates | None) -> dict[str, Any] | None:
    if aggregates is None:
        return None
    return {
        "job_count": aggregates.job_count,
        "bsld_threshold": aggregates.bsld_threshold,
        "average_bsld": aggregates.average_bsld,
        "bsld_p50": aggregates.bsld_p50,
        "bsld_p90": aggregates.bsld_p90,
        "bsld_p99": aggregates.bsld_p99,
        "bsld_max": aggregates.bsld_max,
        "average_wait": aggregates.average_wait,
        "reduced_jobs": aggregates.reduced_jobs,
        "makespan": aggregates.makespan,
        "gear_histogram": [
            [_gear_to_dict(gear), count] for gear, count in aggregates.gear_histogram
        ],
    }


def _aggregates_from_dict(
    data: dict[str, Any] | None, path: str = "aggregates"
) -> ResultAggregates | None:
    if data is None:
        return None
    fields = dict(_require_mapping(data, path))
    hist_path = _join(path, "gear_histogram")
    entries = _require_list(_get(fields, "gear_histogram", path), hist_path)
    try:
        fields["gear_histogram"] = tuple(
            (_gear_from_dict(gear, f"{hist_path}[{index}]"), count)
            for index, (gear, count) in enumerate(entries)
        )
        return ResultAggregates(**fields)
    except SpecValidationError:
        raise
    except (TypeError, ValueError) as exc:
        raise SpecValidationError(path, str(exc)) from exc


def result_to_dict(result: SimulationResult) -> dict[str, Any]:
    """A JSON-ready dict capturing the result (full or aggregates-only)."""
    return {
        "version": FORMAT_VERSION,
        "machine": {
            "name": result.machine.name,
            "total_cpus": result.machine.total_cpus,
            "gears": [_gear_to_dict(g) for g in result.machine.gears],
        },
        "policy": result.policy,
        "outcomes": [_outcome_to_dict(o) for o in result.outcomes],
        "energy": {
            "computational": result.energy.computational,
            "idle": result.energy.idle,
            "busy_cpu_seconds": result.energy.busy_cpu_seconds,
            "idle_cpu_seconds": result.energy.idle_cpu_seconds,
            "span": result.energy.span,
            "sleep": (
                None
                if result.energy.sleep is None
                else {
                    "idle_awake_cpu_seconds": result.energy.sleep.idle_awake_cpu_seconds,
                    "asleep_cpu_seconds": result.energy.sleep.asleep_cpu_seconds,
                    "wake_count": result.energy.sleep.wake_count,
                    "sleep_power_fraction": result.energy.sleep.sleep_power_fraction,
                    "wake_energy_idle_seconds": result.energy.sleep.wake_energy_idle_seconds,
                    "wake_stall_cpu_seconds": result.energy.sleep.wake_stall_cpu_seconds,
                    "wake_delay_seconds_total": result.energy.sleep.wake_delay_seconds_total,
                    "wake_delayed_jobs": result.energy.sleep.wake_delayed_jobs,
                }
            ),
        },
        "events_processed": result.events_processed,
        "timeline": [
            {"time": p.time, "queued_jobs": p.queued_jobs, "busy_cpus": p.busy_cpus}
            for p in result.timeline
        ],
        "instruments": [
            {"name": report.name, "summary": report.summary}
            for report in result.instruments
        ],
        "aggregates": _aggregates_to_dict(result.aggregates),
    }


def _energy_from_dict(data: dict[str, Any], path: str = "energy") -> EnergyReport:
    mapping = _require_mapping(data, path)
    sleep = mapping.get("sleep")
    if sleep is not None:
        _require_mapping(sleep, _join(path, "sleep"))
    try:
        return EnergyReport(
            **{key: value for key, value in mapping.items() if key != "sleep"},
            sleep=None if sleep is None else SleepEnergyBreakdown(**sleep),
        )
    except (TypeError, ValueError) as exc:
        raise SpecValidationError(path, str(exc)) from exc


def _timeline_from_list(data: list[Any]) -> tuple[TimelinePoint, ...]:
    points = []
    for index, point in enumerate(data):
        path = f"timeline[{index}]"
        try:
            points.append(TimelinePoint(**_require_mapping(point, path)))
        except SpecValidationError:
            raise
        except TypeError as exc:
            raise SpecValidationError(path, str(exc)) from exc
    return tuple(points)


def result_from_dict(data: dict[str, Any]) -> SimulationResult:
    """Decode :func:`result_to_dict` output.

    Raises :class:`SpecValidationError` (a ``ValueError``) locating the
    offending field on malformed documents; a plain ``ValueError`` on a
    format-version mismatch.
    """
    version = _require_mapping(data, "").get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {version!r} (expected {FORMAT_VERSION})"
        )
    machine = _require_mapping(_get(data, "machine", ""), "machine")
    gears = _require_list(_get(machine, "gears", "machine"), "machine.gears")
    outcomes = _require_list(_get(data, "outcomes", ""), "outcomes")
    reports = _require_list(data.get("instruments", []), "instruments")
    try:
        decoded_machine = Machine(
            name=_get(machine, "name", "machine"),
            total_cpus=_get(machine, "total_cpus", "machine"),
            gears=GearSet(
                [
                    _gear_from_dict(g, f"machine.gears[{index}]")
                    for index, g in enumerate(gears)
                ]
            ),
        )
    except SpecValidationError:
        raise
    except (TypeError, ValueError) as exc:
        raise SpecValidationError("machine", str(exc)) from exc
    try:
        return SimulationResult(
            machine=decoded_machine,
            policy=_get(data, "policy", ""),
            outcomes=tuple(
                _outcome_from_dict(o, f"outcomes[{index}]")
                for index, o in enumerate(outcomes)
            ),
            energy=_energy_from_dict(_get(data, "energy", ""), "energy"),
            events_processed=_get(data, "events_processed", ""),
            timeline=_timeline_from_list(
                _require_list(_get(data, "timeline", ""), "timeline")
            ),
            instruments=tuple(
                InstrumentReport(
                    name=_get(report, "name", f"instruments[{index}]"),
                    summary=_get(report, "summary", f"instruments[{index}]"),
                )
                for index, report in enumerate(reports)
            ),
            aggregates=_aggregates_from_dict(data.get("aggregates"), "aggregates"),
        )
    except SpecValidationError:
        raise
    except (TypeError, ValueError) as exc:
        raise SpecValidationError("", str(exc)) from exc
