"""Parallel batch execution of :class:`RunSpec` lists.

:class:`BatchRunner` fans a list of specs out over a
``concurrent.futures.ProcessPoolExecutor`` and returns results in the
*input* order, deduplicating identical specs.  Because every simulation
is deterministic in its spec, the parallel results are identical — byte
for byte, via :mod:`repro.serialize` — to a serial run of the same
list; a test pins this.

Workloads are resolved **once, in the parent**: every distinct
``(source, workload, n_jobs, seed)`` bundle is materialised before the
pool spawns and shared with the workers through fork-inherited memory
(:data:`_WORKLOAD_STORE`), so an 8-run sweep over one 50k-job trace
parses/generates that trace once instead of eight times.  On platforms
whose default start method is not ``fork``, workers simply re-resolve
from the spec — the results are identical either way.

Results stream back incrementally: each completed run is written to the
on-disk cache (and handed to the optional ``progress`` callback) as it
lands, so a crashed sweep resumes from everything already finished.

The on-disk cache (one JSON file per spec, keyed by the canonical spec
hash) makes repeated sweeps — the 60-run grids behind Figures 3-5 and
7-9 — free after the first run, across processes and sessions.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.api import Simulation, normalize_spec
from repro.registry import WORKLOAD_SOURCES
from repro.serialize import (
    FORMAT_VERSION,
    result_from_dict,
    result_to_dict,
    spec_key,
    spec_to_dict,
)

if TYPE_CHECKING:  # imported for annotations only; avoids package cycles
    from repro.experiments.config import RunSpec
    from repro.scheduling.result import SimulationResult
    from repro.workloads.sources import WorkloadBundle

__all__ = ["BatchRunner"]

#: Fork-shared workload bundles, keyed by (source, workload, n_jobs, seed).
#: Populated in the parent immediately before the pool forks; workers
#: inherit it copy-on-write and never mutate it.
_WORKLOAD_STORE: dict[tuple, "WorkloadBundle"] = {}


def _workload_key(spec: RunSpec) -> tuple:
    return (spec.source, spec.workload, spec.n_jobs, spec.seed)


def _build_simulation(spec: RunSpec, validate: bool) -> Simulation:
    """A Simulation over the shared bundle when one is available."""
    bundle = _WORKLOAD_STORE.get(_workload_key(spec))
    if bundle is None:
        return Simulation(spec, validate=validate)
    from repro.cluster.machine import Machine  # deferred: avoids import cycles

    machine = Machine(bundle.machine_name, bundle.total_cpus).scaled(spec.size_factor)
    return Simulation(spec, validate=validate, jobs=bundle.jobs, machine=machine)


def _execute(payload: tuple[RunSpec, bool]) -> SimulationResult:
    """Worker entry point (module-level so it pickles)."""
    spec, validate = payload
    return _build_simulation(spec, validate).run()


class BatchRunner:
    """Runs many :class:`RunSpec` simulations, optionally in parallel.

    Parameters
    ----------
    max_workers:
        Worker processes for a batch.  ``None`` uses the CPU count;
        ``0``/``1`` run serially in-process (still deduplicated and
        cached).  A batch never spawns more workers than it has
        distinct uncached specs.
    cache_dir:
        Directory for the JSON result cache, created on demand.
        ``None`` disables on-disk caching.
    validate:
        Run every simulation with invariant checking on (slower).
    default_n_jobs:
        Trace length pinned onto specs that leave ``n_jobs`` unset.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        cache_dir: str | os.PathLike[str] | None = None,
        validate: bool = False,
        default_n_jobs: int | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError(f"max_workers must be non-negative, got {max_workers}")
        self.max_workers = max_workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.validate = validate
        self.default_n_jobs = default_n_jobs
        self._cache_hits = 0
        self._cache_misses = 0

    # -- cache plumbing ---------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return self._cache_hits

    @property
    def cache_misses(self) -> int:
        return self._cache_misses

    def _cache_path(self, spec: RunSpec) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{spec_key(spec)}.json"

    def cache_load(self, spec: RunSpec) -> SimulationResult | None:
        """Fetch one result from the disk cache; counts a hit or miss."""
        result = self._cache_read(spec)
        if result is None:
            self._cache_misses += 1
        else:
            self._cache_hits += 1
        return result

    def _cache_read(self, spec: RunSpec) -> SimulationResult | None:
        if self.cache_dir is None:
            return None
        path = self._cache_path(spec)
        try:
            with open(path, "r", encoding="utf-8") as stream:
                data = json.load(stream)
            if data.get("version") != FORMAT_VERSION:
                return None
            if data.get("spec") != spec_to_dict(spec):
                return None  # hash collision or stale layout: recompute
            return result_from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None  # missing or corrupt entries are recomputed

    def cache_store(self, spec: RunSpec, result: SimulationResult) -> None:
        """Persist one result (no-op without a cache directory)."""
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(spec)
        payload = {
            "version": FORMAT_VERSION,
            "spec": spec_to_dict(spec),
            "result": result_to_dict(result),
        }
        # Write-then-rename so concurrent sweeps never read a torn file.
        temp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(temp, "w", encoding="utf-8") as stream:
            json.dump(payload, stream)
        os.replace(temp, path)

    # -- execution --------------------------------------------------------------
    def run(
        self,
        specs: Sequence[RunSpec],
        *,
        progress: Callable[[RunSpec, SimulationResult], None] | None = None,
    ) -> list[SimulationResult]:
        """Run ``specs`` and return results in the same order.

        Identical specs are simulated once.  Results are deterministic:
        serial and parallel execution of the same list are equal.
        ``progress`` (if given) is invoked once per freshly-simulated
        spec as its result lands — completion order, not input order.
        """
        if self.default_n_jobs is not None:
            normalized = [normalize_spec(s, self.default_n_jobs) for s in specs]
        else:
            normalized = [normalize_spec(s) for s in specs]

        resolved: dict[RunSpec, SimulationResult] = {}
        pending: list[RunSpec] = []
        for spec in normalized:
            if spec in resolved or spec in pending:
                continue
            cached = self.cache_load(spec)
            if cached is not None:
                resolved[spec] = cached
            else:
                pending.append(spec)

        self._share_workloads(pending)
        try:
            workers = self.max_workers if self.max_workers is not None else os.cpu_count() or 1
            if workers <= 1 or len(pending) <= 1:
                for spec in pending:
                    result = _execute((spec, self.validate))
                    self._land(spec, result, resolved, progress)
            else:
                context = None
                if "fork" in multiprocessing.get_all_start_methods():
                    # Fork shares _WORKLOAD_STORE copy-on-write; other
                    # start methods fall back to per-worker resolution.
                    context = multiprocessing.get_context("fork")
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(pending)), mp_context=context
                ) as pool:
                    futures = {
                        pool.submit(_execute, (spec, self.validate)): spec
                        for spec in pending
                    }
                    outstanding = set(futures)
                    while outstanding:
                        done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                        for future in done:
                            self._land(futures[future], future.result(), resolved, progress)
        finally:
            _WORKLOAD_STORE.clear()

        return [resolved[spec] for spec in normalized]

    def _land(
        self,
        spec: RunSpec,
        result: SimulationResult,
        resolved: dict[RunSpec, SimulationResult],
        progress: Callable[[RunSpec, SimulationResult], None] | None,
    ) -> None:
        """Record one fresh result as it completes (streaming persistence)."""
        resolved[spec] = result
        self.cache_store(spec, result)
        if progress is not None:
            progress(spec, result)

    @staticmethod
    def _share_workloads(pending: Sequence[RunSpec]) -> None:
        """Materialise each distinct workload once, before the pool forks."""
        _WORKLOAD_STORE.clear()
        for spec in pending:
            key = _workload_key(spec)
            if key in _WORKLOAD_STORE:
                continue
            source = WORKLOAD_SOURCES.get(spec.source)
            _WORKLOAD_STORE[key] = source(spec.workload, spec.n_jobs, spec.seed)
